//! Workspace integration tests: scenarios that span every crate at once.

use mtp::core::{MtpConfig, MtpSenderNode, MtpSinkNode, ScheduledMsg};
use mtp::net::{
    CompressorNode, FanoutForwarder, KvCacheNode, KvClientNode, KvServerNode, Stamp, StampKind,
    StaticForwarder, StaticRoutes, Strategy, SwitchNode,
};
use mtp::sim::time::{Bandwidth, Duration, Time};
use mtp::sim::{LinkCfg, PortId, Simulator};
use mtp::wire::{EntityId, PathletId};

fn ecn(rate: Bandwidth, d: Duration) -> LinkCfg {
    LinkCfg::ecn(rate, d, 256, 40)
}

/// The paper's Figure 1 in one simulation: a client whose requests pass
/// through an in-network cache, with the backend reached over a
/// load-balanced two-path fabric, pathlets stamped along the way.
#[test]
fn figure1_cache_plus_multipath_fabric() {
    let mut sim = Simulator::new(99);
    let cfg = MtpConfig::default();

    // Client (addr 1) -> cache (addr 5) -> fabric (2 paths) -> server (addr 2).
    let schedule: Vec<(Time, u64)> = (0..200u64)
        .map(|i| {
            let key = if i % 3 == 0 { 7 } else { 1000 + i }; // 1/3 hot
            (Time::ZERO + Duration::from_micros(3 * i), key)
        })
        .collect();
    let client = sim.add_node(Box::new(KvClientNode::new(
        cfg.clone(),
        1,
        2,
        512,
        1 << 32,
        schedule,
    )));
    let cache = sim.add_node(Box::new(KvCacheNode::new(
        cfg.clone(),
        5,
        [7u64],
        2048,
        2 << 32,
    )));
    let sw1 = sim.add_node(Box::new(
        SwitchNode::new(
            "fabric-in",
            Box::new(FanoutForwarder::new(
                StaticRoutes::new().add(1, PortId(0)),
                vec![PortId(1), PortId(2)],
                Strategy::mtp_lb(2, vec![Some(PathletId(1)), Some(PathletId(2))]),
            )),
        )
        .with_stamp(PortId(1), Stamp::new(PathletId(1), StampKind::Presence))
        .with_stamp(PortId(2), Stamp::new(PathletId(2), StampKind::QueueDepth)),
    ));
    let sw2 = sim.add_node(Box::new(SwitchNode::new(
        "fabric-out",
        Box::new(FanoutForwarder::new(
            StaticRoutes::new().add(2, PortId(0)),
            vec![PortId(1), PortId(2)],
            Strategy::Fixed,
        )),
    )));
    let server = sim.add_node(Box::new(KvServerNode::new(
        cfg,
        2,
        2048,
        Duration::from_micros(1),
        3 << 32,
    )));

    let fast = Bandwidth::from_gbps(100);
    let d = Duration::from_micros(1);
    sim.connect(
        client,
        PortId(0),
        cache,
        PortId(0),
        ecn(fast, d),
        ecn(fast, d),
    );
    sim.connect(cache, PortId(1), sw1, PortId(0), ecn(fast, d), ecn(fast, d));
    sim.connect(sw1, PortId(1), sw2, PortId(1), ecn(fast, d), ecn(fast, d));
    sim.connect(
        sw1,
        PortId(2),
        sw2,
        PortId(2),
        ecn(fast, Duration::from_micros(2)),
        ecn(fast, Duration::from_micros(2)),
    );
    sim.connect(
        sw2,
        PortId(0),
        server,
        PortId(0),
        ecn(fast, d),
        ecn(fast, d),
    );

    sim.run_until(Time::ZERO + Duration::from_millis(50));
    mtp::sim::assert_conservation(&sim);

    let client = sim.node_as::<KvClientNode>(client);
    assert_eq!(client.done(), 200, "every request answered");
    let cache_stats = sim.node_as::<KvCacheNode>(cache).stats;
    assert_eq!(
        cache_stats.hits, 67,
        "hot key answered in-network (ceil(200/3))"
    );
    assert_eq!(cache_stats.misses, 133);
    assert_eq!(sim.node_as::<KvServerNode>(server).served, 133);
    // Hits beat misses on latency.
    let mean = |cache_flag: bool| {
        let v: Vec<f64> = client
            .completions
            .iter()
            .filter(|(_, _, c)| *c == cache_flag)
            .map(|(_, l, _)| l.as_micros_f64())
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    assert!(mean(true) < mean(false), "cache hits are faster");
}

/// Mutation + reliability across a chain: sender -> compressor -> switch ->
/// sink, with loss on the compressed leg repaired by NACKs against the
/// *mutated* message.
#[test]
fn compressed_messages_survive_loss_downstream() {
    let mut sim = Simulator::new(5);
    let cfg = MtpConfig::default();
    let schedule: Vec<ScheduledMsg> = (0..20)
        .map(|i| ScheduledMsg::new(Time::ZERO + Duration::from_micros(20 * i), 100_000))
        .collect();
    let snd = sim.add_node(Box::new(MtpSenderNode::new(
        cfg.clone(),
        1,
        2,
        EntityId(0),
        1 << 32,
        schedule,
    )));
    let comp = sim.add_node(Box::new(CompressorNode::new(cfg.clone(), 5, 0.5, 2 << 32)));
    let sw = sim.add_node(Box::new(SwitchNode::new(
        "sw",
        Box::new(StaticForwarder(
            StaticRoutes::new()
                .add(5, PortId(0))
                .add(1, PortId(0))
                .add(2, PortId(1)),
        )),
    )));
    let sink = sim.add_node(Box::new(MtpSinkNode::new(2, Duration::from_micros(100))));

    let bw = Bandwidth::from_gbps(100);
    let d = Duration::from_micros(1);
    sim.connect(snd, PortId(0), comp, PortId(0), ecn(bw, d), ecn(bw, d));
    sim.connect(comp, PortId(1), sw, PortId(0), ecn(bw, d), ecn(bw, d));
    // Tiny queue on the last hop: drops are certain.
    sim.connect(
        sw,
        PortId(1),
        sink,
        PortId(0),
        LinkCfg::drop_tail(Bandwidth::from_gbps(10), d, 6),
        LinkCfg::drop_tail(Bandwidth::from_gbps(10), d, 64),
    );
    sim.run_until(Time::ZERO + Duration::from_millis(60));
    mtp::sim::assert_conservation(&sim);

    assert!(
        sim.node_as::<MtpSenderNode>(snd).all_done(),
        "upstream complete"
    );
    let comp = sim.node_as::<CompressorNode>(comp);
    assert_eq!(comp.stats.msgs, 20);
    let sink_node = sim.node_as::<MtpSinkNode>(sink);
    assert_eq!(
        sink_node.delivered.len(),
        20,
        "all mutated messages delivered"
    );
    assert_eq!(sink_node.total_goodput(), 20 * 50_000);
}

/// Determinism across the whole stack: same seed, same figure.
#[test]
fn full_stack_runs_are_deterministic() {
    let run = || {
        let mut sim = Simulator::new(1234);
        let snd = sim.add_node(Box::new(MtpSenderNode::new(
            MtpConfig::default(),
            1,
            2,
            EntityId(0),
            1,
            (0..50)
                .map(|i| ScheduledMsg::new(Time::ZERO + Duration::from_micros(i), 30_000))
                .collect(),
        )));
        let sink = sim.add_node(Box::new(MtpSinkNode::new(2, Duration::from_micros(10))));
        let bw = Bandwidth::from_gbps(25);
        let d = Duration::from_micros(1);
        sim.connect(snd, PortId(0), sink, PortId(0), ecn(bw, d), ecn(bw, d));
        sim.run_until(Time::ZERO + Duration::from_millis(10));
        mtp::sim::assert_conservation(&sim);
        let s = sim.node_as::<MtpSenderNode>(snd);
        let fcts: Vec<_> = s.msgs.iter().map(|m| m.completed).collect();
        (
            fcts,
            sim.node_as::<MtpSinkNode>(sink).goodput.sums().to_vec(),
        )
    };
    assert_eq!(run(), run());
}

/// The facade crate re-exports fit together type-wise.
#[test]
fn facade_reexports_are_usable() {
    let hdr = mtp::wire::MtpHeader::default();
    let bytes = hdr.to_bytes().expect("encodable");
    assert_eq!(bytes.len(), mtp::wire::FIXED_HEADER_LEN);
    let caps = mtp::core::capabilities::mtp();
    assert_eq!(caps.score(), 5);
    let d = mtp::workload::SizeDist::web_search();
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
    assert!(d.sample(&mut rng) > 0);
}

/// A leaf-spine fabric built from the bench topology helpers carries a
/// permutation workload to completion with per-spine pathlet state at
/// every sender.
#[test]
fn leaf_spine_fabric_completes_permutation() {
    use mtp::bench::topo::{leaf_spine, ls_addr, PathSpec};
    use mtp::net::Strategy;
    use mtp::wire::PathletId;

    const LEAVES: usize = 2;
    const SPINES: usize = 2;
    const HPL: usize = 2;
    // Leaf 0 hosts send; leaf 1 hosts sink: sender (0, i) -> sink (1, i),
    // so every message crosses the spine layer.
    let mut ls = leaf_spine(
        5,
        LEAVES,
        SPINES,
        HPL,
        |leaf, i, addr| {
            if leaf == 0 {
                let dst = ls_addr(1, HPL, i);
                Box::new(MtpSenderNode::new(
                    MtpConfig::default(),
                    addr,
                    dst,
                    mtp::wire::EntityId(i as u16),
                    ((i + 1) as u64) << 40,
                    (0..10)
                        .map(|m| {
                            ScheduledMsg::new(Time::ZERO + Duration::from_micros(5 * m), 40_000)
                        })
                        .collect(),
                ))
            } else {
                Box::new(MtpSinkNode::new(addr, Duration::from_micros(100)))
            }
        },
        |_| {
            Strategy::mtp_lb(
                SPINES,
                (0..SPINES).map(|s| Some(PathletId(s as u16 + 1))).collect(),
            )
        },
        PathSpec::new(Bandwidth::from_gbps(100), Duration::from_micros(1)),
        PathSpec::new(Bandwidth::from_gbps(100), Duration::from_micros(1)),
    );
    ls.sim.run_until(Time::ZERO + Duration::from_millis(20));
    mtp::sim::assert_conservation(&ls.sim);
    let mut goodput = 0;
    for (k, &h) in ls.hosts.iter().enumerate() {
        if k < HPL {
            let s = ls.sim.node_as::<MtpSenderNode>(h);
            assert!(s.all_done(), "sender {k} incomplete");
            assert!(
                !s.sender.pathlets().is_empty(),
                "sender {k} learned spine pathlets"
            );
        } else {
            goodput += ls.sim.node_as::<MtpSinkNode>(h).total_goodput();
        }
    }
    assert_eq!(goodput, HPL as u64 * 10 * 40_000);
}
