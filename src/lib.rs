//! # mtp — an offload-friendly Message Transport Protocol
//!
//! Facade crate for the MTP workspace, a from-scratch Rust implementation
//! of *"TCP is Harmful to In-Network Computing: Designing a Message
//! Transport Protocol (MTP)"* (HotNets'21):
//!
//! * [`wire`] — the byte-exact MTP header codec (paper Fig. 4);
//! * [`sim`] — a deterministic discrete-event network simulator (the ns-3
//!   substitute);
//! * [`core`] — the MTP endpoint: message transport + pathlet congestion
//!   control;
//! * [`tcp`] — TCP NewReno / DCTCP baselines;
//! * [`net`] — in-network devices: switches, load balancers, proxy, cache
//!   offload, fair-share enforcement;
//! * [`workload`] — workload generators and FCT statistics;
//! * [`mod@bench`] — experiment topologies and the per-figure harness.
//!
//! See `examples/quickstart.rs` for a five-minute tour, and the `mtp-bench`
//! binaries (`table1`, `fig2`, `fig3`, `fig5`, `fig6`, `fig7`,
//! `ablations`) to regenerate every table and figure of the paper.

#![forbid(unsafe_code)]

pub use mtp_bench as bench;
pub use mtp_core as core;
pub use mtp_net as net;
pub use mtp_sim as sim;
pub use mtp_tcp as tcp;
pub use mtp_wire as wire;
pub use mtp_workload as workload;
