//! Core strategy trait and combinators for the proptest stand-in.

use rand::Rng;

/// The RNG driving value generation: the vendored xoshiro256++.
pub type TestRng = rand::rngs::SmallRng;

/// A recipe for generating random values of `Value`.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draw one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Box::new(move |rng| self.gen_value(rng)),
        }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    gen: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Uniform choice between boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms`; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].gen_value(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// A strategy from a plain generation function (used by `prop_compose!`).
pub struct FnStrategy<T, F: Fn(&mut TestRng) -> T> {
    f: F,
}

/// Wrap a generation function as a [`Strategy`].
pub fn fn_strategy<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<T, F> {
    FnStrategy { f }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<T, F> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Half-open ranges are uniform strategies (ints and floats).
impl<T> Strategy for std::ops::Range<T>
where
    T: Copy,
    std::ops::Range<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Full-domain generation for primitives (the `any::<T>()` backend).
pub trait ArbitraryValue {
    /// Draw a value uniform over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty as $u:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::RngCore;
                (rng.next_u64() as $u) as $t
            }
        }
    )*};
}
impl_arbitrary_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the full domain of `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Strategy producing any value of `T` (`any::<u32>()` etc.).
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.gen_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (S0)
    (S0, S1)
    (S0, S1, S2)
    (S0, S1, S2, S3)
    (S0, S1, S2, S3, S4)
    (S0, S1, S2, S3, S4, S5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::seed_from_u64(1);
        let s = (0u8..6).prop_map(|v| v * 2);
        for _ in 0..200 {
            let v = s.gen_value(&mut rng);
            assert!(v < 12 && v % 2 == 0);
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = TestRng::seed_from_u64(2);
        let u = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[u.gen_value(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn determinism_same_seed_same_stream() {
        let s = (any::<u64>(), 0.0f64..1.0);
        let mut a = TestRng::seed_from_u64(7);
        let mut b = TestRng::seed_from_u64(7);
        for _ in 0..50 {
            assert_eq!(s.gen_value(&mut a), s.gen_value(&mut b));
        }
    }
}
