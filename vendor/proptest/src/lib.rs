//! Offline stand-in for `proptest`.
//!
//! Implements the API subset the workspace's property tests use:
//! [`Strategy`] with `prop_map`, [`any`], [`Just`], integer/float range
//! strategies, tuple strategies, `prop::collection::vec`, `prop_oneof!`,
//! `prop_compose!`, `proptest!`, `prop_assert!`/`prop_assert_eq!`, and
//! [`ProptestConfig::with_cases`].
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the deterministic case number, which — because the RNG seed is derived
//! from (file, test name, case index) — reproduces exactly on re-run.

#![forbid(unsafe_code)]

pub mod strategy;

pub use strategy::{any, BoxedStrategy, Just, Strategy, TestRng, Union};

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases, overridable via the `PROPTEST_CASES` environment
    /// variable (same knob as real proptest) so CI can run a deeper
    /// sweep without code changes.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&c| c > 0)
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::{Strategy, TestRng};

    /// Strategy producing `Vec`s of `elem` with a length drawn from
    /// `range`.
    pub struct VecStrategy<S> {
        elem: S,
        range: std::ops::Range<usize>,
    }

    /// `Vec` strategy: lengths uniform in `range`, elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, range: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, range }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = if self.range.start + 1 >= self.range.end {
                self.range.start
            } else {
                rng.gen_range(self.range.clone())
            };
            (0..len).map(|_| self.elem.gen_value(rng)).collect()
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_compose, prop_oneof, proptest};
}

/// Derive a per-case RNG seed from test identity and case index (FNV-1a),
/// so failures reproduce without a persistence file.
pub fn case_seed(file: &str, name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in file.bytes().chain(name.bytes()).chain(case.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// One property test: `cases` runs of `body` with values drawn by `gen`.
pub fn run_property<V>(
    config: &ProptestConfig,
    file: &str,
    name: &str,
    gen: impl Fn(&mut TestRng) -> V,
    body: impl Fn(V),
) {
    use rand::SeedableRng;
    for case in 0..config.cases {
        let mut rng = TestRng::seed_from_u64(case_seed(file, name, case));
        let value = gen(&mut rng);
        // A panic in `body` fails the #[test]; the case index in the
        // message plus the deterministic seed make it reproducible.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(value)));
        if let Err(payload) = result {
            eprintln!(
                "proptest stand-in: {name} failed at case {case}/{}",
                config.cases
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Like `assert!` inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Like `assert_eq!` inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Weighted-choice strategy union. Weights are ignored in this stand-in;
/// arms are chosen uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Compose named sub-strategies into a derived strategy function.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($args:tt)*)
        ($($field:ident in $strat:expr),+ $(,)?)
        -> $out:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($args)*) -> impl $crate::strategy::Strategy<Value = $out> {
            let __strats = ($($strat,)+);
            $crate::strategy::fn_strategy(move |__rng| {
                let ($(ref $field,)+) = __strats;
                $(let $field = $crate::strategy::Strategy::gen_value($field, __rng);)+
                $body
            })
        }
    };
}

/// Define property tests; each `#[test] fn name(x in strategy, ...)`
/// becomes a normal test running [`run_property`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($field:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let __strats = ($($strat,)+);
            $crate::run_property(
                &__config,
                file!(),
                stringify!($name),
                |__rng| {
                    let ($(ref $field,)+) = __strats;
                    ($($crate::strategy::Strategy::gen_value($field, __rng),)+)
                },
                |($($field,)+)| $body,
            );
        }
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
}
