//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are
//! unavailable; this crate hand-parses the derive input token stream.
//! `#[derive(Serialize)]` emits an `impl serde::Serialize` whose
//! `write_json` method writes compact JSON (serde's externally-tagged
//! conventions: newtype structs unwrap, unit enum variants are strings,
//! data-carrying variants are single-key objects). `#[derive(Deserialize)]`
//! emits a marker impl — nothing in this workspace parses JSON back.
//!
//! Supported shapes: structs (named / tuple / unit), enums whose variants
//! are unit, tuple, or struct-like, and simple generics such as
//! `<T: Serialize>`. `#[serde(...)]` attributes are not supported and the
//! workspace does not use them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Parsed {
    name: String,
    /// Raw generic parameter list, e.g. `T: Serialize` (without the angle
    /// brackets); empty when the type is not generic.
    generics_raw: String,
    /// Just the parameter names, e.g. `T` or `'a, T`.
    generic_names: Vec<String>,
    /// Type-parameter names only (no lifetimes, no consts) — these get
    /// `Serialize` bounds.
    type_params: Vec<String>,
    shape: Shape,
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Skip `#[...]` attribute groups starting at `i`; returns the next index.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < toks.len() {
        match (&toks[i], &toks[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, …).
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if i < toks.len() && is_ident(&toks[i], "pub") {
        i += 1;
        if i < toks.len() {
            if let TokenTree::Group(g) = &toks[i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parse `<...>` starting at `toks[i]` (which must be `<`). Returns
/// (raw text, param names, type param names, next index).
fn parse_generics(toks: &[TokenTree], mut i: usize) -> (String, Vec<String>, Vec<String>, usize) {
    let mut depth = 0usize;
    let mut raw = String::new();
    let mut names = Vec::new();
    let mut type_params = Vec::new();
    // Whether the next ident at depth 1 opens a new parameter.
    let mut expecting_param = true;
    let mut lifetime_pending = false;
    let mut const_pending = false;
    loop {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                if depth > 1 {
                    raw.push('<');
                }
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
                raw.push('>');
            }
            TokenTree::Punct(p) => {
                let c = p.as_char();
                raw.push(c);
                if depth == 1 {
                    if c == ',' {
                        expecting_param = true;
                        lifetime_pending = false;
                        const_pending = false;
                    } else if c == '\'' {
                        lifetime_pending = true;
                    } else if c == ':' {
                        expecting_param = false;
                    }
                }
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                raw.push_str(&s);
                raw.push(' ');
                if depth == 1 && expecting_param {
                    if s == "const" {
                        const_pending = true;
                    } else if lifetime_pending {
                        names.push(format!("'{s}"));
                        expecting_param = false;
                        lifetime_pending = false;
                    } else {
                        names.push(s.clone());
                        if !const_pending {
                            type_params.push(s);
                        }
                        expecting_param = false;
                        const_pending = false;
                    }
                }
            }
            other => raw.push_str(&other.to_string()),
        }
        i += 1;
    }
    (raw, names, type_params, i)
}

/// Parse named fields out of a brace group's tokens.
fn parse_named_fields(toks: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs(toks, i);
        if i >= toks.len() {
            break;
        }
        i = skip_vis(toks, i);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other}"),
        };
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected ':' after field {name}, found {other}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle = 0i32;
        let mut prev_dash = false;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == '<' {
                        angle += 1;
                    } else if c == '>' {
                        if prev_dash {
                            // `->` in a fn type: not a closing bracket.
                        } else {
                            angle -= 1;
                        }
                    } else if c == ',' && angle == 0 {
                        i += 1;
                        break;
                    }
                    prev_dash = c == '-';
                }
                _ => prev_dash = false,
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

/// Count top-level comma-separated entries in a paren group's tokens.
fn count_tuple_fields(toks: &[TokenTree]) -> usize {
    if toks.is_empty() {
        return 0;
    }
    let mut n = 1;
    let mut angle = 0i32;
    let mut prev_dash = false;
    let mut last_was_comma = false;
    for t in toks {
        last_was_comma = false;
        if let TokenTree::Punct(p) = t {
            let c = p.as_char();
            if c == '<' {
                angle += 1;
            } else if c == '>' && !prev_dash {
                angle -= 1;
            } else if c == ',' && angle == 0 {
                n += 1;
                last_was_comma = true;
            }
            prev_dash = c == '-';
        } else {
            prev_dash = false;
        }
    }
    if last_was_comma {
        n -= 1; // trailing comma
    }
    n
}

fn parse_variants(toks: &[TokenTree]) -> Vec<Variant> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs(toks, i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let mut kind = VariantKind::Unit;
        if i < toks.len() {
            if let TokenTree::Group(g) = &toks[i] {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                kind = match g.delimiter() {
                    Delimiter::Parenthesis => VariantKind::Tuple(count_tuple_fields(&inner)),
                    Delimiter::Brace => VariantKind::Named(parse_named_fields(&inner)),
                    other => panic!("serde_derive: unexpected variant delimiter {other:?}"),
                };
                i += 1;
            }
        }
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        out.push(Variant { name, kind });
    }
    out
}

fn parse_input(input: TokenStream) -> Parsed {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&toks, 0);
    i = skip_vis(&toks, i);
    let is_enum = if is_ident(&toks[i], "struct") {
        false
    } else if is_ident(&toks[i], "enum") {
        true
    } else {
        panic!("serde_derive: unions are not supported");
    };
    i += 1;
    let name = toks[i].to_string();
    i += 1;
    let (generics_raw, generic_names, type_params) = match toks.get(i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            let (raw, names, tys, ni) = parse_generics(&toks, i);
            i = ni;
            (raw, names, tys)
        }
        _ => (String::new(), Vec::new(), Vec::new()),
    };
    // Skip a where clause if present (stop at the body brace / tuple semi).
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break,
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => break,
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => i += 1,
        }
    }
    let shape = if is_enum {
        match &toks[i] {
            TokenTree::Group(g) => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::Enum(parse_variants(&inner))
            }
            other => panic!("serde_derive: expected enum body, found {other}"),
        }
    } else {
        match &toks[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::NamedStruct(parse_named_fields(&inner))
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::TupleStruct(count_tuple_fields(&inner))
            }
            TokenTree::Punct(p) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive: expected struct body, found {other}"),
        }
    };
    Parsed {
        name,
        generics_raw,
        generic_names,
        type_params,
        shape,
    }
}

fn impl_header(p: &Parsed, trait_path: &str) -> String {
    let impl_generics = if p.generics_raw.is_empty() {
        String::new()
    } else {
        format!("<{}>", p.generics_raw)
    };
    let ty_generics = if p.generic_names.is_empty() {
        String::new()
    } else {
        format!("<{}>", p.generic_names.join(", "))
    };
    let where_clause = if p.type_params.is_empty() {
        String::new()
    } else {
        let bounds: Vec<String> = p
            .type_params
            .iter()
            .map(|t| format!("{t}: ::serde::Serialize"))
            .collect();
        format!(" where {}", bounds.join(", "))
    };
    format!(
        "impl{impl_generics} {trait_path} for {}{ty_generics}{where_clause}",
        p.name
    )
}

/// `#[derive(Serialize)]` — emit a compact-JSON writer.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let p = parse_input(input);
    let mut body = String::new();
    match &p.shape {
        Shape::NamedStruct(fields) => {
            if fields.is_empty() {
                body.push_str("out.push_str(\"{}\");");
            } else {
                body.push_str("out.push('{');");
                for (k, f) in fields.iter().enumerate() {
                    let comma = if k == 0 { "" } else { "," };
                    body.push_str(&format!(
                        "out.push_str(\"{comma}\\\"{f}\\\":\");\
                         ::serde::Serialize::write_json(&self.{f}, out);"
                    ));
                }
                body.push_str("out.push('}');");
            }
        }
        Shape::TupleStruct(1) => {
            body.push_str("::serde::Serialize::write_json(&self.0, out);");
        }
        Shape::TupleStruct(n) => {
            body.push_str("out.push('[');");
            for k in 0..*n {
                if k > 0 {
                    body.push_str("out.push(',');");
                }
                body.push_str(&format!("::serde::Serialize::write_json(&self.{k}, out);"));
            }
            body.push_str("out.push(']');");
        }
        Shape::UnitStruct => body.push_str("out.push_str(\"null\");"),
        Shape::Enum(variants) => {
            body.push_str("match self {");
            for v in variants {
                let name = &p.name;
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        body.push_str(&format!("{name}::{vn} => out.push_str(\"\\\"{vn}\\\"\"),"))
                    }
                    VariantKind::Tuple(1) => body.push_str(&format!(
                        "{name}::{vn}(__f0) => {{ out.push_str(\"{{\\\"{vn}\\\":\");\
                         ::serde::Serialize::write_json(__f0, out); out.push('}}'); }}"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        body.push_str(&format!(
                            "{name}::{vn}({}) => {{ out.push_str(\"{{\\\"{vn}\\\":[\");",
                            binds.join(", ")
                        ));
                        for (k, b) in binds.iter().enumerate() {
                            if k > 0 {
                                body.push_str("out.push(',');");
                            }
                            body.push_str(&format!("::serde::Serialize::write_json({b}, out);"));
                        }
                        body.push_str("out.push_str(\"]}}\"); }");
                    }
                    VariantKind::Named(fields) => {
                        body.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ out.push_str(\"{{\\\"{vn}\\\":{{\");",
                            fields.join(", ")
                        ));
                        for (k, f) in fields.iter().enumerate() {
                            let comma = if k == 0 { "" } else { "," };
                            body.push_str(&format!(
                                "out.push_str(\"{comma}\\\"{f}\\\":\");\
                                 ::serde::Serialize::write_json({f}, out);"
                            ));
                        }
                        body.push_str("out.push_str(\"}}}}\"); }");
                    }
                }
            }
            body.push('}');
        }
    }
    let code = format!(
        "{} {{ fn write_json(&self, out: &mut ::std::string::String) {{ {body} }} }}",
        impl_header(&p, "::serde::Serialize")
    );
    code.parse().expect("serde_derive: generated code parses")
}

/// `#[derive(Deserialize)]` — marker impl only; nothing in this workspace
/// deserializes.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let p = parse_input(input);
    let code = format!("{} {{}}", impl_header(&p, "::serde::Deserialize"));
    code.parse().expect("serde_derive: generated code parses")
}
