//! Offline stand-in for `rand_distr`: just [`Exp`] and [`LogNormal`],
//! which is all the workload generators sample from.

#![forbid(unsafe_code)]

use rand::RngCore;

/// Types that can be sampled with an RNG.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform draw from the open interval `(0, 1]` — safe for `ln`.
#[inline]
fn open01<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Error for invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}
impl std::error::Error for ParamError {}

/// Exponential distribution with rate `lambda` (inverse-transform
/// sampling).
#[derive(Debug, Clone, Copy)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// An exponential with rate `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Exp, ParamError> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(ParamError("Exp requires lambda > 0"))
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        -open01(rng).ln() / self.lambda
    }
}

/// Log-normal distribution: `exp(mu + sigma * Z)` with `Z` standard
/// normal (Box–Muller).
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// A log-normal with location `mu` and scale `sigma >= 0`.
    pub fn new(mu: f64, sigma: f64) -> Result<LogNormal, ParamError> {
        if sigma >= 0.0 && sigma.is_finite() && mu.is_finite() {
            Ok(LogNormal { mu, sigma })
        } else {
            Err(ParamError("LogNormal requires finite mu, sigma >= 0"))
        }
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1 = open01(rng);
        let u2 = open01(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn exp_mean_close_to_inverse_lambda() {
        let mut r = SmallRng::seed_from_u64(11);
        let d = Exp::new(2.0).unwrap();
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!(Exp::new(0.0).is_err());
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let mut r = SmallRng::seed_from_u64(12);
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let n = 100_001;
        let mut v: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[n / 2];
        assert!(
            (median - 1f64.exp()).abs() / 1f64.exp() < 0.05,
            "median {median}"
        );
        assert!(LogNormal::new(0.0, -1.0).is_err());
    }
}
