//! Offline stand-in for `serde_json`.
//!
//! The serde stand-in's [`serde::Serialize`] already emits compact JSON;
//! this crate adds the `to_string`/`to_string_pretty` entry points the
//! workspace calls. Pretty-printing re-indents the compact encoding with
//! the same 2-space style as real serde_json.

#![forbid(unsafe_code)]

use serde::Serialize;

/// Serialization error. The stand-in writer is infallible, so this is
/// never constructed, but callers match real serde_json's `Result` API.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JSON serialization error")
    }
}
impl std::error::Error for Error {}

/// Result alias matching real serde_json.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.write_json(&mut out);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let compact = to_string(value)?;
    Ok(prettify(&compact))
}

/// Re-indent compact JSON. Tracks string/escape state so braces inside
/// string literals are left alone.
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    let mut chars = compact.chars().peekable();

    fn newline(out: &mut String, depth: usize) {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }

    while let Some(c) = chars.next() {
        if in_str {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line: `{}` / `[]`.
                let close = if c == '{' { '}' } else { ']' };
                if chars.peek() == Some(&close) {
                    out.push(close);
                    chars.next();
                } else {
                    depth += 1;
                    newline(&mut out, depth);
                }
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                newline(&mut out, depth);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline(&mut out, depth);
            }
            ':' => {
                out.push_str(": ");
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_expected_shape() {
        let v = vec![(1u8, "a:b".to_string()), (2, "c".to_string())];
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(
            pretty,
            "[\n  [\n    1,\n    \"a:b\"\n  ],\n  [\n    2,\n    \"c\"\n  ]\n]"
        );
    }

    #[test]
    fn empty_containers_stay_inline() {
        let v: Vec<u8> = vec![];
        assert_eq!(to_string_pretty(&v).unwrap(), "[]");
    }
}
