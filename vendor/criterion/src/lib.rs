//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace benches use: `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `Throughput`,
//! and the `criterion_group!`/`criterion_main!` macros. Measurement is
//! deliberately simple — a warmup pass, then repeated timed batches
//! reporting median per-iteration time and derived throughput — which is
//! enough for the perf-regression workflow; statistical rigor comes from
//! the `perfgate` binary, not this harness.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes (decimal multiples) processed per iteration.
    BytesDecimal(u64),
}

/// Passed to the closure given to `bench_function`; `iter` runs and
/// times the workload.
pub struct Bencher {
    /// Median per-iteration duration measured by the last `iter` call.
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly and record its median per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: let caches/branch predictors settle and estimate cost.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(300) {
            std::hint::black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let est = warmup_start.elapsed().as_secs_f64() / warmup_iters.max(1) as f64;

        // Size batches to ~50ms, take the median of several batches.
        let batch = ((0.05 / est.max(1e-9)) as u64).clamp(1, 1_000_000);
        let mut samples = Vec::with_capacity(9);
        for _ in 0..9 {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.elapsed_per_iter = Duration::from_secs_f64(samples[samples.len() / 2]);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the throughput annotation for subsequently added benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Override the sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Override the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark and print its result.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed_per_iter.as_secs_f64();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:>12.0} elem/s", n as f64 / per_iter)
            }
            Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) if per_iter > 0.0 => {
                format!("  {:>12.0} B/s", n as f64 / per_iter)
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<32} {:>12.3} us/iter{}",
            self.name,
            id,
            per_iter * 1e6,
            rate
        );
        self
    }

    /// Finish the group (no-op; matches the real API).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Define a benchmark group runner, like real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` running the listed groups, like real criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
