//! Offline stand-in for `serde`.
//!
//! The real serde separates data model from format; this workspace only
//! ever serializes to JSON (experiment records, golden traces), so the
//! [`Serialize`] trait here writes compact JSON directly. The derive
//! macros live in the sibling `serde_derive` stand-in and follow serde's
//! externally-tagged conventions (newtype structs unwrap, unit enum
//! variants serialize as strings, data-carrying variants as single-key
//! objects). [`Deserialize`] is a marker: nothing in the workspace reads
//! serialized data back.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Serialize `self` as compact JSON appended to `out`.
pub trait Serialize {
    /// Append this value's JSON encoding to `out`.
    fn write_json(&self, out: &mut String);
}

/// Marker trait: derived for types the real serde could deserialize.
pub trait Deserialize {}

macro_rules! impl_display_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                use std::fmt::Write;
                write!(out, "{self}").expect("write to String");
            }
        }
        impl Deserialize for $t {}
    )*};
}
impl_display_num!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                use std::fmt::Write;
                if self.is_finite() {
                    // Rust's Display for floats is shortest-roundtrip and
                    // never uses exponent notation: always valid JSON.
                    if *self == self.trunc() && self.abs() < 1e15 {
                        write!(out, "{self:.1}").expect("write to String");
                    } else {
                        write!(out, "{self}").expect("write to String");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Infinity
                }
            }
        }
        impl Deserialize for $t {}
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}
impl Deserialize for bool {}

/// JSON string escaping shared by `str`/`String`/`char`.
fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        write_escaped(self, out);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        write_escaped(self, out);
    }
}
impl Deserialize for String {}

impl Serialize for char {
    fn write_json(&self, out: &mut String) {
        let mut buf = [0u8; 4];
        write_escaped(self.encode_utf8(&mut buf), out);
    }
}
impl Deserialize for char {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}
impl<T: Deserialize> Deserialize for Box<T> {}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

fn write_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, v) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        v.write_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn write_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn write_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.write_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<K: std::fmt::Display, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn write_json(&self, out: &mut String) {
        // Deterministic output: sort keys by their string form.
        let mut entries: Vec<(String, &V)> = self.iter().map(|(k, v)| (k.to_string(), v)).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        out.push('{');
        for (i, (k, v)) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(k, out);
            out.push(':');
            v.write_json(out);
        }
        out.push('}');
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(&k.to_string(), out);
            out.push(':');
            v.write_json(out);
        }
        out.push('}');
    }
}

impl Serialize for () {
    fn write_json(&self, out: &mut String) {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        let mut s = String::new();
        42u32.write_json(&mut s);
        s.push(' ');
        true.write_json(&mut s);
        s.push(' ');
        1.5f64.write_json(&mut s);
        s.push(' ');
        2.0f64.write_json(&mut s);
        assert_eq!(s, "42 true 1.5 2.0");
    }

    #[test]
    fn strings_escape() {
        let mut s = String::new();
        "a\"b\\c\n".write_json(&mut s);
        assert_eq!(s, r#""a\"b\\c\n""#);
    }

    #[test]
    fn containers() {
        let mut s = String::new();
        vec![1u8, 2, 3].write_json(&mut s);
        s.push(' ');
        Some(7u8).write_json(&mut s);
        s.push(' ');
        Option::<u8>::None.write_json(&mut s);
        s.push(' ');
        (1u8, "x").write_json(&mut s);
        assert_eq!(s, r#"[1,2,3] 7 null [1,"x"]"#);
    }
}
