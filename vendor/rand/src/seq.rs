//! Slice helpers: `shuffle` and `choose`.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = SmallRng::seed_from_u64(9);
        let v: Vec<u32> = vec![];
        assert!(v.choose(&mut r).is_none());
        assert_eq!(*[42u32].choose(&mut r).unwrap(), 42);
    }
}
