//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow API surface it actually uses: [`rngs::SmallRng`]
//! (xoshiro256++ seeded via SplitMix64, the same generator real
//! `rand 0.8` uses for `SmallRng` on 64-bit targets), the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits with `gen_range` / `gen_bool`,
//! and [`seq::SliceRandom`] with `shuffle` / `choose`.
//!
//! Determinism is the only contract the simulator needs: the same seed
//! must always produce the same stream on every platform. No claim of
//! bit-compatibility with upstream `rand` is made (the repo's results
//! were regenerated after vendoring).

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

/// A source of 32/64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                // Lemire-style widening multiply; bias is < 2^-64 per draw.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start.wrapping_add(hi)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128) - (start as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full u64 domain
                }
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                start.wrapping_add(hi)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}
impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = unit_f64(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Uniform draw from `[0, 1)` with 53 bits of precision.
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w: u64 = r.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let f: f64 = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let s: i64 = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(4);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
