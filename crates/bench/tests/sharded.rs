//! Sharded-vs-serial equivalence on the multi-pod fabric.
//!
//! The tentpole proof: running the fabric under [`ShardedSimulator`] with
//! any shard count produces the byte-identical canonical digest — every
//! link counter, every trace event, every delivery total — as the
//! monolithic engine, including with fault and corruption schedules
//! active. Plus: the merged conservation audit holds not just at
//! completion but at epoch barriers with boundary packets still staged in
//! the runtime.

use mtp_bench::fabric::{build, fault_schedule, run_serial, run_sharded, FabricCfg};
use mtp_sim::monolithic_digest;
use mtp_sim::time::{Duration, Time};

/// Room for every trace event of a tiny-fabric run (the digest asserts
/// the ring never wrapped, so this must exceed the true event count).
const TRACE_CAP: usize = 1 << 17;

fn horizon() -> Time {
    Time::ZERO + Duration::from_millis(2)
}

/// The determinism matrix: {2, 3, 4} shards × 3 seeds, with the full
/// fault + corruption schedule live. Byte-identical digests, merged
/// audit clean.
#[test]
fn sharded_digest_matches_serial_across_matrix() {
    for seed in [1u64, 2, 3] {
        let net = build(FabricCfg::tiny());
        let admin = fault_schedule(&net, seed);
        let serial = run_serial(&net, seed, Some(TRACE_CAP), horizon(), admin.clone());
        mtp_sim::assert_conservation(&serial);
        let want = monolithic_digest(&serial);
        for shards in [2usize, 3, 4] {
            let ss = run_sharded(
                &net,
                shards,
                seed,
                Some(TRACE_CAP),
                horizon(),
                admin.clone(),
            );
            let got = ss.digest();
            assert_eq!(
                got, want,
                "digest diverged: seed {seed}, {shards} shards (vs serial)"
            );
            ss.audit().assert_ok();
        }
    }
}

/// A clean (fault-free) cross-check too: the equivalence must not depend
/// on the admin machinery being exercised.
#[test]
fn sharded_digest_matches_serial_without_faults() {
    let net = build(FabricCfg::tiny());
    let serial = run_serial(&net, 7, Some(TRACE_CAP), horizon(), Vec::new());
    let want = monolithic_digest(&serial);
    let ss = run_sharded(&net, 3, 7, Some(TRACE_CAP), horizon(), Vec::new());
    assert_eq!(ss.digest(), want);
}

/// Conservation under sharding: stepping the sharded run in small
/// increments, the merged audit passes at every barrier — including ones
/// where boundary packets are staged in the runtime (in flight between
/// shards), which the extended law counts as propagating, not lost.
#[test]
fn conservation_holds_mid_epoch_with_boundary_packets_staged() {
    let net = build(FabricCfg::tiny());
    let plan = net.graph.plan(3, 5, None);
    let mut ss = mtp_sim::ShardedSimulator::new(plan);
    ss.schedule_admin(fault_schedule(&net, 5));
    let mut saw_staged = false;
    let mut audits_with_staged = 0u32;
    // Steps shorter than a burst's fabric transit (~15 us) so plenty of
    // barriers land while cross-pod packets are in flight.
    let step = Duration::from_micros(7);
    let mut t = Time::ZERO + step;
    while t <= horizon() {
        ss.run_until(t);
        let (pkts, bytes) = ss.staged_boundary();
        if pkts > 0 {
            saw_staged = true;
            assert!(bytes > 0, "staged packets must carry bytes");
            audits_with_staged += 1;
        }
        ss.audit().assert_ok();
        t += step;
    }
    assert!(
        saw_staged,
        "the stepped run never caught a boundary packet in flight; \
         the mid-epoch half of this test never ran"
    );
    assert!(
        audits_with_staged >= 3,
        "too few mid-flight audits to be meaningful"
    );
    // And once more at completion, after the runtime has fully drained.
    assert!(!ss.run_until(Time(u64::MAX / 2)), "workload should drain");
    assert_eq!(ss.staged_boundary(), (0, 0));
    ss.audit().assert_ok();
}

/// Sharded runs are themselves deterministic: two identical sharded runs
/// (same shard count, same seed, same schedule) agree byte-for-byte.
#[test]
fn sharded_runs_are_reproducible() {
    let run = || {
        let net = build(FabricCfg::tiny());
        let admin = fault_schedule(&net, 9);
        run_sharded(&net, 4, 9, Some(TRACE_CAP), horizon(), admin).digest()
    };
    assert_eq!(run(), run());
}
