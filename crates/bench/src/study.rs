//! Shared measurement helpers for the failure/corruption studies.
//!
//! `fig_failover`, `fig_corruption`, and the `mtp-scenario` runner all
//! reduce a run to the same numbers: sorted message completion times,
//! completions inside a fault window, round-to-nearest percentiles, and
//! the damaged-frame total across a diamond's four path links. Keeping
//! one implementation here is what makes a scenario file's numbers
//! byte-comparable to its figure binary's.

use mtp_core::ScheduledMsg;
use mtp_faults::Diamond;
use mtp_sim::time::{Duration, Time};

/// `n` microseconds after the epoch.
pub fn us(n: u64) -> Time {
    Time::ZERO + Duration::from_micros(n)
}

/// Nearest-rank percentile over an already-sorted series (`p` in 0..=1).
/// NaN on empty input.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// The periodic workload every failure study submits: `count` messages of
/// `bytes`, one every `every_us`, as an MTP schedule.
pub fn mtp_periodic(count: u64, bytes: u64, every_us: u64) -> Vec<ScheduledMsg> {
    (0..count)
        .map(|i| ScheduledMsg::new(us(every_us * i), bytes as u32))
        .collect()
}

/// The same periodic workload as a TCP schedule.
pub fn tcp_periodic(count: u64, bytes: u64, every_us: u64) -> Vec<(Time, u64)> {
    (0..count).map(|i| (us(every_us * i), bytes)).collect()
}

/// Frames damaged in flight, summed over a diamond's four path links.
pub fn corrupted_frames(d: &Diamond) -> u64 {
    [d.a_fwd, d.a_rev, d.b_fwd, d.b_rev]
        .iter()
        .map(|&l| d.sim.link_stats(l).corrupted_pkts)
        .sum()
}

/// Completion-time summary of one contender's message records.
pub struct CompletionStats {
    /// Sorted message completion times, microseconds.
    pub mct_us: Vec<f64>,
    /// Messages that completed.
    pub completed: usize,
    /// Completions strictly inside the window passed to
    /// [`completion_stats`] (0 when no window was given).
    pub during_window: usize,
    /// Nearest-rank p50 of `mct_us`.
    pub p50_us: f64,
    /// Nearest-rank p99 of `mct_us`.
    pub p99_us: f64,
}

/// Summarize `(submitted, completed)` message records, counting
/// completions strictly inside `window_us` when given.
pub fn completion_stats(
    records: impl Iterator<Item = (Time, Option<Time>)>,
    window_us: Option<(u64, u64)>,
) -> CompletionStats {
    let mut mct_us = Vec::new();
    let mut completed = 0usize;
    let mut during_window = 0usize;
    for (submitted, done) in records {
        if let Some(t) = done {
            completed += 1;
            mct_us.push(t.since(submitted).as_micros_f64());
            if let Some((from, to)) = window_us {
                if t > us(from) && t < us(to) {
                    during_window += 1;
                }
            }
        }
    }
    mct_us.sort_by(f64::total_cmp);
    CompletionStats {
        p50_us: percentile(&mct_us, 0.50),
        p99_us: percentile(&mct_us, 0.99),
        mct_us,
        completed,
        during_window,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&s, 0.50), 3.0);
        assert_eq!(percentile(&s, 0.99), 5.0);
        assert!(percentile(&[], 0.5).is_nan());
    }

    #[test]
    fn window_counting_is_strict() {
        let recs = vec![
            (us(0), Some(us(100))), // at the window edge: excluded
            (us(0), Some(us(101))), // inside
            (us(0), Some(us(200))), // at the far edge: excluded
            (us(0), None),
        ];
        let s = completion_stats(recs.into_iter(), Some((100, 200)));
        assert_eq!(s.completed, 3);
        assert_eq!(s.during_window, 1);
    }
}
