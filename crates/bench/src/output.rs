//! Experiment output: stdout tables plus JSON records under `results/`.

use std::path::{Path, PathBuf};

use serde::Serialize;

/// A labelled experiment result written to `results/<name>.json`.
#[derive(Debug, Serialize)]
pub struct ExperimentRecord<T: Serialize> {
    /// Experiment id (e.g. "fig5").
    pub id: &'static str,
    /// What the paper's version of this artefact shows.
    pub paper_claim: &'static str,
    /// The measured data.
    pub data: T,
}

fn results_dir() -> PathBuf {
    // Walk up from the crate to the workspace root's results/.
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("results").is_dir() || dir.join("Cargo.toml").is_file() {
            let r = dir.join("results");
            std::fs::create_dir_all(&r).expect("create results dir");
            return r;
        }
        if !dir.pop() {
            let r = Path::new("results").to_path_buf();
            std::fs::create_dir_all(&r).expect("create results dir");
            return r;
        }
    }
}

/// Serialize `record` to `results/<id>.json` (pretty-printed) and return
/// the path.
pub fn write_json<T: Serialize>(record: &ExperimentRecord<T>) -> PathBuf {
    let path = results_dir().join(format!("{}.json", record.id));
    let json = serde_json::to_string_pretty(record).expect("serializable record");
    std::fs::write(&path, json).expect("write results file");
    path
}
