//! Parallel experiment driver.
//!
//! Simulations are strictly single-threaded for determinism, but
//! *independent seeds* are embarrassingly parallel: each worker thread
//! builds and runs its own `Simulator`. This module fans a seed list out
//! over threads and collects results in seed order, so a sweep's output is
//! as deterministic as a single run.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Re-export of the canonical implementation in
/// [`mtp_workload::stats`]; experiment binaries import it from here.
pub use mtp_workload::mean_std;

/// Run `f(seed)` for every seed, in parallel across at most `workers`
/// threads, returning results in the same order as `seeds`. A `workers`
/// of 0 (e.g. from a miscomputed `available_parallelism() - N`) is
/// clamped to 1 rather than deadlocking or panicking.
///
/// `f` must build everything it needs inside the call (the `Simulator` is
/// not `Send`, and must not be): only the seed crosses the thread
/// boundary.
///
/// Seeds are claimed from a shared atomic cursor (dynamic load
/// balancing — a slow seed doesn't idle the other workers), and each
/// worker accumulates `(index, result)` pairs privately, handing its
/// chunk back through the thread's join handle. No locks, no channels:
/// result order is restored by index after all workers finish.
pub fn run_seeds<R, F>(seeds: &[u64], workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    let workers = workers.max(1);
    let n = seeds.len();
    let cursor = AtomicUsize::new(0);

    let mut chunks: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(n))
            .map(|_| {
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || {
                    let mut chunk: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        chunk.push((i, f(seeds[i])));
                    }
                    chunk
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for chunk in chunks.drain(..) {
        for (i, r) in chunk {
            debug_assert!(results[i].is_none(), "seed index {i} produced twice");
            results[i] = Some(r);
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every seed ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_seed_order() {
        let seeds: Vec<u64> = (0..32).collect();
        let out = run_seeds(&seeds, 8, |s| s * 10);
        assert_eq!(out, seeds.iter().map(|s| s * 10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let seeds: Vec<u64> = (0..8).collect();
        let out = run_seeds(&seeds, 0, |s| s * 3);
        assert_eq!(out, seeds.iter().map(|s| s * 3).collect::<Vec<_>>());
        assert!(run_seeds::<u64, _>(&[], 0, |s| s).is_empty());
    }

    #[test]
    fn more_workers_than_seeds() {
        let out = run_seeds(&[3, 1], 16, |s| s + 1);
        assert_eq!(out, vec![4, 2]);
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Later seeds finish first; indices must still line up.
        let seeds: Vec<u64> = (0..24).collect();
        let out = run_seeds(&seeds, 6, |s| {
            std::thread::sleep(std::time::Duration::from_micros((24 - s) * 50));
            s
        });
        assert_eq!(out, seeds);
    }

    #[test]
    fn parallel_simulations_are_independent() {
        use mtp_sim::time::{Bandwidth, Duration};
        use mtp_sim::{Ctx, Headers, Node, Packet, PortId, Simulator};
        struct Echoer(u32);
        impl Node for Echoer {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                for _ in 0..self.0 {
                    ctx.send(PortId(0), Packet::new(Headers::Raw, 100));
                }
            }
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
        }
        #[derive(Default)]
        struct Count(u32);
        impl Node for Count {
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {
                self.0 += 1;
            }
        }
        let run = |seed: u64| {
            let mut sim = Simulator::new(seed);
            let a = sim.add_node(Box::new(Echoer(seed as u32 % 50 + 1)));
            let b = sim.add_node(Box::new(Count::default()));
            sim.connect_symmetric(
                a,
                PortId(0),
                b,
                PortId(0),
                Bandwidth::from_gbps(1),
                Duration::from_micros(1),
                1024,
            );
            sim.run();
            sim.node_as::<Count>(b).0
        };
        let seeds: Vec<u64> = (0..16).collect();
        let parallel = run_seeds(&seeds, 8, run);
        let serial: Vec<u32> = seeds.iter().map(|&s| run(s)).collect();
        assert_eq!(parallel, serial, "parallelism must not change results");
    }

    #[test]
    fn leafspine_parallel_matches_serial() {
        // Bench-sized check on a real topology: the full 4×4 leaf-spine
        // incast digest — event count, final clock, every link counter,
        // every trace event — must be identical whether seeds run serially
        // or fanned out across workers.
        let seeds: Vec<u64> = (1..=4).collect();
        let serial: Vec<String> = seeds
            .iter()
            .map(|&s| crate::hotpath::leafspine_incast(s).digest)
            .collect();
        let parallel = run_seeds(&seeds, 4, |s| crate::hotpath::leafspine_incast(s).digest);
        assert_eq!(parallel, serial, "worker threads must not perturb runs");
    }

    #[test]
    fn mean_std_math() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[5.0]).1, 0.0);
    }
}
