//! Parallel experiment driver.
//!
//! Simulations are strictly single-threaded for determinism, but
//! *independent seeds* are embarrassingly parallel: each worker thread
//! builds and runs its own `Simulator`. This module fans a seed list out
//! over threads and collects results in seed order, so a sweep's output is
//! as deterministic as a single run.

use crossbeam::channel;
use parking_lot::Mutex;

/// Run `f(seed)` for every seed, in parallel across at most `workers`
/// threads, returning results in the same order as `seeds`.
///
/// `f` must build everything it needs inside the call (the `Simulator` is
/// not `Send`, and must not be): only the seed crosses the thread
/// boundary.
pub fn run_seeds<R, F>(seeds: &[u64], workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    assert!(workers > 0);
    let n = seeds.len();
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    let (tx, rx) = channel::unbounded::<(usize, u64)>();
    for (i, &s) in seeds.iter().enumerate() {
        tx.send((i, s)).expect("unbounded channel");
    }
    drop(tx);

    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            let rx = rx.clone();
            let results = &results;
            let f = &f;
            scope.spawn(move || {
                while let Ok((i, seed)) = rx.recv() {
                    let r = f(seed);
                    results.lock()[i] = Some(r);
                }
            });
        }
    });

    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every seed ran"))
        .collect()
}

/// Mean and sample standard deviation of a slice.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_seed_order() {
        let seeds: Vec<u64> = (0..32).collect();
        let out = run_seeds(&seeds, 8, |s| s * 10);
        assert_eq!(out, seeds.iter().map(|s| s * 10).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_simulations_are_independent() {
        use mtp_sim::time::{Bandwidth, Duration};
        use mtp_sim::{Ctx, Headers, Node, Packet, PortId, Simulator};
        struct Echoer(u32);
        impl Node for Echoer {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                for _ in 0..self.0 {
                    ctx.send(PortId(0), Packet::new(Headers::Raw, 100));
                }
            }
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
        }
        #[derive(Default)]
        struct Count(u32);
        impl Node for Count {
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {
                self.0 += 1;
            }
        }
        let run = |seed: u64| {
            let mut sim = Simulator::new(seed);
            let a = sim.add_node(Box::new(Echoer(seed as u32 % 50 + 1)));
            let b = sim.add_node(Box::new(Count::default()));
            sim.connect_symmetric(
                a,
                PortId(0),
                b,
                PortId(0),
                Bandwidth::from_gbps(1),
                Duration::from_micros(1),
                1024,
            );
            sim.run();
            sim.node_as::<Count>(b).0
        };
        let seeds: Vec<u64> = (0..16).collect();
        let parallel = run_seeds(&seeds, 8, run);
        let serial: Vec<u32> = seeds.iter().map(|&s| run(s)).collect();
        assert_eq!(parallel, serial, "parallelism must not change results");
    }

    #[test]
    fn mean_std_math() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[5.0]).1, 0.0);
    }
}
