//! Multi-pod fabric workload for the sharded engine.
//!
//! A parameterized Clos-of-pods: each pod is a leaf–spine fabric
//! (hosts → leaves → pod spines), and spines of equal index form a full
//! mesh *between* pods. The pod is the partition unit — intra-pod links
//! are always shard-interior, and only the longer spine–spine inter-pod
//! links are ever cut, so the conservative lookahead is their (large)
//! propagation delay.
//!
//! The traffic is a deterministic all-to-all message pattern over
//! MTP-headered packets routed by an opaque destination tag
//! ([`mtp_sim::AppData::Opaque`]). The tag survives wire corruption, so a
//! bit-flipped or truncated packet still reaches its destination host,
//! which detects the damage with [`mtp_sim::sanitize`] and counts it —
//! corruption schedules exercise the full detect-at-the-edge path under
//! sharding.
//!
//! Every link's propagation delay carries a unique picosecond-level skew
//! so no two trace events of the same kind can coincide — the digest
//! comparison between sharded and monolithic runs is then exact, not
//! modulo tie-breaks.

use std::sync::Arc;

use mtp_net::TopoGraph;
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::{
    monolithic_digest, sanitize, AdminDriver, AdminEvent, AppData, Ctx, Headers, LinkCfg, Node,
    NodeAuditCounters, Packet, PortId, ShardedSimulator, Simulator,
};
use mtp_wire::{EntityId, MsgId, MtpHeader, PktNum, PktType};

/// Shape and workload intensity of a fabric run.
#[derive(Debug, Clone, Copy)]
pub struct FabricCfg {
    /// Number of pods (partition units).
    pub pods: usize,
    /// Leaves per pod.
    pub leaves_per_pod: usize,
    /// Hosts per leaf.
    pub hosts_per_leaf: usize,
    /// Spines per pod (each index forms an inter-pod mesh).
    pub spines_per_pod: usize,
    /// Messages each host sends.
    pub msgs_per_host: u32,
    /// Packets per message.
    pub pkts_per_msg: u32,
    /// Wire length of each data packet.
    pub payload: u32,
    /// Per-host start stagger (host `a` starts at `a * stagger_ns`).
    pub stagger_ns: u64,
    /// Gap between a host's consecutive messages.
    pub msg_gap_ns: u64,
}

impl FabricCfg {
    /// Small instance for integration tests: 3 pods, 12 hosts.
    pub fn tiny() -> FabricCfg {
        FabricCfg {
            pods: 3,
            leaves_per_pod: 2,
            hosts_per_leaf: 2,
            spines_per_pod: 2,
            msgs_per_host: 4,
            pkts_per_msg: 6,
            payload: 900,
            stagger_ns: 300,
            msg_gap_ns: 50_000,
        }
    }

    /// Perf-gate instance: 8 pods, 256 hosts, enough traffic to make the
    /// engine the bottleneck.
    pub fn bench() -> FabricCfg {
        FabricCfg {
            pods: 8,
            leaves_per_pod: 4,
            hosts_per_leaf: 8,
            spines_per_pod: 4,
            msgs_per_host: 4,
            pkts_per_msg: 16,
            payload: 1100,
            stagger_ns: 500,
            msg_gap_ns: 200_000,
        }
    }

    /// Figure-scale instance: 8 pods, ~10k endpoints.
    pub fn figure() -> FabricCfg {
        FabricCfg {
            pods: 8,
            leaves_per_pod: 16,
            hosts_per_leaf: 80,
            spines_per_pod: 4,
            msgs_per_host: 2,
            pkts_per_msg: 6,
            payload: 1100,
            stagger_ns: 400,
            msg_gap_ns: 400_000,
        }
    }

    /// Total host count.
    pub fn num_hosts(&self) -> usize {
        self.pods * self.leaves_per_pod * self.hosts_per_leaf
    }

    fn hosts_per_pod(&self) -> usize {
        self.leaves_per_pod * self.hosts_per_leaf
    }
}

// ------------------------------------------------------------------ nodes

/// The deterministic destination of host `addr`'s message `m`: a stride
/// walk over every other host, so traffic is all-to-all-ish and most of
/// it crosses pods.
fn dest_of(cfg: &FabricCfg, addr: usize, m: u32) -> usize {
    let n = cfg.num_hosts();
    let d = (addr + 1 + (m as usize) * 7919) % n;
    if d == addr {
        (d + 1) % n
    } else {
        d
    }
}

/// End host: sends its message schedule, sanitizes and counts what
/// arrives.
struct FabricHost {
    cfg: FabricCfg,
    addr: usize,
    rx_pkts: u64,
    rx_bytes: u64,
    rx_dirty: u64,
    malformed: u64,
}

impl FabricHost {
    fn packet(&self, m: u32, p: u32) -> Packet {
        let h = MtpHeader {
            src_port: 7,
            dst_port: 9,
            pkt_type: PktType::Data,
            msg_id: MsgId((self.addr as u64) << 20 | m as u64),
            entity: EntityId(self.addr as u16),
            msg_len_pkts: self.cfg.pkts_per_msg,
            msg_len_bytes: self.cfg.pkts_per_msg * self.cfg.payload,
            pkt_num: PktNum(p),
            pkt_len: self.cfg.payload as u16,
            pkt_offset: p * self.cfg.payload,
            ..MtpHeader::default()
        };
        // Vary sizes slightly so serialization times differ per packet.
        let len = self.cfg.payload + (p % 4) * 40;
        Packet::new(Headers::Mtp(Box::new(h)), len)
            .with_app(AppData::Opaque(dest_of(&self.cfg, self.addr, m) as u64))
    }
}

impl Node for FabricHost {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for m in 0..self.cfg.msgs_per_host {
            let at = Time::ZERO
                + Duration::from_nanos(
                    self.addr as u64 * self.cfg.stagger_ns + m as u64 * self.cfg.msg_gap_ns,
                );
            ctx.set_timer_at(at, m as u64);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        for p in 0..self.cfg.pkts_per_msg {
            let pkt = self.packet(token as u32, p);
            ctx.send(PortId(0), pkt);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, mut pkt: Packet) {
        if sanitize(&mut pkt).is_err() {
            self.malformed += 1;
            ctx.trace_malformed(&pkt, port);
            return;
        }
        self.rx_pkts += 1;
        self.rx_bytes += pkt.wire_len as u64;
        if pkt.payload_dirty {
            self.rx_dirty += 1;
        }
    }

    fn audit_counters(&self, out: &mut NodeAuditCounters) {
        out.malformed += self.malformed;
    }

    fn name(&self) -> &str {
        "fabric-host"
    }
}

/// Leaf switch: hosts on ports `0..H`, pod spines on ports `H..H+S`.
/// Routes by the opaque destination tag (so even mangled packets keep
/// flowing); sprays cross-leaf traffic over spines by packet id.
struct FabricLeaf {
    cfg: FabricCfg,
    pod: usize,
    leaf: usize,
}

impl Node for FabricLeaf {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _: PortId, pkt: Packet) {
        let Some(AppData::Opaque(dst)) = pkt.app else {
            panic!("fabric packet without an Opaque destination tag");
        };
        let dst = dst as usize;
        let h = self.cfg.hosts_per_leaf;
        let base = (self.pod * self.cfg.leaves_per_pod + self.leaf) * h;
        if (base..base + h).contains(&dst) {
            ctx.send(PortId(dst - base), pkt);
        } else {
            let spine = (pkt.id.0 % self.cfg.spines_per_pod as u64) as usize;
            ctx.send(PortId(h + spine), pkt);
        }
    }

    fn name(&self) -> &str {
        "fabric-leaf"
    }
}

/// Pod spine: pod leaves on ports `0..L`, equal-index spines of the other
/// pods on ports `L..L+P-1`.
struct FabricSpine {
    cfg: FabricCfg,
    pod: usize,
}

impl Node for FabricSpine {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _: PortId, pkt: Packet) {
        let Some(AppData::Opaque(dst)) = pkt.app else {
            panic!("fabric packet without an Opaque destination tag");
        };
        let dst = dst as usize;
        let pod = dst / self.cfg.hosts_per_pod();
        if pod == self.pod {
            let leaf = (dst / self.cfg.hosts_per_leaf) % self.cfg.leaves_per_pod;
            ctx.send(PortId(leaf), pkt);
        } else {
            let slot = if pod < self.pod { pod } else { pod - 1 };
            ctx.send(PortId(self.cfg.leaves_per_pod + slot), pkt);
        }
    }

    fn name(&self) -> &str {
        "fabric-spine"
    }
}

// ---------------------------------------------------------------- wiring

/// A built fabric description, plus the global ids a test or experiment
/// needs to aim faults at specific layers.
pub struct FabricNet {
    /// The abstract topology (partition with [`TopoGraph::plan`]).
    pub graph: Arc<TopoGraph>,
    /// Its shape.
    pub cfg: FabricCfg,
    /// Global node id of every host, indexed by host address.
    pub hosts: Vec<usize>,
    /// Link-pair ids of host↔leaf links.
    pub host_pairs: Vec<usize>,
    /// Link-pair ids of intra-pod leaf↔spine links.
    pub up_pairs: Vec<usize>,
    /// Link-pair ids of inter-pod spine↔spine links (the cut candidates).
    pub cross_pairs: Vec<usize>,
}

/// Intra-pod propagation delay (before per-link skew).
const INTRA_DELAY_PS: u64 = 1_000_000; // 1 us
/// Inter-pod propagation delay (before per-link skew) — the lookahead.
const INTER_DELAY_PS: u64 = 5_000_000; // 5 us

fn link_cfg(delay_ps: u64) -> impl Fn() -> LinkCfg + Send + Sync + 'static {
    move || LinkCfg::drop_tail(Bandwidth::from_gbps(100), Duration(delay_ps), 64)
}

/// Build the abstract fabric for `cfg`.
pub fn build(cfg: FabricCfg) -> FabricNet {
    let mut g = TopoGraph::new();
    let mut hosts = Vec::with_capacity(cfg.num_hosts());
    let mut host_pairs = Vec::new();
    let mut up_pairs = Vec::new();
    let mut cross_pairs = Vec::new();
    // Unique ps-level skew per directed link: no two links share a delay.
    let mut skew = 0u64;
    let mut next = |base: u64| {
        skew += 2;
        (base + skew, base + skew + 1)
    };

    let mut leaves = vec![Vec::new(); cfg.pods]; // [pod][leaf] -> node id
    let mut spines = vec![Vec::new(); cfg.pods]; // [pod][s] -> node id
    for pod in 0..cfg.pods {
        for leaf in 0..cfg.leaves_per_pod {
            let c = cfg;
            let leaf_id = g.add_node(pod, move || Box::new(FabricLeaf { cfg: c, pod, leaf }));
            for i in 0..cfg.hosts_per_leaf {
                let addr = (pod * cfg.leaves_per_pod + leaf) * cfg.hosts_per_leaf + i;
                let host_id = g.add_node(pod, move || {
                    Box::new(FabricHost {
                        cfg: c,
                        addr,
                        rx_pkts: 0,
                        rx_bytes: 0,
                        rx_dirty: 0,
                        malformed: 0,
                    })
                });
                hosts.push(host_id);
                let (d_ab, d_ba) = next(INTRA_DELAY_PS);
                host_pairs.push(g.connect(
                    host_id,
                    PortId(0),
                    leaf_id,
                    PortId(i),
                    link_cfg(d_ab),
                    link_cfg(d_ba),
                ));
            }
            leaves[pod].push(leaf_id);
        }
        for _s in 0..cfg.spines_per_pod {
            let c = cfg;
            let spine_id = g.add_node(pod, move || Box::new(FabricSpine { cfg: c, pod }));
            spines[pod].push(spine_id);
        }
    }
    // Intra-pod leaf <-> spine.
    for pod in 0..cfg.pods {
        for (s, &spine_id) in spines[pod].iter().enumerate() {
            for (l, &leaf_id) in leaves[pod].iter().enumerate() {
                let (d_ab, d_ba) = next(INTRA_DELAY_PS);
                up_pairs.push(g.connect(
                    leaf_id,
                    PortId(cfg.hosts_per_leaf + s),
                    spine_id,
                    PortId(l),
                    link_cfg(d_ab),
                    link_cfg(d_ba),
                ));
            }
        }
    }
    // Inter-pod mesh at each spine index (`s` indexes two pods' spine
    // lists at once, so a range loop is the clear spelling).
    #[allow(clippy::needless_range_loop)]
    for s in 0..cfg.spines_per_pod {
        for p in 0..cfg.pods {
            for q in (p + 1)..cfg.pods {
                let (d_ab, d_ba) = next(INTER_DELAY_PS);
                cross_pairs.push(g.connect(
                    spines[p][s],
                    PortId(cfg.leaves_per_pod + (q - 1)),
                    spines[q][s],
                    PortId(cfg.leaves_per_pod + p),
                    link_cfg(d_ab),
                    link_cfg(d_ba),
                ));
            }
        }
    }
    FabricNet {
        graph: Arc::new(g),
        cfg,
        hosts,
        host_pairs,
        up_pairs,
        cross_pairs,
    }
}

// ----------------------------------------------------------------- runs

/// A deterministic fault + corruption schedule over the fabric, in global
/// ids, sized to bite while traffic is in flight. The same schedule is
/// replayed by [`AdminDriver`] on the monolithic run and by
/// [`ShardedSimulator::schedule_admin`] on the sharded one.
pub fn fault_schedule(net: &FabricNet, seed: u64) -> Vec<AdminEvent> {
    use mtp_sim::{DirLinkId, LinkFailMode, NodeId};
    let at = |us: u64| Time::ZERO + Duration::from_micros(us);
    let pick = |pairs: &[usize], k: u64| -> DirLinkId {
        let pair =
            pairs[(seed.wrapping_mul(2654435761).wrapping_add(k) % pairs.len() as u64) as usize];
        DirLinkId(2 * pair + ((seed ^ k) % 2) as usize)
    };
    let victim_host = net.hosts[(seed as usize * 31 + 7) % net.hosts.len()];
    vec![
        // Damage structured headers on an access link and an uplink.
        AdminEvent {
            at: at(20),
            op: mtp_sim::AdminOp::BitflipBurst {
                link: pick(&net.host_pairs, 1),
                // Enough flips that some land in the ~50-byte sealed
                // header (most of the frame is payload): the malformed
                // path at the receiving host is exercised, not just
                // payload_dirty.
                pkts: 6,
                flips: 64,
                seed: seed ^ 0xb17,
            },
        },
        AdminEvent {
            at: at(35),
            op: mtp_sim::AdminOp::TruncateBurst {
                link: pick(&net.up_pairs, 2),
                pkts: 4,
                seed: seed ^ 0x7c4,
            },
        },
        // Background random corruption on an inter-pod link.
        AdminEvent {
            at: at(10),
            op: mtp_sim::AdminOp::SetCorruptRate {
                link: pick(&net.cross_pairs, 3),
                ppm: 200_000,
                flips: 2,
                seed: seed ^ 0x5eed,
            },
        },
        // A link failure and recovery on another inter-pod link.
        AdminEvent {
            at: at(40),
            op: mtp_sim::AdminOp::FailLink {
                link: pick(&net.cross_pairs, 4),
                mode: LinkFailMode::Blackhole,
            },
        },
        AdminEvent {
            at: at(120),
            op: mtp_sim::AdminOp::RestoreLink {
                link: pick(&net.cross_pairs, 4),
            },
        },
        // A host crashes mid-run and comes back.
        AdminEvent {
            at: at(60),
            op: mtp_sim::AdminOp::CrashNode {
                node: NodeId(victim_host),
            },
        },
        AdminEvent {
            at: at(150),
            op: mtp_sim::AdminOp::RestartNode {
                node: NodeId(victim_host),
            },
        },
    ]
}

/// Run the fabric monolithically (single engine) to `horizon`, replaying
/// `admin` at exact times, and return the finished simulator.
pub fn run_serial(
    net: &FabricNet,
    seed: u64,
    trace_cap: Option<usize>,
    horizon: Time,
    admin: Vec<AdminEvent>,
) -> Simulator {
    let mut sim = net.graph.build_monolithic(seed, trace_cap);
    let mut driver = AdminDriver::new(admin);
    driver.run_until(&mut sim, horizon);
    sim
}

/// Run the fabric sharded `shards` ways to `horizon` with the same admin
/// schedule, and return the sharded runtime (for digest/audit/snapshot).
pub fn run_sharded(
    net: &FabricNet,
    shards: usize,
    seed: u64,
    trace_cap: Option<usize>,
    horizon: Time,
    admin: Vec<AdminEvent>,
) -> ShardedSimulator {
    let plan = net.graph.plan(shards, seed, trace_cap);
    let mut ss = ShardedSimulator::new(plan);
    ss.schedule_admin(admin);
    ss.run_until(horizon);
    ss
}

/// Digest of a monolithic run (same canonical form as
/// [`ShardedSimulator::digest`]).
pub fn serial_digest(sim: &Simulator) -> String {
    monolithic_digest(sim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_runs_and_delivers() {
        let net = build(FabricCfg::tiny());
        let sim = run_serial(
            &net,
            1,
            None,
            Time::ZERO + Duration::from_millis(2),
            Vec::new(),
        );
        mtp_sim::assert_conservation(&sim);
        let mut rx = 0u64;
        for &h in &net.hosts {
            rx += sim.node_as::<FabricHost>(mtp_sim::NodeId(h)).rx_pkts;
        }
        let sent =
            net.cfg.num_hosts() as u64 * net.cfg.msgs_per_host as u64 * net.cfg.pkts_per_msg as u64;
        assert!(rx > 0, "no packets delivered");
        assert!(rx <= sent);
    }

    #[test]
    fn corruption_is_detected_at_hosts() {
        let net = build(FabricCfg::tiny());
        let sim = run_serial(
            &net,
            2,
            None,
            Time::ZERO + Duration::from_millis(2),
            fault_schedule(&net, 2),
        );
        mtp_sim::assert_conservation(&sim);
        let mut malformed = 0u64;
        for &h in &net.hosts {
            malformed += sim.node_as::<FabricHost>(mtp_sim::NodeId(h)).malformed;
        }
        assert!(
            malformed > 0,
            "the corruption schedule must damage at least one packet"
        );
    }
}
