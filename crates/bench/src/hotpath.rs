//! Fixed-seed engine workloads for the perf-regression gate.
//!
//! Three workloads stress the three hot paths of the discrete-event
//! engine:
//!
//! * [`timer_churn`] — timer scheduling and cancellation with no packets
//!   at all: the event-heap and timer-cancel paths in isolation;
//! * [`forward_chain`] — packets relayed down a chain of store-and-forward
//!   hops: the `send`/`TxDone`/`Deliver` path, with MTP headers so header
//!   allocation shows up;
//! * [`leafspine_incast`] — a 4×4 Clos running a full MTP incast: the
//!   engine under a realistic mixed event population (data, ACKs, timers,
//!   ECN queues).
//!
//! Each workload returns a [`HotpathRun`] whose `digest` is a
//! line-oriented dump of everything observable about the run — event
//! count, final clock, every link's counters, every retained trace
//! event. The `perfgate` binary compares digests against committed
//! golden files: an engine change that alters any event outcome, any
//! ordering, or any RNG draw shows up as a byte diff.

use std::fmt::Write as _;

use mtp_core::{MtpConfig, MtpSenderNode, MtpSinkNode, ScheduledMsg};
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::{Ctx, Headers, Node, Packet, PortId, Simulator};
use mtp_wire::{EntityId, MtpHeader, PktNum, PktType};

use crate::topo::{leaf_spine, ls_addr, PathSpec};

/// Outcome of one hotpath workload run.
pub struct HotpathRun {
    /// Events processed (calls to `Simulator::step` that returned true).
    pub events: u64,
    /// Deterministic dump of the run's observable state.
    pub digest: String,
}

/// Drive `sim` to completion (or `until`, if given); returns the event
/// count reported by the engine.
fn drive(sim: &mut Simulator, until: Option<Time>) -> u64 {
    match until {
        None => sim.run(),
        Some(t) => {
            sim.run_until(t);
        }
    }
    sim.events_processed()
}

/// Render everything observable about a finished run.
fn digest(sim: &Simulator, events: u64) -> String {
    let mut out = String::new();
    writeln!(out, "events={} final_now={}", events, sim.now().0).expect("write to String");
    for i in 0..sim.num_links() {
        let s = sim.link_stats(mtp_sim::DirLinkId(i));
        writeln!(
            out,
            "link {i}: offered={} tx={} bytes={} dropped={} marked={} trimmed={} maxq={}",
            s.offered_pkts,
            s.tx_pkts,
            s.tx_bytes,
            s.dropped_pkts,
            s.marked_pkts,
            s.trimmed_pkts,
            s.max_qlen_pkts
        )
        .expect("write to String");
    }
    for (i, e) in sim.trace_events().iter().enumerate() {
        writeln!(
            out,
            "trace {i}: t={} pkt={} node={} port={} kind={:?}",
            e.time.0, e.pkt.0, e.node.0, e.port.0, e.kind
        )
        .expect("write to String");
    }
    out
}

// ---------------------------------------------------------------- timers

/// Arms a tree of timers: each fire re-arms two children and immediately
/// cancels one of them, so every fire exercises one schedule-and-fire and
/// one schedule-and-cancel. `fired` counts real fires; cancelled timers
/// firing would double-count and corrupt the digest.
struct TimerChurnNode {
    budget: u64,
    fired: u64,
    cancelled_count: u64,
}

impl Node for TimerChurnNode {
    fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for k in 0..64u64 {
            ctx.set_timer(Duration::from_nanos(100 + k * 7), k);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        self.fired += 1;
        if self.fired >= self.budget {
            return;
        }
        // Keep ~64 live timers: re-arm one child, plus one that is
        // immediately cancelled (the cancel hot path).
        let d1 = 50 + (token.wrapping_mul(2654435761) % 900);
        let d2 = 50 + (token.wrapping_mul(40503) % 900);
        ctx.set_timer(Duration::from_nanos(d1), token.wrapping_add(1));
        let victim = ctx.set_timer(Duration::from_nanos(d2), token ^ 0xff);
        ctx.cancel_timer(victim);
        self.cancelled_count += 1;
    }

    fn name(&self) -> &str {
        "timer-churn"
    }
}

/// Timer-churn workload: `budget` timer fires, one cancel per fire.
pub fn timer_churn(seed: u64, budget: u64) -> HotpathRun {
    let mut sim = Simulator::new(seed);
    let n = sim.add_node(Box::new(TimerChurnNode {
        budget,
        fired: 0,
        cancelled_count: 0,
    }));
    let events = drive(&mut sim, None);
    let mut d = digest(&sim, events);
    let node = sim.node_as::<TimerChurnNode>(n);
    writeln!(d, "fired={} cancelled={}", node.fired, node.cancelled_count)
        .expect("write to String");
    HotpathRun { events, digest: d }
}

// ---------------------------------------------------------- wheel stress

/// Dense RTO churn: a driver timer ticks every 100 ns and reschedules a
/// batch of per-connection retransmission timers — cancel the old
/// deadline, arm a new one a full RTO out. This is the pattern every
/// transport endpoint generates (each delivery pushes the RTO forward),
/// and it is the event queue's worst case: cancelled deadlines live ~1 ms
/// (10 000 ticks), so hundreds of thousands of tombstones accumulate and
/// every push/pop in a comparison-ordered heap pays a deep, cache-hostile
/// sift through them. A timing wheel does the same work with O(1) slot
/// ops regardless of the tombstone population.
struct RtoChurnNode {
    ticks: u64,
    budget: u64,
    cursor: usize,
    rto_ids: Vec<Option<mtp_sim::TimerId>>,
    rescheduled: u64,
    fired_rtos: u64,
}

impl RtoChurnNode {
    const DRIVER: u64 = u64::MAX;
    const CONNS: usize = 4096;
    const BATCH: usize = 32;
    const TICK_NS: u64 = 100;
    const RTO_US: u64 = 1000;
}

impl Node for RtoChurnNode {
    fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for conn in 0..Self::CONNS {
            let id = ctx.set_timer(Duration::from_micros(Self::RTO_US), conn as u64);
            self.rto_ids[conn] = Some(id);
        }
        ctx.set_timer(Duration::from_nanos(Self::TICK_NS), Self::DRIVER);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != Self::DRIVER {
            // An RTO actually expired (only in the drain phase, once the
            // driver stops pushing deadlines forward).
            self.fired_rtos += 1;
            self.rto_ids[token as usize] = None;
            return;
        }
        self.ticks += 1;
        for _ in 0..Self::BATCH {
            let conn = self.cursor;
            self.cursor = (self.cursor + 1) % Self::CONNS;
            if let Some(old) = self.rto_ids[conn].take() {
                ctx.cancel_timer(old);
            }
            let id = ctx.set_timer(Duration::from_micros(Self::RTO_US), conn as u64);
            self.rto_ids[conn] = Some(id);
            self.rescheduled += 1;
        }
        if self.ticks < self.budget {
            ctx.set_timer(Duration::from_nanos(Self::TICK_NS), Self::DRIVER);
        }
    }

    fn name(&self) -> &str {
        "rto-churn"
    }
}

/// Wheel-stress workload: `ticks` driver ticks of batched RTO
/// reschedule/cancel churn, then a drain phase where every surviving
/// deadline fires.
pub fn wheel_stress(seed: u64, ticks: u64) -> HotpathRun {
    let mut sim = Simulator::new(seed);
    let n = sim.add_node(Box::new(RtoChurnNode {
        ticks: 0,
        budget: ticks,
        cursor: 0,
        rto_ids: vec![None; RtoChurnNode::CONNS],
        rescheduled: 0,
        fired_rtos: 0,
    }));
    let events = drive(&mut sim, None);
    let mut d = digest(&sim, events);
    let node = sim.node_as::<RtoChurnNode>(n);
    writeln!(
        d,
        "ticks={} rescheduled={} fired_rtos={}",
        node.ticks, node.rescheduled, node.fired_rtos
    )
    .expect("write to String");
    HotpathRun { events, digest: d }
}

// ----------------------------------------------------------------- chain

/// Sends `n` MTP-headered packets at start, then stops.
struct ChainSource {
    n: u32,
}

fn chain_packet(i: u32) -> Packet {
    let h = MtpHeader {
        src_port: 7,
        dst_port: 9,
        pkt_type: PktType::Data,
        msg_id: mtp_wire::MsgId(1),
        entity: EntityId(1),
        pkt_num: PktNum(i),
        pkt_len: 1400,
        ..MtpHeader::default()
    };
    // Vary sizes so serialization times differ and the heap reorders.
    Packet::new(Headers::Mtp(Box::new(h)), 600 + (i % 5) * 220)
}

impl Node for ChainSource {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..self.n {
            ctx.send(PortId(0), chain_packet(i));
        }
    }
    fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
    fn name(&self) -> &str {
        "chain-source"
    }
}

/// Forwards everything arriving on port 0 out port 1.
struct ChainRelay;

impl Node for ChainRelay {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, pkt: Packet) {
        ctx.send(PortId(1), pkt);
    }
    fn name(&self) -> &str {
        "chain-relay"
    }
}

/// Counts and byte-sums what arrives at the end of the chain.
#[derive(Default)]
struct ChainSink {
    pkts: u64,
    bytes: u64,
}

impl Node for ChainSink {
    fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, pkt: Packet) {
        self.pkts += 1;
        self.bytes += pkt.wire_len as u64;
    }
    fn name(&self) -> &str {
        "chain-sink"
    }
}

/// Packet-forwarding-chain workload: `pkts` packets traverse `hops`
/// store-and-forward relays.
pub fn forward_chain(seed: u64, hops: usize, pkts: u32) -> HotpathRun {
    let mut sim = Simulator::new(seed);
    sim.enable_trace(4096);
    let src = sim.add_node(Box::new(ChainSource { n: pkts }));
    let relays: Vec<_> = (0..hops)
        .map(|_| sim.add_node(Box::new(ChainRelay)))
        .collect();
    let sink = sim.add_node(Box::new(ChainSink::default()));

    let rate = Bandwidth::from_gbps(100);
    let delay = Duration::from_nanos(500);
    // Queue deep enough that the initial burst is never tail-dropped:
    // every offered packet reaches the sink.
    let cap = pkts as usize + 8;
    let mut prev = (src, PortId(0));
    for &r in &relays {
        sim.connect_symmetric(prev.0, prev.1, r, PortId(0), rate, delay, cap);
        prev = (r, PortId(1));
    }
    sim.connect_symmetric(prev.0, prev.1, sink, PortId(0), rate, delay, cap);

    let events = drive(&mut sim, None);
    let mut d = digest(&sim, events);
    let s = sim.node_as::<ChainSink>(sink);
    writeln!(d, "sink pkts={} bytes={}", s.pkts, s.bytes).expect("write to String");
    HotpathRun { events, digest: d }
}

// ------------------------------------------------------------- leafspine

/// Leaf-spine incast workload: every host except the target runs an MTP
/// sender aimed at host 0 of leaf 0; the fabric is a 4×4 Clos with ECN
/// queues. Exercises the engine under the full protocol stack.
pub fn leafspine_incast(seed: u64) -> HotpathRun {
    const LEAVES: usize = 4;
    const SPINES: usize = 4;
    const HOSTS_PER_LEAF: usize = 4;
    let target = ls_addr(0, HOSTS_PER_LEAF, 0);

    let mut ls = leaf_spine(
        seed,
        LEAVES,
        SPINES,
        HOSTS_PER_LEAF,
        |leaf, i, addr| {
            if addr == target {
                Box::new(MtpSinkNode::new(addr, Duration::from_micros(100)))
            } else {
                let k = (leaf * HOSTS_PER_LEAF + i) as u64;
                // 6 messages of 30 KB each, staggered 2 us apart per host.
                let sched: Vec<ScheduledMsg> = (0..6)
                    .map(|m| {
                        ScheduledMsg::new(
                            Time::ZERO + Duration::from_micros(2 * k + 10 * m),
                            30 * 1024,
                        )
                    })
                    .collect();
                Box::new(MtpSenderNode::new(
                    MtpConfig::default(),
                    addr,
                    target,
                    EntityId(addr),
                    (k + 1) << 40,
                    sched,
                ))
            }
        },
        |_leaf| mtp_net::Strategy::Ecmp,
        PathSpec::new(Bandwidth::from_gbps(100), Duration::from_micros(1)),
        PathSpec::new(Bandwidth::from_gbps(100), Duration::from_micros(1)),
    );
    ls.sim.enable_trace(4096);

    let events = drive(&mut ls.sim, Some(Time::ZERO + Duration::from_millis(5)));
    let d = digest(&ls.sim, events);
    HotpathRun { events, digest: d }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        assert_eq!(timer_churn(1, 2_000).digest, timer_churn(1, 2_000).digest);
        assert_eq!(
            forward_chain(1, 4, 200).digest,
            forward_chain(1, 4, 200).digest
        );
        assert_eq!(wheel_stress(1, 500).digest, wheel_stress(1, 500).digest);
    }

    #[test]
    fn wheel_stress_drains_every_deadline() {
        let r = wheel_stress(2, 500);
        // 500 ticks * 32 reschedules, and in the drain phase every one of
        // the 4096 connections' final deadlines fires exactly once.
        assert!(r.digest.contains("rescheduled=16000 fired_rtos=4096"));
    }

    #[test]
    fn chain_delivers_everything() {
        let r = forward_chain(3, 6, 300);
        assert!(r.digest.contains("sink pkts=300"));
    }

    #[test]
    fn incast_runs_and_digests() {
        let a = leafspine_incast(42);
        assert!(a.events > 10_000, "incast too small: {} events", a.events);
        let b = leafspine_incast(42);
        assert_eq!(a.digest, b.digest, "incast must be deterministic");
    }
}
