//! # mtp-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation:
//!
//! | binary   | paper artefact | what it regenerates |
//! |----------|----------------|---------------------|
//! | `table1` | Table 1        | transport capability matrix |
//! | `fig2`   | Figure 2       | proxy buffering vs HOL blocking |
//! | `fig3`   | Figure 3       | one-message-per-flow congestion noise |
//! | `fig5`   | Figure 5       | multipath CC under path alternation |
//! | `fig6`   | Figure 6       | load-/request-aware load balancing |
//! | `fig7`   | Figure 7       | per-entity isolation |
//! | `ablations` | §4 design discussion | pathlet granularity, header overhead, blob vs message |
//! | `fig_failover` | §2 fate-sharing argument | message completion through a link failure, MTP failover vs pinned TCP |
//!
//! Each binary prints the series/rows the paper reports and writes a JSON
//! record under `results/`. Runs are deterministic: fixed seeds, shared
//! topology builders ([`topo`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod endpoint;
pub mod fabric;
pub mod hotpath;
pub mod output;
pub mod parallel;
pub mod study;
pub mod topo;

pub use output::{write_json, ExperimentRecord};
