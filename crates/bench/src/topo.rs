//! Reusable experiment topologies.
//!
//! All of the paper's evaluation scenarios are instances of two shapes:
//!
//! * **two-path**: sender — sw1 ═(path A / path B)═ sw2 — receiver, with a
//!   pluggable fan-out strategy at sw1 (alternation for Fig. 5, ECMP /
//!   spray / MTP-LB for Fig. 6);
//! * **dumbbell**: N senders — sw1 —(shared link)— sw2 — receiver(s)
//!   (Figs. 3 and 7).

use mtp_core::{MtpConfig, MtpSenderNode, MtpSinkNode, ScheduledMsg};
use mtp_net::{FanoutForwarder, Stamp, StampKind, StaticRoutes, Strategy, SwitchNode};
use mtp_sim::time::{Bandwidth, Duration};
use mtp_sim::{LinkCfg, NodeId, PortId, Simulator};
use mtp_tcp::{TcpConfig, TcpSenderNode, TcpSinkNode, TcpWorkloadMode};
use mtp_wire::{EntityId, PathletId};

/// Client host address used by the two-path builders.
pub const CLIENT_ADDR: u16 = 1;
/// Server host address used by the two-path builders.
pub const SERVER_ADDR: u16 = 2;

/// One parallel path's parameters — the same spec the fault-study
/// topologies use ([`mtp_faults::LinkSpec`]): rate + delay over the
/// paper's standard 128-packet ECN(20) queue.
pub type PathSpec = mtp_faults::LinkSpec;

/// Handle to a built two-path topology.
pub struct TwoPath {
    /// The simulator.
    pub sim: Simulator,
    /// The sending host.
    pub sender: NodeId,
    /// The receiving host.
    pub sink: NodeId,
    /// First-hop switch (holds the strategy/stamps).
    pub sw1: NodeId,
    /// Directed links of path A and path B (sw1 → sw2).
    pub path_a: mtp_sim::DirLinkId,
    /// Path B forward direction.
    pub path_b: mtp_sim::DirLinkId,
}

/// Build the two-path topology with an MTP sender/sink. Path A is stamped
/// as pathlet 1, path B as pathlet 2.
pub fn two_path_mtp(
    seed: u64,
    strategy: Strategy,
    a: PathSpec,
    b: PathSpec,
    schedule: Vec<ScheduledMsg>,
    cfg: MtpConfig,
    goodput_bin: Duration,
) -> TwoPath {
    two_path_mtp_host(
        seed,
        strategy,
        a,
        b,
        schedule,
        cfg,
        goodput_bin,
        default_host_spec(),
    )
}

/// Default host-to-switch link: 100 Gbps, 1 us.
pub fn default_host_spec() -> PathSpec {
    PathSpec::new(Bandwidth::from_gbps(100), Duration::from_micros(1))
}

/// [`two_path_mtp`] with an explicit host-link spec (Fig. 6 uses a
/// 200 Gbps host NIC so both 100 Gbps paths can be loaded at once).
#[allow(clippy::too_many_arguments)] // topology knobs are clearer positionally
pub fn two_path_mtp_host(
    seed: u64,
    strategy: Strategy,
    a: PathSpec,
    b: PathSpec,
    schedule: Vec<ScheduledMsg>,
    cfg: MtpConfig,
    goodput_bin: Duration,
    host: PathSpec,
) -> TwoPath {
    let mut sim = Simulator::new(seed);
    let sender = sim.add_node(Box::new(MtpSenderNode::new(
        cfg,
        CLIENT_ADDR,
        SERVER_ADDR,
        EntityId(0),
        1 << 40,
        schedule,
    )));
    let sink = sim.add_node(Box::new(MtpSinkNode::new(SERVER_ADDR, goodput_bin)));
    build_two_path_network(&mut sim, sender, sink, strategy, a, b, true, host)
        .into_two_path(sim, sender, sink)
}

/// Build the two-path topology with a TCP (or DCTCP) sender/sink.
#[allow(clippy::too_many_arguments)] // topology knobs are clearer positionally
pub fn two_path_tcp(
    seed: u64,
    strategy: Strategy,
    a: PathSpec,
    b: PathSpec,
    schedule: Vec<(mtp_sim::Time, u64)>,
    cfg: TcpConfig,
    mode: TcpWorkloadMode,
    goodput_bin: Duration,
) -> TwoPath {
    let mut sim = Simulator::new(seed);
    let sender = sim.add_node(Box::new(TcpSenderNode::with_addrs(
        cfg.clone(),
        mode,
        100,
        schedule,
        CLIENT_ADDR,
        SERVER_ADDR,
    )));
    let sink = sim.add_node(Box::new(TcpSinkNode::new(cfg, goodput_bin)));
    build_two_path_network(
        &mut sim,
        sender,
        sink,
        strategy,
        a,
        b,
        false,
        default_host_spec(),
    )
    .into_two_path(sim, sender, sink)
}

struct NetHandles {
    sw1: NodeId,
    path_a: mtp_sim::DirLinkId,
    path_b: mtp_sim::DirLinkId,
}

impl NetHandles {
    fn into_two_path(self, sim: Simulator, sender: NodeId, sink: NodeId) -> TwoPath {
        TwoPath {
            sim,
            sender,
            sink,
            sw1: self.sw1,
            path_a: self.path_a,
            path_b: self.path_b,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn build_two_path_network(
    sim: &mut Simulator,
    sender: NodeId,
    sink: NodeId,
    strategy: Strategy,
    a: PathSpec,
    b: PathSpec,
    stamp: bool,
    host: PathSpec,
) -> NetHandles {
    let p = mtp_faults::build_parallel_paths(
        sim,
        sender,
        sink,
        strategy,
        Strategy::Fixed,
        a,
        b,
        host,
        stamp,
    );
    NetHandles {
        sw1: p.sw1,
        path_a: p.a_fwd,
        path_b: p.b_fwd,
    }
}

/// Handle to a built dumbbell.
pub struct Dumbbell {
    /// The simulator.
    pub sim: Simulator,
    /// Sending hosts (addresses `1..=n`).
    pub senders: Vec<NodeId>,
    /// Receiving hosts, one per sender (addresses `100 + i`).
    pub sinks: Vec<NodeId>,
    /// The shared bottleneck (left → right).
    pub bottleneck: mtp_sim::DirLinkId,
    /// The left switch (carries the ingress policy, if any).
    pub left_switch: NodeId,
}

/// Sender address for dumbbell host `i` (0-based).
pub fn dumbbell_src(i: usize) -> u16 {
    1 + i as u16
}

/// Receiver address for dumbbell host `i` (0-based).
pub fn dumbbell_dst(i: usize) -> u16 {
    100 + i as u16
}

/// Build an N-pair dumbbell: each sender `i` talks to its own receiver
/// through one shared link. `senders[i]` is built by the caller-provided
/// closure (so TCP and MTP hosts, or mixes, are all expressible);
/// `edge`/`shared` give the link specs; `policy` optionally installs an
/// ingress policy on the left switch; `shared_queue` overrides the shared
/// link's egress queue (e.g. per-tenant DRR).
#[allow(clippy::too_many_arguments)]
pub fn dumbbell(
    seed: u64,
    n: usize,
    mut make_sender: impl FnMut(usize) -> Box<dyn mtp_sim::Node>,
    mut make_sink: impl FnMut(usize) -> Box<dyn mtp_sim::Node>,
    edge: PathSpec,
    shared: PathSpec,
    policy: Option<Box<dyn mtp_net::IngressPolicy>>,
    shared_queue: Option<Box<dyn mtp_sim::Qdisc>>,
) -> Dumbbell {
    let mut sim = Simulator::new(seed);
    let senders: Vec<NodeId> = (0..n).map(|i| sim.add_node(make_sender(i))).collect();
    let sinks: Vec<NodeId> = (0..n).map(|i| sim.add_node(make_sink(i))).collect();

    // Left switch: ports 0..n face senders, port n is the shared link.
    let mut left_routes = StaticRoutes::new();
    for (i, _) in senders.iter().enumerate() {
        left_routes = left_routes.add(dumbbell_src(i), PortId(i));
    }
    let mut left = SwitchNode::new(
        "left",
        Box::new(FanoutForwarder::new(
            left_routes,
            vec![PortId(n)],
            Strategy::Fixed,
        )),
    );
    if let Some(p) = policy {
        left = left.with_policy(p);
    }
    let left = sim.add_node(Box::new(left));

    let mut right_routes = StaticRoutes::new();
    for (i, _) in sinks.iter().enumerate() {
        right_routes = right_routes.add(dumbbell_dst(i), PortId(i));
    }
    let right = sim.add_node(Box::new(SwitchNode::new(
        "right",
        Box::new(FanoutForwarder::new(
            right_routes,
            vec![PortId(n)],
            Strategy::Fixed,
        )),
    )));

    for (i, &s) in senders.iter().enumerate() {
        sim.connect(
            s,
            PortId(0),
            left,
            PortId(i),
            edge.link_cfg(),
            edge.link_cfg(),
        );
    }
    for (i, &r) in sinks.iter().enumerate() {
        sim.connect(
            right,
            PortId(i),
            r,
            PortId(0),
            edge.link_cfg(),
            edge.link_cfg(),
        );
    }
    let forward = match shared_queue {
        Some(queue) => LinkCfg {
            rate: shared.rate,
            delay: shared.delay,
            queue,
        },
        None => shared.link_cfg(),
    };
    let (bottleneck, _) = sim.connect(
        left,
        PortId(n),
        right,
        PortId(n),
        forward,
        shared.link_cfg(),
    );
    Dumbbell {
        sim,
        senders,
        sinks,
        bottleneck,
        left_switch: left,
    }
}

/// Handle to a built leaf-spine fabric.
pub struct LeafSpine {
    /// The simulator.
    pub sim: Simulator,
    /// Host nodes, indexed `leaf * hosts_per_leaf + i`.
    pub hosts: Vec<NodeId>,
    /// Leaf switches.
    pub leaves: Vec<NodeId>,
    /// Spine switches.
    pub spines: Vec<NodeId>,
}

/// Host address in a leaf-spine fabric (1-based, dense).
pub fn ls_addr(leaf: usize, hosts_per_leaf: usize, i: usize) -> u16 {
    (leaf * hosts_per_leaf + i + 1) as u16
}

/// Build a 2-tier leaf-spine (Clos) fabric:
///
/// * `n_leaves` leaf switches, each with `hosts_per_leaf` hosts;
/// * `n_spines` spine switches, each connected to every leaf;
/// * cross-leaf traffic fans over the spines using `make_strategy()`
///   (one strategy instance per leaf), with each uplink stamped as
///   pathlet `spine + 1`;
/// * spines route by destination leaf.
///
/// Host node `leaf * hosts_per_leaf + i` is produced by
/// `make_host(leaf, i, addr)` and attaches on its port 0.
///
/// Leaf port map: ports `0..hosts_per_leaf` face hosts, ports
/// `hosts_per_leaf..hosts_per_leaf + n_spines` face spines. Spine port map:
/// port `l` faces leaf `l`.
#[allow(clippy::too_many_arguments)] // topology knobs are clearer positionally
pub fn leaf_spine(
    seed: u64,
    n_leaves: usize,
    n_spines: usize,
    hosts_per_leaf: usize,
    make_host: impl FnMut(usize, usize, u16) -> Box<dyn mtp_sim::Node>,
    make_strategy: impl FnMut(usize) -> Strategy,
    host_link: PathSpec,
    spine_link: PathSpec,
) -> LeafSpine {
    leaf_spine_ext(
        seed,
        n_leaves,
        n_spines,
        hosts_per_leaf,
        make_host,
        make_strategy,
        host_link,
        spine_link,
        false,
    )
}

/// [`leaf_spine`] with CONGA instrumentation: when `spine_stamps` is set,
/// every spine stamps its per-destination-leaf downlink queue depth as
/// `QueueDepth` feedback under a [`mtp_net::strategies::conga_pathlet`]
/// id, which [`Strategy::conga_lb`] leaves snoop from passing ACKs.
#[allow(clippy::too_many_arguments)] // topology knobs are clearer positionally
pub fn leaf_spine_ext(
    seed: u64,
    n_leaves: usize,
    n_spines: usize,
    hosts_per_leaf: usize,
    mut make_host: impl FnMut(usize, usize, u16) -> Box<dyn mtp_sim::Node>,
    mut make_strategy: impl FnMut(usize) -> Strategy,
    host_link: PathSpec,
    spine_link: PathSpec,
    spine_stamps: bool,
) -> LeafSpine {
    let mut sim = Simulator::new(seed);
    let mut hosts = Vec::new();
    for leaf in 0..n_leaves {
        for i in 0..hosts_per_leaf {
            let addr = ls_addr(leaf, hosts_per_leaf, i);
            hosts.push(sim.add_node(make_host(leaf, i, addr)));
        }
    }
    let leaves: Vec<NodeId> = (0..n_leaves)
        .map(|leaf| {
            let mut routes = StaticRoutes::new();
            for i in 0..hosts_per_leaf {
                routes = routes.add(ls_addr(leaf, hosts_per_leaf, i), PortId(i));
            }
            let fan: Vec<PortId> = (0..n_spines).map(|s| PortId(hosts_per_leaf + s)).collect();
            let mut sw = SwitchNode::new(
                format!("leaf{leaf}"),
                Box::new(FanoutForwarder::new(
                    routes,
                    fan.clone(),
                    make_strategy(leaf),
                )),
            );
            for (s, port) in fan.iter().enumerate() {
                sw = sw.with_stamp(
                    *port,
                    Stamp::new(PathletId(s as u16 + 1), StampKind::Presence),
                );
            }
            sim.add_node(Box::new(sw))
        })
        .collect();
    let spines: Vec<NodeId> = (0..n_spines)
        .map(|s| {
            // Spine routes every host of leaf `l` out port `l`.
            let mut routes = StaticRoutes::new();
            for leaf in 0..n_leaves {
                for i in 0..hosts_per_leaf {
                    routes = routes.add(ls_addr(leaf, hosts_per_leaf, i), PortId(leaf));
                }
            }
            let mut sw = SwitchNode::new(
                format!("spine{s}"),
                Box::new(FanoutForwarder::new(routes, vec![], Strategy::Fixed)),
            );
            if spine_stamps {
                for leaf in 0..n_leaves {
                    sw = sw.with_stamp(
                        PortId(leaf),
                        Stamp::new(
                            mtp_net::strategies::conga_pathlet(s as u16, leaf as u16),
                            StampKind::QueueDepth,
                        ),
                    );
                }
            }
            sim.add_node(Box::new(sw))
        })
        .collect();

    for leaf in 0..n_leaves {
        for i in 0..hosts_per_leaf {
            let h = hosts[leaf * hosts_per_leaf + i];
            sim.connect(
                h,
                PortId(0),
                leaves[leaf],
                PortId(i),
                host_link.link_cfg(),
                host_link.link_cfg(),
            );
        }
        for (s, &spine) in spines.iter().enumerate() {
            sim.connect(
                leaves[leaf],
                PortId(hosts_per_leaf + s),
                spine,
                PortId(leaf),
                spine_link.link_cfg(),
                spine_link.link_cfg(),
            );
        }
    }
    LeafSpine {
        sim,
        hosts,
        leaves,
        spines,
    }
}
