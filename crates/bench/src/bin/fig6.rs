//! Figure 6 — load- and request-aware load balancing.
//!
//! Paper §5.2: a sender and receiver connected by two 100 Gbps paths, one
//! with an extra 1 µs of delay. The workload is a mix of message sizes
//! (10 KB–1 GB) skewed toward short messages. Three balancers compete:
//!
//! * **ECMP** — hash-pins each message to a path blindly (the classic
//!   flow-hash; collisions put two elephants on one path while the other
//!   idles);
//! * **packet spraying** — perfect byte balance, but packets of one
//!   message interleave across unequal-delay paths and arrive reordered,
//!   triggering spurious NACK repair;
//! * **MTP-aware LB** — pins each *message* to the path with the least
//!   (queue + committed bytes), using the message length advertised in
//!   every MTP header; no intra-message reordering by construction.
//!
//! The paper reports 99th-percentile flow completion times; MTP-LB
//! achieves near-perfect balance without reordering.

use mtp_bench::topo::{two_path_mtp_host, PathSpec};
use mtp_bench::{write_json, ExperimentRecord};
use mtp_core::{MtpConfig, MtpSenderNode, ScheduledMsg};
use mtp_net::Strategy;
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_wire::PathletId;
use mtp_workload::{poisson_schedule, FctCollector, SizeDist};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;

const SEED: u64 = 6;
const HORIZON_MS: u64 = 20;
/// Offered load as a fraction of the 200 Gbps host NIC: 140 Gbps across
/// two 100 Gbps paths, so balancing quality is what determines tails.
const LOAD: f64 = 0.7;

fn schedule() -> Vec<ScheduledMsg> {
    let mut rng = SmallRng::seed_from_u64(SEED);
    // Sizes 10 KB - 1 GB, skewed short (bounded Pareto, alpha 1.1); the
    // sender NIC is 100 Gbps so offered load is half the fan capacity.
    let sizes = SizeDist::fig6_mix();
    poisson_schedule(
        &mut rng,
        &sizes,
        Bandwidth::from_gbps(200),
        LOAD,
        Time::ZERO,
        Duration::from_millis(HORIZON_MS),
        None,
    )
    .into_iter()
    // u32 message sizes cap at 4 GB; the Pareto bound is 1 GB, safe.
    // Priority encodes size (log2): shorter messages are more urgent, the
    // "request-aware" half of the paper's load balancer.
    .map(|(t, b)| {
        let mut m = ScheduledMsg::new(t, b as u32);
        m.pri = (64 - b.leading_zeros()) as u8;
        m
    })
    .collect()
}

struct RunOut {
    small_p50_us: f64,
    small_p99_us: f64,
    p99_slowdown: f64,
    completed: usize,
    retx: u64,
    path_a_gb: f64,
    path_b_gb: f64,
}

/// Ideal transfer time on an empty 100 Gbps path, plus the base RTT.
fn ideal(bytes: u64) -> f64 {
    bytes as f64 * 8.0 / 100e9 * 1e6 + 4.0 // us
}

fn run(strategy: Strategy) -> RunOut {
    let a = PathSpec::new(Bandwidth::from_gbps(100), Duration::from_micros(1));
    // Path B has the extra 1 us of delay.
    let b = PathSpec::new(Bandwidth::from_gbps(100), Duration::from_micros(2));
    // 200 Gbps host links: the sender can load both paths at once.
    let host = PathSpec::new(Bandwidth::from_gbps(200), Duration::from_micros(1));
    let mut tp = two_path_mtp_host(
        SEED,
        strategy,
        a,
        b,
        schedule(),
        MtpConfig::default(),
        Duration::from_micros(100),
        host,
    );
    // Run past the horizon so stragglers finish.
    tp.sim
        .run_until(Time::ZERO + Duration::from_millis(HORIZON_MS * 4));
    mtp_sim::assert_conservation(&tp.sim);
    let sender = tp.sim.node_as::<MtpSenderNode>(tp.sender);
    let mut fct = FctCollector::new();
    let mut slowdowns = Vec::new();
    for m in &sender.msgs {
        if let Some(f) = m.fct() {
            fct.record(m.bytes as u64, f);
            slowdowns.push(f.as_micros_f64() / ideal(m.bytes as u64));
        }
    }
    // "Small" = under 100 KB: the mice whose tails reflect balancing
    // quality rather than their own serialization time.
    let small = fct.summary_for_sizes(0, 100 * 1024);
    RunOut {
        small_p50_us: small.p50_us,
        small_p99_us: small.p99_us,
        p99_slowdown: mtp_workload::percentile(&slowdowns, 99.0),
        completed: fct.samples.len(),
        retx: sender.sender.stats.retransmissions,
        path_a_gb: tp.sim.link_stats(tp.path_a).tx_bytes as f64 / 1e9,
        path_b_gb: tp.sim.link_stats(tp.path_b).tx_bytes as f64 / 1e9,
    }
}

#[derive(Serialize)]
struct Row {
    scheme: &'static str,
    small_p50_us: f64,
    small_p99_us: f64,
    p99_slowdown: f64,
    completed: usize,
    retransmissions: u64,
    path_split: (f64, f64),
}

fn main() {
    let total = schedule().len();
    println!("Figure 6: tail FCT under three load balancers");
    println!(
        "two 100 Gbps paths (one +1 us), {total} messages 10KB-1GB skewed short, load {LOAD}\n"
    );
    println!(
        "{:<14} {:>14} {:>14} {:>12} {:>8} {:>8} {:>16}",
        "scheme",
        "small p50 (us)",
        "small p99 (us)",
        "p99 slowdn",
        "done",
        "retx",
        "A/B split (GB)"
    );

    let mut rows = Vec::new();
    for (name, strategy) in [
        ("ECMP", Strategy::Ecmp),
        ("spray", Strategy::Spray { next: 0 }),
        (
            "MTP-LB",
            Strategy::mtp_lb(2, vec![Some(PathletId(1)), Some(PathletId(2))]),
        ),
    ] {
        let out = run(strategy);
        println!(
            "{:<14} {:>14.1} {:>14.1} {:>12.1} {:>8} {:>8} {:>8.2}/{:<7.2}",
            name,
            out.small_p50_us,
            out.small_p99_us,
            out.p99_slowdown,
            out.completed,
            out.retx,
            out.path_a_gb,
            out.path_b_gb
        );
        rows.push(Row {
            scheme: name,
            small_p50_us: out.small_p50_us,
            small_p99_us: out.small_p99_us,
            p99_slowdown: out.p99_slowdown,
            completed: out.completed,
            retransmissions: out.retx,
            path_split: (out.path_a_gb, out.path_b_gb),
        });
    }

    println!("\nexpected shape (paper): ECMP suffers imbalance (hash collisions),");
    println!("spraying suffers reordering (spurious repair), MTP-LB is lowest at");
    println!("the tail with near-perfect balance and no reordering.");

    let path = write_json(&ExperimentRecord {
        id: "fig6",
        paper_claim: "ECMP suffers higher delays from unbalanced paths; packet spraying \
                      incurs reordering; the MTP-based balancer achieves near-perfect \
                      load balancing without reordering (99th-pct FCT)",
        data: rows,
    });
    println!("wrote {}", path.display());
}
