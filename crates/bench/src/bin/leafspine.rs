//! Extension experiment (beyond the paper's two-switch topologies): the
//! Fig. 6 comparison at fabric scale.
//!
//! A 4-leaf × 4-spine Clos with 4 hosts per leaf runs a cross-leaf
//! permutation workload of heavy-tailed messages. Every leaf balances its
//! uplinks with the same strategy; spines route by destination leaf. The
//! paper's two-path result should survive the generalization: per-message,
//! size-aware balancing (MTP-LB) beats blind hashing (ECMP), and per-packet
//! spraying collapses under MTP's intra-message ordering assumption.

use mtp_bench::topo::{leaf_spine_ext, ls_addr, PathSpec};
use mtp_bench::{write_json, ExperimentRecord};
use mtp_core::{MtpConfig, MtpSenderNode, ScheduledMsg};
use mtp_net::Strategy;
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_wire::{EntityId, PathletId};
use mtp_workload::{poisson_schedule, FctCollector, SizeDist};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;

const LEAVES: usize = 4;
const SPINES: usize = 4;
const HOSTS_PER_LEAF: usize = 4;
const HORIZON_MS: u64 = 5;
const LOAD: f64 = 0.45;

fn strategy_for(name: &str, leaf: usize) -> Strategy {
    let _ = leaf;
    match name {
        "ECMP" => Strategy::Ecmp,
        "spray" => Strategy::Spray { next: 0 },
        "MTP-LB" => Strategy::mtp_lb(
            SPINES,
            (0..SPINES).map(|s| Some(PathletId(s as u16 + 1))).collect(),
        ),
        "MTP-CONGA" => Strategy::conga_lb(
            SPINES,
            Box::new(|addr| ((addr as usize - 1) / HOSTS_PER_LEAF) as u16),
        ),
        _ => unreachable!(),
    }
}

#[derive(Serialize)]
struct Row {
    scheme: &'static str,
    completed: usize,
    total: usize,
    small_p99_us: f64,
    all_p99_us: f64,
    retransmissions: u64,
}

fn run(name: &'static str) -> Row {
    let n_hosts = LEAVES * HOSTS_PER_LEAF;
    // Cross-leaf permutation: host k sends to host (k + HOSTS_PER_LEAF) —
    // the destination always sits on the next leaf over.
    let mut schedules: Vec<Vec<ScheduledMsg>> = Vec::new();
    for k in 0..n_hosts {
        let mut rng = SmallRng::seed_from_u64(900 + k as u64);
        let sched = poisson_schedule(
            &mut rng,
            &SizeDist::BoundedPareto {
                alpha: 1.2,
                min: 10 * 1024,
                max: 10 << 20,
            },
            Bandwidth::from_gbps(100),
            LOAD,
            Time::ZERO,
            Duration::from_millis(HORIZON_MS),
            None,
        )
        .into_iter()
        .map(|(t, b)| {
            let mut m = ScheduledMsg::new(t, b as u32);
            m.pri = (64 - b.leading_zeros()) as u8;
            m
        })
        .collect();
        schedules.push(sched);
    }
    let total: usize = schedules.iter().map(Vec::len).sum();

    let mut ls = leaf_spine_ext(
        77,
        LEAVES,
        SPINES,
        HOSTS_PER_LEAF,
        |leaf, i, addr| {
            let k = leaf * HOSTS_PER_LEAF + i;
            let dst_k = (k + HOSTS_PER_LEAF) % n_hosts;
            let dst = ls_addr(
                dst_k / HOSTS_PER_LEAF,
                HOSTS_PER_LEAF,
                dst_k % HOSTS_PER_LEAF,
            );
            Box::new(MtpDuplexHost::new(
                addr,
                dst,
                (k as u64 + 1) << 40,
                schedules[k].clone(),
            ))
        },
        |leaf| strategy_for(name, leaf),
        PathSpec::new(Bandwidth::from_gbps(100), Duration::from_micros(1)),
        PathSpec::new(Bandwidth::from_gbps(100), Duration::from_micros(1)),
        // Spine downlink stamping only matters to the CONGA scheme, but it
        // is harmless (a few header bytes) for the others — keep the
        // network identical across schemes for a fair comparison.
        name == "MTP-CONGA",
    );
    ls.sim
        .run_until(Time::ZERO + Duration::from_millis(HORIZON_MS * 6));
    mtp_sim::assert_conservation(&ls.sim);

    let mut fct = FctCollector::new();
    let mut retx = 0;
    for &h in &ls.hosts {
        let node = ls.sim.node_as::<MtpDuplexHost>(h);
        retx += node.sender.sender.stats.retransmissions;
        for m in &node.sender.msgs {
            if let Some(f) = m.fct() {
                fct.record(m.bytes as u64, f);
            }
        }
    }
    let small = fct.summary_for_sizes(0, 100 * 1024);
    Row {
        scheme: name,
        completed: fct.samples.len(),
        total,
        small_p99_us: small.p99_us,
        all_p99_us: fct.summary().p99_us,
        retransmissions: retx,
    }
}

/// A host that both sends its schedule and sinks whatever arrives: in the
/// permutation workload every host plays both roles.
struct MtpDuplexHost {
    sender: MtpSenderNode,
    sink: mtp_core::MtpSinkNode,
}

impl MtpDuplexHost {
    fn new(addr: u16, dst: u16, msg_base: u64, sched: Vec<ScheduledMsg>) -> MtpDuplexHost {
        MtpDuplexHost {
            sender: MtpSenderNode::new(
                MtpConfig::default(),
                addr,
                dst,
                EntityId(addr),
                msg_base,
                sched,
            ),
            sink: mtp_core::MtpSinkNode::new(addr, Duration::from_micros(100)),
        }
    }
}

impl mtp_sim::Node for MtpDuplexHost {
    fn on_start(&mut self, ctx: &mut mtp_sim::Ctx<'_>) {
        self.sender.on_start(ctx);
    }
    fn on_packet(
        &mut self,
        ctx: &mut mtp_sim::Ctx<'_>,
        port: mtp_sim::PortId,
        pkt: mtp_sim::Packet,
    ) {
        // Data goes to the sink half; ACK/NACK/Control to the sender half.
        let is_data = pkt
            .headers
            .as_mtp()
            .map(|h| h.pkt_type == mtp_wire::PktType::Data)
            .unwrap_or(false);
        if is_data {
            self.sink.on_packet(ctx, port, pkt);
        } else {
            self.sender.on_packet(ctx, port, pkt);
        }
    }
    fn on_timer(&mut self, ctx: &mut mtp_sim::Ctx<'_>, token: u64) {
        self.sender.on_timer(ctx, token);
    }
    fn audit_counters(&self, out: &mut mtp_sim::NodeAuditCounters) {
        mtp_sim::Node::audit_counters(&self.sender, out);
        mtp_sim::Node::audit_counters(&self.sink, out);
    }
    fn name(&self) -> &str {
        "duplex-host"
    }
}

fn main() {
    println!("Leaf-spine extension: Fig. 6 at fabric scale");
    println!(
        "{LEAVES} leaves x {SPINES} spines, {HOSTS_PER_LEAF} hosts/leaf, cross-leaf permutation, load {LOAD}\n"
    );
    println!(
        "{:<10} {:>12} {:>16} {:>14} {:>8}",
        "scheme", "done/total", "small p99 (us)", "all p99 (us)", "retx"
    );
    let mut rows = Vec::new();
    for name in ["ECMP", "spray", "MTP-LB", "MTP-CONGA"] {
        let r = run(name);
        println!(
            "{:<10} {:>5}/{:<6} {:>16.1} {:>14.1} {:>8}",
            r.scheme, r.completed, r.total, r.small_p99_us, r.all_p99_us, r.retransmissions
        );
        rows.push(r);
    }
    println!("\nobserved shape: MTP-LB cuts losses ~5x (it avoids building the");
    println!("uplink queues ECMP collides into) at comparable tails; spraying");
    println!("pays for intra-message reordering across four spines. MTP-LB's");
    println!("residual tail gap vs ECMP is the local-signal limit (the leaf sees");
    println!("only its uplinks, not the contended spine->leaf downlinks);");
    println!("MTP-CONGA closes it using nothing but MTP's own machinery: spines");
    println!("stamp downlink queue depths as pathlet feedback, receivers echo");
    println!("them, and leaves snoop the echo from passing ACKs.");

    let path = write_json(&ExperimentRecord {
        id: "leafspine",
        paper_claim: "extension beyond the paper: message-aware balancing generalizes to a \
                      4x4 Clos, and pathlet feedback suffices to build CONGA-style \
                      fabric-wide balancing with no new protocol",
        data: rows,
    });
    println!("wrote {}", path.display());
}
