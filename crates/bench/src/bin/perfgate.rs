//! Perf-regression gate for the simulator engine and the MTP endpoints.
//!
//! Two suites, each with three fixed-seed workloads × three seeds:
//!
//! * **engine** — discrete-event engine hotpaths (timer churn, packet
//!   forwarding chain, leaf-spine incast); goldens under
//!   `crates/bench/golden/engine/`, report `results/BENCH_engine.json`;
//! * **endpoint** — MTP sender/receiver state machines driven directly
//!   with no simulator in between (many-message incast with SACK/NACK
//!   churn, pathlet-feedback-heavy multipath); goldens under
//!   `crates/bench/golden/endpoint/`, report
//!   `results/BENCH_endpoint.json`.
//!
//! For every suite the gate:
//!
//! 1. compares every run's digest byte-for-byte against its golden file —
//!    any change that alters packet contents, window evolution, or
//!    counters fails the gate;
//! 2. measures events/second per workload (best of [`TIMED_REPS`] timed
//!    runs) and peak RSS, writing the suite's `results/BENCH_*.json`;
//! 3. if the suite's `*_baseline.json` exists, reports the speedup of the
//!    current code over that recorded baseline.
//!
//! Modes:
//!
//! * `perfgate [suite...]`            — gate the named suites (default: all);
//! * `perfgate --bless [suite...]`    — (re)write the golden digests;
//! * `perfgate --baseline [suite...]` — also record the current
//!   measurements as the suite's baseline file. Baselines are per-suite so
//!   re-recording the endpoint baseline never clobbers the engine's.
//!
//! Exit status is non-zero on any digest mismatch.

use std::path::{Path, PathBuf};
use std::time::Instant;

use mtp_bench::endpoint::{incast_churn, multipath_feedback};
use mtp_bench::hotpath::{forward_chain, leafspine_incast, timer_churn, wheel_stress, HotpathRun};
use serde::Serialize;

const SEEDS: [u64; 3] = [1, 2, 3];
/// Minimum geometric-mean speedup vs the recorded baseline, per suite.
/// Raised by the raw-speed rounds as the hot paths improve; see
/// EXPERIMENTS.md for how these were calibrated (and why the endpoint
/// floor is capped by the digest's serial FNV absorb, not by the
/// library). Checked only when the suite has a baseline file; set
/// `MTP_PERFGATE_FLOORS=0` to measure without enforcing (e.g. on
/// hardware unrelated to the one the baselines were recorded on).
const ENGINE_FLOOR: f64 = 2.5;
const ENDPOINT_FLOOR: f64 = 1.8;
const TIMER_BUDGET: u64 = 200_000;
const CHAIN_HOPS: usize = 8;
const CHAIN_PKTS: u32 = 5_000;
const WHEEL_TICKS: u64 = 10_000;
// Best-of-N wall time estimates the noise-free runtime; on shared
// hardware 3 reps often never lands in an uncontended slice.
const TIMED_REPS: usize = 7;

struct Workload {
    name: &'static str,
    run: fn(u64) -> HotpathRun,
}

struct Suite {
    /// Suite key on the command line and in file names.
    name: &'static str,
    /// `id` field of the written report.
    id: &'static str,
    /// Human description of what is being measured.
    engine: &'static str,
    /// Minimum geomean speedup vs the recorded baseline.
    floor: f64,
    workloads: &'static [Workload],
}

const SUITES: [Suite; 2] = [
    Suite {
        name: "engine",
        id: "BENCH_engine",
        engine: "mtp-sim discrete-event engine",
        floor: ENGINE_FLOOR,
        workloads: &[
            Workload {
                name: "timer_churn",
                run: |seed| timer_churn(seed, TIMER_BUDGET),
            },
            Workload {
                name: "forward_chain",
                run: |seed| forward_chain(seed, CHAIN_HOPS, CHAIN_PKTS),
            },
            Workload {
                name: "leafspine_incast",
                run: leafspine_incast,
            },
            Workload {
                name: "wheel_stress",
                run: |seed| wheel_stress(seed, WHEEL_TICKS),
            },
        ],
    },
    Suite {
        name: "endpoint",
        id: "BENCH_endpoint",
        engine: "mtp-core sender/receiver endpoint state machines",
        floor: ENDPOINT_FLOOR,
        workloads: &[
            Workload {
                name: "incast_churn",
                run: incast_churn,
            },
            Workload {
                name: "multipath_feedback",
                run: multipath_feedback,
            },
        ],
    },
];

#[derive(Serialize)]
struct WorkloadResult {
    name: &'static str,
    seeds: Vec<u64>,
    events_per_run: u64,
    wall_ms: f64,
    events_per_sec: f64,
    baseline_events_per_sec: Option<f64>,
    speedup: Option<f64>,
    digests_match_golden: bool,
}

#[derive(Serialize)]
struct GateReport {
    id: &'static str,
    engine: &'static str,
    all_digests_match: bool,
    /// Minimum geomean speedup vs baseline this gate enforces.
    speedup_floor: f64,
    /// Geomean of per-workload speedups (absent without a baseline).
    geomean_speedup: Option<f64>,
    /// Whether the geomean cleared the floor (true when unenforceable).
    floor_met: bool,
    peak_rss_kb: u64,
    workloads: Vec<WorkloadResult>,
}

/// Walk up from the cwd to the directory containing `crates/bench`.
fn repo_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("crates/bench").is_dir() {
            return dir;
        }
        assert!(dir.pop(), "perfgate must run inside the repository");
    }
}

fn golden_path(root: &Path, suite: &str, name: &str, seed: u64) -> PathBuf {
    root.join(format!("crates/bench/golden/{suite}/{name}_seed{seed}.txt"))
}

/// Peak resident set size in kB (`VmHWM`), 0 where unavailable.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(0)
}

/// Pull `"events_per_sec": <num>` for a workload out of a previously
/// written baseline JSON. String-scanning keeps the vendored serde
/// stand-in write-only.
fn baseline_events_per_sec(baseline: &str, name: &str) -> Option<f64> {
    let at = baseline.find(&format!("\"name\": \"{name}\""))?;
    let rest = &baseline[at..];
    let key = "\"events_per_sec\": ";
    let k = rest.find(key)? + key.len();
    let tail = &rest[k..];
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Run one suite: digest-check (or bless) every workload × seed, then
/// time each workload and write the suite report. Returns whether all
/// digests matched and the speedup floor held.
fn run_suite(suite: &Suite, root: &Path, bless: bool, record_baseline: bool) -> bool {
    println!("== suite: {} ==", suite.name);
    std::fs::create_dir_all(root.join(format!("crates/bench/golden/{}", suite.name)))
        .expect("golden dir");

    let baseline =
        std::fs::read_to_string(root.join(format!("results/{}_baseline.json", suite.id))).ok();

    let mut results = Vec::new();
    let mut all_ok = true;
    for w in suite.workloads {
        // Digest pass: every seed against its golden file.
        let mut ok = true;
        for &seed in &SEEDS {
            let run = (w.run)(seed);
            let path = golden_path(root, suite.name, w.name, seed);
            if bless {
                std::fs::write(&path, &run.digest).expect("write golden");
            } else {
                match std::fs::read_to_string(&path) {
                    Ok(golden) if golden == run.digest => {}
                    Ok(_) => {
                        eprintln!("DIGEST MISMATCH: {} seed {}", w.name, seed);
                        ok = false;
                    }
                    Err(_) => {
                        eprintln!(
                            "MISSING GOLDEN: {} (run with --bless first)",
                            path.display()
                        );
                        ok = false;
                    }
                }
            }
        }
        all_ok &= ok;

        // Timing pass: best of N on the first seed.
        let events = (w.run)(SEEDS[0]).events;
        let mut best = f64::INFINITY;
        for _ in 0..TIMED_REPS {
            let t0 = Instant::now();
            let r = (w.run)(SEEDS[0]);
            let dt = t0.elapsed().as_secs_f64();
            assert_eq!(r.events, events, "events must not vary between reps");
            best = best.min(dt);
        }
        let eps = events as f64 / best;
        let base = baseline
            .as_deref()
            .and_then(|b| baseline_events_per_sec(b, w.name));
        println!(
            "{:<18} {:>9} events  {:>8.2} ms  {:>12.0} events/s{}{}",
            w.name,
            events,
            best * 1e3,
            eps,
            base.map(|b| format!("  ({:.2}x vs baseline)", eps / b))
                .unwrap_or_default(),
            if ok { "" } else { "  [DIGEST FAIL]" },
        );
        results.push(WorkloadResult {
            name: w.name,
            seeds: SEEDS.to_vec(),
            events_per_run: events,
            wall_ms: best * 1e3,
            events_per_sec: eps,
            baseline_events_per_sec: base,
            speedup: base.map(|b| eps / b),
            digests_match_golden: ok,
        });
    }

    // Floor check: geometric mean of the per-workload speedups. Only
    // meaningful where every workload has a baseline number (a fresh
    // workload before its baseline is recorded reports, but can't gate).
    let speedups: Vec<f64> = results.iter().filter_map(|r| r.speedup).collect();
    let geomean = (speedups.len() == results.len() && !speedups.is_empty())
        .then(|| (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp());
    let enforce = std::env::var("MTP_PERFGATE_FLOORS").map_or(true, |v| v != "0");
    let floor_met = match geomean {
        Some(g) => g >= suite.floor,
        None => true,
    };
    match geomean {
        Some(g) => println!(
            "geomean speedup {:.2}x vs baseline (floor {:.2}x): {}",
            g,
            suite.floor,
            if floor_met {
                "ok"
            } else if enforce {
                "FLOOR BREACH"
            } else {
                "below floor (not enforced)"
            }
        ),
        None => println!(
            "no complete baseline; floor {:.2}x not enforceable",
            suite.floor
        ),
    }

    let report = GateReport {
        id: suite.id,
        engine: suite.engine,
        all_digests_match: all_ok,
        speedup_floor: suite.floor,
        geomean_speedup: geomean,
        floor_met,
        peak_rss_kb: peak_rss_kb(),
        workloads: results,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(root.join(format!("results/{}.json", suite.id)), &json).expect("write report");
    println!("wrote results/{}.json", suite.id);
    if record_baseline {
        std::fs::write(
            root.join(format!("results/{}_baseline.json", suite.id)),
            &json,
        )
        .expect("write baseline");
        println!("wrote results/{}_baseline.json", suite.id);
    }
    all_ok && (floor_met || !enforce)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut bless = false;
    let mut record_baseline = false;
    let mut selected: Vec<&str> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--bless" => bless = true,
            "--baseline" => record_baseline = true,
            name if SUITES.iter().any(|s| s.name == name) => selected.push(name),
            bad => {
                eprintln!("perfgate: unknown argument `{bad}`");
                eprintln!("usage: perfgate [--bless] [--baseline] [engine|endpoint ...]");
                std::process::exit(2);
            }
        }
    }
    let root = repo_root();
    std::fs::create_dir_all(root.join("results")).expect("results dir");

    let mut all_ok = true;
    for suite in &SUITES {
        if !selected.is_empty() && !selected.contains(&suite.name) {
            continue;
        }
        all_ok &= run_suite(suite, &root, bless, record_baseline);
    }
    if !all_ok {
        std::process::exit(1);
    }
}
