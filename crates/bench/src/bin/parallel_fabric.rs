//! Perf gate for the sharded parallel engine.
//!
//! Two phases:
//!
//! 1. **Digest gate (hard).** On the small fabric with the full fault +
//!    corruption schedule and tracing on, the sharded runtime's canonical
//!    digest must be byte-identical to the monolithic engine's for every
//!    seed — the parallel == serial proof, enforced in CI on a pinned
//!    shard count. Any mismatch exits non-zero regardless of environment.
//!
//! 2. **Scaling measurement (soft floor).** On the bench-sized fabric
//!    (8 pods, 256 hosts) the monolithic engine and the sharded runtime
//!    at 2/4/8 shards are timed; each sharded run's link-level digest is
//!    still required to match the serial one. The `2.5x at 4 shards`
//!    events/s floor is calibrated on the reference CI hosts (one idle
//!    core per shard) and is *not meaningful on fewer cores* — a
//!    single-core container runs all shard threads time-sliced and
//!    honestly reports scaling below 1. Set `MTP_PERFGATE_FLOORS=0` to
//!    measure without enforcing, same as the other perfgate suites.
//!
//! Writes `results/BENCH_parallel.json`.
//!
//! Usage: `parallel_fabric [--shards N]` — N pins the digest-gate shard
//! count (default 4).

use std::path::PathBuf;
use std::time::Instant;

use mtp_bench::fabric::{build, fault_schedule, run_serial, run_sharded, FabricCfg};
use mtp_sim::monolithic_digest;
use mtp_sim::time::{Duration, Time};
use serde::Serialize;

const DIGEST_SEEDS: [u64; 3] = [1, 2, 3];
const SCALING_SHARDS: [usize; 3] = [2, 4, 8];
/// Shard count whose scaling is gated.
const FLOOR_SHARDS: usize = 4;
/// Minimum events/s scaling vs serial at [`FLOOR_SHARDS`] shards, on the
/// reference hosts (≥ 4 idle cores).
const SCALING_FLOOR: f64 = 2.5;
/// Best-of-N wall time per configuration.
const TIMED_REPS: usize = 3;
/// Trace capacity for the digest-gate runs (must hold every event).
const TRACE_CAP: usize = 1 << 17;

fn horizon() -> Time {
    Time::ZERO + Duration::from_millis(2)
}

#[derive(Serialize)]
struct ScalingResult {
    shards: usize,
    events: u64,
    wall_ms: f64,
    events_per_sec: f64,
    /// events/s relative to the serial run of the same workload.
    scaling_x: f64,
    digest_matches_serial: bool,
}

#[derive(Serialize)]
struct Report {
    id: &'static str,
    engine: &'static str,
    /// Phase 1: byte-identical digests under faults + corruption.
    digest_gate_shards: usize,
    digest_gate_seeds: Vec<u64>,
    digest_gate_ok: bool,
    /// Phase 2: scaling on the bench fabric.
    host_cores: usize,
    serial_events: u64,
    serial_wall_ms: f64,
    serial_events_per_sec: f64,
    scaling: Vec<ScalingResult>,
    scaling_floor: f64,
    floor_shards: usize,
    /// Whether the floor held (only meaningful on the reference hosts;
    /// see `floor_enforced`).
    floor_met: bool,
    floor_enforced: bool,
}

/// Walk up from the cwd to the directory containing `crates/bench`.
fn repo_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("crates/bench").is_dir() {
            return dir;
        }
        assert!(dir.pop(), "parallel_fabric must run inside the repository");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut pinned_shards = 4usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--shards" => {
                i += 1;
                pinned_shards = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--shards needs a positive integer");
            }
            bad => {
                eprintln!("parallel_fabric: unknown argument `{bad}`");
                eprintln!("usage: parallel_fabric [--shards N]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    assert!(pinned_shards > 0, "--shards must be positive");
    let root = repo_root();
    std::fs::create_dir_all(root.join("results")).expect("results dir");

    // ---- Phase 1: the hard digest gate, faults and corruption live ----
    println!("== digest gate: tiny fabric, {pinned_shards} shards, faults + corruption ==");
    let mut digest_ok = true;
    for seed in DIGEST_SEEDS {
        let net = build(FabricCfg::tiny());
        let admin = fault_schedule(&net, seed);
        let serial = run_serial(&net, seed, Some(TRACE_CAP), horizon(), admin.clone());
        let want = monolithic_digest(&serial);
        let ss = run_sharded(&net, pinned_shards, seed, Some(TRACE_CAP), horizon(), admin);
        let matches = ss.digest() == want;
        let audit = ss.audit();
        println!(
            "seed {seed}: digest {}  audit {}",
            if matches { "identical" } else { "MISMATCH" },
            if audit.ok() { "clean" } else { "VIOLATED" },
        );
        digest_ok &= matches && audit.ok();
    }

    // ---- Phase 2: scaling on the bench fabric -------------------------
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("== scaling: bench fabric (8 pods, 256 hosts), {cores} host cores ==");
    let net = build(FabricCfg::bench());
    let seed = 1u64;

    let time_best = |run: &mut dyn FnMut() -> u64| -> (u64, f64) {
        let mut events = 0u64;
        let mut best = f64::INFINITY;
        for rep in 0..TIMED_REPS {
            let t0 = Instant::now();
            let e = run();
            let dt = t0.elapsed().as_secs_f64();
            if rep == 0 {
                events = e;
            } else {
                assert_eq!(e, events, "events must not vary between reps");
            }
            best = best.min(dt);
        }
        (events, best)
    };

    let mut serial_digest = String::new();
    let (serial_events, serial_wall) = time_best(&mut || {
        let sim = run_serial(&net, seed, None, horizon(), Vec::new());
        serial_digest = monolithic_digest(&sim);
        sim.events_processed()
    });
    let serial_eps = serial_events as f64 / serial_wall;
    println!(
        "{:<10} {:>9} events  {:>9.2} ms  {:>12.0} events/s",
        "serial",
        serial_events,
        serial_wall * 1e3,
        serial_eps
    );

    let mut scaling = Vec::new();
    for &shards in &SCALING_SHARDS {
        let mut digest_matches = true;
        let (events, wall) = time_best(&mut || {
            let ss = run_sharded(&net, shards, seed, None, horizon(), Vec::new());
            digest_matches &= ss.digest() == serial_digest;
            ss.audit().assert_ok();
            ss.events_processed()
        });
        let eps = events as f64 / wall;
        let scaling_x = eps / serial_eps;
        println!(
            "{:<10} {:>9} events  {:>9.2} ms  {:>12.0} events/s  {:>5.2}x{}",
            format!("{shards} shards"),
            events,
            wall * 1e3,
            eps,
            scaling_x,
            if digest_matches {
                ""
            } else {
                "  [DIGEST FAIL]"
            },
        );
        digest_ok &= digest_matches;
        scaling.push(ScalingResult {
            shards,
            events,
            wall_ms: wall * 1e3,
            events_per_sec: eps,
            scaling_x,
            digest_matches_serial: digest_matches,
        });
    }

    let enforce = std::env::var("MTP_PERFGATE_FLOORS").map_or(true, |v| v != "0");
    let at_floor = scaling
        .iter()
        .find(|r| r.shards == FLOOR_SHARDS)
        .expect("floor shard count measured");
    let floor_met = at_floor.scaling_x >= SCALING_FLOOR;
    println!(
        "scaling at {FLOOR_SHARDS} shards: {:.2}x (floor {SCALING_FLOOR:.2}x): {}",
        at_floor.scaling_x,
        if floor_met {
            "ok"
        } else if enforce {
            "FLOOR BREACH"
        } else {
            "below floor (not enforced)"
        }
    );

    let report = Report {
        id: "BENCH_parallel",
        engine: "mtp-sim sharded conservative-lookahead runtime",
        digest_gate_shards: pinned_shards,
        digest_gate_seeds: DIGEST_SEEDS.to_vec(),
        digest_gate_ok: digest_ok,
        host_cores: cores,
        serial_events,
        serial_wall_ms: serial_wall * 1e3,
        serial_events_per_sec: serial_eps,
        scaling,
        scaling_floor: SCALING_FLOOR,
        floor_shards: FLOOR_SHARDS,
        floor_met,
        floor_enforced: enforce,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(root.join("results/BENCH_parallel.json"), &json).expect("write report");
    println!("wrote results/BENCH_parallel.json");

    if !digest_ok || (enforce && !floor_met) {
        std::process::exit(1);
    }
}
