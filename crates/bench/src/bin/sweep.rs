//! Seed-robustness sweep: the headline Fig. 5 result across many seeds,
//! run in parallel (one deterministic simulation per worker thread).
//!
//! A single starting phase can flatter or sandbag either transport; this
//! sweep varies the flow's start offset within the alternation period and
//! reports mean ± stddev of the MTP-over-DCTCP goodput improvement,
//! establishing that the reproduced effect is not a phase artifact.

use mtp_bench::parallel::{mean_std, run_seeds};
use mtp_bench::topo::{two_path_mtp, two_path_tcp, PathSpec};
use mtp_bench::{write_json, ExperimentRecord};
use mtp_core::{MtpConfig, MtpSinkNode, ScheduledMsg};
use mtp_net::Strategy;
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_tcp::{TcpConfig, TcpSinkNode, TcpWorkloadMode};
use serde::Serialize;

const PERIOD: Duration = Duration(384_000_000);
const SAMPLE: Duration = Duration(32_000_000);
const SEEDS: u64 = 12;
const WARMUP_BINS: usize = 1_000 / 32;

fn steady_mean(series: &[f64]) -> f64 {
    let s = &series[WARMUP_BINS.min(series.len())..];
    s.iter().sum::<f64>() / s.len().max(1) as f64
}

fn one_seed(seed: u64) -> (f64, f64) {
    let fast = PathSpec::new(Bandwidth::from_gbps(100), Duration::from_micros(1));
    let slow = PathSpec::new(Bandwidth::from_gbps(10), Duration::from_micros(1));
    let horizon = Time::ZERO + Duration::from_millis(6);
    // The base scenario is fully deterministic, so "seed" robustness here
    // means phase robustness: start the flow at a seed-dependent offset
    // inside the alternation period, so every run meets the flips at a
    // different point in slow start and in its sawtooth.
    let start = Time::ZERO + Duration::from_micros((seed * 37) % 384);

    let mut dctcp = two_path_tcp(
        seed,
        Strategy::Alternate { period: PERIOD },
        fast,
        slow,
        vec![(start, 200_000_000)],
        TcpConfig::dctcp(),
        TcpWorkloadMode::Persistent,
        SAMPLE,
    );
    dctcp.sim.run_until(horizon);
    mtp_sim::assert_conservation(&dctcp.sim);
    let d = steady_mean(
        &dctcp
            .sim
            .node_as::<TcpSinkNode>(dctcp.sink)
            .goodput
            .rates_gbps(),
    );

    let mut mtp = two_path_mtp(
        seed,
        Strategy::Alternate { period: PERIOD },
        fast,
        slow,
        vec![ScheduledMsg {
            at: start,
            ..ScheduledMsg::new(Time::ZERO, 200_000_000)
        }],
        MtpConfig::default(),
        SAMPLE,
    );
    mtp.sim.run_until(horizon);
    mtp_sim::assert_conservation(&mtp.sim);
    let m = steady_mean(
        &mtp.sim
            .node_as::<MtpSinkNode>(mtp.sink)
            .goodput
            .rates_gbps(),
    );
    (d, m)
}

#[derive(Serialize)]
struct SweepData {
    seeds: u64,
    dctcp_mean_gbps: f64,
    dctcp_std: f64,
    mtp_mean_gbps: f64,
    mtp_std: f64,
    improvement_mean_pct: f64,
    improvement_std_pct: f64,
}

fn main() {
    let seeds: Vec<u64> = (1..=SEEDS).collect();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    println!("Fig. 5 across {SEEDS} seeds on {workers} workers...");
    let results = run_seeds(&seeds, workers, one_seed);

    let dctcp: Vec<f64> = results.iter().map(|(d, _)| *d).collect();
    let mtp: Vec<f64> = results.iter().map(|(_, m)| *m).collect();
    let improvements: Vec<f64> = results.iter().map(|(d, m)| (m / d - 1.0) * 100.0).collect();
    let (dm, ds) = mean_std(&dctcp);
    let (mm, ms) = mean_std(&mtp);
    let (im, is) = mean_std(&improvements);

    println!(
        "\n{:<8} {:>12} {:>12} {:>14}",
        "seed", "DCTCP Gbps", "MTP Gbps", "improvement"
    );
    for (seed, (d, m)) in seeds.iter().zip(&results) {
        println!(
            "{:<8} {:>12.2} {:>12.2} {:>13.1}%",
            seed,
            d,
            m,
            (m / d - 1.0) * 100.0
        );
    }
    println!("\nDCTCP: {dm:.2} ± {ds:.2} Gbps");
    println!("MTP:   {mm:.2} ± {ms:.2} Gbps");
    println!("MTP improvement: {im:.1}% ± {is:.1}% (paper: ~33%; positive at every seed)");

    assert!(
        improvements.iter().all(|&i| i > 0.0),
        "MTP must win at every seed"
    );

    let path = write_json(&ExperimentRecord {
        id: "sweep",
        paper_claim: "the Fig. 5 improvement is robust across seeds, not a sampling artifact",
        data: SweepData {
            seeds: SEEDS,
            dctcp_mean_gbps: dm,
            dctcp_std: ds,
            mtp_mean_gbps: mm,
            mtp_std: ms,
            improvement_mean_pct: im,
            improvement_std_pct: is,
        },
    });
    println!("wrote {}", path.display());
}
