//! Failure study — message completion through a scheduled link failure.
//!
//! Paper §2 argues TCP's connection abstraction is the wrong unit of
//! fate-sharing for an in-network-computing fabric: a flow is pinned to
//! whatever path ECMP hashed it to, so a single link failure stalls every
//! message in the connection until routing reconverges. MTP's pathlet
//! feedback lets the *endpoint* detect the dead path, quarantine it, and
//! re-steer queued and in-flight messages onto survivors within a few
//! RTOs.
//!
//! The experiment: a diamond (two parallel switch-to-switch paths), a
//! steady stream of messages, and path A cut — both directions, blackhole
//! — mid-workload, restored 2 ms later. Identical topology, workload,
//! fault schedule, and seed for every contender. Reported per contender:
//! the message completion time CDF, completions inside the outage window,
//! and timeout/retransmission counts. The whole run is repeated and the
//! two JSON payloads compared byte-for-byte to demonstrate the fault
//! pipeline is deterministic.

use mtp_bench::study::{completion_stats, mtp_periodic, tcp_periodic, us};
use mtp_bench::{write_json, ExperimentRecord};
use mtp_core::{MtpConfig, MtpSenderNode};
use mtp_faults::{diamond_mtp, diamond_tcp, Diamond, FaultDriver, FaultSchedule, Ledger, LinkSpec};
use mtp_sim::time::Time;
use mtp_sim::LinkFailMode;
use mtp_tcp::{TcpConfig, TcpSenderNode, TcpWorkloadMode};
use serde::Serialize;

const SEED: u64 = 11;
const N_MSGS: u64 = 40;
const MSG_BYTES: u64 = 30_000;
const SUBMIT_EVERY_US: u64 = 50;
const OUTAGE_START_US: u64 = 500;
const OUTAGE_END_US: u64 = 2_500;
const HORIZON_US: u64 = 60_000;

#[derive(Serialize, PartialEq, Clone)]
struct Contender {
    name: &'static str,
    /// Sorted message completion times, microseconds.
    mct_cdf_us: Vec<f64>,
    completed: usize,
    completed_during_outage: usize,
    p50_us: f64,
    p99_us: f64,
    timeouts: u64,
    retransmissions: u64,
}

#[derive(Serialize, PartialEq, Clone)]
struct FailoverData {
    seed: u64,
    n_msgs: u64,
    msg_bytes: u64,
    outage_us: (u64, u64),
    contenders: Vec<Contender>,
}

/// The shared fault script: path A blackholed in both directions for the
/// outage window. Every contender runs against this exact schedule.
fn outage(d: &Diamond) -> FaultSchedule {
    let mut sched = FaultSchedule::new();
    sched.cut_both(
        d.a_fwd,
        d.a_rev,
        us(OUTAGE_START_US),
        us(OUTAGE_END_US),
        LinkFailMode::Blackhole,
    );
    sched
}

fn summarize(
    name: &'static str,
    records: impl Iterator<Item = (Time, Option<Time>)>,
    timeouts: u64,
    retransmissions: u64,
) -> Contender {
    let s = completion_stats(records, Some((OUTAGE_START_US, OUTAGE_END_US)));
    Contender {
        name,
        p50_us: s.p50_us,
        p99_us: s.p99_us,
        mct_cdf_us: s.mct_us,
        completed: s.completed,
        completed_during_outage: s.during_window,
        timeouts,
        retransmissions,
    }
}

fn run_mtp() -> Contender {
    let mut d = diamond_mtp(
        SEED,
        MtpConfig::default().with_failover(),
        mtp_periodic(N_MSGS, MSG_BYTES, SUBMIT_EVERY_US),
        LinkSpec::path_default(),
    );
    let mut drv = FaultDriver::new(outage(&d));
    drv.run_until(&mut d.sim, us(HORIZON_US));
    mtp_sim::assert_conservation(&d.sim);
    // The exactly-once ledger backs the completion numbers: every message
    // delivered once, byte totals consistent, nothing left unfinished.
    Ledger::capture(&d.sim, d.sender, d.sink).assert_exactly_once("fig_failover");
    let snd = d.sim.node_as::<MtpSenderNode>(d.sender);
    let stats = &snd.sender.stats;
    summarize(
        "mtp",
        snd.msgs.iter().map(|m| (m.submitted, m.completed)),
        stats.timeouts,
        stats.retransmissions,
    )
}

fn run_tcp(name: &'static str, cfg: TcpConfig) -> Contender {
    let mut d = diamond_tcp(
        SEED,
        cfg,
        TcpWorkloadMode::Persistent,
        tcp_periodic(N_MSGS, MSG_BYTES, SUBMIT_EVERY_US),
        LinkSpec::path_default(),
    );
    let mut drv = FaultDriver::new(outage(&d));
    drv.run_until(&mut d.sim, us(HORIZON_US));
    mtp_sim::assert_conservation(&d.sim);
    let snd = d.sim.node_as::<TcpSenderNode>(d.sender);
    summarize(
        name,
        snd.msgs.iter().map(|m| (m.submitted, m.completed)),
        snd.timeouts(),
        snd.retransmissions(),
    )
}

fn run_all() -> FailoverData {
    FailoverData {
        seed: SEED,
        n_msgs: N_MSGS,
        msg_bytes: MSG_BYTES,
        outage_us: (OUTAGE_START_US, OUTAGE_END_US),
        contenders: vec![
            run_mtp(),
            run_tcp("tcp-newreno", TcpConfig::default()),
            run_tcp("tcp-dctcp", TcpConfig::dctcp()),
        ],
    }
}

fn main() {
    let data = run_all();

    // Determinism gate: the entire pipeline — workload, fault injection,
    // failover, measurement — replayed from the same seed must produce a
    // byte-identical payload.
    let replay = run_all();
    let a = serde_json::to_string(&data).expect("serialize");
    let b = serde_json::to_string(&replay).expect("serialize");
    assert_eq!(
        a, b,
        "fig_failover replay diverged: fault pipeline is nondeterministic"
    );

    println!("Failure study: path A cut (blackhole, both directions) over");
    println!(
        "[{} us, {} us); {} messages of {} B submitted every {} us\n",
        OUTAGE_START_US, OUTAGE_END_US, N_MSGS, MSG_BYTES, SUBMIT_EVERY_US
    );
    println!(
        "{:>12} {:>10} {:>14} {:>10} {:>10} {:>9} {:>7}",
        "contender", "completed", "during-outage", "p50 (us)", "p99 (us)", "timeouts", "retx"
    );
    for c in &data.contenders {
        println!(
            "{:>12} {:>10} {:>14} {:>10.0} {:>10.0} {:>9} {:>7}",
            c.name,
            c.completed,
            c.completed_during_outage,
            c.p50_us,
            c.p99_us,
            c.timeouts,
            c.retransmissions
        );
    }

    let mtp = &data.contenders[0];
    assert!(
        mtp.completed_during_outage > 0,
        "MTP should keep completing messages mid-outage"
    );
    for tcp in &data.contenders[1..] {
        assert_eq!(
            tcp.completed_during_outage, 0,
            "{} is pinned to the dead path and must stall for the outage",
            tcp.name
        );
    }
    println!("\nreplay check: byte-identical (deterministic)");

    let path = write_json(&ExperimentRecord {
        id: "failover",
        paper_claim: "a single link failure stalls a pinned TCP flow until the path returns, \
                      while MTP's endpoint failover re-steers messages onto the surviving \
                      path and keeps completing them mid-outage",
        data,
    });
    println!("wrote {}", path.display());
}
