//! Table 1 — feature comparison of transport approaches.
//!
//! Regenerates the paper's capability matrix from records exported next to
//! each transport implementation (`mtp-tcp::capabilities`,
//! `mtp-core::capabilities`), then prints the per-cell justifications.

use mtp_bench::{write_json, ExperimentRecord};
use mtp_wire::capabilities::TransportCapabilities;

fn main() {
    let mut rows: Vec<TransportCapabilities> = Vec::new();
    // Paper order: TCP variants, DCTCP, UDP, QUIC, MPTCP, Swift, RDMA, MTP.
    let tcp = mtp_tcp::capabilities::all();
    let core = mtp_core::capabilities::all();
    rows.extend(tcp);
    for name in [
        "UDP", "QUIC", "MPTCP", "Swift", "RDMA RC", "RDMA UC", "RDMA UD", "MTP",
    ] {
        if let Some(r) = core.iter().find(|r| r.name == name) {
            rows.push(r.clone());
        }
    }

    println!("Table 1: Comparison of features available in current transport protocol approaches");
    println!("(Y = supported, x = not supported, - = unclear/not applicable)\n");
    println!(
        "{:<34} {:^8} {:^8} {:^8} {:^8} {:^8}",
        "Transport", "Mutation", "LowBuf", "MsgIndep", "MultiCC", "Isolation"
    );
    println!("{}", "-".repeat(80));
    for r in &rows {
        let c = r.row();
        println!(
            "{:<34} {:^8} {:^8} {:^8} {:^8} {:^8}",
            r.name, c[0], c[1], c[2], c[3], c[4]
        );
    }

    println!("\nJustifications:");
    for r in &rows {
        println!("\n  {}:", r.name);
        for (label, a) in [
            ("mutation", &r.data_mutation),
            ("low-buffering", &r.low_buffering),
            ("msg-independence", &r.inter_message_independence),
            ("multi-resource CC", &r.multi_resource_cc),
            ("isolation", &r.multi_entity_isolation),
        ] {
            println!("    {:<18} {} — {}", label, a.support, a.why);
        }
    }

    let path = write_json(&ExperimentRecord {
        id: "table1",
        paper_claim: "no TCP/UDP/QUIC/MPTCP/Swift/RDMA configuration meets all five \
                      in-network-computing requirements; MTP meets all five",
        data: rows,
    });
    println!("\nwrote {}", path.display());
}
