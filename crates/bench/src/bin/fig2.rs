//! Figure 2 — TCP termination: per-flow proxy buffering vs HOL blocking.
//!
//! Paper §2.3: a proxy terminates TCP with a 100 Gbps client link and a
//! 40 Gbps server link. With an unlimited receive window the proxy buffer
//! builds up over time at the 60 Gbps rate mismatch; limiting the
//! advertised window bounds the buffer but head-of-line-blocks the client:
//! bytes (and any requests multiplexed behind them) wait in a queue whose
//! drain rate is the slow side's.
//!
//! We report (a) proxy buffer occupancy over time for the unlimited
//! configuration, and (b) for several window caps, the steady buffer bound
//! and the HOL delay a newly admitted byte experiences
//! (buffer / 40 Gbps).

use mtp_bench::{write_json, ExperimentRecord};
use mtp_net::TcpProxyNode;
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::{Ctx, Headers, LinkCfg, Node, NodeId, Packet, PortId, Simulator};
use mtp_tcp::{SenderConn, TcpConfig, TcpSinkNode};
use serde::Serialize;

/// A TCP client that writes an unbounded stream through one connection.
struct BulkTcpClient {
    conn: SenderConn,
    pending: Vec<Packet>,
    armed: Option<Time>,
}

impl BulkTcpClient {
    fn new(cfg: TcpConfig, total: u64) -> BulkTcpClient {
        let mut conn = SenderConn::new(cfg, 1, 1, 2);
        let mut pending = Vec::new();
        conn.open(Time::ZERO, &mut pending);
        conn.app_write(total, Time::ZERO, &mut pending);
        BulkTcpClient {
            conn,
            pending,
            armed: None,
        }
    }

    fn flush(&mut self, ctx: &mut Ctx<'_>, out: Vec<Packet>) {
        for p in out {
            ctx.send(PortId(0), p);
        }
        match self.conn.next_deadline() {
            Some(dl) if self.armed != Some(dl) => {
                ctx.set_timer_at(dl, 1);
                self.armed = Some(dl);
            }
            Some(_) => {}
            None => self.armed = None,
        }
    }
}

impl Node for BulkTcpClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let out = std::mem::take(&mut self.pending);
        self.flush(ctx, out);
    }
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, pkt: Packet) {
        let Headers::Tcp(hdr) = pkt.headers else {
            return;
        };
        let mut out = Vec::new();
        self.conn.on_segment(ctx.now(), &hdr, &mut out);
        self.flush(ctx, out);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        self.armed = None;
        let mut out = Vec::new();
        self.conn.on_timer(ctx.now(), &mut out);
        self.flush(ctx, out);
    }
}

fn build(relay_cap: Option<u64>) -> (Simulator, NodeId) {
    let mut sim = Simulator::new(2);
    let cfg = TcpConfig {
        handshake: false,
        ..TcpConfig::default()
    };
    let client = sim.add_node(Box::new(BulkTcpClient::new(cfg.clone(), u64::MAX / 4)));
    let proxy = sim.add_node(Box::new(TcpProxyNode::new(
        cfg.clone(),
        cfg.clone(),
        1,
        2,
        relay_cap,
    )));
    let sink = sim.add_node(Box::new(TcpSinkNode::new(cfg, Duration::from_micros(100))));
    let d = Duration::from_micros(2);
    sim.connect(
        client,
        PortId(0),
        proxy,
        PortId(0),
        LinkCfg::drop_tail(Bandwidth::from_gbps(100), d, 2048),
        LinkCfg::drop_tail(Bandwidth::from_gbps(100), d, 2048),
    );
    sim.connect(
        proxy,
        PortId(1),
        sink,
        PortId(0),
        LinkCfg::drop_tail(Bandwidth::from_gbps(40), d, 2048),
        LinkCfg::drop_tail(Bandwidth::from_gbps(40), d, 2048),
    );
    (sim, proxy)
}

#[derive(Serialize)]
struct CapRow {
    window_cap_kb: u64,
    max_buffered_kb: f64,
    relayed_mb: f64,
    hol_delay_us: f64,
}

#[derive(Serialize)]
struct Fig2Data {
    unlimited_time_us: Vec<f64>,
    unlimited_buffer_mb: Vec<f64>,
    capped: Vec<CapRow>,
}

fn main() {
    // (a) Unlimited window: sample the proxy buffer every 100 us.
    let (mut sim, proxy) = build(None);
    let mut times = Vec::new();
    let mut bufs = Vec::new();
    for step in 1..=40u64 {
        let t = Time::ZERO + Duration::from_micros(100 * step);
        sim.run_until(t);
        times.push(t.as_micros_f64());
        bufs.push(sim.node_as::<TcpProxyNode>(proxy).buffered_bytes() as f64 / 1e6);
    }
    mtp_sim::assert_conservation(&sim);

    println!("Figure 2: TCP termination at a 100 Gbps -> 40 Gbps proxy\n");
    println!("(a) unlimited receive window: proxy buffer occupancy");
    println!("{:>10} {:>14}", "t (us)", "buffer (MB)");
    for (t, b) in times.iter().zip(&bufs) {
        println!("{:>10.0} {:>14.3}", t, b);
    }
    let span_us = times.last().copied().unwrap_or(1.0) - times[0];
    let growth_gbs = (bufs.last().copied().unwrap_or(0.0) - bufs[0]) / span_us * 1e6 / 1e3;
    println!("  growth ~{growth_gbs:.2} GB/s (ideal mismatch 60 Gbps = 7.5 GB/s)");

    // (b) Capped windows: bounded buffer, HOL delay = buffer / 40 Gbps.
    println!("\n(b) capped receive window: buffer bound vs HOL-blocking delay");
    println!(
        "{:>14} {:>16} {:>14} {:>16}",
        "cap (KB)", "max buffer (KB)", "relayed (MB)", "HOL delay (us)"
    );
    let drain = Bandwidth::from_gbps(40);
    let mut capped = Vec::new();
    for cap_kb in [64u64, 256, 1024, 4096] {
        let cap = cap_kb * 1024;
        let (mut sim, proxy) = build(Some(cap));
        sim.run_until(Time::ZERO + Duration::from_millis(4));
        mtp_sim::assert_conservation(&sim);
        let p = sim.node_as::<TcpProxyNode>(proxy);
        let hol = drain.serialize_time(p.max_buffered.min(u32::MAX as u64) as u32);
        let row = CapRow {
            window_cap_kb: cap_kb,
            max_buffered_kb: p.max_buffered as f64 / 1024.0,
            relayed_mb: p.relayed as f64 / 1e6,
            hol_delay_us: hol.as_micros_f64(),
        };
        println!(
            "{:>14} {:>16.1} {:>14.2} {:>16.2}",
            row.window_cap_kb, row.max_buffered_kb, row.relayed_mb, row.hol_delay_us
        );
        capped.push(row);
    }
    println!("\ntrade-off: small caps bound memory but every admitted byte waits");
    println!("behind up to the cap at 40 Gbps; large caps approach the unlimited");
    println!("configuration's unbounded buffering (the paper's Fig. 2 dilemma).");

    let path = write_json(&ExperimentRecord {
        id: "fig2",
        paper_claim: "unlimited receive window -> proxy buffer builds up over time at the \
                      rate mismatch; limited window -> HOL blocking",
        data: Fig2Data {
            unlimited_time_us: times,
            unlimited_buffer_mb: bufs,
            capped,
        },
    });
    println!("wrote {}", path.display());
}
