//! Corruption study — message integrity through seeded bit-flip storms.
//!
//! A transport for in-network computing must assume the fabric *damages*
//! frames, not just drops them: every hop that parses or rewrites a
//! header is a place where a flipped bit becomes a mis-routed or
//! mis-reassembled message. The wire integrity layer (header CRC +
//! payload checksum trailer) plus hardened receive paths turn corruption
//! back into loss: damaged frames are detected at the first hop that
//! would have trusted them, counted, and dropped, and ordinary
//! retransmission repairs the stream.
//!
//! The experiment: the diamond topology under a corruption storm — a
//! steady seeded bit-flip rate on *both* forward paths (so failover
//! cannot sidestep the damage), a bit-flip burst on a reverse path, and a
//! truncation burst — while a steady message workload runs. For every
//! contender the run must satisfy two ledgers:
//!
//!   1. exactly-once delivery: every message completes, byte totals
//!      match, nothing is duplicated (MTP asserts the full message
//!      ledger; TCP asserts completion + in-order byte count), and
//!   2. corruption accounting: the per-device `malformed` counters plus
//!      frames destroyed in-engine sum to *exactly* the number of frames
//!      the links damaged — no corrupted frame is silently accepted.
//!
//! The whole run is repeated and the two JSON payloads compared
//! byte-for-byte to demonstrate the corruption pipeline is deterministic.

use mtp_bench::study::{completion_stats, corrupted_frames, mtp_periodic, tcp_periodic, us};
use mtp_bench::{write_json, ExperimentRecord};
use mtp_core::{MtpConfig, MtpSenderNode, MtpSinkNode};
use mtp_faults::{diamond_mtp, diamond_tcp, Diamond, FaultDriver, FaultSchedule, Ledger, LinkSpec};
use mtp_net::SwitchNode;
use mtp_sim::time::Time;
use mtp_tcp::{TcpConfig, TcpSenderNode, TcpSinkNode, TcpWorkloadMode};
use serde::Serialize;

const SEED: u64 = 23;
const N_MSGS: u64 = 40;
const MSG_BYTES: u64 = 30_000;
const SUBMIT_EVERY_US: u64 = 50;
/// Steady corruption armed over [RATE_ON_US, RATE_OFF_US) on both forward
/// paths, packets-per-million and bit flips per damaged frame.
const RATE_ON_US: u64 = 100;
const RATE_OFF_US: u64 = 3_000;
const RATE_PPM: u32 = 40_000;
const RATE_FLIPS: u8 = 2;
const HORIZON_US: u64 = 60_000;

/// Where each damaged frame was caught.
#[derive(Serialize, PartialEq, Clone)]
struct Detected {
    sender: u64,
    sink: u64,
    sw1: u64,
    sw2: u64,
    /// Damaged frames recycled in-engine (queue overflow, doomed tx)
    /// before any device could inspect them.
    destroyed: u64,
}

#[derive(Serialize, PartialEq, Clone)]
struct Contender {
    name: &'static str,
    completed: usize,
    p50_us: f64,
    p99_us: f64,
    /// Frames damaged in flight across all four path links.
    corrupted_frames: u64,
    detected: Detected,
    timeouts: u64,
    retransmissions: u64,
}

#[derive(Serialize, PartialEq, Clone)]
struct CorruptionData {
    seed: u64,
    n_msgs: u64,
    msg_bytes: u64,
    rate_ppm: u32,
    rate_flips: u8,
    rate_window_us: (u64, u64),
    contenders: Vec<Contender>,
}

/// The shared corruption script. Steady damage on both forward paths (so
/// endpoint failover cannot dodge the storm by quarantining one pathlet),
/// a bit-flip burst on the A reverse path (damaged ACKs), and a
/// truncation burst on the B forward path.
fn storm(d: &Diamond) -> FaultSchedule {
    let mut sched = FaultSchedule::new();
    sched.corrupt_rate(us(RATE_ON_US), d.a_fwd, RATE_PPM, RATE_FLIPS, SEED ^ 0xA);
    sched.corrupt_rate(us(RATE_ON_US), d.b_fwd, RATE_PPM, RATE_FLIPS, SEED ^ 0xB);
    sched.corrupt_rate(us(RATE_OFF_US), d.a_fwd, 0, 0, 0);
    sched.corrupt_rate(us(RATE_OFF_US), d.b_fwd, 0, 0, 0);
    sched.bitflip_burst(us(400), d.a_rev, 12, 2, SEED ^ 0xC);
    sched.truncate_burst(us(900), d.b_fwd, 8, SEED ^ 0xD);
    sched
}

/// The corruption ledger: every damaged frame was either rejected by a
/// hardened device or destroyed in-engine — none was silently accepted.
fn audit(name: &str, corrupted: u64, det: &Detected) {
    assert!(corrupted > 0, "[{name}] the storm never damaged a frame");
    let caught = det.sender + det.sink + det.sw1 + det.sw2 + det.destroyed;
    assert_eq!(
        caught, corrupted,
        "[{name}] corruption ledger out of balance: {caught} accounted for, {corrupted} damaged"
    );
}

fn summarize(
    name: &'static str,
    records: impl Iterator<Item = (Time, Option<Time>)>,
    corrupted_frames: u64,
    detected: Detected,
    timeouts: u64,
    retransmissions: u64,
) -> Contender {
    let s = completion_stats(records, None);
    audit(name, corrupted_frames, &detected);
    Contender {
        name,
        completed: s.completed,
        p50_us: s.p50_us,
        p99_us: s.p99_us,
        corrupted_frames,
        detected,
        timeouts,
        retransmissions,
    }
}

fn run_mtp() -> Contender {
    let mut d = diamond_mtp(
        SEED,
        MtpConfig::default().with_failover(),
        mtp_periodic(N_MSGS, MSG_BYTES, SUBMIT_EVERY_US),
        LinkSpec::path_default(),
    );
    let mut drv = FaultDriver::new(storm(&d));
    drv.run_until(&mut d.sim, us(HORIZON_US));
    mtp_sim::assert_conservation(&d.sim);
    // Exactly-once under the storm: every message delivered once, byte
    // totals consistent, nothing duplicated by retransmission.
    Ledger::capture(&d.sim, d.sender, d.sink).assert_exactly_once("fig_corruption/mtp");
    let corrupted = corrupted_frames(&d);
    let detected = Detected {
        sender: d.sim.node_as::<MtpSenderNode>(d.sender).malformed,
        sink: d.sim.node_as::<MtpSinkNode>(d.sink).malformed,
        sw1: d.sim.node_as::<SwitchNode>(d.sw1).stats.malformed,
        sw2: d.sim.node_as::<SwitchNode>(d.sw2).stats.malformed,
        destroyed: d.sim.corrupted_destroyed(),
    };
    let snd = d.sim.node_as::<MtpSenderNode>(d.sender);
    let stats = &snd.sender.stats;
    summarize(
        "mtp",
        snd.msgs.iter().map(|m| (m.submitted, m.completed)),
        corrupted,
        detected,
        stats.timeouts,
        stats.retransmissions,
    )
}

fn run_tcp(name: &'static str, cfg: TcpConfig) -> Contender {
    let mut d = diamond_tcp(
        SEED,
        cfg,
        TcpWorkloadMode::Persistent,
        tcp_periodic(N_MSGS, MSG_BYTES, SUBMIT_EVERY_US),
        LinkSpec::path_default(),
    );
    let mut drv = FaultDriver::new(storm(&d));
    drv.run_until(&mut d.sim, us(HORIZON_US));
    mtp_sim::assert_conservation(&d.sim);
    let corrupted = corrupted_frames(&d);
    let detected = Detected {
        sender: d.sim.node_as::<TcpSenderNode>(d.sender).malformed,
        sink: d.sim.node_as::<TcpSinkNode>(d.sink).malformed,
        sw1: d.sim.node_as::<SwitchNode>(d.sw1).stats.malformed,
        sw2: d.sim.node_as::<SwitchNode>(d.sw2).stats.malformed,
        destroyed: d.sim.corrupted_destroyed(),
    };
    let snd = d.sim.node_as::<TcpSenderNode>(d.sender);
    assert!(snd.all_done(), "[{name}] transfer never completed");
    summarize(
        name,
        snd.msgs.iter().map(|m| (m.submitted, m.completed)),
        corrupted,
        detected,
        snd.timeouts(),
        snd.retransmissions(),
    )
}

fn run_all() -> CorruptionData {
    CorruptionData {
        seed: SEED,
        n_msgs: N_MSGS,
        msg_bytes: MSG_BYTES,
        rate_ppm: RATE_PPM,
        rate_flips: RATE_FLIPS,
        rate_window_us: (RATE_ON_US, RATE_OFF_US),
        contenders: vec![
            run_mtp(),
            run_tcp("tcp-newreno", TcpConfig::default()),
            run_tcp("tcp-dctcp", TcpConfig::dctcp()),
        ],
    }
}

fn main() {
    let data = run_all();

    // Determinism gate: the entire pipeline — workload, seeded corruption,
    // detection, recovery, measurement — replayed from the same seed must
    // produce a byte-identical payload.
    let replay = run_all();
    let a = serde_json::to_string(&data).expect("serialize");
    let b = serde_json::to_string(&replay).expect("serialize");
    assert_eq!(
        a, b,
        "fig_corruption replay diverged: corruption pipeline is nondeterministic"
    );

    println!("Corruption study: {RATE_PPM} ppm / {RATE_FLIPS}-bit flips on both forward paths");
    println!("over [{RATE_ON_US} us, {RATE_OFF_US} us), plus ACK bit-flip and truncation bursts;");
    println!("{N_MSGS} messages of {MSG_BYTES} B submitted every {SUBMIT_EVERY_US} us\n");
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>10} {:>24} {:>9} {:>7}",
        "contender",
        "completed",
        "p50 (us)",
        "p99 (us)",
        "corrupted",
        "caught (snd/sink/sw/destr)",
        "timeouts",
        "retx"
    );
    for c in &data.contenders {
        println!(
            "{:>12} {:>10} {:>10.0} {:>10.0} {:>10} {:>24} {:>9} {:>7}",
            c.name,
            c.completed,
            c.p50_us,
            c.p99_us,
            c.corrupted_frames,
            format!(
                "{}/{}/{}/{}",
                c.detected.sender,
                c.detected.sink,
                c.detected.sw1 + c.detected.sw2,
                c.detected.destroyed
            ),
            c.timeouts,
            c.retransmissions
        );
    }
    println!("\nreplay check: byte-identical (deterministic)");

    let path = write_json(&ExperimentRecord {
        id: "corruption",
        paper_claim: "in-network computing exposes transports to frame damage at every \
                      parsing hop; with a wire integrity layer and hardened receive paths, \
                      corruption degrades to ordinary loss — every damaged frame is detected \
                      and counted, every message is still delivered exactly once",
        data,
    });
    println!("wrote {}", path.display());
}
