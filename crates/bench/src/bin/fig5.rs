//! Figure 5 — multipath congestion control under path alternation.
//!
//! Paper §5.1: a fast path (100 Gbps) and a slow path (10 Gbps) between a
//! sender and a receiver; the first-hop switch alternates between them
//! every 384 µs (an optical switch). Links have 1 µs delay; queues hold
//! 128 packets with an ECN threshold of 20. A long-lasting flow's goodput
//! is sampled every 32 µs. DCTCP's single window is always converged for
//! the *previous* path; MTP's per-pathlet windows resume instantly.
//!
//! Paper result: MTP converges faster and achieves ~33% higher average
//! goodput than DCTCP.

use mtp_bench::topo::{two_path_mtp, two_path_tcp, PathSpec};
use mtp_bench::{write_json, ExperimentRecord};
use mtp_core::{MtpConfig, MtpSinkNode, ScheduledMsg};
use mtp_net::Strategy;
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_tcp::{TcpConfig, TcpSinkNode, TcpWorkloadMode};
use serde::Serialize;

const PERIOD: Duration = Duration(384_000_000); // 384 us
const SAMPLE: Duration = Duration(32_000_000); // 32 us
const HORIZON_MS: u64 = 8;
const WARMUP_BINS: usize = 1_000 / 32; // skip the first ~1 ms of slow start

#[derive(Serialize)]
struct Fig5Data {
    sample_us: f64,
    period_us: f64,
    dctcp_recovery_us: f64,
    mtp_recovery_us: f64,
    dctcp_series_gbps: Vec<f64>,
    mtp_series_gbps: Vec<f64>,
    dctcp_mean_gbps: f64,
    mtp_mean_gbps: f64,
    improvement_pct: f64,
}

fn mean_after(series: &[f64], from: usize) -> f64 {
    let s = &series[from.min(series.len())..];
    if s.is_empty() {
        return 0.0;
    }
    s.iter().sum::<f64>() / s.len() as f64
}

/// Mean time from the start of each fast-path (100 Gbps) phase until the
/// goodput first exceeds `threshold_gbps` — the "convergence" the paper's
/// Fig. 5 narrative is about. Phases with no recovery count as the full
/// phase length.
fn mean_recovery_us(series: &[f64], threshold_gbps: f64) -> f64 {
    let bins_per_phase = (PERIOD.0 / SAMPLE.0) as usize; // 12 bins
    let mut recoveries = Vec::new();
    // Fast phases start at even multiples of the period (phase 0 = fast).
    let mut phase_start = 0usize;
    while phase_start + bins_per_phase <= series.len() {
        let is_fast_phase = (phase_start / bins_per_phase).is_multiple_of(2);
        if is_fast_phase && phase_start > 0 {
            let recover_bins = series[phase_start..phase_start + bins_per_phase]
                .iter()
                .position(|&r| r >= threshold_gbps)
                .unwrap_or(bins_per_phase);
            recoveries.push(recover_bins as f64 * SAMPLE.as_micros_f64());
        }
        phase_start += bins_per_phase;
    }
    recoveries.iter().sum::<f64>() / recoveries.len().max(1) as f64
}

fn main() {
    let fast = PathSpec::new(Bandwidth::from_gbps(100), Duration::from_micros(1));
    let slow = PathSpec::new(Bandwidth::from_gbps(10), Duration::from_micros(1));
    let horizon = Time::ZERO + Duration::from_millis(HORIZON_MS);
    let flow_bytes = 200_000_000; // long-lasting flow

    // DCTCP through the alternating switch.
    let mut dctcp = two_path_tcp(
        5,
        Strategy::Alternate { period: PERIOD },
        fast,
        slow,
        vec![(Time::ZERO, flow_bytes)],
        TcpConfig::dctcp(),
        TcpWorkloadMode::Persistent,
        SAMPLE,
    );
    dctcp.sim.run_until(horizon);
    mtp_sim::assert_conservation(&dctcp.sim);
    let dctcp_series = {
        let sink = dctcp.sim.node_as::<TcpSinkNode>(dctcp.sink);
        sink.goodput.rates_gbps()
    };

    // MTP through the same network (pathlets stamped per path).
    let mut mtp = two_path_mtp(
        5,
        Strategy::Alternate { period: PERIOD },
        fast,
        slow,
        vec![ScheduledMsg::new(Time::ZERO, flow_bytes as u32)],
        MtpConfig::default(),
        SAMPLE,
    );
    mtp.sim.run_until(horizon);
    mtp_sim::assert_conservation(&mtp.sim);
    let mtp_series = {
        let sink = mtp.sim.node_as::<MtpSinkNode>(mtp.sink);
        sink.goodput.rates_gbps()
    };

    let dctcp_mean = mean_after(&dctcp_series, WARMUP_BINS);
    let mtp_mean = mean_after(&mtp_series, WARMUP_BINS);
    let improvement = (mtp_mean / dctcp_mean - 1.0) * 100.0;
    let dctcp_recovery = mean_recovery_us(&dctcp_series, 80.0);
    let mtp_recovery = mean_recovery_us(&mtp_series, 80.0);

    println!("Figure 5: multipath congestion control (goodput sampled every 32 us)");
    println!("paths alternate every 384 us between 100 Gbps and 10 Gbps\n");
    println!("{:>10} {:>12} {:>12}", "t (us)", "DCTCP Gbps", "MTP Gbps");
    let n = dctcp_series.len().max(mtp_series.len());
    for i in (0..n).step_by(4) {
        let t = i as f64 * 32.0;
        let d = dctcp_series.get(i).copied().unwrap_or(0.0);
        let m = mtp_series.get(i).copied().unwrap_or(0.0);
        println!("{:>10.0} {:>12.2} {:>12.2}", t, d, m);
    }
    println!("\nsteady-state mean (after {WARMUP_BINS} bins warmup):");
    println!("  DCTCP: {dctcp_mean:.2} Gbps");
    println!("  MTP:   {mtp_mean:.2} Gbps");
    println!("  MTP improvement: {improvement:.1}% (paper: ~33%)");
    println!("\nconvergence after each flip back to the fast path");
    println!("(time to exceed 80 Gbps; paper: \"MTP converges faster\"):");
    println!("  DCTCP: {dctcp_recovery:.0} us");
    println!("  MTP:   {mtp_recovery:.0} us");

    let path = write_json(&ExperimentRecord {
        id: "fig5",
        paper_claim: "MTP converges faster than DCTCP and achieves ~33% higher goodput \
                      on average when the network alternates paths every 384us",
        data: Fig5Data {
            sample_us: 32.0,
            period_us: 384.0,
            dctcp_recovery_us: dctcp_recovery,
            mtp_recovery_us: mtp_recovery,
            dctcp_series_gbps: dctcp_series,
            mtp_series_gbps: mtp_series,
            dctcp_mean_gbps: dctcp_mean,
            mtp_mean_gbps: mtp_mean,
            improvement_pct: improvement,
        },
    });
    println!("wrote {}", path.display());
}
