//! Ablations for the design choices discussed in paper §4.
//!
//! 1. **Pathlet granularity** ("Pathlet ID Choice"): the Fig. 5 network
//!    run with per-path pathlets vs a single pathlet spanning both paths
//!    ("using a single pathlet mimics TCP"). One shared window re-converges
//!    on every flip; per-path windows resume instantly.
//! 2. **Header overhead** ("Packet Header Overheads"): bytes of MTP header
//!    per delivered payload byte as switches append more feedback entries
//!    (0, 1, or 2 stamping hops).
//! 3. **Blob vs message mode** (§3.1.2): a 10 MB transfer under packet
//!    spraying, sent as one message (atomicity violated → spurious NACK
//!    repair) vs as per-packet blob messages (reordering is harmless by
//!    construction).

use mtp_bench::topo::{two_path_mtp, PathSpec, SERVER_ADDR};
use mtp_bench::{write_json, ExperimentRecord};
use mtp_core::{MtpConfig, MtpSenderNode, MtpSinkNode, ScheduledMsg};
use mtp_net::{FanoutForwarder, Stamp, StampKind, StaticRoutes, Strategy, SwitchNode};
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::PortId;
use mtp_wire::{EntityId, PathletId};
use serde::Serialize;

#[derive(Serialize)]
struct Ablations {
    granularity: GranularityOut,
    header_overhead: Vec<OverheadRow>,
    blob_vs_message: BlobOut,
    ndp_incast: NdpOut,
}

#[derive(Serialize)]
struct GranularityOut {
    per_path_mean_gbps: f64,
    single_pathlet_mean_gbps: f64,
}

/// Ablation 1: per-path pathlets vs one pathlet for the whole network.
fn granularity() -> GranularityOut {
    let fast = PathSpec::new(Bandwidth::from_gbps(100), Duration::from_micros(1));
    let slow = PathSpec::new(Bandwidth::from_gbps(10), Duration::from_micros(1));
    let horizon = Time::ZERO + Duration::from_millis(6);
    let warm = 1_000 / 32;

    let run = |single: bool| -> f64 {
        // Build manually so the stamps can be aliased to one pathlet.
        let mut sim = mtp_sim::Simulator::new(11);
        let snd = sim.add_node(Box::new(MtpSenderNode::new(
            MtpConfig::default(),
            1,
            SERVER_ADDR,
            EntityId(0),
            1 << 40,
            vec![ScheduledMsg::new(Time::ZERO, 200_000_000)],
        )));
        let sink = sim.add_node(Box::new(MtpSinkNode::new(
            SERVER_ADDR,
            Duration::from_micros(32),
        )));
        let p2 = if single { PathletId(1) } else { PathletId(2) };
        let sw1 = sim.add_node(Box::new(
            SwitchNode::new(
                "sw1",
                Box::new(FanoutForwarder::new(
                    StaticRoutes::new().add(1, PortId(0)),
                    vec![PortId(1), PortId(2)],
                    Strategy::Alternate {
                        period: Duration::from_micros(384),
                    },
                )),
            )
            .with_stamp(PortId(1), Stamp::new(PathletId(1), StampKind::Presence))
            .with_stamp(PortId(2), Stamp::new(p2, StampKind::Presence)),
        ));
        let sw2 = sim.add_node(Box::new(SwitchNode::new(
            "sw2",
            Box::new(FanoutForwarder::new(
                StaticRoutes::new().add(SERVER_ADDR, PortId(0)),
                vec![PortId(1), PortId(2)],
                Strategy::Fixed,
            )),
        )));
        let host = PathSpec::new(Bandwidth::from_gbps(100), Duration::from_micros(1));
        let mk = |p: PathSpec| mtp_sim::LinkCfg::ecn(p.rate, p.delay, p.cap_pkts, p.ecn_k);
        sim.connect(snd, PortId(0), sw1, PortId(0), mk(host), mk(host));
        sim.connect(sw1, PortId(1), sw2, PortId(1), mk(fast), mk(fast));
        sim.connect(sw1, PortId(2), sw2, PortId(2), mk(slow), mk(slow));
        sim.connect(sw2, PortId(0), sink, PortId(0), mk(host), mk(host));
        sim.run_until(horizon);
        mtp_sim::assert_conservation(&sim);
        let rates = sim.node_as::<MtpSinkNode>(sink).goodput.rates_gbps();
        let tail = &rates[warm.min(rates.len())..];
        tail.iter().sum::<f64>() / tail.len().max(1) as f64
    };

    GranularityOut {
        per_path_mean_gbps: run(false),
        single_pathlet_mean_gbps: run(true),
    }
}

#[derive(Serialize)]
struct OverheadRow {
    stamping_hops: usize,
    header_bytes_per_pkt: f64,
    overhead_pct_of_goodput: f64,
}

/// Ablation 2: header overhead as more hops append feedback.
fn header_overhead() -> Vec<OverheadRow> {
    let mut rows = Vec::new();
    for hops in [0usize, 1, 2] {
        let mut sim = mtp_sim::Simulator::new(13);
        let snd = sim.add_node(Box::new(MtpSenderNode::new(
            MtpConfig::default(),
            1,
            SERVER_ADDR,
            EntityId(0),
            1 << 40,
            vec![ScheduledMsg::new(Time::ZERO, 10_000_000)],
        )));
        let sink = sim.add_node(Box::new(MtpSinkNode::new(
            SERVER_ADDR,
            Duration::from_micros(100),
        )));
        // Chain of two switches; stamp the first `hops` of them. The second
        // stamp reports queue depth — a larger TLV — mimicking different
        // resource types en route.
        let mut sw_nodes = Vec::new();
        for i in 0..2 {
            let routes = StaticRoutes::new()
                .add(1, PortId(0))
                .add(SERVER_ADDR, PortId(1));
            let mut sw =
                SwitchNode::new(format!("sw{i}"), Box::new(mtp_net::StaticForwarder(routes)));
            if i < hops {
                let kind = if i == 0 {
                    StampKind::Presence
                } else {
                    StampKind::QueueDepth
                };
                sw = sw.with_stamp(PortId(1), Stamp::new(PathletId(i as u16 + 1), kind));
            }
            sw_nodes.push(sim.add_node(Box::new(sw)));
        }
        let p = PathSpec::new(Bandwidth::from_gbps(100), Duration::from_micros(1));
        let mk = || mtp_sim::LinkCfg::ecn(p.rate, p.delay, p.cap_pkts, p.ecn_k);
        sim.connect(snd, PortId(0), sw_nodes[0], PortId(0), mk(), mk());
        sim.connect(sw_nodes[0], PortId(1), sw_nodes[1], PortId(0), mk(), mk());
        let (to_sink, _) = sim.connect(sw_nodes[1], PortId(1), sink, PortId(0), mk(), mk());
        sim.run_until(Time::ZERO + Duration::from_millis(20));
        mtp_sim::assert_conservation(&sim);
        let goodput = sim.node_as::<MtpSinkNode>(sink).total_goodput();
        let stats = sim.link_stats(to_sink);
        let hdr_bytes = stats.tx_bytes.saturating_sub(goodput);
        rows.push(OverheadRow {
            stamping_hops: hops,
            header_bytes_per_pkt: hdr_bytes as f64 / stats.tx_pkts.max(1) as f64,
            overhead_pct_of_goodput: hdr_bytes as f64 / goodput.max(1) as f64 * 100.0,
        });
    }
    rows
}

#[derive(Serialize)]
struct BlobOut {
    message_mode_fct_us: f64,
    message_mode_retx: u64,
    blob_mode_fct_us: f64,
    blob_mode_retx: u64,
}

/// Ablation 3: 10 MB under packet spraying — one message vs per-packet
/// blob messages.
fn blob_vs_message() -> BlobOut {
    let a = PathSpec::new(Bandwidth::from_gbps(100), Duration::from_micros(1));
    let b = PathSpec::new(Bandwidth::from_gbps(100), Duration::from_micros(2));
    let total: u32 = 10_000_000;
    let run = |blob: bool| -> (f64, u64) {
        let schedule = if blob {
            // Blob mode (§3.1.2): every MTU chunk is an independent message.
            let mtu = 1460u32;
            let n = total.div_ceil(mtu);
            (0..n)
                .map(|i| {
                    let len = if i == n - 1 { total - i * mtu } else { mtu };
                    ScheduledMsg::new(Time::ZERO, len)
                })
                .collect()
        } else {
            vec![ScheduledMsg::new(Time::ZERO, total)]
        };
        let mut tp = two_path_mtp(
            17,
            Strategy::Spray { next: 0 },
            a,
            b,
            schedule,
            MtpConfig::default(),
            Duration::from_micros(100),
        );
        tp.sim.run_until(Time::ZERO + Duration::from_millis(100));
        mtp_sim::assert_conservation(&tp.sim);
        let sender = tp.sim.node_as::<MtpSenderNode>(tp.sender);
        let fct = sender
            .msgs
            .iter()
            .filter_map(|m| m.completed)
            .max()
            .map(|t| t.as_micros_f64())
            .unwrap_or(f64::NAN);
        (fct, sender.sender.stats.retransmissions)
    };
    let (m_fct, m_retx) = run(false);
    let (b_fct, b_retx) = run(true);
    BlobOut {
        message_mode_fct_us: m_fct,
        message_mode_retx: m_retx,
        blob_mode_fct_us: b_fct,
        blob_mode_retx: b_retx,
    }
}

#[derive(Serialize)]
struct NdpOut {
    droptail_p99_us: f64,
    droptail_timeouts: u64,
    trimming_p99_us: f64,
    trimming_timeouts: u64,
}

/// Ablation 4: "implementing NDP in MTP is simple" (§4) — an incast of 16
/// senders into one 9-packet buffer, with plain drop-tail (losses repaired
/// by RTO/gap-NACK) vs an NDP trimming queue (headers survive, receivers
/// NACK instantly, control rides a priority band).
fn ndp_incast() -> NdpOut {
    use mtp_bench::topo::{dumbbell, dumbbell_dst, dumbbell_src, PathSpec};
    use mtp_core::MtpSinkNode;
    use mtp_workload::percentile;

    let n = 16;
    let run = |trimming: bool| -> (f64, u64) {
        let edge = PathSpec::new(Bandwidth::from_gbps(100), Duration::from_micros(1));
        let shared = PathSpec::new(Bandwidth::from_gbps(100), Duration::from_micros(1));
        let shared_queue: Option<Box<dyn mtp_sim::Qdisc>> = if trimming {
            Some(Box::new(mtp_sim::TrimmingQueue::new(9, 9, 256)))
        } else {
            Some(Box::new(mtp_sim::DropTailQueue::new(9)))
        };
        // All 16 senders fire a 64 KB message at t=0: classic incast.
        let mut bell = dumbbell(
            19,
            n,
            |i| {
                Box::new(MtpSenderNode::new(
                    MtpConfig::default(),
                    dumbbell_src(i),
                    dumbbell_dst(i),
                    mtp_wire::EntityId(i as u16),
                    (i as u64 + 1) << 40,
                    vec![ScheduledMsg::new(Time::ZERO, 64 * 1024)],
                ))
            },
            |i| {
                Box::new(MtpSinkNode::new(
                    dumbbell_dst(i),
                    Duration::from_micros(100),
                ))
            },
            edge,
            shared,
            None,
            shared_queue,
        );
        bell.sim.run_until(Time::ZERO + Duration::from_millis(50));
        mtp_sim::assert_conservation(&bell.sim);
        let mut fcts = Vec::new();
        let mut timeouts = 0;
        for &s in &bell.senders {
            let node = bell.sim.node_as::<MtpSenderNode>(s);
            timeouts += node.sender.stats.timeouts;
            if let Some(f) = node.msgs[0].fct() {
                fcts.push(f.as_micros_f64());
            }
        }
        assert_eq!(fcts.len(), n, "incast must complete either way");
        (percentile(&fcts, 99.0), timeouts)
    };
    let (droptail_p99_us, droptail_timeouts) = run(false);
    let (trimming_p99_us, trimming_timeouts) = run(true);
    NdpOut {
        droptail_p99_us,
        droptail_timeouts,
        trimming_p99_us,
        trimming_timeouts,
    }
}

fn main() {
    println!("Ablations (paper section 4 design discussion)\n");

    let g = granularity();
    println!("1. pathlet granularity (Fig. 5 network, mean goodput):");
    println!(
        "   per-path pathlets:         {:.2} Gbps",
        g.per_path_mean_gbps
    );
    println!(
        "   single pathlet (TCP-like): {:.2} Gbps",
        g.single_pathlet_mean_gbps
    );
    println!(
        "   -> separate windows buy {:.1}%\n",
        (g.per_path_mean_gbps / g.single_pathlet_mean_gbps - 1.0) * 100.0
    );

    let oh = header_overhead();
    println!("2. header overhead vs feedback hops:");
    println!(
        "   {:>6} {:>20} {:>14}",
        "hops", "hdr bytes/pkt", "% of goodput"
    );
    for r in &oh {
        println!(
            "   {:>6} {:>20.1} {:>14.2}",
            r.stamping_hops, r.header_bytes_per_pkt, r.overhead_pct_of_goodput
        );
    }
    println!("   -> each feedback entry costs its TLV size per packet (paper: feedback");
    println!("      can be aggregated to contain this)\n");

    let bl = blob_vs_message();
    println!("3. blob vs message mode under packet spraying (10 MB):");
    println!(
        "   one message:       fct {:.1} us, {} spurious retransmissions",
        bl.message_mode_fct_us, bl.message_mode_retx
    );
    println!(
        "   per-packet blob:   fct {:.1} us, {} retransmissions",
        bl.blob_mode_fct_us, bl.blob_mode_retx
    );
    println!("   -> blob mode makes spraying safe: reordering across messages is free\n");

    let ndp = ndp_incast();
    println!("4. NDP via MTP (16-way incast into a 9-packet buffer):");
    println!(
        "   drop-tail:  p99 fct {:.1} us, {} RTO events",
        ndp.droptail_p99_us, ndp.droptail_timeouts
    );
    println!(
        "   trimming:   p99 fct {:.1} us, {} RTO events",
        ndp.trimming_p99_us, ndp.trimming_timeouts
    );
    println!("   -> trimmed headers turn every loss into an instant NACK: repair");
    println!("      without waiting for timeouts (the paper's NDP sketch)");

    let path = write_json(&ExperimentRecord {
        id: "ablations",
        paper_claim: "section 4: pathlet granularity is a tunable trade-off; header overhead \
                      grows with feedback; blob mode tolerates reordering",
        data: Ablations {
            granularity: g,
            header_overhead: oh,
            blob_vs_message: bl,
            ndp_incast: ndp,
        },
    });
    println!("\nwrote {}", path.display());
}
