//! Figure 7 — per-entity isolation.
//!
//! Paper §5.3: two tenants share a 100 Gbps / 10 µs link through a common
//! switch; tenant 2 generates 8× the messages (flows) of tenant 1. Three
//! systems:
//!
//! 1. **DCTCP, shared queue** — per-flow fairness gives tenant 2 ≈ 8× the
//!    bandwidth (≈ 80 vs 10 Gbps in the paper);
//! 2. **separate queues** — a DRR scheduler with one queue per tenant
//!    equalizes them, at the cost of per-tenant queue state;
//! 3. **MTP, shared queue + fair-share ingress policy** — the entity field
//!    in every MTP header lets the switch mark over-share tenants on a
//!    single queue, achieving the same equal split without extra queues.

use mtp_bench::topo::{dumbbell, dumbbell_dst, dumbbell_src, PathSpec};
use mtp_bench::{write_json, ExperimentRecord};
use mtp_core::{MtpConfig, MtpSenderNode, MtpSinkNode, ScheduledMsg};
use mtp_net::FairShareEnforcer;
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::{Classifier, DrrQueue, Headers, Qdisc};
use mtp_tcp::{TcpConfig, TcpSenderNode, TcpSinkNode, TcpWorkloadMode};
use mtp_wire::EntityId;
use serde::Serialize;

/// Tenant 2 runs this many concurrent flows (message streams).
const T2_FLOWS: usize = 8;
const HORIZON: Duration = Duration(8_000_000_000); // 8 ms
const FLOW_BYTES: u64 = 400_000_000; // long-lasting backlog

fn edge() -> PathSpec {
    PathSpec {
        rate: Bandwidth::from_gbps(100),
        delay: Duration::from_micros(1),
        cap_pkts: 256,
        ecn_k: 40,
    }
}

fn shared() -> PathSpec {
    PathSpec {
        rate: Bandwidth::from_gbps(100),
        delay: Duration::from_micros(10),
        cap_pkts: 256,
        ecn_k: 40,
    }
}

/// Host index 0 is tenant 1; 1..=8 are tenant 2's flows.
fn tenant_of(i: usize) -> u8 {
    if i == 0 {
        1
    } else {
        2
    }
}

/// Steady-state per-tenant goodput: mean of each sink's rate series over
/// the final quarter of the horizon (skipping the convergence transient).
fn per_tenant_gbps(series: &[Vec<f64>]) -> (f64, f64) {
    let mut t = [0.0f64; 2];
    for (i, rates) in series.iter().enumerate() {
        let from = rates.len() * 3 / 4;
        let tail = &rates[from..];
        let mean = tail.iter().sum::<f64>() / tail.len().max(1) as f64;
        t[(tenant_of(i) - 1) as usize] += mean;
    }
    (t[0], t[1])
}

fn run_dctcp(separate_queues: bool) -> (f64, f64) {
    let n = 1 + T2_FLOWS;
    let shared_queue: Option<Box<dyn Qdisc>> = if separate_queues {
        // One DRR band per tenant, classified by source address.
        let classify: Classifier = Box::new(|p| match &p.headers {
            Headers::Tcp(h) => usize::from(h.src_port != 1),
            Headers::Mtp(h) => usize::from(h.src_port != 1),
            Headers::Bridged { tcp, .. } => usize::from(tcp.src_port != 1),
            Headers::Raw | Headers::Mangled { .. } => 0,
        });
        Some(Box::new(DrrQueue::new(2, 256, 1500, Some(40), classify)))
    } else {
        None
    };
    let mut bell = dumbbell(
        7,
        n,
        |i| {
            Box::new(TcpSenderNode::with_addrs(
                TcpConfig::dctcp(),
                TcpWorkloadMode::Persistent,
                (i as u32 + 1) * 1_000_000,
                vec![(Time::ZERO, FLOW_BYTES)],
                dumbbell_src(i),
                dumbbell_dst(i),
            ))
        },
        |_| {
            Box::new(TcpSinkNode::new(
                TcpConfig::dctcp(),
                Duration::from_micros(100),
            ))
        },
        edge(),
        shared(),
        None,
        shared_queue,
    );
    bell.sim.run_until(Time::ZERO + HORIZON);
    mtp_sim::assert_conservation(&bell.sim);
    let series: Vec<Vec<f64>> = bell
        .sinks
        .iter()
        .map(|&s| bell.sim.node_as::<TcpSinkNode>(s).goodput.rates_gbps())
        .collect();
    per_tenant_gbps(&series)
}

fn run_mtp_fairshare() -> (f64, f64) {
    let n = 1 + T2_FLOWS;
    // With the enforcer as the sole congestion signal, the shared queue's
    // own marking threshold is lifted out of the way: the admitted
    // aggregate stays below capacity (headroom < 1), so the queue never
    // builds and never marks an under-share tenant collaterally.
    let shared = PathSpec {
        rate: Bandwidth::from_gbps(100),
        delay: Duration::from_micros(10),
        cap_pkts: 256,
        ecn_k: 192,
    };
    let policy = FairShareEnforcer::new(Bandwidth::from_gbps(100), Duration::from_micros(20));
    let mut bell = dumbbell(
        7,
        n,
        |i| {
            Box::new(MtpSenderNode::new(
                MtpConfig::default(),
                dumbbell_src(i),
                dumbbell_dst(i),
                EntityId(tenant_of(i) as u16),
                (i as u64 + 1) << 40,
                vec![ScheduledMsg::new(Time::ZERO, FLOW_BYTES as u32)],
            ))
        },
        |i| {
            Box::new(MtpSinkNode::new(
                dumbbell_dst(i),
                Duration::from_micros(100),
            ))
        },
        edge(),
        shared,
        Some(Box::new(policy)),
        None,
    );
    bell.sim.run_until(Time::ZERO + HORIZON);
    mtp_sim::assert_conservation(&bell.sim);
    let series: Vec<Vec<f64>> = bell
        .sinks
        .iter()
        .map(|&s| bell.sim.node_as::<MtpSinkNode>(s).goodput.rates_gbps())
        .collect();
    per_tenant_gbps(&series)
}

#[derive(Serialize)]
struct Row {
    system: &'static str,
    tenant1_gbps: f64,
    tenant2_gbps: f64,
    ratio: f64,
}

fn main() {
    println!("Figure 7: per-entity isolation on a shared 100 Gbps / 10 us link");
    println!("tenant 2 runs {T2_FLOWS} flows, tenant 1 runs 1\n");
    println!(
        "{:<26} {:>14} {:>14} {:>10}",
        "system", "tenant1 Gbps", "tenant2 Gbps", "T2/T1"
    );

    let mut rows = Vec::new();
    for (name, (g1, g2)) in [
        ("DCTCP shared queue", run_dctcp(false)),
        ("separate queues (DRR)", run_dctcp(true)),
        ("MTP fair-share shared q", run_mtp_fairshare()),
    ] {
        let ratio = g2 / g1.max(1e-9);
        println!("{:<26} {:>14.1} {:>14.1} {:>10.2}", name, g1, g2, ratio);
        rows.push(Row {
            system: name,
            tenant1_gbps: g1,
            tenant2_gbps: g2,
            ratio,
        });
    }

    println!("\nexpected shape (paper): shared queue ~8x skew (80 vs 10 Gbps);");
    println!("separate queues and the MTP-enabled shared queue both ~equal.");

    let path = write_json(&ExperimentRecord {
        id: "fig7",
        paper_claim: "with a shared queue tenant 2 gets ~8x tenant 1; separate queues and \
                      MTP's fair-share policy on one shared queue both achieve ~equal sharing",
        data: rows,
    });
    println!("wrote {}", path.display());
}
