//! Fabric-scale study: a multi-pod Clos with ~10k endpoints, run both
//! monolithically and sharded across pods, proving the conservative-
//! lookahead runtime reproduces the serial engine byte-for-byte at a
//! scale where single-core simulation is the bottleneck.
//!
//! Prints the run summary and writes `results/fig_fabric.json`.
//!
//! Usage: `fig_fabric [--shards N]` (default 4).

use std::time::Instant;

use mtp_bench::fabric::{build, fault_schedule, run_serial, FabricCfg};
use mtp_bench::{write_json, ExperimentRecord};
use mtp_sim::monolithic_digest;
use mtp_sim::time::{Duration, Time};
use mtp_sim::Metric;
use serde::Serialize;

#[derive(Serialize)]
struct FabricData {
    pods: usize,
    hosts: usize,
    shards: usize,
    lookahead_us: f64,
    serial_events: u64,
    serial_wall_ms: f64,
    sharded_events: u64,
    sharded_wall_ms: f64,
    scaling_x: f64,
    digest_identical: bool,
    audit_clean: bool,
    pkts_delivered: u64,
    pkts_malformed: u64,
    pkts_boundary_crossings: u64,
    host_cores: usize,
}

fn counter(snap: &mtp_sim::Snapshot, m: Metric) -> u64 {
    snap.counters.get(m as usize).copied().unwrap_or(0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut shards = 4usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--shards" => {
                i += 1;
                shards = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--shards needs a positive integer");
            }
            bad => {
                eprintln!("fig_fabric: unknown argument `{bad}`");
                eprintln!("usage: fig_fabric [--shards N]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let cfg = FabricCfg::figure();
    let seed = 1u64;
    // Host start stagger spans ~4 ms at this scale; leave room to drain.
    let horizon = Time::ZERO + Duration::from_millis(8);
    println!(
        "fabric: {} pods, {} hosts, {} shards",
        cfg.pods,
        cfg.num_hosts(),
        shards
    );
    let net = build(cfg);
    let admin = fault_schedule(&net, seed);

    let t0 = Instant::now();
    let serial = run_serial(&net, seed, None, horizon, admin.clone());
    let serial_wall = t0.elapsed().as_secs_f64();
    mtp_sim::assert_conservation(&serial);
    let serial_events = serial.events_processed();
    let want = monolithic_digest(&serial);
    println!(
        "serial:  {:>9} events  {:>9.1} ms",
        serial_events,
        serial_wall * 1e3
    );

    let plan = net.graph.plan(shards, seed, None);
    let lookahead_us = plan.lookahead.0 as f64 / 1e6;
    let t0 = Instant::now();
    let mut ss = mtp_sim::ShardedSimulator::new(plan);
    ss.schedule_admin(admin);
    ss.run_until(horizon);
    let sharded_wall = t0.elapsed().as_secs_f64();
    let sharded_events = ss.events_processed();
    let digest_identical = ss.digest() == want;
    let audit = ss.audit();
    let snap = ss.merged_snapshot();
    println!(
        "sharded: {:>9} events  {:>9.1} ms  ({:.2}x, lookahead {:.2} us)",
        sharded_events,
        sharded_wall * 1e3,
        serial_wall / sharded_wall,
        lookahead_us
    );
    println!(
        "digest {}  audit {}  delivered {} pkts  malformed {}  boundary crossings {}",
        if digest_identical {
            "identical"
        } else {
            "MISMATCH"
        },
        if audit.ok() { "clean" } else { "VIOLATED" },
        counter(&snap, Metric::PktsDelivered),
        counter(&snap, Metric::PktsMalformed),
        counter(&snap, Metric::PktsBoundaryIn),
    );

    let data = FabricData {
        pods: cfg.pods,
        hosts: cfg.num_hosts(),
        shards,
        lookahead_us,
        serial_events,
        serial_wall_ms: serial_wall * 1e3,
        sharded_events,
        sharded_wall_ms: sharded_wall * 1e3,
        scaling_x: serial_wall / sharded_wall,
        digest_identical,
        audit_clean: audit.ok(),
        pkts_delivered: counter(&snap, Metric::PktsDelivered),
        pkts_malformed: counter(&snap, Metric::PktsMalformed),
        pkts_boundary_crossings: counter(&snap, Metric::PktsBoundaryIn),
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    let path = write_json(&ExperimentRecord {
        id: "fig_fabric",
        paper_claim: "An in-network-computing fabric is simulated at the scale the paper \
                      argues for (~10k endpoints across pods); pod-sharded conservative-\
                      lookahead execution reproduces the serial engine's results exactly \
                      while spreading the event load across cores.",
        data,
    });
    println!("wrote {}", path.display());
    if !digest_identical || !audit.ok() {
        std::process::exit(1);
    }
}
