//! Figure 3 — one request per flow breaks congestion control.
//!
//! Paper §2.3: 4 hosts in a dumbbell with 100 Gbps links generate 16 KB
//! messages, opening a **new connection for each message**. Every transfer
//! pays a handshake and restarts from slow start, so aggregate throughput
//! is noisy and low. We run the same workload over persistent connections
//! as the contrast: converged congestion state makes throughput smooth.

use mtp_bench::topo::{dumbbell, dumbbell_dst, dumbbell_src, PathSpec};
use mtp_bench::{write_json, ExperimentRecord};
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_tcp::{TcpConfig, TcpSenderNode, TcpSinkNode, TcpWorkloadMode};
use serde::Serialize;

const HOSTS: usize = 4;
const MSG: u64 = 16 * 1024;
const SAMPLE: Duration = Duration(32_000_000); // 32 us bins

fn run(mode: TcpWorkloadMode, seed: u64) -> (Vec<f64>, f64, f64) {
    let edge = PathSpec::new(Bandwidth::from_gbps(100), Duration::from_micros(1));
    let shared = PathSpec::new(Bandwidth::from_gbps(100), Duration::from_micros(1));
    // Closed loop, 16 outstanding message streams per host: each stream
    // submits its next 16 KB message the moment the previous one
    // completes — the request/response pattern of the paper's Fig. 3.
    let horizon = Duration::from_millis(2);
    let n_msgs = 4000usize;
    let schedule: Vec<(Time, u64)> = (0..n_msgs).map(|_| (Time::ZERO, MSG)).collect();

    let mut bell = dumbbell(
        seed,
        HOSTS,
        |i| {
            Box::new(
                TcpSenderNode::with_addrs(
                    TcpConfig::default(),
                    mode,
                    (i as u32 + 1) * 1_000_000,
                    schedule.clone(),
                    dumbbell_src(i),
                    dumbbell_dst(i),
                )
                .closed_loop(),
            )
        },
        |_| Box::new(TcpSinkNode::new(TcpConfig::default(), SAMPLE)),
        edge,
        shared,
        None,
        None,
    );
    bell.sim.run_until(Time::ZERO + horizon);
    mtp_sim::assert_conservation(&bell.sim);
    // Aggregate goodput over the 4 receivers, per 32 us bin.
    let mut agg: Vec<f64> = Vec::new();
    for &sink in &bell.sinks {
        let rates = bell.sim.node_as::<TcpSinkNode>(sink).goodput.rates_gbps();
        if agg.len() < rates.len() {
            agg.resize(rates.len(), 0.0);
        }
        for (i, r) in rates.iter().enumerate() {
            agg[i] += r;
        }
    }
    let warm = 8; // skip first 256 us
    let steady = &agg[warm.min(agg.len())..];
    let mean = steady.iter().sum::<f64>() / steady.len().max(1) as f64;
    let var =
        steady.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / steady.len().max(1) as f64;
    (agg, mean, var.sqrt())
}

#[derive(Serialize)]
struct Fig3Data {
    sample_us: f64,
    one_rpf_series_gbps: Vec<f64>,
    persistent_series_gbps: Vec<f64>,
    one_rpf_mean_gbps: f64,
    one_rpf_stddev_gbps: f64,
    persistent_mean_gbps: f64,
    persistent_stddev_gbps: f64,
}

fn main() {
    let (one_rpf, m1, s1) = run(TcpWorkloadMode::ConnPerMessage, 3);
    let (persistent, m2, s2) = run(TcpWorkloadMode::Persistent, 3);

    println!("Figure 3: one 16 KB message per flow vs persistent connections");
    println!("4 hosts, 100 Gbps dumbbell, aggregate goodput per 32 us bin\n");
    println!(
        "{:>10} {:>14} {:>14}",
        "t (us)", "1-RPF Gbps", "persist Gbps"
    );
    let n = one_rpf.len().max(persistent.len());
    for i in (0..n).step_by(2) {
        println!(
            "{:>10.0} {:>14.2} {:>14.2}",
            i as f64 * 32.0,
            one_rpf.get(i).copied().unwrap_or(0.0),
            persistent.get(i).copied().unwrap_or(0.0)
        );
    }
    println!("\nsteady state:");
    println!("  one message per flow: mean {m1:.1} Gbps, stddev {s1:.1} Gbps");
    println!("  persistent:           mean {m2:.1} Gbps, stddev {s2:.1} Gbps");
    println!(
        "  noise ratio (stddev/mean): {:.2} vs {:.2} (paper: 1-RPF is visibly noisy)",
        s1 / m1.max(1e-9),
        s2 / m2.max(1e-9)
    );

    let path = write_json(&ExperimentRecord {
        id: "fig3",
        paper_claim: "a new connection per 16KB message causes noisy, degraded throughput \
                      (handshake + slow-start restart per message)",
        data: Fig3Data {
            sample_us: 32.0,
            one_rpf_series_gbps: one_rpf,
            persistent_series_gbps: persistent,
            one_rpf_mean_gbps: m1,
            one_rpf_stddev_gbps: s1,
            persistent_mean_gbps: m2,
            persistent_stddev_gbps: s2,
        },
    });
    println!("wrote {}", path.display());
}
