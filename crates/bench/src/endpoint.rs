//! Fixed-seed *endpoint* workloads for the perf-regression gate.
//!
//! Where [`crate::hotpath`] stresses the discrete-event engine, these
//! workloads stress the MTP endpoint state machines directly: a
//! deterministic driver shuttles packets between `MtpSender`s and an
//! `MtpReceiver` with no simulator in between, so events/second measures
//! sender/receiver processing cost (message tables, pathlet windows,
//! SACK/NACK handling, feedback echo) rather than event-loop overhead.
//!
//! Two workloads cover the two endpoint hot paths the paper's design
//! leans on:
//!
//! * [`incast_churn`] — many senders, many small messages, lossy and
//!   trimming "wire": SACK/NACK churn, duplicate suppression, immediate
//!   NACK repair, RTO timeouts, completion bookkeeping;
//! * [`multipath_feedback`] — feedback-heavy wire that stamps rotating
//!   per-pathlet TLVs (ECN, delay, rate, queue depth, path changes) onto
//!   every data packet across several traffic classes: pathlet interning,
//!   per-ACK byte attribution, controller demultiplexing, feedback echo.
//!
//! Each run reduces to a line-oriented digest of everything observable:
//! sender and receiver counters, per-(pathlet, TC) windows, completion
//! counts, and an FNV-1a hash over the wire bytes of **every header the
//! endpoints emitted, in order**. The `perfgate` binary compares digests
//! against golden files captured on the pre-overhaul endpoint code: an
//! endpoint change that alters any packet, any window, or any counter
//! shows up as a byte diff.

use std::collections::VecDeque;
use std::fmt::Write as _;

use mtp_core::{MsgDelivered, MtpConfig, MtpReceiver, MtpSender, SenderEvent};
use mtp_sim::packet::{Headers, Packet};
use mtp_sim::time::{Duration, Time};
use mtp_wire::types::flags;
use mtp_wire::{
    EcnCodepoint, EntityId, Feedback, MtpHeader, PathFeedback, PathletId, TrafficClass,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::hotpath::HotpathRun;

/// FNV-1a over every emitted header's wire bytes; order-sensitive, so any
/// change in packet contents *or* emission order changes the digest.
struct WireHash {
    state: u64,
    scratch: Vec<u8>,
}

impl WireHash {
    fn new() -> WireHash {
        WireHash {
            state: 0xcbf2_9ce4_8422_2325,
            scratch: Vec::new(),
        }
    }

    fn absorb(&mut self, hdr: &MtpHeader) {
        let n = hdr.wire_len();
        if self.scratch.len() < n {
            self.scratch.resize(n, 0);
        }
        hdr.emit(&mut self.scratch[..n]).expect("emit header");
        for &b in &self.scratch[..n] {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Shared driver state: senders on one side, a receiver on the other,
/// and two one-round-latency "wires" between them.
struct Bench {
    senders: Vec<MtpSender>,
    receiver: MtpReceiver,
    /// Data packets in flight toward the receiver.
    wire_data: VecDeque<Packet>,
    /// ACKs in flight back; each entry remembers which sender it is for.
    wire_acks: VecDeque<(usize, Packet)>,
    out: Vec<Packet>,
    now: Time,
    tick: Duration,
    events: u64,
    completions: u64,
    deliveries: u64,
    dropped: u64,
    trimmed: u64,
    acks_dropped: u64,
    hash: WireHash,
    rng: SmallRng,
    /// Reusable event-drain scratch (counted, then cleared).
    ev_deliv: Vec<MsgDelivered>,
    ev_comp: Vec<SenderEvent>,
}

const RECV_ADDR: u16 = 999;

impl Bench {
    fn new(seed: u64, n_senders: usize, tick: Duration) -> Bench {
        let senders = (0..n_senders)
            .map(|i| {
                MtpSender::new(
                    MtpConfig::default(),
                    (i + 1) as u16,
                    EntityId(i as u16),
                    ((i + 1) as u64) << 32,
                )
            })
            .collect();
        Bench {
            senders,
            receiver: MtpReceiver::new(RECV_ADDR),
            wire_data: VecDeque::new(),
            wire_acks: VecDeque::new(),
            out: Vec::new(),
            now: Time::ZERO,
            tick,
            events: 0,
            completions: 0,
            deliveries: 0,
            dropped: 0,
            trimmed: 0,
            acks_dropped: 0,
            hash: WireHash::new(),
            rng: SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
            ev_deliv: Vec::new(),
            ev_comp: Vec::new(),
        }
    }

    fn submit(&mut self, sender: usize, bytes: u32, pri: u8, tc: TrafficClass) {
        let s = &mut self.senders[sender];
        s.send_message(RECV_ADDR, bytes, pri, tc, self.now, &mut self.out);
        self.route_out(sender);
    }

    /// Move everything the sender just emitted onto the data wire.
    fn route_out(&mut self, _sender: usize) {
        for pkt in self.out.drain(..) {
            self.wire_data.push_back(pkt);
        }
    }

    /// Fire any expired retransmission timers.
    fn fire_timers(&mut self) {
        for i in 0..self.senders.len() {
            let due = matches!(self.senders[i].next_deadline(), Some(dl) if dl <= self.now);
            if due {
                self.senders[i].on_timer(self.now, &mut self.out);
                self.events += 1;
                self.route_out(i);
            }
        }
    }

    /// Deliver one round of data packets through `mutate`, which may drop
    /// (return false), trim, stamp feedback, or mark CE.
    fn deliver_data(&mut self, mut mutate: impl FnMut(&mut SmallRng, &mut MtpHeader) -> WireFate) {
        let n = self.wire_data.len();
        for _ in 0..n {
            let mut pkt = self.wire_data.pop_front().expect("counted");
            let Headers::Mtp(ref mut hdr) = pkt.headers else {
                continue;
            };
            match mutate(&mut self.rng, hdr) {
                WireFate::Drop => {
                    self.dropped += 1;
                    mtp_sim::pool::recycle_packet(pkt);
                    continue;
                }
                WireFate::Trim => {
                    hdr.flags |= flags::TRIMMED;
                    pkt.ecn = EcnCodepoint::Ect0;
                    self.trimmed += 1;
                }
                WireFate::Deliver(ecn) => pkt.ecn = ecn,
            }
            let ecn = pkt.ecn;
            let Headers::Mtp(hdr) = pkt.headers else {
                unreachable!("checked above");
            };
            self.hash.absorb(&hdr);
            // The sender's address is carried in src_port; senders are
            // numbered 1..=n.
            let sender = (hdr.src_port - 1) as usize;
            let (ack, _newly) = self.receiver.on_data(self.now, &hdr, ecn);
            self.events += 1;
            mtp_sim::pool::recycle_header(hdr);
            self.receiver.drain_events(&mut self.ev_deliv);
            self.deliveries += self.ev_deliv.len() as u64;
            self.ev_deliv.clear();
            self.wire_acks.push_back((sender, ack));
        }
    }

    /// Deliver one round of ACKs; `drop_p` is the ACK loss probability.
    fn deliver_acks(&mut self, drop_p: f64) {
        let n = self.wire_acks.len();
        for _ in 0..n {
            let (sender, pkt) = self.wire_acks.pop_front().expect("counted");
            if drop_p > 0.0 && self.rng.gen_bool(drop_p) {
                self.acks_dropped += 1;
                mtp_sim::pool::recycle_packet(pkt);
                continue;
            }
            let Headers::Mtp(hdr) = pkt.headers else {
                continue;
            };
            self.hash.absorb(&hdr);
            self.senders[sender].on_ack(self.now, &hdr, &mut self.out);
            self.events += 1;
            mtp_sim::pool::recycle_header(hdr);
            self.senders[sender].drain_events(&mut self.ev_comp);
            self.completions += self.ev_comp.len() as u64;
            self.ev_comp.clear();
            self.route_out(sender);
        }
    }

    fn all_done(&self, msgs_per_sender: u64) -> bool {
        self.senders
            .iter()
            .all(|s| s.stats.msgs_completed == msgs_per_sender)
    }

    fn digest(&self, name: &str, seed: u64, rounds: u64) -> String {
        let mut d = String::new();
        writeln!(
            d,
            "workload={name} seed={seed} rounds={rounds} events={} final_now={}",
            self.events, self.now.0
        )
        .expect("write to String");
        writeln!(
            d,
            "wire: dropped={} trimmed={} acks_dropped={} completions={} deliveries={}",
            self.dropped, self.trimmed, self.acks_dropped, self.completions, self.deliveries
        )
        .expect("write to String");
        for (i, s) in self.senders.iter().enumerate() {
            writeln!(
                d,
                "sender {i}: sent={} retx={} timeouts={} nacks={} completed={} pathlets={} srtt={}",
                s.stats.pkts_sent,
                s.stats.retransmissions,
                s.stats.timeouts,
                s.stats.nacks,
                s.stats.msgs_completed,
                s.known_pathlets(),
                s.srtt().map(|d| d.0).unwrap_or(0),
            )
            .expect("write to String");
            let mut windows: Vec<(u16, u8, u64, u64)> = s
                .pathlets()
                .iter()
                .map(|(&(p, tc), e)| (p.0, tc.0, e.cc.window(), e.inflight))
                .collect();
            windows.sort_unstable();
            write!(d, "windows {i}:").expect("write to String");
            for (p, tc, w, inflight) in windows {
                write!(d, " ({p},{tc})={w}/{inflight}").expect("write to String");
            }
            writeln!(d).expect("write to String");
        }
        let r = &self.receiver.stats;
        writeln!(
            d,
            "recv: seen={} dup={} trimmed={} nacks_sent={} delivered={} goodput={} buffered={}",
            r.pkts_seen,
            r.duplicates,
            r.trimmed,
            r.nacks_sent,
            r.msgs_delivered,
            r.goodput_bytes,
            self.receiver.buffered_bytes()
        )
        .expect("write to String");
        writeln!(d, "hdr_hash={:#018x}", self.hash.state).expect("write to String");
        d
    }
}

enum WireFate {
    Drop,
    Trim,
    Deliver(EcnCodepoint),
}

// ---------------------------------------------------------------- incast

const INCAST_SENDERS: usize = 32;
const INCAST_MSGS: u64 = 200;
const INCAST_ROUND_CAP: u64 = 60_000;

/// Many-message incast with SACK/NACK churn: 32 senders × 200 messages of
/// 1–12 packets each into one receiver, over a wire that drops, trims,
/// and CE-marks data and drops ACKs. Exercises the sender message table,
/// the ready queue, NACK repair, RTO recovery, and receiver reassembly.
pub fn incast_churn(seed: u64) -> HotpathRun {
    let mut b = Bench::new(seed, INCAST_SENDERS, Duration::from_micros(20));
    let mut rounds = 0u64;
    loop {
        // Staggered open-loop submissions: sender i submits message m at
        // round m*2 + (i % 4).
        if rounds < INCAST_MSGS * 2 + 4 {
            for i in 0..INCAST_SENDERS {
                let m = rounds.checked_sub((i % 4) as u64);
                if let Some(m) = m {
                    if m % 2 == 0 && m / 2 < INCAST_MSGS {
                        let k = m / 2;
                        // 1..=12 packets, deterministic per (sender, msg).
                        let pkts = 1 + ((k * 7 + i as u64 * 3) % 12) as u32;
                        let bytes = pkts * 1460 - (k % 700) as u32;
                        let pri = (k % 4) as u8;
                        b.submit(i, bytes, pri, TrafficClass::BEST_EFFORT);
                    }
                }
            }
        }
        b.fire_timers();
        b.deliver_data(|rng, _hdr| {
            if rng.gen_bool(0.02) {
                WireFate::Drop
            } else if rng.gen_bool(0.02) {
                WireFate::Trim
            } else if rng.gen_bool(0.08) {
                WireFate::Deliver(EcnCodepoint::Ce)
            } else {
                WireFate::Deliver(EcnCodepoint::Ect0)
            }
        });
        b.deliver_acks(0.015);
        b.now += b.tick;
        rounds += 1;
        if b.all_done(INCAST_MSGS) || rounds >= INCAST_ROUND_CAP {
            break;
        }
    }
    HotpathRun {
        events: b.events,
        digest: b.digest("incast_churn", seed, rounds),
    }
}

// ------------------------------------------------------------- multipath

const MP_SENDERS: usize = 8;
const MP_MSGS: u64 = 150;
const MP_PATHLETS: u64 = 8;
const MP_ROUND_CAP: u64 = 60_000;

/// Pathlet-feedback-heavy multipath: 8 senders × 150 messages of 4–32
/// packets across 3 traffic classes; every data packet is stamped with
/// rotating per-pathlet feedback TLVs (ECN marks, delay, explicit rate,
/// queue depth) over 8 pathlets, and every 64th packet carries a
/// `PathChange`. Exercises pathlet interning, per-ACK byte attribution,
/// controller demultiplexing, and receiver feedback echo.
pub fn multipath_feedback(seed: u64) -> HotpathRun {
    let mut b = Bench::new(seed, MP_SENDERS, Duration::from_micros(20));
    let mut rounds = 0u64;
    let mut stamp_counter = 0u64;
    loop {
        if rounds < MP_MSGS * 2 + 4 {
            for i in 0..MP_SENDERS {
                let m = rounds.checked_sub((i % 4) as u64);
                if let Some(m) = m {
                    if m % 2 == 0 && m / 2 < MP_MSGS {
                        let k = m / 2;
                        let pkts = 4 + ((k * 11 + i as u64 * 5) % 29) as u32;
                        let bytes = pkts * 1460 - (k % 900) as u32;
                        let tc = TrafficClass((k % 3) as u8);
                        let pri = (k % 4) as u8;
                        b.submit(i, bytes, pri, tc);
                    }
                }
            }
        }
        b.fire_timers();
        b.deliver_data(|rng, hdr| {
            if rng.gen_bool(0.01) {
                return WireFate::Drop;
            }
            stamp_counter += 1;
            let k = stamp_counter;
            let path = PathletId(1 + (k % MP_PATHLETS) as u16);
            let fb = match k % 3 {
                0 => Feedback::EcnMark {
                    ce: rng.gen_bool(0.15),
                },
                1 => Feedback::Delay {
                    ns: (1_000 + (k % 50) * 400) as u32,
                },
                _ => Feedback::RcpRate {
                    mbps: (20_000 + (k % 16) * 5_000) as u32,
                },
            };
            hdr.path_feedback.push(PathFeedback {
                path,
                tc: hdr.tc,
                feedback: fb,
            });
            if k.is_multiple_of(2) {
                let second = PathletId(1 + ((k / 3) % MP_PATHLETS) as u16);
                hdr.path_feedback.push(PathFeedback {
                    path: second,
                    tc: hdr.tc,
                    feedback: if k.is_multiple_of(4) {
                        Feedback::QueueDepth {
                            bytes: (k % 64) as u32 * 1500,
                        }
                    } else {
                        Feedback::EcnFraction {
                            fraction: ((k * 977) % 65536) as u16,
                        }
                    },
                });
            }
            if k.is_multiple_of(64) {
                hdr.path_feedback.push(PathFeedback {
                    path,
                    tc: hdr.tc,
                    feedback: Feedback::PathChange {
                        new_path: PathletId(1 + ((k / 64) % MP_PATHLETS) as u16),
                    },
                });
            }
            WireFate::Deliver(if rng.gen_bool(0.05) {
                EcnCodepoint::Ce
            } else {
                EcnCodepoint::Ect0
            })
        });
        b.deliver_acks(0.0);
        b.now += b.tick;
        rounds += 1;
        if b.all_done(MP_MSGS) || rounds >= MP_ROUND_CAP {
            break;
        }
    }
    HotpathRun {
        events: b.events,
        digest: b.digest("multipath_feedback", seed, rounds),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incast_is_deterministic_and_completes() {
        let a = incast_churn(1);
        let b = incast_churn(1);
        assert_eq!(a.digest, b.digest);
        assert!(
            a.digest.contains(&format!(
                "delivered={}",
                INCAST_SENDERS as u64 * INCAST_MSGS
            )),
            "all messages must be delivered:\n{}",
            a.digest.lines().take(40).collect::<Vec<_>>().join("\n")
        );
        assert!(a.events > 10_000, "too small: {} events", a.events);
    }

    #[test]
    fn multipath_is_deterministic_and_completes() {
        let a = multipath_feedback(1);
        let b = multipath_feedback(1);
        assert_eq!(a.digest, b.digest);
        assert!(
            a.digest
                .contains(&format!("delivered={}", MP_SENDERS as u64 * MP_MSGS)),
            "all messages must be delivered"
        );
        assert!(a.events > 10_000, "too small: {} events", a.events);
    }

    #[test]
    fn seeds_differ() {
        assert_ne!(incast_churn(1).digest, incast_churn(2).digest);
        assert_ne!(multipath_feedback(1).digest, multipath_feedback(2).digest);
    }

    #[test]
    fn multipath_observes_many_pathlets() {
        let r = multipath_feedback(3);
        // Every sender should have interned controllers for several
        // (pathlet, tc) pairs beyond the default pathlet.
        for line in r.digest.lines().filter(|l| l.starts_with("sender ")) {
            let pathlets: u64 = line
                .split("pathlets=")
                .nth(1)
                .and_then(|s| s.split_whitespace().next())
                .and_then(|s| s.parse().ok())
                .expect("pathlets field");
            assert!(pathlets >= 8, "expected many pathlets, got {pathlets}");
        }
    }
}
