//! Criterion: end-to-end endpoint processing rate.
//!
//! Transfers a fixed volume through the full MTP stack (sender →
//! ECN link → sink with per-packet ACKs) and through the DCTCP baseline,
//! reporting simulated-bytes-per-wall-second. This bounds how large an
//! experiment the harness can run, and compares the per-packet cost of the
//! message transport against the stream baseline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use mtp_core::{MtpConfig, MtpSenderNode, MtpSinkNode, ScheduledMsg};
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::{LinkCfg, PortId, Simulator};
use mtp_tcp::{TcpConfig, TcpSenderNode, TcpSinkNode, TcpWorkloadMode};
use mtp_wire::EntityId;

const VOLUME: u64 = 10_000_000;

fn mtp_transfer() -> u64 {
    let mut sim = Simulator::new(1);
    let snd = sim.add_node(Box::new(MtpSenderNode::new(
        MtpConfig::default(),
        1,
        2,
        EntityId(0),
        1,
        vec![ScheduledMsg::new(Time::ZERO, VOLUME as u32)],
    )));
    let sink = sim.add_node(Box::new(MtpSinkNode::new(2, Duration::from_millis(1))));
    let rate = Bandwidth::from_gbps(100);
    let d = Duration::from_micros(1);
    sim.connect(
        snd,
        PortId(0),
        sink,
        PortId(0),
        LinkCfg::ecn(rate, d, 128, 20),
        LinkCfg::ecn(rate, d, 128, 20),
    );
    sim.run();
    sim.node_as::<MtpSinkNode>(sink).total_goodput()
}

fn dctcp_transfer() -> u64 {
    let mut sim = Simulator::new(1);
    let cfg = TcpConfig::dctcp();
    let snd = sim.add_node(Box::new(TcpSenderNode::new(
        cfg.clone(),
        TcpWorkloadMode::Persistent,
        100,
        vec![(Time::ZERO, VOLUME)],
    )));
    let sink = sim.add_node(Box::new(TcpSinkNode::new(cfg, Duration::from_millis(1))));
    let rate = Bandwidth::from_gbps(100);
    let d = Duration::from_micros(1);
    sim.connect(
        snd,
        PortId(0),
        sink,
        PortId(0),
        LinkCfg::ecn(rate, d, 128, 20),
        LinkCfg::ecn(rate, d, 128, 20),
    );
    sim.run_until(Time::ZERO + Duration::from_millis(100));
    sim.node_as::<TcpSinkNode>(sink).total_delivered
}

fn bench_endpoints(c: &mut Criterion) {
    let mut g = c.benchmark_group("endpoint");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(VOLUME));
    g.bench_function("mtp_10mb_transfer", |b| {
        b.iter(|| black_box(mtp_transfer()))
    });
    g.bench_function("dctcp_10mb_transfer", |b| {
        b.iter(|| black_box(dctcp_transfer()))
    });
    g.finish();
}

criterion_group!(benches, bench_endpoints);
criterion_main!(benches);
