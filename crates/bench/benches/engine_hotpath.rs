//! Micro-benchmarks for the discrete-event engine hot paths.
//!
//! Same three workloads as the `perfgate` binary (timer churn, packet
//! forwarding chain, leaf-spine incast) at bench-friendly sizes, reported
//! as events/second. `perfgate` remains the regression *gate* (golden
//! digests plus a recorded baseline); these benches are for interactive
//! profiling: `cargo bench -p mtp-bench --bench engine_hotpath`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mtp_bench::hotpath::{forward_chain, leafspine_incast, timer_churn, wheel_stress};

fn engine_hotpath(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_hotpath");

    let churn_events = timer_churn(1, 50_000).events;
    g.throughput(Throughput::Elements(churn_events));
    g.bench_function("timer_churn_50k", |b| {
        b.iter(|| timer_churn(1, 50_000).events)
    });

    let chain_events = forward_chain(1, 8, 2_000).events;
    g.throughput(Throughput::Elements(chain_events));
    g.bench_function("forward_chain_8hop_2k", |b| {
        b.iter(|| forward_chain(1, 8, 2_000).events)
    });

    let incast_events = leafspine_incast(1).events;
    g.throughput(Throughput::Elements(incast_events));
    g.bench_function("leafspine_incast_4x4", |b| {
        b.iter(|| leafspine_incast(1).events)
    });

    // Dense RTO churn with heavy cancel/reschedule — the timing wheel's
    // worst case (every reschedule is a detach-cancel plus a re-park).
    let wheel_events = wheel_stress(1, 2_000).events;
    g.throughput(Throughput::Elements(wheel_events));
    g.bench_function("wheel_stress_2k", |b| {
        b.iter(|| wheel_stress(1, 2_000).events)
    });

    g.finish();
}

criterion_group!(benches, engine_hotpath);
criterion_main!(benches);
