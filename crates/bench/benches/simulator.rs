//! Criterion: discrete-event engine throughput.
//!
//! Measures raw event-loop rate (packets through a link per second of wall
//! time) — the budget every experiment spends from.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use mtp_sim::time::{Bandwidth, Duration};
use mtp_sim::{Ctx, Headers, Node, Packet, PortId, Simulator};

struct Blaster {
    n: u32,
}
impl Node for Blaster {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for _ in 0..self.n {
            ctx.send(PortId(0), Packet::new(Headers::Raw, 1500));
        }
    }
    fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
}

struct Echo;
impl Node for Echo {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _: PortId, pkt: Packet) {
        // Bounce a small reply for every full-size packet (exercises both
        // link directions).
        if pkt.wire_len == 1500 {
            ctx.send(PortId(0), Packet::new(Headers::Raw, 64));
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    for n in [1_000u32, 10_000] {
        g.throughput(Throughput::Elements(n as u64 * 2)); // data + echo
        g.bench_function(format!("link_pingpong_{n}_pkts"), |b| {
            b.iter(|| {
                let mut sim = Simulator::new(1);
                let a = sim.add_node(Box::new(Blaster { n }));
                let e = sim.add_node(Box::new(Echo));
                sim.connect_symmetric(
                    a,
                    PortId(0),
                    e,
                    PortId(0),
                    Bandwidth::from_gbps(100),
                    Duration::from_micros(1),
                    1 << 20,
                );
                sim.run();
                black_box(sim.now())
            })
        });
    }
    g.bench_function("timer_churn_100k", |b| {
        struct T {
            left: u32,
        }
        impl Node for T {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(Duration::from_nanos(1), 0);
            }
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _: u64) {
                if self.left > 0 {
                    self.left -= 1;
                    ctx.set_timer(Duration::from_nanos(1), 0);
                }
            }
        }
        b.iter(|| {
            let mut sim = Simulator::new(1);
            sim.add_node(Box::new(T { left: 100_000 }));
            sim.run();
            black_box(sim.now())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
