//! Criterion: MTP header codec throughput.
//!
//! Supports the paper's "low buffering and computation" requirement: an
//! in-network device must parse per-message state out of every packet, so
//! parse/emit cost bounds device throughput. We measure the owned codec
//! (`MtpHeader::parse`/`emit`) and the zero-copy view (`MtpView`) on a
//! minimal data header and on a feedback-laden ACK.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use mtp_wire::{
    Feedback, MsgId, MtpHeader, MtpView, PathFeedback, PathletId, PktNum, PktType, SackEntry,
    TrafficClass,
};

fn data_header() -> MtpHeader {
    MtpHeader {
        src_port: 1,
        dst_port: 2,
        pkt_type: PktType::Data,
        msg_id: MsgId(77),
        msg_len_pkts: 700,
        msg_len_bytes: 1_000_000,
        pkt_num: PktNum(123),
        pkt_len: 1460,
        pkt_offset: 123 * 1460,
        ..MtpHeader::default()
    }
}

fn loaded_ack() -> MtpHeader {
    MtpHeader {
        pkt_type: PktType::Ack,
        msg_id: MsgId(77),
        ack_path_feedback: (0..4)
            .map(|i| PathFeedback {
                path: PathletId(i),
                tc: TrafficClass(0),
                feedback: match i % 3 {
                    0 => Feedback::EcnMark { ce: true },
                    1 => Feedback::RcpRate { mbps: 40_000 },
                    _ => Feedback::Delay { ns: 12_345 },
                },
            })
            .collect(),
        sack: (0..8)
            .map(|i| SackEntry {
                msg: MsgId(77),
                pkt: PktNum(i),
            })
            .collect(),
        nack: (0..2)
            .map(|i| SackEntry {
                msg: MsgId(77),
                pkt: PktNum(100 + i),
            })
            .collect(),
        ..MtpHeader::default()
    }
}

fn bench_codec(c: &mut Criterion) {
    let data = data_header();
    let ack = loaded_ack();
    let data_bytes = data.to_bytes().expect("encodable");
    let ack_bytes = ack.to_bytes().expect("encodable");

    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Bytes(data_bytes.len() as u64));
    g.bench_function("emit_data_header", |b| {
        let mut buf = vec![0u8; data.wire_len()];
        b.iter(|| black_box(&data).emit(&mut buf).expect("fits"))
    });
    g.bench_function("parse_data_header", |b| {
        b.iter(|| MtpHeader::parse(black_box(&data_bytes)).expect("valid"))
    });
    g.bench_function("view_data_header", |b| {
        b.iter(|| {
            let v = MtpView::new(black_box(&data_bytes)).expect("valid");
            black_box((v.msg_id(), v.pkt_num(), v.msg_len_bytes()))
        })
    });

    g.throughput(Throughput::Bytes(ack_bytes.len() as u64));
    g.bench_function("parse_loaded_ack", |b| {
        b.iter(|| MtpHeader::parse(black_box(&ack_bytes)).expect("valid"))
    });
    g.bench_function("view_loaded_ack_feedback_walk", |b| {
        b.iter(|| {
            let v = MtpView::new(black_box(&ack_bytes)).expect("valid");
            let n = v.ack_path_feedback().filter(|f| f.is_ok()).count()
                + v.sack().count()
                + v.nack().count();
            black_box(n)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
