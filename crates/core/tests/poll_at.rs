//! Pins for the endpoint cores' `poll_at()` timer-deadline accessors.
//!
//! A wire driver owns no simulator: it blocks in `poll(2)` until the
//! core's next deadline and calls `on_timer` when it passes. These tests
//! prove that driving a sender purely off `poll_at()` reproduces the
//! *simulator's* firing schedule exactly — same RTO count at every
//! cutoff — and that quarantine releases are covered by the deadline
//! even when no packet is in flight (where `next_deadline()` alone
//! would sleep forever and never re-probe).

use mtp_core::{MtpConfig, MtpSender, MtpSenderNode, ScheduledMsg};
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::{Ctx, Headers, LinkCfg, Node, Packet, PortId, Simulator};
use mtp_wire::{
    EntityId, Feedback, MtpHeader, PathFeedback, PathletId, PktType, SackEntry, TrafficClass,
};

/// A node that swallows every packet: the sender facing it never hears
/// an ACK, so its entire behaviour is its RTO schedule.
struct Blackhole {
    name: String,
}

impl Node for Blackhole {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, pkt: Packet) {
        mtp_sim::pool::recycle_packet(pkt);
    }

    fn name(&self) -> &str {
        &self.name
    }
}

fn recycle_all(out: &mut Vec<Packet>) {
    for p in out.drain(..) {
        mtp_sim::pool::recycle_packet(p);
    }
}

fn data_hdr(p: &Packet) -> &MtpHeader {
    match &p.headers {
        Headers::Mtp(h) => h,
        _ => panic!("expected MTP header"),
    }
}

fn ack_for(pkts: &[&Packet]) -> MtpHeader {
    MtpHeader {
        pkt_type: PktType::Ack,
        sack: pkts
            .iter()
            .map(|p| {
                let h = data_hdr(p);
                SackEntry {
                    msg: h.msg_id,
                    pkt: h.pkt_num,
                }
            })
            .collect(),
        ..MtpHeader::default()
    }
}

/// Driving a standalone sender off `poll_at()` fires exactly as many
/// RTOs as the simulator's host adapter (which arms a sim timer at
/// `next_deadline()`) fires for the identical sender, at every cutoff.
#[test]
fn poll_at_reproduces_sim_rto_firing_schedule() {
    const MSG_BYTES: u32 = 100_000;
    const MSG_ID_BASE: u64 = 1 << 32;

    let mut sim = Simulator::new(1);
    let snd = sim.add_node(Box::new(MtpSenderNode::new(
        MtpConfig::default(),
        1,
        2,
        EntityId(0),
        MSG_ID_BASE,
        vec![ScheduledMsg::new(Time::ZERO, MSG_BYTES)],
    )));
    let hole = sim.add_node(Box::new(Blackhole {
        name: "blackhole".into(),
    }));
    let rate = Bandwidth::from_gbps(10);
    let d = Duration::from_micros(2);
    sim.connect(
        snd,
        PortId(0),
        hole,
        PortId(0),
        LinkCfg::drop_tail(rate, d, 1024),
        LinkCfg::drop_tail(rate, d, 1024),
    );

    let mut replica = MtpSender::new(MtpConfig::default(), 1, EntityId(0), MSG_ID_BASE);
    let mut out = Vec::new();
    replica.send_message(
        2,
        MSG_BYTES,
        0,
        TrafficClass::BEST_EFFORT,
        Time::ZERO,
        &mut out,
    );
    recycle_all(&mut out);

    // With failover disabled there is no quarantine deadline; poll_at is
    // exactly the RTO accessor the sim adapter arms.
    assert_eq!(replica.poll_at(), replica.next_deadline());

    for cutoff_us in [777, 1_913, 5_111, 19_777] {
        let cutoff = Time::ZERO + Duration::from_micros(cutoff_us);
        sim.run_until(cutoff);
        while let Some(t) = replica.poll_at() {
            if t > cutoff {
                break;
            }
            replica.on_timer(t, &mut out);
            recycle_all(&mut out);
        }
        let sim_timeouts = sim.node_as::<MtpSenderNode>(snd).sender.stats.timeouts;
        assert!(sim_timeouts > 0 || cutoff_us < 1_000, "sim RTOs firing");
        assert_eq!(
            replica.stats.timeouts, sim_timeouts,
            "RTO count diverged at cutoff {cutoff_us}µs"
        );
    }
}

/// With failover enabled and nothing in flight, `poll_at()` is exactly
/// the quarantine release instant — `next_deadline()` alone returns
/// `None` there, and a driver sleeping on it would never re-probe.
#[test]
fn poll_at_covers_quarantine_release_with_empty_inflight() {
    let cfg = MtpConfig::default().with_failover();
    let backoff = cfg.failover.probe_backoff;
    let mut s = MtpSender::new(cfg, 1, EntityId(0), 1000);
    let mut out = Vec::new();
    s.send_message(
        2,
        100_000,
        0,
        TrafficClass::BEST_EFFORT,
        Time::ZERO,
        &mut out,
    );

    // Steer the active pathlet to 7 via echoed feedback; the window the
    // ACK opens admits fresh packets charged to 7.
    let mut ack = ack_for(&[&out[0]]);
    ack.ack_path_feedback = vec![PathFeedback {
        path: PathletId(7),
        tc: TrafficClass::BEST_EFFORT,
        feedback: Feedback::EcnMark { ce: false },
    }];
    let mut on7 = Vec::new();
    s.on_ack(Time::ZERO + Duration::from_micros(10), &ack, &mut on7);
    assert_eq!(s.active_pathlet().0, PathletId(7));
    assert!(!on7.is_empty());

    // Two loss events attributed to pathlet 7 quarantine it.
    let nack_hdr = MtpHeader {
        pkt_type: PktType::Ack,
        nack: on7
            .iter()
            .map(|p| {
                let h = data_hdr(p);
                SackEntry {
                    msg: h.msg_id,
                    pkt: h.pkt_num,
                }
            })
            .collect(),
        ..MtpHeader::default()
    };
    let mut out2 = Vec::new();
    s.on_ack(Time::ZERO + Duration::from_micros(20), &nack_hdr, &mut out2);
    let quarantined_at = Time::ZERO + Duration::from_micros(30);
    s.on_ack(quarantined_at, &nack_hdr, &mut out2);
    assert_eq!(s.stats.quarantines, 1);

    // The quarantine release can never be later than poll_at().
    let release = quarantined_at + backoff;
    assert!(s.poll_at().expect("deadline while quarantined") <= release);

    // ACK everything outstanding (and everything each ACK's freed window
    // emits) at a fixed instant until the message completes: inflight
    // empties, so the RTO deadline disappears...
    let ack_now = Time::ZERO + Duration::from_micros(40);
    let mut pending: Vec<Packet> = Vec::new();
    pending.append(&mut out);
    pending.append(&mut on7);
    pending.append(&mut out2);
    while !pending.is_empty() {
        let batch: Vec<&Packet> = pending.iter().take(200).collect();
        let ack = ack_for(&batch);
        let keep = pending.split_off(batch.len());
        recycle_all(&mut pending);
        pending = keep;
        let mut emitted = Vec::new();
        s.on_ack(ack_now, &ack, &mut emitted);
        pending.append(&mut emitted);
    }
    assert_eq!(s.stats.msgs_completed, 1);
    assert_eq!(s.next_deadline(), None, "nothing in flight");

    // ...and poll_at() is *exactly* the quarantine release instant.
    assert_eq!(s.poll_at(), Some(release));

    // Firing the timer there releases the quarantine (one re-probe) and
    // clears the deadline entirely.
    s.on_timer(release, &mut out);
    recycle_all(&mut out);
    assert_eq!(s.stats.reprobes, 1);
    assert_eq!(s.poll_at(), None);
}

/// The receiver's only timer is completed-record GC: `poll_at()` is the
/// oldest completion plus the linger, and `on_poll` collects it.
#[test]
fn receiver_poll_at_drives_completed_gc() {
    use mtp_core::MtpReceiver;
    use mtp_wire::{EcnCodepoint, MsgId, PktNum};

    let linger = Duration::from_micros(500);
    let mut r = MtpReceiver::new(2).with_gc_linger(linger);
    assert_eq!(r.poll_at(), None, "no completions yet");

    let hdr = MtpHeader {
        pkt_type: PktType::Data,
        msg_id: MsgId(77),
        msg_len_pkts: 1,
        msg_len_bytes: 100,
        pkt_num: PktNum(0),
        pkt_len: 100,
        pkt_offset: 0,
        ..MtpHeader::default()
    };
    let t0 = Time::ZERO + Duration::from_micros(10);
    let (ack, newly) = r.on_data(t0, &hdr, EcnCodepoint::Ect0);
    mtp_sim::pool::recycle_packet(ack);
    assert_eq!(newly, 100);

    assert_eq!(r.poll_at(), Some(t0 + linger));
    assert_eq!(r.on_poll(t0 + Duration::from_micros(100)), 0, "too early");
    assert_eq!(r.poll_at(), Some(t0 + linger), "deadline unchanged");
    assert_eq!(r.on_poll(t0 + linger), 1, "linger elapsed: one record GCed");
    assert_eq!(r.poll_at(), None, "nothing left to collect");
}
