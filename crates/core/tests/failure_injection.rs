//! Failure injection: the MTP endpoint's repair machinery must deliver
//! every message through loss, reordering, trimming, and duplication-free
//! goodput accounting must hold throughout. Property-based: loss rate,
//! message sizes, and counts are all randomized (deterministically).

use proptest::prelude::*;

use mtp_core::{MtpConfig, MtpSenderNode, MtpSinkNode, ScheduledMsg};
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::{DropTailQueue, LinkCfg, LossyQueue, ReorderQueue, Simulator};
use mtp_sim::{NodeId, PortId};
use mtp_wire::EntityId;

fn run_with_queue(
    queue: Box<dyn mtp_sim::Qdisc>,
    schedule: Vec<ScheduledMsg>,
    horizon_ms: u64,
) -> (Simulator, NodeId, NodeId) {
    let mut sim = Simulator::new(1);
    let snd = sim.add_node(Box::new(MtpSenderNode::new(
        MtpConfig::default(),
        1,
        2,
        EntityId(0),
        1 << 40,
        schedule,
    )));
    let sink = sim.add_node(Box::new(MtpSinkNode::new(2, Duration::from_micros(100))));
    let rate = Bandwidth::from_gbps(10);
    let d = Duration::from_micros(2);
    sim.connect(
        snd,
        PortId(0),
        sink,
        PortId(0),
        LinkCfg {
            rate,
            delay: d,
            queue,
        },
        LinkCfg::drop_tail(rate, d, 512),
    );
    sim.run_until(Time::ZERO + Duration::from_millis(horizon_ms));
    mtp_sim::assert_conservation(&sim);
    (sim, snd, sink)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any loss rate up to 30% on the data direction: every message is
    /// eventually delivered, exactly once, with exact byte counts.
    #[test]
    fn all_messages_survive_random_loss(
        loss in 0.0f64..0.3,
        seed in any::<u64>(),
        n_msgs in 1usize..8,
        msg_kb in 1u32..64,
    ) {
        let bytes = msg_kb * 1024;
        let schedule: Vec<ScheduledMsg> = (0..n_msgs)
            .map(|i| ScheduledMsg::new(Time::ZERO + Duration::from_micros(10 * i as u64), bytes))
            .collect();
        let queue = Box::new(LossyQueue::new(
            Box::new(DropTailQueue::new(512)),
            loss,
            seed,
        ));
        let (sim, snd, sink) = run_with_queue(queue, schedule, 400);
        let sender = sim.node_as::<MtpSenderNode>(snd);
        prop_assert!(sender.all_done(), "incomplete under {loss:.2} loss");
        let sink = sim.node_as::<MtpSinkNode>(sink);
        prop_assert_eq!(sink.delivered.len(), n_msgs);
        prop_assert_eq!(sink.total_goodput(), n_msgs as u64 * bytes as u64);
        // No message delivered twice.
        let mut ids: Vec<_> = sink.delivered.iter().map(|m| m.id).collect();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), n_msgs);
    }

    /// Deterministic reordering inside the link: messages still deliver,
    /// and the receiver's spurious NACKs only cost retransmissions, never
    /// correctness.
    #[test]
    fn messages_survive_reordering(
        nth in 2u64..6,
        delay_pkts in 1usize..8,
        msg_kb in 8u32..128,
    ) {
        let schedule = vec![ScheduledMsg::new(Time::ZERO, msg_kb * 1024)];
        let queue = Box::new(ReorderQueue::new(
            Box::new(DropTailQueue::new(512)),
            nth,
            delay_pkts,
        ));
        let (sim, snd, sink) = run_with_queue(queue, schedule, 400);
        prop_assert!(sim.node_as::<MtpSenderNode>(snd).all_done());
        prop_assert_eq!(
            sim.node_as::<MtpSinkNode>(sink).total_goodput(),
            msg_kb as u64 * 1024
        );
    }
}

/// Catastrophic loss (55%) on data with spared control traffic: progress
/// is slow — the window floors and the capped-backoff RTO becomes the
/// engine of repair — but correctness holds.
#[test]
fn extreme_loss_eventually_completes() {
    let schedule = vec![ScheduledMsg::new(Time::ZERO, 50_000)];
    let queue =
        Box::new(LossyQueue::new(Box::new(DropTailQueue::new(512)), 0.55, 99).sparing_control(100));
    let (sim, snd, sink) = run_with_queue(queue, schedule, 2_000);
    assert!(
        sim.node_as::<MtpSenderNode>(snd).all_done(),
        "55% loss survived"
    );
    assert_eq!(sim.node_as::<MtpSinkNode>(sink).total_goodput(), 50_000);
}

/// Loss on the ACK direction: SACKs vanish, the sender RTO-retransmits,
/// the receiver re-ACKs duplicates, and completion still happens.
#[test]
fn ack_loss_is_repaired_by_retransmission() {
    let mut sim = Simulator::new(1);
    let snd = sim.add_node(Box::new(MtpSenderNode::new(
        MtpConfig::default(),
        1,
        2,
        EntityId(0),
        1 << 40,
        vec![ScheduledMsg::new(Time::ZERO, 100_000)],
    )));
    let sink = sim.add_node(Box::new(MtpSinkNode::new(2, Duration::from_micros(100))));
    let rate = Bandwidth::from_gbps(10);
    let d = Duration::from_micros(2);
    sim.connect(
        snd,
        PortId(0),
        sink,
        PortId(0),
        LinkCfg::drop_tail(rate, d, 512),
        // 40% of ACKs vanish.
        LinkCfg {
            rate,
            delay: d,
            queue: Box::new(LossyQueue::new(Box::new(DropTailQueue::new(512)), 0.4, 5)),
        },
    );
    sim.run_until(Time::ZERO + Duration::from_millis(500));
    mtp_sim::assert_conservation(&sim);
    let sender = sim.node_as::<MtpSenderNode>(snd);
    assert!(sender.all_done(), "completed despite ACK loss");
    let sink = sim.node_as::<MtpSinkNode>(sink);
    assert_eq!(
        sink.total_goodput(),
        100_000,
        "duplicates not double-counted"
    );
    assert!(
        sink.receiver.stats.duplicates > 0,
        "retransmissions did arrive"
    );
}

/// Closed-loop MTP workload: each message submitted on its predecessor's
/// completion; all finish in strict order.
#[test]
fn closed_loop_submission_is_sequential() {
    let mut sim = Simulator::new(1);
    let schedule: Vec<ScheduledMsg> = (0..20)
        .map(|_| ScheduledMsg::new(Time::ZERO, 50_000))
        .collect();
    let snd = sim.add_node(Box::new(
        MtpSenderNode::new(MtpConfig::default(), 1, 2, EntityId(0), 1 << 40, schedule)
            .closed_loop(),
    ));
    let sink = sim.add_node(Box::new(MtpSinkNode::new(2, Duration::from_micros(100))));
    let rate = Bandwidth::from_gbps(10);
    let d = Duration::from_micros(2);
    sim.connect(
        snd,
        PortId(0),
        sink,
        PortId(0),
        LinkCfg::drop_tail(rate, d, 256),
        LinkCfg::drop_tail(rate, d, 256),
    );
    sim.run_until(Time::ZERO + Duration::from_millis(100));
    mtp_sim::assert_conservation(&sim);
    let sender = sim.node_as::<MtpSenderNode>(snd);
    assert!(sender.all_done());
    // Submissions are strictly ordered: message i+1 submitted at message
    // i's completion time.
    for w in sender.msgs.windows(2) {
        assert_eq!(Some(w[1].submitted), w[0].completed);
    }
    assert_eq!(sim.node_as::<MtpSinkNode>(sink).delivered.len(), 20);
}

/// Receiver GC reclaims completed-message state without disturbing
/// in-flight messages.
#[test]
fn receiver_gc_reclaims_completed_state() {
    let mut sim = Simulator::new(1);
    let schedule: Vec<ScheduledMsg> = (0..10)
        .map(|i| ScheduledMsg::new(Time::ZERO + Duration::from_micros(i), 20_000))
        .collect();
    let snd = sim.add_node(Box::new(MtpSenderNode::new(
        MtpConfig::default(),
        1,
        2,
        EntityId(0),
        1 << 40,
        schedule,
    )));
    let sink = sim.add_node(Box::new(MtpSinkNode::new(2, Duration::from_micros(100))));
    let rate = Bandwidth::from_gbps(10);
    let d = Duration::from_micros(2);
    sim.connect(
        snd,
        PortId(0),
        sink,
        PortId(0),
        LinkCfg::drop_tail(rate, d, 256),
        LinkCfg::drop_tail(rate, d, 256),
    );
    sim.run_until(Time::ZERO + Duration::from_millis(100));
    mtp_sim::assert_conservation(&sim);
    let now = sim.now();
    let sink = sim.node_as_mut::<MtpSinkNode>(sink);
    assert_eq!(sink.delivered.len(), 10);
    let collected = sink.receiver.gc_completed(now);
    assert_eq!(collected, 10, "all completed messages collected");
    assert_eq!(sink.receiver.in_reassembly(), 0);
}
