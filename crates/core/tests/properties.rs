//! Property-based tests of the sans-IO MTP cores: receiver exactly-once
//! delivery under arbitrary arrival orders, sender robustness under
//! adversarial ACK streams, and controller window bounds under arbitrary
//! feedback.

use proptest::prelude::*;

use mtp_core::pathlet_cc::{CcKind, WINDOW_CAP, WINDOW_FLOOR};
use mtp_core::{MtpConfig, MtpReceiver, MtpSender, SenderEvent};
use mtp_sim::time::{Duration, Time};
use mtp_wire::types::flags;
use mtp_wire::{
    EcnCodepoint, EntityId, Feedback, MsgId, MtpHeader, PathFeedback, PathletId, PktNum, PktType,
    SackEntry, TrafficClass,
};

/// Final observable state of one lossy loopback session, compared both
/// against the reference ledger and against a replay of the same seed.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SessionOutcome {
    /// `(msg_id, bytes)` per receiver delivery event, sorted by id.
    delivered: Vec<(u64, u32)>,
    /// `(msg_id, bytes)` per sender completion event, sorted by id.
    completed: Vec<(u64, u32)>,
    /// `(pkts_sent, retransmissions, timeouts, nacks)`.
    stats: (u64, u64, u64, u64),
    /// `(inflight, window)` for every interned pathlet, in intern order.
    windows: Vec<(u64, u64)>,
}

/// Drive random-size messages through a sender↔receiver loopback whose
/// wire drops data packets with probability `drop_pct`% and ACKs with
/// probability `ack_drop_pct`%, occasionally letting the RTO fire instead
/// of delivering. Message `i` gets id `500 + i`. Runs until everything
/// completes (or errs if the session wedges).
fn run_lossy_session(
    seed: u64,
    drop_pct: u32,
    ack_drop_pct: u32,
    sizes: &[u32],
    fixed_window: bool,
) -> Result<SessionOutcome, String> {
    use rand::Rng;
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);

    let cc = if fixed_window {
        CcKind::Fixed { window: 15_000 }
    } else {
        CcKind::DctcpLike {
            init_window: 15_000,
        }
    };
    let mut s = MtpSender::new(
        MtpConfig {
            cc,
            ..MtpConfig::default()
        },
        1,
        EntityId(0),
        500,
    );
    let mut r = MtpReceiver::new(2);

    let mut now = Time::ZERO;
    let mut wire: std::collections::VecDeque<mtp_sim::packet::Packet> =
        std::collections::VecDeque::new();
    let mut next_msg = 0usize;
    let mut sizes_by_id = std::collections::HashMap::new();
    let mut delivered = Vec::new();
    let mut completed = Vec::new();
    let mut sev = Vec::new();
    let mut rev = Vec::new();
    let mut out = Vec::new();

    for step in 0.. {
        if step > 400_000 {
            return Err(format!(
                "session wedged: {} of {} messages complete after {step} steps",
                completed.len(),
                sizes.len()
            ));
        }
        now += Duration::from_micros(1);

        // Stagger submissions randomly through the run (always submit when
        // the session would otherwise go idle).
        let idle = wire.is_empty() && s.outstanding() == 0;
        if next_msg < sizes.len() && (idle || rng.gen_range(0u32..50) == 0) {
            let id = s.send_message(
                2,
                sizes[next_msg],
                0,
                TrafficClass::BEST_EFFORT,
                now,
                &mut out,
            );
            sizes_by_id.insert(id.0, sizes[next_msg]);
            next_msg += 1;
            wire.extend(out.drain(..));
        }

        // Occasionally stall the wire and let the retransmission timer
        // fire instead; always do so when loss has emptied the wire.
        let deadline = s.next_deadline();
        let force_timer = wire.is_empty() && s.outstanding() > 0;
        if let Some(d) = deadline {
            if force_timer || rng.gen_range(0u32..40) == 0 {
                now = Time(now.0.max(d.0));
                s.on_timer(now, &mut out);
                wire.extend(out.drain(..));
            }
        }

        let Some(pkt) = wire.pop_front() else {
            if s.outstanding() == 0 && next_msg == sizes.len() {
                break;
            }
            continue;
        };
        let hdr = pkt.headers.as_mtp().expect("loopback carries MTP");
        if rng.gen_range(0u32..100) < drop_pct {
            continue; // lost in the network
        }
        let (ack, _) = r.on_data(now, hdr, EcnCodepoint::Ect0);
        r.drain_events(&mut rev);
        for ev in rev.drain(..) {
            delivered.push((ev.id.0, ev.bytes));
        }
        if rng.gen_range(0u32..100) < ack_drop_pct {
            continue; // ACK lost on the way back
        }
        let ack_hdr = ack.headers.as_mtp().expect("receiver emits MTP");
        now += Duration::from_micros(1);
        s.on_ack(now, ack_hdr, &mut out);
        wire.extend(out.drain(..));
        s.drain_events(&mut sev);
        for ev in sev.drain(..) {
            let SenderEvent::MsgCompleted { id, .. } = ev;
            completed.push((id.0, sizes_by_id[&id.0]));
        }
    }

    if s.next_deadline().is_some() {
        return Err("quiesced sender still holds a deadline".into());
    }
    if r.buffered_bytes() != 0 {
        return Err("receiver retains buffered bytes after delivery".into());
    }

    delivered.sort_unstable();
    completed.sort_unstable();
    let windows = (0..s.pathlets().len())
        .map(|i| {
            let e = s.pathlets().at(mtp_core::pathlet_cc::PathIdx(i as u32));
            (e.inflight, e.cc.window())
        })
        .collect();
    Ok(SessionOutcome {
        delivered,
        completed,
        stats: (
            s.stats.pkts_sent,
            s.stats.retransmissions,
            s.stats.timeouts,
            s.stats.nacks,
        ),
        windows,
    })
}

fn data_pkt(msg: u64, pkt: u32, n_pkts: u32, last_len: u16, retx: bool) -> MtpHeader {
    let full = 1460u16;
    let len = if pkt == n_pkts - 1 { last_len } else { full };
    MtpHeader {
        src_port: 1,
        dst_port: 2,
        pkt_type: PktType::Data,
        msg_id: MsgId(msg),
        msg_len_pkts: n_pkts,
        msg_len_bytes: (n_pkts - 1) * full as u32 + last_len as u32,
        pkt_num: PktNum(pkt),
        pkt_len: len,
        pkt_offset: pkt * full as u32,
        flags: (if pkt == n_pkts - 1 {
            flags::LAST_PKT
        } else {
            0
        }) | (if retx { flags::RETX } else { 0 }),
        ..MtpHeader::default()
    }
}

proptest! {
    /// Any arrival order with arbitrary duplication: the receiver delivers
    /// each message exactly once with exact byte counts, and acks every
    /// packet.
    #[test]
    fn receiver_exactly_once_any_order(
        n_pkts in 1u32..50,
        last_len in 1u16..1460,
        order_seed in any::<u64>(),
        dup_each in any::<bool>(),
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut arrivals: Vec<u32> = (0..n_pkts).collect();
        if dup_each {
            arrivals.extend(0..n_pkts);
        }
        let mut rng = rand::rngs::SmallRng::seed_from_u64(order_seed);
        arrivals.shuffle(&mut rng);

        let mut r = MtpReceiver::new(2);
        let total = (n_pkts - 1) as u64 * 1460 + last_len as u64;
        let mut goodput = 0u64;
        for (i, pkt) in arrivals.iter().enumerate() {
            // Mark out-of-order packets as retransmissions so spurious
            // NACKs don't fire (we're testing delivery, not repair).
            let hdr = data_pkt(7, *pkt, n_pkts, last_len, i > 0);
            let (ack, newly) = r.on_data(Time(i as u64), &hdr, EcnCodepoint::Ect0);
            goodput += newly;
            let ah = ack.headers.as_mtp().expect("ack");
            prop_assert_eq!(ah.pkt_type, PktType::Ack);
            let want = SackEntry { msg: MsgId(7), pkt: PktNum(*pkt) };
            prop_assert!(ah.sack.contains(&want));
        }
        prop_assert_eq!(goodput, total);
        prop_assert_eq!(r.stats.msgs_delivered, 1);
        let mut delivered = Vec::new();
        r.drain_events(&mut delivered);
        prop_assert_eq!(delivered.len(), 1);
        prop_assert_eq!(r.buffered_bytes(), 0, "completed messages release buffer");
    }

    /// The sender never panics and never over-completes under an
    /// adversarial ACK stream (random SACK/NACK entries, including ids it
    /// never sent, duplicates, and feedback for unknown pathlets).
    #[test]
    fn sender_survives_adversarial_acks(
        msg_bytes in 1u32..200_000,
        entries in prop::collection::vec(
            (any::<bool>(), 0u64..4, 0u32..64, any::<u16>()),
            0..64
        ),
    ) {
        let mut s = MtpSender::new(MtpConfig::default(), 1, EntityId(0), 100);
        let mut out = Vec::new();
        let id = s.send_message(2, msg_bytes, 0, TrafficClass::BEST_EFFORT, Time::ZERO, &mut out);
        for (t, (is_nack, msg_off, pkt, path)) in entries.into_iter().enumerate() {
            let entry = SackEntry { msg: MsgId(100 + msg_off), pkt: PktNum(pkt) };
            let hdr = MtpHeader {
                pkt_type: PktType::Ack,
                sack: if is_nack { vec![] } else { vec![entry] },
                nack: if is_nack { vec![entry] } else { vec![] },
                ack_path_feedback: vec![PathFeedback {
                    path: PathletId(path),
                    tc: TrafficClass::BEST_EFFORT,
                    feedback: Feedback::EcnMark { ce: path % 3 == 0 },
                }],
                ..MtpHeader::default()
            };
            let mut out2 = Vec::new();
            s.on_ack(Time(1 + t as u64), &hdr, &mut out2);
        }
        // Completion events never exceed one for one message.
        let mut events = Vec::new();
        s.drain_events(&mut events);
        let completions = events
            .iter()
            .filter(|e| matches!(e, mtp_core::SenderEvent::MsgCompleted { id: i, .. } if *i == id))
            .count();
        prop_assert!(completions <= 1);
        prop_assert!(s.stats.msgs_completed <= 1);
    }

    /// Driving a full ACK set through in any order completes the message
    /// exactly once.
    #[test]
    fn sender_completes_with_shuffled_sacks(
        msg_kb in 1u32..100,
        seed in any::<u64>(),
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let bytes = msg_kb * 1024;
        let mut s = MtpSender::new(
            MtpConfig { cc: CcKind::Fixed { window: 1 << 28 }, ..MtpConfig::default() },
            1,
            EntityId(0),
            500,
        );
        let mut out = Vec::new();
        let id = s.send_message(2, bytes, 0, TrafficClass::BEST_EFFORT, Time::ZERO, &mut out);
        let n_pkts = bytes.div_ceil(1460);
        prop_assert_eq!(out.len() as u32, n_pkts, "huge fixed window sends all");
        let mut pkts: Vec<u32> = (0..n_pkts).collect();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        pkts.shuffle(&mut rng);
        for (i, p) in pkts.iter().enumerate() {
            let hdr = MtpHeader {
                pkt_type: PktType::Ack,
                sack: vec![SackEntry { msg: id, pkt: PktNum(*p) }],
                ..MtpHeader::default()
            };
            let mut o = Vec::new();
            s.on_ack(Time(1 + i as u64), &hdr, &mut o);
        }
        prop_assert_eq!(s.stats.msgs_completed, 1);
        prop_assert_eq!(s.outstanding(), 0);
        prop_assert_eq!(s.next_deadline(), None);
    }

    /// Random loss / ACK-loss / RTO interleavings through a full
    /// sender↔receiver loopback, checked against a reference ledger: every
    /// submitted message is delivered exactly once with exact bytes, the
    /// sender completes exactly the submitted set, both endpoints quiesce
    /// (nothing outstanding, no pending deadline, no buffered bytes), and
    /// the congestion state lands where the model says — all charged bytes
    /// credited back, and a `Fixed` controller's window untouched by the
    /// carnage. The whole session is then replayed from the same seed and
    /// must reproduce bit-identical stats and windows (the protocol cores
    /// are sans-IO state machines; any divergence means hidden
    /// nondeterminism).
    #[test]
    fn sender_exactly_once_under_random_loss_and_timers(
        seed in any::<u64>(),
        drop_pct in 0u32..40,
        ack_drop_pct in 0u32..20,
        sizes in prop::collection::vec(1u32..40_000, 1..4),
        fixed_window in any::<bool>(),
    ) {
        let outcome = run_lossy_session(seed, drop_pct, ack_drop_pct, &sizes, fixed_window)
            .unwrap_or_else(|m| panic!("{m}"));

        // Reference ledger: the submitted set, delivered exactly once.
        let submitted: Vec<(u64, u32)> = sizes
            .iter()
            .enumerate()
            .map(|(i, b)| (500 + i as u64, *b))
            .collect();
        prop_assert_eq!(&outcome.delivered, &submitted, "receiver ledger");
        prop_assert_eq!(&outcome.completed, &submitted, "sender ledger");

        // CC reference: quiescence credits every charged byte back, and a
        // fixed window ends exactly where it started.
        for &(inflight, window) in &outcome.windows {
            prop_assert_eq!(inflight, 0, "all charged bytes credited");
            prop_assert!((WINDOW_FLOOR..=WINDOW_CAP).contains(&window));
            if fixed_window {
                prop_assert_eq!(window, 15_000, "loss must not move a fixed window");
            }
        }

        // Replay: same seed, same interleaving, same final state.
        let replay = run_lossy_session(seed, drop_pct, ack_drop_pct, &sizes, fixed_window)
            .unwrap_or_else(|m| panic!("{m}"));
        prop_assert_eq!(outcome, replay, "session replay diverged");
    }

    /// Every controller keeps its window inside [floor, cap] under
    /// arbitrary feedback and loss sequences.
    #[test]
    fn controller_windows_stay_bounded(
        kind_sel in 0usize..4,
        ops in prop::collection::vec((0u8..6, any::<u32>()), 1..200),
    ) {
        let kind = match kind_sel {
            0 => CcKind::DctcpLike { init_window: 15_000 },
            1 => CcKind::RcpLike { init_window: 15_000 },
            2 => CcKind::SwiftLike { init_window: 15_000, target: Duration::from_micros(10) },
            _ => CcKind::Fixed { window: 15_000 },
        };
        let mut cc = kind.factory()();
        for (op, v) in ops {
            match op {
                0 => cc.on_ack(1500, Some(&Feedback::EcnMark { ce: v % 2 == 0 }), None, Time::ZERO),
                1 => cc.on_ack(1500, Some(&Feedback::RcpRate { mbps: v }), Some(Duration::from_micros(10)), Time::ZERO),
                2 => cc.on_ack(1500, Some(&Feedback::Delay { ns: v }), None, Time::ZERO),
                3 => cc.on_ack(u64::from(v) % 100_000, None, None, Time::ZERO),
                4 => cc.on_loss(Time::ZERO),
                _ => cc.on_ack(0, Some(&Feedback::EcnFraction { fraction: (v % 65536) as u16 }), None, Time::ZERO),
            }
            let w = cc.window();
            prop_assert!(
                (WINDOW_FLOOR..=WINDOW_CAP).contains(&w),
                "{} window {w} escaped bounds",
                cc.kind()
            );
        }
    }
}
