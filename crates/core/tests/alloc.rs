//! Proof that the endpoint hot path stops allocating once warm.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! phase (which grows the sender's slab, scratch tables, and ready list,
//! the receiver's reassembly slab and probe map, and the thread-local
//! header pool to steady-state sizes), a sustained data → SACK-echo → ACK
//! churn loop — receiver building ACKs in pooled headers, sender crediting
//! windows and admitting replacement packets — must perform **zero** heap
//! allocations. This pins the endpoint-design guarantees: per-ACK
//! accounting runs on reusable scratch, ACK headers are built in place in
//! recycled pool headers, and event delivery appends into caller-owned
//! buffers.
//!
//! First contact with a *new* message is deliberately outside the measured
//! windows: submission builds the per-message packet table and the
//! receiver sizes a reassembly bitmap — one-time setup, not steady state.
//!
//! This lives in an integration test (not the crate's unit tests) so the
//! counting allocator governs the whole test binary, and so the `unsafe`
//! impl of `GlobalAlloc` stays outside the library's `forbid(unsafe_code)`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use mtp_core::{CcKind, MsgDelivered, MtpConfig, MtpReceiver, MtpSender, SenderEvent};
use mtp_sim::packet::{Headers, Packet};
use mtp_sim::time::{Duration, Time};
use mtp_wire::{EcnCodepoint, EntityId, PktType, TrafficClass};

struct CountingAlloc;

// Per-thread count: a process-global counter races with the libtest
// harness thread, whose blocking `recv` of a test result lazily
// initializes a thread-local channel context — two allocations that land
// inside the measurement window or not depending on scheduling.
thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // try_with: TLS may be gone during thread teardown; those allocations
    // are not part of any measurement window anyway.
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
}

fn allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One sender / one receiver, wired back-to-back with no simulator.
struct Loopback {
    sender: MtpSender,
    receiver: MtpReceiver,
    /// Packets emitted by the sender, pending delivery.
    out: Vec<Packet>,
    /// The batch currently being delivered (second persistent buffer, so
    /// the exchange loop itself never allocates).
    wire: Vec<Packet>,
    /// Reusable event-drain buffers.
    sev: Vec<SenderEvent>,
    rev: Vec<MsgDelivered>,
    now: Time,
    delivered_pkts: u64,
}

impl Loopback {
    fn new() -> Loopback {
        // A fixed window keeps the in-flight high-water mark constant, so
        // buffer capacities reached during warm-up are final.
        let cfg = MtpConfig {
            cc: CcKind::Fixed { window: 15_000 },
            ..MtpConfig::default()
        };
        Loopback {
            sender: MtpSender::new(cfg, 1, EntityId(0), 1 << 20),
            receiver: MtpReceiver::new(2),
            out: Vec::new(),
            wire: Vec::new(),
            sev: Vec::new(),
            rev: Vec::new(),
            now: Time::ZERO,
            delivered_pkts: 0,
        }
    }

    fn tick(&mut self) {
        self.now += Duration::from_nanos(500);
    }

    fn submit(&mut self, bytes: u32) {
        let now = self.now;
        self.sender
            .send_message(2, bytes, 0, TrafficClass::BEST_EFFORT, now, &mut self.out);
    }

    /// Deliver one packet to the receiver and feed the echoed ACK straight
    /// back to the sender (window-opened admissions land in `out`).
    /// `skip` drops that packet number's first transmission, provoking a
    /// gap NACK on the next in-order arrival.
    fn process(&mut self, pkt: Packet, skip: Option<u32>) {
        self.tick();
        let Headers::Mtp(hdr) = pkt.headers else {
            unreachable!("sender emits MTP packets")
        };
        if Some(hdr.pkt_num.0) == skip && hdr.pkt_type == PktType::Data && !hdr.is_retx() {
            mtp_sim::pool::recycle_header(hdr);
            return;
        }
        let (ack, _) = self.receiver.on_data(self.now, &hdr, EcnCodepoint::Ect0);
        mtp_sim::pool::recycle_header(hdr);
        self.delivered_pkts += 1;
        self.receiver.drain_events(&mut self.rev);
        self.rev.clear();
        let Headers::Mtp(ack_hdr) = ack.headers else {
            unreachable!("receiver emits MTP ACKs")
        };
        self.tick();
        self.sender.on_ack(self.now, &ack_hdr, &mut self.out);
        mtp_sim::pool::recycle_header(ack_hdr);
        self.sender.drain_events(&mut self.sev);
        self.sev.clear();
    }

    /// Deliver the oldest pending packet (first contact for a fresh
    /// message — kept outside measured windows).
    fn deliver_first(&mut self) {
        let pkt = self.out.remove(0);
        self.process(pkt, None);
    }

    /// Run data/ACK exchanges until the wire quiesces.
    fn cycle(&mut self, skip: Option<u32>) {
        while !self.out.is_empty() {
            std::mem::swap(&mut self.out, &mut self.wire);
            // Preserve FIFO delivery order while popping from the back.
            self.wire.reverse();
            while let Some(pkt) = self.wire.pop() {
                self.process(pkt, skip);
            }
        }
    }
}

#[test]
fn endpoint_ack_echo_churn_steady_state_allocates_nothing() {
    let mut lb = Loopback::new();

    // Warm-up: several messages (one with a dropped packet to exercise
    // NACK, retransmission, and the loss scratch) grow every buffer, the
    // sender slab, the receiver probe map, and the header pool to
    // steady-state capacity.
    for round in 0..8 {
        let skip = if round == 3 { Some(7) } else { None };
        lb.submit(40 * 1460);
        lb.cycle(skip);
    }
    assert_eq!(lb.sender.stats.msgs_completed, 8, "warm-up completed");
    assert!(lb.sender.stats.nacks > 0, "warm-up exercised the NACK path");

    // Measured phase: a long message streams through the fixed window —
    // every delivery builds a pooled SACK+feedback ACK, every ACK credits
    // the window and admits the next packet. Submission and first contact
    // (one-time per-message setup) happen before measurement starts.
    lb.submit(60 * 1460);
    lb.deliver_first();
    let warm_pkts = lb.delivered_pkts;
    let before = allocs();
    lb.cycle(None);
    let after = allocs();

    let churned = lb.delivered_pkts - warm_pkts;
    assert_eq!(churned, 59, "measured phase delivered the rest");
    assert_eq!(lb.sender.stats.msgs_completed, 9);
    assert_eq!(
        after - before,
        0,
        "endpoint ACK/echo hot path allocated {} times across {} data/ACK exchanges",
        after - before,
        churned
    );
}

/// The same loop, measured across repeated NACK/retransmit episodes: loss
/// repair (gap NACKs, immediate retransmission, loss attribution, window
/// punishment) must also be allocation-free once warm.
#[test]
fn endpoint_nack_repair_steady_state_allocates_nothing() {
    let mut lb = Loopback::new();
    // Warm-up mirrors the measured workload exactly (same message size,
    // same loss position every round) so the header pool's rotation — and
    // therefore which pooled buffers carry NACK lists — reaches the same
    // periodic steady state the measurement will see.
    for _ in 0..10 {
        lb.submit(30 * 1460);
        lb.deliver_first();
        lb.cycle(Some(5));
    }
    assert!(
        lb.sender.stats.retransmissions >= 5,
        "warm-up repaired loss"
    );

    let mut measured = 0u64;
    for _ in 0..10 {
        lb.submit(30 * 1460);
        lb.deliver_first();
        let before = allocs();
        lb.cycle(Some(5));
        measured += allocs() - before;
    }
    assert_eq!(lb.sender.stats.msgs_completed, 20);
    assert_eq!(
        measured, 0,
        "NACK repair path allocated {measured} times across 10 loss episodes"
    );
}
