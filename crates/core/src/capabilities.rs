//! Table 1 rows: MTP itself, plus reference rows for the transports the
//! paper scores but this workspace does not implement (UDP, QUIC, MPTCP,
//! Swift, RDMA RC/UC/UD). MTP's row cites the mechanisms in this crate;
//! reference rows cite the structural reason from the paper's §2.3–2.4.

use mtp_wire::capabilities::{Assessment, TransportCapabilities};

/// MTP (this crate).
pub fn mtp() -> TransportCapabilities {
    TransportCapabilities {
        name: "MTP",
        data_mutation: Assessment::yes(
            "acks name (msg, pkt) pairs, never byte ranges: devices may change lengths and packet counts (sender.rs/receiver.rs)",
        ),
        low_buffering: Assessment::yes(
            "every packet carries msg id/len/offset; MtpView answers per-message questions at fixed offsets (mtp-wire::view)",
        ),
        inter_message_independence: Assessment::yes(
            "messages are independent; no connection state; per-message load balancing is safe (host.rs, blob.rs)",
        ),
        multi_resource_cc: Assessment::yes(
            "per-(pathlet, TC) controllers with TLV-typed feedback; DCTCP-like, RCP-like, Swift-like coexist (pathlet_cc.rs)",
        ),
        multi_entity_isolation: Assessment::yes(
            "entity + TC in every header let devices enforce per-entity policy without per-flow state (paper Fig. 7)",
        ),
    }
}

/// UDP (reference row).
pub fn udp() -> TransportCapabilities {
    TransportCapabilities {
        name: "UDP",
        data_mutation: Assessment::yes("no sequence space to corrupt"),
        low_buffering: Assessment::yes("stateless datagrams"),
        inter_message_independence: Assessment::yes("datagrams are independent"),
        multi_resource_cc: Assessment::no("no congestion control at all"),
        multi_entity_isolation: Assessment::no("no entity information, no fairness mechanism"),
    }
}

/// QUIC (reference row).
pub fn quic() -> TransportCapabilities {
    TransportCapabilities {
        name: "QUIC",
        data_mutation: Assessment::no("encrypted, integrity-protected payloads forbid mutation"),
        low_buffering: Assessment::yes("stream frames are self-describing"),
        inter_message_independence: Assessment::yes("independent streams avoid HOL blocking"),
        multi_resource_cc: Assessment::unclear("single CC context per connection (paper marks —)"),
        multi_entity_isolation: Assessment::no("per-connection fairness"),
    }
}

/// MPTCP (reference row).
pub fn mptcp() -> TransportCapabilities {
    TransportCapabilities {
        name: "MPTCP",
        data_mutation: Assessment::no("data sequence mapping breaks on length change"),
        low_buffering: Assessment::no("reassembly across subflows needs large buffers"),
        inter_message_independence: Assessment::yes("subflows may take different paths"),
        multi_resource_cc: Assessment::yes("coupled CC keeps per-subflow state"),
        multi_entity_isolation: Assessment::no("per-connection fairness"),
    }
}

/// Swift (reference row).
pub fn swift() -> TransportCapabilities {
    TransportCapabilities {
        name: "Swift",
        data_mutation: Assessment::no("TCP-style stream"),
        low_buffering: Assessment::yes("delay-based CC keeps queues near empty"),
        inter_message_independence: Assessment::no("single in-order stream"),
        multi_resource_cc: Assessment::no("one delay target for the whole path"),
        multi_entity_isolation: Assessment::no("per-flow fairness"),
    }
}

/// RDMA reliable connection (reference row).
pub fn rdma_rc() -> TransportCapabilities {
    TransportCapabilities {
        name: "RDMA RC",
        data_mutation: Assessment::no(
            "packet sequence numbers; mutation breaks PSN accounting (§2.4)",
        ),
        low_buffering: Assessment::yes("no co-location of messages in one packet"),
        inter_message_independence: Assessment::no(
            "in-order delivery mandated; OOO looks like loss",
        ),
        multi_resource_cc: Assessment::no("single connection context"),
        multi_entity_isolation: Assessment::no("no entity abstraction"),
    }
}

/// RDMA unreliable connection (reference row).
pub fn rdma_uc() -> TransportCapabilities {
    TransportCapabilities {
        name: "RDMA UC",
        data_mutation: Assessment::no("same PSN constraint as RC"),
        low_buffering: Assessment::yes("no reassembly of interleaved messages"),
        inter_message_independence: Assessment::no("in-order delivery mandated"),
        multi_resource_cc: Assessment::no("no CC"),
        multi_entity_isolation: Assessment::no("no entity abstraction"),
    }
}

/// RDMA unreliable datagram (reference row).
pub fn rdma_ud() -> TransportCapabilities {
    TransportCapabilities {
        name: "RDMA UD",
        data_mutation: Assessment::yes("single-packet messages; nothing to desynchronize"),
        low_buffering: Assessment::yes("stateless datagrams"),
        inter_message_independence: Assessment::yes("datagrams are independent"),
        multi_resource_cc: Assessment::no("no CC; messages capped at one MTU"),
        multi_entity_isolation: Assessment::no("no entity abstraction"),
    }
}

/// All rows exported by this crate (MTP first).
pub fn all() -> Vec<TransportCapabilities> {
    vec![
        mtp(),
        udp(),
        quic(),
        mptcp(),
        swift(),
        rdma_rc(),
        rdma_uc(),
        rdma_ud(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_wire::capabilities::Support::{No as X, Unclear as U, Yes as Y};

    /// The verdicts must match the paper's Table 1 exactly.
    #[test]
    fn rows_match_paper_table1() {
        let expect = [
            ("MTP", [Y, Y, Y, Y, Y]),
            ("UDP", [Y, Y, Y, X, X]),
            ("QUIC", [X, Y, Y, U, X]),
            ("MPTCP", [X, X, Y, Y, X]),
            ("Swift", [X, Y, X, X, X]),
            ("RDMA RC", [X, Y, X, X, X]),
            ("RDMA UC", [X, Y, X, X, X]),
            ("RDMA UD", [Y, Y, Y, X, X]),
        ];
        for (row, (name, cells)) in all().iter().zip(expect.iter()) {
            assert_eq!(&row.name, name);
            assert_eq!(&row.row(), cells, "row {name}");
        }
    }

    #[test]
    fn only_mtp_meets_all_requirements() {
        for row in all() {
            if row.name == "MTP" {
                assert_eq!(row.score(), 5);
            } else {
                assert!(row.score() < 5, "{} must not satisfy everything", row.name);
            }
        }
    }
}
