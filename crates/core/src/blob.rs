//! Bulk-data ("blob") mode: one message per packet.
//!
//! Paper §3.1.2: *"To support applications generating blobs of data, MTP
//! can generate new messages for each packet. This enables multiplexing and
//! parallelization at the network layer and operates similar to TCP. A
//! layer beneath the application in a library or OS service is responsible
//! for reassembling the blob and reliably handling any packet loss and
//! reordering of messages."*
//!
//! [`send_blob`] is that library layer on the send side: it splits a blob
//! into MTU-sized *independent messages* (so the network may spray them
//! across paths and replicas freely) and returns a [`BlobHandle`] naming
//! the contiguous message-id range. [`BlobReassembler`] is the receive
//! side: fed [`MsgDelivered`] events, it tracks per-blob completion.

use std::collections::HashMap;

use mtp_sim::packet::Packet;
use mtp_sim::time::Time;
use mtp_wire::{MsgId, TrafficClass};

use crate::receiver::MsgDelivered;
use crate::sender::MtpSender;

/// Identifies a blob: the contiguous message-id range it was split into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlobHandle {
    /// First message id of the blob.
    pub first: MsgId,
    /// Number of messages (= packets).
    pub count: u64,
    /// Total payload bytes.
    pub bytes: u64,
}

/// Split `bytes` of bulk data into per-packet messages on `sender`.
///
/// Each chunk is at most `chunk` bytes (use the sender's MTU payload) and
/// becomes an independent single-packet message, so in-network devices can
/// reorder and load-balance them without any atomicity constraint.
#[allow(clippy::too_many_arguments)] // mirrors MtpSender::send_message + blob params
pub fn send_blob(
    sender: &mut MtpSender,
    dst: u16,
    bytes: u64,
    chunk: u32,
    pri: u8,
    tc: TrafficClass,
    now: Time,
    out: &mut Vec<Packet>,
) -> BlobHandle {
    assert!(bytes > 0 && chunk > 0);
    let count = bytes.div_ceil(chunk as u64);
    let mut first = None;
    for i in 0..count {
        let len = if i == count - 1 {
            (bytes - i * chunk as u64) as u32
        } else {
            chunk
        };
        let id = sender.send_message(dst, len, pri, tc, now, out);
        if first.is_none() {
            first = Some(id);
        }
    }
    BlobHandle {
        first: first.expect("count >= 1"),
        count,
        bytes,
    }
}

#[derive(Debug)]
struct BlobState {
    handle: BlobHandle,
    delivered: u64,
    bytes_done: u64,
    started: Option<Time>,
    completed: Option<Time>,
}

/// A completed blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlobComplete {
    /// The blob's handle.
    pub handle: BlobHandle,
    /// First constituent message arrival.
    pub started: Time,
    /// Last constituent message arrival.
    pub completed: Time,
}

/// Receive-side blob tracking, keyed by registered handles.
#[derive(Debug, Default)]
pub struct BlobReassembler {
    /// Sorted by first message id for range lookup.
    blobs: Vec<BlobState>,
    index: HashMap<MsgId, usize>,
}

impl BlobReassembler {
    /// An empty reassembler.
    pub fn new() -> BlobReassembler {
        BlobReassembler::default()
    }

    /// Register a blob to watch for (handles are communicated out-of-band
    /// or via an application header; the simulator harness passes them
    /// directly).
    pub fn register(&mut self, handle: BlobHandle) {
        let slot = self.blobs.len();
        for i in 0..handle.count {
            self.index.insert(MsgId(handle.first.0 + i), slot);
        }
        self.blobs.push(BlobState {
            handle,
            delivered: 0,
            bytes_done: 0,
            started: None,
            completed: None,
        });
    }

    /// Feed one delivered message; returns the blob completion if this was
    /// its final chunk.
    pub fn on_delivered(&mut self, ev: &MsgDelivered) -> Option<BlobComplete> {
        let &slot = self.index.get(&ev.id)?;
        let b = &mut self.blobs[slot];
        b.delivered += 1;
        b.bytes_done += ev.bytes as u64;
        if b.started.is_none() {
            b.started = Some(ev.first_seen);
        }
        if b.delivered == b.handle.count && b.completed.is_none() {
            b.completed = Some(ev.completed);
            debug_assert_eq!(b.bytes_done, b.handle.bytes);
            return Some(BlobComplete {
                handle: b.handle,
                started: b.started.expect("set on first delivery"),
                completed: ev.completed,
            });
        }
        None
    }

    /// Fraction of the blob's bytes delivered so far.
    pub fn progress(&self, handle: &BlobHandle) -> f64 {
        self.blobs
            .iter()
            .find(|b| b.handle == *handle)
            .map(|b| b.bytes_done as f64 / b.handle.bytes as f64)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MtpConfig;
    use mtp_wire::EntityId;

    fn delivered(id: u64, bytes: u32, t_us: u64) -> MsgDelivered {
        MsgDelivered {
            id: MsgId(id),
            bytes,
            src: 1,
            first_seen: Time(t_us * 1_000_000),
            completed: Time(t_us * 1_000_000),
            tc: TrafficClass::BEST_EFFORT,
            pri: 0,
        }
    }

    #[test]
    fn blob_splits_into_single_packet_messages() {
        let mut s = MtpSender::new(MtpConfig::default(), 1, EntityId(0), 0);
        let mut out = Vec::new();
        let h = send_blob(
            &mut s,
            2,
            10_000,
            1460,
            0,
            TrafficClass::BEST_EFFORT,
            Time::ZERO,
            &mut out,
        );
        assert_eq!(h.count, 7, "ceil(10000/1460)");
        assert_eq!(h.first, MsgId(0));
        // Every emitted packet is packet 0 of a 1-packet message.
        for p in &out {
            let hd = p.headers.as_mtp().unwrap();
            assert_eq!(hd.msg_len_pkts, 1);
            assert_eq!(hd.pkt_num.0, 0);
            assert!(hd.is_last_pkt());
        }
        // The last chunk carries the remainder.
        let total: u32 = out
            .iter()
            .map(|p| p.headers.as_mtp().unwrap().pkt_len as u32)
            .sum();
        // Only window-admitted packets are out; with a 15 kB window all 7
        // single-packet messages fit (7 * 1460 = 10220 <= 15000).
        assert_eq!(total, 10_000);
    }

    #[test]
    fn reassembler_completes_out_of_order() {
        let mut r = BlobReassembler::new();
        let h = BlobHandle {
            first: MsgId(10),
            count: 3,
            bytes: 3000,
        };
        r.register(h);
        assert!(r.on_delivered(&delivered(12, 1000, 5)).is_none());
        assert!(r.on_delivered(&delivered(10, 1000, 7)).is_none());
        assert!((r.progress(&h) - 2.0 / 3.0).abs() < 1e-9);
        let done = r.on_delivered(&delivered(11, 1000, 9)).expect("complete");
        assert_eq!(done.handle, h);
        assert_eq!(done.completed, Time(9_000_000));
    }

    #[test]
    fn unrelated_messages_are_ignored() {
        let mut r = BlobReassembler::new();
        r.register(BlobHandle {
            first: MsgId(10),
            count: 2,
            bytes: 2000,
        });
        assert!(r.on_delivered(&delivered(99, 1000, 1)).is_none());
        assert_eq!(
            r.progress(&BlobHandle {
                first: MsgId(10),
                count: 2,
                bytes: 2000
            }),
            0.0
        );
    }

    #[test]
    fn two_blobs_tracked_independently() {
        let mut r = BlobReassembler::new();
        let a = BlobHandle {
            first: MsgId(0),
            count: 2,
            bytes: 2000,
        };
        let b = BlobHandle {
            first: MsgId(2),
            count: 1,
            bytes: 500,
        };
        r.register(a);
        r.register(b);
        assert!(
            r.on_delivered(&delivered(2, 500, 3)).is_some(),
            "blob b done"
        );
        assert!(r.on_delivered(&delivered(0, 1000, 4)).is_none());
        assert!(
            r.on_delivered(&delivered(1, 1000, 5)).is_some(),
            "blob a done"
        );
    }
}
