//! Node adapters: MTP sender and sink hosts for the simulator.
//!
//! [`MtpSenderNode`] drives a scheduled message workload through an
//! [`MtpSender`]; [`MtpSinkNode`] reassembles messages with an
//! [`MtpReceiver`], acknowledges them, and records goodput and per-message
//! latency. Both are thin shims: all protocol behaviour lives in the
//! sans-IO cores.

use mtp_sim::time::{Duration, Time};
use mtp_sim::{BinSeries, Ctx, Gauge, Headers, HistId, Metric, Node, Packet, PortId};
use mtp_wire::{EntityId, MsgId, PktType, TrafficClass};

use crate::config::MtpConfig;
use crate::receiver::{MsgDelivered, MtpReceiver, MtpReceiverStats};
use crate::sender::{MtpSender, MtpSenderStats, SenderEvent};

/// Mirrors an MTP endpoint's core counters into the simulation's metrics
/// registry, as deltas pushed through [`Ctx`] after each event.
///
/// The sans-IO cores ([`MtpSender`], [`MtpReceiver`]) keep their own
/// counters and know nothing about the registry; node adapters own one of
/// these shadows per endpoint and call the `sync_*` methods after every
/// callback. The conservation audit then reconciles the registry against
/// the cores' own counters (via [`Node::audit_counters`]), so an adapter
/// path that forgets to sync is caught.
#[derive(Debug, Default, Clone, Copy)]
pub struct EndpointMirror {
    submitted: u64,
    completed: u64,
    timeouts: u64,
    retransmissions: u64,
    delivered: u64,
    goodput: u64,
}

impl EndpointMirror {
    /// Record `n` newly submitted messages (call at the `send_message`
    /// site — submission is an adapter-level event the core cannot see).
    pub fn on_submit(&mut self, ctx: &mut Ctx<'_>, n: u64) {
        self.submitted += n;
        ctx.count(Metric::MsgsSubmitted, n);
        ctx.gauge_add(Gauge::MsgsInFlight, n as i64);
    }

    /// Push any sender-counter movement since the last sync.
    pub fn sync_sender(&mut self, ctx: &mut Ctx<'_>, s: &MtpSenderStats) {
        let d = s.msgs_completed - self.completed;
        if d > 0 {
            self.completed = s.msgs_completed;
            ctx.count(Metric::MsgsCompleted, d);
            ctx.gauge_add(Gauge::MsgsInFlight, -(d as i64));
        }
        let d = s.timeouts - self.timeouts;
        if d > 0 {
            self.timeouts = s.timeouts;
            ctx.count(Metric::Timeouts, d);
        }
        let d = s.retransmissions - self.retransmissions;
        if d > 0 {
            self.retransmissions = s.retransmissions;
            ctx.count(Metric::Retransmissions, d);
        }
    }

    /// Push any receiver-counter movement since the last sync.
    pub fn sync_receiver(&mut self, ctx: &mut Ctx<'_>, r: &MtpReceiverStats) {
        let d = r.msgs_delivered - self.delivered;
        if d > 0 {
            self.delivered = r.msgs_delivered;
            ctx.count(Metric::MsgsDelivered, d);
        }
        let d = r.goodput_bytes - self.goodput;
        if d > 0 {
            self.goodput = r.goodput_bytes;
            ctx.count(Metric::GoodputBytes, d);
        }
    }

    /// Messages counted through [`on_submit`](Self::on_submit) so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }
}

const TOKEN_KIND_SHIFT: u64 = 32;
const KIND_MSG: u64 = 1;
const KIND_RTO: u64 = 2;

/// One scheduled message.
#[derive(Debug, Clone, Copy)]
pub struct ScheduledMsg {
    /// Submission time.
    pub at: Time,
    /// Size in bytes.
    pub bytes: u32,
    /// Priority (0 = most urgent).
    pub pri: u8,
    /// Traffic class.
    pub tc: TrafficClass,
}

impl ScheduledMsg {
    /// A best-effort message of `bytes` at `at`.
    pub fn new(at: Time, bytes: u32) -> ScheduledMsg {
        ScheduledMsg {
            at,
            bytes,
            pri: 0,
            tc: TrafficClass::BEST_EFFORT,
        }
    }
}

/// Sender-side completion record.
#[derive(Debug, Clone, Copy)]
pub struct MtpMsgRecord {
    /// Message size in bytes.
    pub bytes: u32,
    /// Submission time.
    pub submitted: Time,
    /// Completion time (all packets SACKed), if finished.
    pub completed: Option<Time>,
}

impl MtpMsgRecord {
    /// Message completion time, if finished.
    pub fn fct(&self) -> Option<Duration> {
        self.completed.map(|c| c.since(self.submitted))
    }
}

/// A host that sends a scheduled MTP message workload to one destination.
pub struct MtpSenderNode {
    /// The protocol core (exposed for instrumentation).
    pub sender: MtpSender,
    dst: u16,
    schedule: Vec<ScheduledMsg>,
    /// Completion records, indexed like `schedule`.
    pub msgs: Vec<MtpMsgRecord>,
    /// Submitted (id, schedule index) pairs. Ids are allocated
    /// monotonically by the sender, so the list is sorted by construction
    /// and lookup is a binary search — no hashing.
    msg_index: Vec<(MsgId, usize)>,
    armed: Option<Time>,
    /// Closed loop: submit message i+1 when message i completes.
    closed_loop: bool,
    /// Packets rejected by the wire-integrity check (corrupted in flight).
    pub malformed: u64,
    /// Registry-mirror shadow for the embedded sender's counters.
    mirror: EndpointMirror,
    name: String,
    /// Reusable buffers for packets, events, and completed indices; taken
    /// and restored around each callback so steady state never allocates.
    out_buf: Vec<Packet>,
    ev_buf: Vec<SenderEvent>,
    done_buf: Vec<usize>,
}

impl MtpSenderNode {
    /// A sender at address `addr` targeting `dst`. `msg_id_base` must be
    /// globally unique per sender.
    pub fn new(
        cfg: MtpConfig,
        addr: u16,
        dst: u16,
        entity: EntityId,
        msg_id_base: u64,
        schedule: Vec<ScheduledMsg>,
    ) -> MtpSenderNode {
        let msgs = schedule
            .iter()
            .map(|s| MtpMsgRecord {
                bytes: s.bytes,
                submitted: s.at,
                completed: None,
            })
            .collect();
        MtpSenderNode {
            sender: MtpSender::new(cfg, addr, entity, msg_id_base),
            dst,
            schedule,
            msgs,
            msg_index: Vec::new(),
            armed: None,
            closed_loop: false,
            malformed: 0,
            mirror: EndpointMirror::default(),
            name: format!("mtp-sender-{addr}"),
            out_buf: Vec::new(),
            ev_buf: Vec::new(),
            done_buf: Vec::new(),
        }
    }

    /// Switch to closed-loop submission: the schedule's times are ignored
    /// beyond the first message; each message is submitted the moment its
    /// predecessor completes (request/response pacing).
    pub fn closed_loop(mut self) -> MtpSenderNode {
        self.closed_loop = true;
        self
    }

    /// True when every scheduled message has completed.
    pub fn all_done(&self) -> bool {
        self.msgs.iter().all(|m| m.completed.is_some())
    }

    fn flush(&mut self, ctx: &mut Ctx<'_>, out: &mut Vec<Packet>) {
        for pkt in out.drain(..) {
            ctx.send(PortId(0), pkt);
        }
    }

    /// Record completions from pending sender events into `done_buf`
    /// (schedule indices) and sample each message's FCT and size into the
    /// registry histograms. Buffers are reused; nothing allocates once
    /// they have grown to the workload's high-water mark.
    fn drain_completions(&mut self, ctx: &mut Ctx<'_>) {
        debug_assert!(self.done_buf.is_empty());
        let mut ev = std::mem::take(&mut self.ev_buf);
        self.sender.drain_events(&mut ev);
        for e in ev.drain(..) {
            let SenderEvent::MsgCompleted { id, completed, .. } = e;
            if let Ok(at) = self.msg_index.binary_search_by_key(&id.0, |&(m, _)| m.0) {
                let idx = self.msg_index[at].1;
                self.msgs[idx].completed = Some(completed);
                if let Some(fct) = self.msgs[idx].fct() {
                    ctx.record_hist(HistId::MsgFctUs, fct.0 / 1_000_000);
                    ctx.record_hist(HistId::MsgBytes, self.msgs[idx].bytes as u64);
                }
                self.done_buf.push(idx);
            }
        }
        self.ev_buf = ev;
    }

    fn submit(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        let now = ctx.now();
        let s = self.schedule[idx];
        let mut out = std::mem::take(&mut self.out_buf);
        let id = self
            .sender
            .send_message(self.dst, s.bytes, s.pri, s.tc, now, &mut out);
        self.msg_index.push((id, idx));
        self.msgs[idx].submitted = now;
        self.mirror.on_submit(ctx, 1);
        self.flush(ctx, &mut out);
        self.out_buf = out;
    }

    fn after_completions(&mut self, ctx: &mut Ctx<'_>) {
        if !self.closed_loop {
            self.done_buf.clear();
            return;
        }
        let done = std::mem::take(&mut self.done_buf);
        for &idx in &done {
            let next = idx + 1;
            if next < self.schedule.len() && self.msgs[next].completed.is_none() {
                self.submit(ctx, next);
            }
        }
        self.done_buf = done;
        self.done_buf.clear();
    }

    fn sync_timer(&mut self, ctx: &mut Ctx<'_>) {
        let deadline = self.sender.next_deadline();
        if let Some(dl) = deadline {
            if self.armed != Some(dl) {
                ctx.set_timer_at(dl, KIND_RTO << TOKEN_KIND_SHIFT);
                self.armed = Some(dl);
            }
        } else {
            self.armed = None;
        }
    }
}

impl Node for MtpSenderNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.closed_loop {
            if let Some(s) = self.schedule.first() {
                ctx.set_timer_at(s.at, KIND_MSG << TOKEN_KIND_SHIFT);
            }
        } else {
            for (idx, s) in self.schedule.iter().enumerate() {
                ctx.set_timer_at(s.at, (KIND_MSG << TOKEN_KIND_SHIFT) | idx as u64);
            }
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, mut pkt: Packet) {
        // Verify wire integrity before trusting a single header field; a
        // corrupted ACK could otherwise poison the window or complete the
        // wrong message.
        if mtp_sim::corrupt::sanitize(&mut pkt).is_err() {
            self.malformed += 1;
            ctx.trace_malformed(&pkt, _port);
            mtp_sim::pool::recycle_packet(pkt);
            return;
        }
        let Headers::Mtp(hdr) = pkt.headers else {
            return;
        };
        let now = ctx.now();
        match hdr.pkt_type {
            PktType::Ack | PktType::Nack => {
                let mut out = std::mem::take(&mut self.out_buf);
                self.sender.on_ack(now, &hdr, &mut out);
                self.flush(ctx, &mut out);
                self.out_buf = out;
                self.drain_completions(ctx);
                self.sync_timer(ctx);
                self.after_completions(ctx);
                self.sync_timer(ctx);
            }
            PktType::Control => self.sender.on_control(now, &hdr),
            PktType::Data => {}
        }
        self.mirror.sync_sender(ctx, &self.sender.stats);
        mtp_sim::pool::recycle_header(hdr);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let kind = token >> TOKEN_KIND_SHIFT;
        let arg = (token & ((1 << TOKEN_KIND_SHIFT) - 1)) as usize;
        let now = ctx.now();
        match kind {
            KIND_MSG => self.submit(ctx, arg),
            KIND_RTO => {
                self.armed = None;
                let mut out = std::mem::take(&mut self.out_buf);
                self.sender.on_timer(now, &mut out);
                self.flush(ctx, &mut out);
                self.out_buf = out;
            }
            _ => {}
        }
        self.drain_completions(ctx);
        self.sync_timer(ctx);
        self.after_completions(ctx);
        self.sync_timer(ctx);
        self.mirror.sync_sender(ctx, &self.sender.stats);
    }

    fn audit_counters(&self, out: &mut mtp_sim::NodeAuditCounters) {
        out.malformed += self.malformed;
        out.msgs_submitted += self.msg_index.len() as u64;
        out.msgs_completed += self.sender.stats.msgs_completed;
        out.timeouts += self.sender.stats.timeouts;
        out.retransmissions += self.sender.stats.retransmissions;
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A host that reassembles and acknowledges all MTP messages sent to it.
pub struct MtpSinkNode {
    /// The protocol core (exposed for instrumentation).
    pub receiver: MtpReceiver,
    /// Newly received payload bytes, binned over time.
    pub goodput: BinSeries,
    /// Every delivered message, in completion order.
    pub delivered: Vec<MsgDelivered>,
    /// Packets rejected by the wire-integrity check: unverifiable headers,
    /// plus data packets whose payload checksum failed (dropped without an
    /// ACK, so the sender retransmits them like any loss).
    pub malformed: u64,
    /// Registry-mirror shadow for the embedded receiver's counters.
    mirror: EndpointMirror,
    name: String,
}

impl MtpSinkNode {
    /// A sink at address `addr` recording goodput at the given bin width.
    pub fn new(addr: u16, bin: Duration) -> MtpSinkNode {
        MtpSinkNode {
            receiver: MtpReceiver::new(addr),
            goodput: BinSeries::new(bin),
            delivered: Vec::new(),
            malformed: 0,
            mirror: EndpointMirror::default(),
            name: format!("mtp-sink-{addr}"),
        }
    }

    /// Echo up to `k - 1` recent receptions in every ACK (see
    /// [`MtpReceiver::with_sack_redundancy`]).
    pub fn with_sack_redundancy(mut self, k: usize) -> MtpSinkNode {
        self.receiver = self.receiver.with_sack_redundancy(k);
        self
    }

    /// Total payload bytes delivered (first copies only).
    pub fn total_goodput(&self) -> u64 {
        self.receiver.stats.goodput_bytes
    }
}

impl Node for MtpSinkNode {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, mut pkt: Packet) {
        // Integrity first: an unverifiable header is counted and dropped;
        // a verified header whose payload checksum failed is equally
        // unusable — dropping it without an ACK turns wire corruption
        // into an ordinary loss the sender already knows how to repair.
        if mtp_sim::corrupt::sanitize(&mut pkt).is_err() || pkt.payload_dirty {
            self.malformed += 1;
            ctx.trace_malformed(&pkt, _port);
            mtp_sim::pool::recycle_packet(pkt);
            return;
        }
        let ecn = pkt.ecn;
        let Headers::Mtp(hdr) = pkt.headers else {
            return;
        };
        if hdr.pkt_type != PktType::Data {
            mtp_sim::pool::recycle_header(hdr);
            return;
        }
        let now = ctx.now();
        let (ack, newly) = self.receiver.on_data(now, &hdr, ecn);
        mtp_sim::pool::recycle_header(hdr);
        if newly > 0 {
            self.goodput.add(now, newly as f64);
        }
        self.receiver.drain_events(&mut self.delivered);
        self.mirror.sync_receiver(ctx, &self.receiver.stats);
        ctx.send(PortId(0), ack);
    }

    fn audit_counters(&self, out: &mut mtp_sim::NodeAuditCounters) {
        out.malformed += self.malformed;
        out.msgs_delivered += self.receiver.stats.msgs_delivered;
        out.goodput_bytes += self.receiver.stats.goodput_bytes;
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_sim::time::Bandwidth;
    use mtp_sim::{LinkCfg, Simulator};

    fn pair(
        cfg: MtpConfig,
        schedule: Vec<ScheduledMsg>,
        rate: Bandwidth,
        delay: Duration,
        ab: LinkCfg,
        ba: LinkCfg,
    ) -> (Simulator, mtp_sim::NodeId, mtp_sim::NodeId) {
        let _ = (rate, delay);
        let mut sim = Simulator::new(1);
        let snd = sim.add_node(Box::new(MtpSenderNode::new(
            cfg,
            1,
            2,
            EntityId(0),
            1 << 32,
            schedule,
        )));
        let sink = sim.add_node(Box::new(MtpSinkNode::new(2, Duration::from_micros(100))));
        sim.connect(snd, PortId(0), sink, PortId(0), ab, ba);
        (sim, snd, sink)
    }

    #[test]
    fn transfers_one_message_end_to_end() {
        let rate = Bandwidth::from_gbps(10);
        let d = Duration::from_micros(2);
        let (mut sim, snd, sink) = pair(
            MtpConfig::default(),
            vec![ScheduledMsg::new(Time::ZERO, 1_000_000)],
            rate,
            d,
            LinkCfg::drop_tail(rate, d, 256),
            LinkCfg::drop_tail(rate, d, 256),
        );
        sim.run_until(Time::ZERO + Duration::from_millis(50));
        assert!(sim.node_as::<MtpSenderNode>(snd).all_done());
        let sink = sim.node_as::<MtpSinkNode>(sink);
        assert_eq!(sink.total_goodput(), 1_000_000);
        assert_eq!(sink.delivered.len(), 1);
        assert_eq!(sink.delivered[0].bytes, 1_000_000);
    }

    #[test]
    fn many_small_messages_all_complete() {
        let rate = Bandwidth::from_gbps(10);
        let d = Duration::from_micros(2);
        let schedule: Vec<ScheduledMsg> = (0..50)
            .map(|i| ScheduledMsg::new(Time::ZERO + Duration::from_micros(i), 16_384))
            .collect();
        let (mut sim, snd, sink) = pair(
            MtpConfig::default(),
            schedule,
            rate,
            d,
            LinkCfg::drop_tail(rate, d, 1024),
            LinkCfg::drop_tail(rate, d, 1024),
        );
        sim.run_until(Time::ZERO + Duration::from_millis(100));
        let snd = sim.node_as::<MtpSenderNode>(snd);
        assert!(snd.all_done());
        assert!(snd.msgs.iter().all(|m| m.fct().is_some()));
        assert_eq!(sim.node_as::<MtpSinkNode>(sink).delivered.len(), 50);
    }

    #[test]
    fn survives_heavy_loss_on_tiny_buffer() {
        let rate = Bandwidth::from_gbps(10);
        let d = Duration::from_micros(2);
        let (mut sim, snd, sink) = pair(
            MtpConfig::default(),
            vec![ScheduledMsg::new(Time::ZERO, 2_000_000)],
            rate,
            d,
            LinkCfg::drop_tail(rate, d, 4),
            LinkCfg::drop_tail(rate, d, 256),
        );
        sim.run_until(Time::ZERO + Duration::from_millis(200));
        let sender = sim.node_as::<MtpSenderNode>(snd);
        assert!(sender.all_done(), "completed despite drops");
        assert!(sender.sender.stats.retransmissions > 0);
        assert_eq!(sim.node_as::<MtpSinkNode>(sink).total_goodput(), 2_000_000);
    }

    #[test]
    fn ecn_marks_trigger_window_reduction_not_loss() {
        let rate = Bandwidth::from_gbps(10);
        let d = Duration::from_micros(2);
        let (mut sim, snd, _sink) = pair(
            MtpConfig::default(),
            vec![ScheduledMsg::new(Time::ZERO, 5_000_000)],
            rate,
            d,
            LinkCfg::ecn(rate, d, 128, 20),
            LinkCfg::ecn(rate, d, 128, 20),
        );
        sim.run_until(Time::ZERO + Duration::from_millis(100));
        let sender = sim.node_as::<MtpSenderNode>(snd);
        assert!(sender.all_done());
        assert_eq!(
            sender.sender.stats.retransmissions, 0,
            "no drops at this buffer"
        );
    }

    #[test]
    fn trimming_queue_repairs_via_nack_without_rto() {
        let rate = Bandwidth::from_gbps(10);
        let d = Duration::from_micros(2);
        let (mut sim, snd, sink) = pair(
            MtpConfig::default(),
            vec![ScheduledMsg::new(Time::ZERO, 1_000_000)],
            rate,
            d,
            LinkCfg {
                rate,
                delay: d,
                queue: Box::new(mtp_sim::TrimmingQueue::new(4, 4, 64)),
            },
            LinkCfg::drop_tail(rate, d, 256),
        );
        sim.run_until(Time::ZERO + Duration::from_millis(100));
        let sender = sim.node_as::<MtpSenderNode>(snd);
        assert!(sender.all_done());
        let sink = sim.node_as::<MtpSinkNode>(sink);
        assert!(sink.receiver.stats.trimmed > 0, "trimming exercised");
        assert!(sender.sender.stats.retransmissions > 0);
        assert_eq!(
            sender.sender.stats.timeouts, 0,
            "NACK repair beats the RTO every time"
        );
    }
}
