//! Per-pathlet congestion controllers.
//!
//! MTP end-hosts do not keep one congestion window per flow; they keep one
//! controller per `(pathlet, traffic class)` pair, and different pathlets
//! may run **different algorithms** — the TLV type of the feedback selects
//! which controller consumes it (paper §3.1.3). This module provides the
//! [`PathletCc`] trait and four controllers:
//!
//! * [`DctcpLikeCc`] — window-based, driven by per-pathlet ECN marks with
//!   DCTCP's `alpha` EWMA response;
//! * [`RcpLikeCc`] — rate-based, driven by explicit `RcpRate` feedback; the
//!   admission window is `rate × RTT`;
//! * [`SwiftLikeCc`] — delay-based, driven by `Delay` feedback against a
//!   target (Swift-style AIMD on delay overshoot);
//! * [`FixedWindowCc`] — a constant window, for tests and ablations.
//!
//! All windows are in bytes and floored at one MTU so a pathlet can always
//! probe, and capped to keep pathological feedback from unbounding state.

use mtp_sim::time::{Duration, Time};
use mtp_wire::Feedback;

/// Dense index of an interned `(pathlet, traffic class)` pair within one
/// sender's [`PathletTable`](crate::pathlets::PathletTable).
///
/// The hot paths (per-ACK byte attribution, loss accounting, window
/// lookups on admission) address congestion state through this index with
/// a flat array access instead of hashing the `(PathletId, TrafficClass)`
/// tuple on every packet. Indices are assigned in interning order, are
/// stable for the lifetime of the table, and are meaningless across
/// senders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathIdx(pub u32);

/// Lower bound on any pathlet window: one MTU-sized packet.
pub const WINDOW_FLOOR: u64 = 1500;

/// Upper bound on any pathlet window (1 GiB — far above any experiment's
/// bandwidth-delay product, present only as a safety rail).
pub const WINDOW_CAP: u64 = 1 << 30;

/// A congestion controller for one `(pathlet, traffic class)` pair.
pub trait PathletCc: std::fmt::Debug {
    /// Bytes this pathlet currently admits in flight.
    fn window(&self) -> u64;

    /// An acknowledgement attributed `acked` bytes to this pathlet,
    /// carrying the pathlet's feedback entry (if the ACK echoed one) and an
    /// RTT sample (if the packet was timed).
    fn on_ack(&mut self, acked: u64, fb: Option<&Feedback>, rtt: Option<Duration>, now: Time);

    /// A loss (NACK or retransmission timeout) was attributed to this
    /// pathlet.
    fn on_loss(&mut self, now: Time);

    /// Short algorithm name for traces and ablation output.
    fn kind(&self) -> &'static str;
}

/// Builds a controller for a newly observed pathlet.
pub type CcFactory = Box<dyn Fn() -> Box<dyn PathletCc>>;

/// Which controller family new pathlets get.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CcKind {
    /// [`DctcpLikeCc`] with the given initial window in bytes.
    DctcpLike {
        /// Initial window in bytes.
        init_window: u64,
    },
    /// [`RcpLikeCc`] with the given initial window in bytes.
    RcpLike {
        /// Window used until the first rate feedback arrives.
        init_window: u64,
    },
    /// [`SwiftLikeCc`] with the given target one-hop queueing delay.
    SwiftLike {
        /// Initial window in bytes.
        init_window: u64,
        /// Target per-pathlet queueing delay.
        target: Duration,
    },
    /// [`FixedWindowCc`].
    Fixed {
        /// The constant window in bytes.
        window: u64,
    },
}

impl CcKind {
    /// Build a factory producing this kind of controller.
    pub fn factory(self) -> CcFactory {
        match self {
            CcKind::DctcpLike { init_window } => {
                Box::new(move || Box::new(DctcpLikeCc::new(init_window)))
            }
            CcKind::RcpLike { init_window } => {
                Box::new(move || Box::new(RcpLikeCc::new(init_window)))
            }
            CcKind::SwiftLike {
                init_window,
                target,
            } => Box::new(move || Box::new(SwiftLikeCc::new(init_window, target))),
            CcKind::Fixed { window } => Box::new(move || Box::new(FixedWindowCc::new(window))),
        }
    }
}

/// DCTCP-style window evolution from per-pathlet ECN marks.
///
/// Slow start / congestion avoidance on unmarked bytes; an `alpha` EWMA of
/// the marked fraction, applied as `w *= 1 - alpha/2` at most once per
/// window of data. The crucial difference from the `mtp-tcp` DCTCP is the
/// *scope*: this window describes one pathlet, so when the network moves
/// traffic to a different pathlet the old state is preserved and the new
/// pathlet's state is already converged (paper §5.1 / Fig. 5).
#[derive(Debug)]
pub struct DctcpLikeCc {
    window: f64,
    ssthresh: f64,
    alpha: f64,
    /// Bytes acked / marked in the current observation window.
    win_acked: f64,
    win_marked: f64,
    /// Bytes of data that must be acked before the next reduction.
    reduce_guard: f64,
    /// Remaining acked bytes until the alpha window closes.
    win_left: f64,
    mtu: f64,
}

impl DctcpLikeCc {
    /// A controller starting with `init_window` bytes.
    pub fn new(init_window: u64) -> DctcpLikeCc {
        let w = init_window as f64;
        DctcpLikeCc {
            window: w,
            ssthresh: f64::INFINITY,
            alpha: 1.0,
            win_acked: 0.0,
            win_marked: 0.0,
            reduce_guard: 0.0,
            win_left: w,
            mtu: WINDOW_FLOOR as f64,
        }
    }

    /// Current alpha estimate.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    fn clamp(&mut self) {
        self.window = self.window.clamp(WINDOW_FLOOR as f64, WINDOW_CAP as f64);
    }
}

impl PathletCc for DctcpLikeCc {
    fn window(&self) -> u64 {
        self.window as u64
    }

    fn on_ack(&mut self, acked: u64, fb: Option<&Feedback>, _rtt: Option<Duration>, _now: Time) {
        let acked = acked as f64;
        let marked = match fb {
            Some(Feedback::EcnMark { ce }) => *ce,
            Some(Feedback::EcnFraction { fraction }) => {
                // Aggregated feedback: treat the fraction itself as the
                // marked share of these bytes.
                self.win_marked += acked * (*fraction as f64 / 65535.0);
                false
            }
            _ => false,
        };
        self.win_acked += acked;
        if marked {
            self.win_marked += acked;
        }

        if marked && self.reduce_guard <= 0.0 {
            self.window *= 1.0 - self.alpha / 2.0;
            self.ssthresh = self.window;
            self.reduce_guard = self.window;
            self.clamp();
        } else {
            self.reduce_guard -= acked;
            // Growth: slow start below ssthresh, else additive increase.
            if self.window < self.ssthresh {
                self.window += acked;
            } else {
                self.window += self.mtu * acked / self.window;
            }
            self.clamp();
        }

        self.win_left -= acked;
        if self.win_left <= 0.0 {
            if self.win_acked > 0.0 {
                let f = (self.win_marked / self.win_acked).clamp(0.0, 1.0);
                self.alpha = (1.0 - crate::DCTCP_G) * self.alpha + crate::DCTCP_G * f;
            }
            self.win_acked = 0.0;
            self.win_marked = 0.0;
            self.win_left = self.window;
        }
    }

    fn on_loss(&mut self, _now: Time) {
        self.window /= 2.0;
        self.ssthresh = self.window;
        self.reduce_guard = self.window;
        self.clamp();
    }

    fn kind(&self) -> &'static str {
        "dctcp-like"
    }
}

/// RCP-style explicit-rate control: the pathlet tells the sender its fair
/// rate; the admission window is `rate × smoothed RTT`.
#[derive(Debug)]
pub struct RcpLikeCc {
    window: u64,
    rate_mbps: Option<u32>,
    srtt: Option<Duration>,
}

impl RcpLikeCc {
    /// A controller admitting `init_window` bytes until rate feedback
    /// arrives.
    pub fn new(init_window: u64) -> RcpLikeCc {
        RcpLikeCc {
            window: init_window.clamp(WINDOW_FLOOR, WINDOW_CAP),
            rate_mbps: None,
            srtt: None,
        }
    }

    /// The last explicit rate received, if any.
    pub fn rate_mbps(&self) -> Option<u32> {
        self.rate_mbps
    }

    fn recompute(&mut self) {
        if let (Some(rate), Some(srtt)) = (self.rate_mbps, self.srtt) {
            let bytes = (rate as u128 * 1_000_000 / 8) * srtt.0 as u128 / 1_000_000_000_000;
            self.window = (bytes as u64).clamp(WINDOW_FLOOR, WINDOW_CAP);
        }
    }
}

impl PathletCc for RcpLikeCc {
    fn window(&self) -> u64 {
        self.window
    }

    fn on_ack(&mut self, _acked: u64, fb: Option<&Feedback>, rtt: Option<Duration>, _now: Time) {
        if let Some(rtt) = rtt {
            self.srtt = Some(match self.srtt {
                None => rtt,
                Some(s) => Duration((7 * s.0 + rtt.0) / 8),
            });
        }
        if let Some(Feedback::RcpRate { mbps }) = fb {
            self.rate_mbps = Some(*mbps);
        }
        self.recompute();
    }

    fn on_loss(&mut self, _now: Time) {
        // Rate-allocated pathlets treat loss as a stale allocation: back off
        // to half until the next explicit rate arrives.
        self.window = (self.window / 2).max(WINDOW_FLOOR);
    }

    fn kind(&self) -> &'static str {
        "rcp-like"
    }
}

/// Swift-style delay-target control on per-pathlet queueing delay.
#[derive(Debug)]
pub struct SwiftLikeCc {
    window: f64,
    target: Duration,
    /// Max multiplicative decrease factor per decision.
    max_mdf: f64,
    mtu: f64,
}

impl SwiftLikeCc {
    /// A controller targeting `target` queueing delay on this pathlet.
    pub fn new(init_window: u64, target: Duration) -> SwiftLikeCc {
        SwiftLikeCc {
            window: init_window as f64,
            target,
            max_mdf: 0.5,
            mtu: WINDOW_FLOOR as f64,
        }
    }
}

impl PathletCc for SwiftLikeCc {
    fn window(&self) -> u64 {
        self.window as u64
    }

    fn on_ack(&mut self, acked: u64, fb: Option<&Feedback>, _rtt: Option<Duration>, _now: Time) {
        match fb {
            Some(Feedback::Delay { ns }) => {
                let delay = Duration::from_nanos(*ns as u64);
                if delay > self.target {
                    // Multiplicative decrease proportional to overshoot.
                    let over = (delay.0 - self.target.0) as f64 / delay.0 as f64;
                    let factor = (1.0 - over).max(1.0 - self.max_mdf);
                    self.window *= factor;
                } else {
                    self.window += self.mtu * acked as f64 / self.window;
                }
            }
            _ => {
                self.window += self.mtu * acked as f64 / self.window;
            }
        }
        self.window = self.window.clamp(WINDOW_FLOOR as f64, WINDOW_CAP as f64);
    }

    fn on_loss(&mut self, _now: Time) {
        self.window = (self.window * (1.0 - self.max_mdf)).max(WINDOW_FLOOR as f64);
    }

    fn kind(&self) -> &'static str {
        "swift-like"
    }
}

/// A constant window, for unit tests and ablations.
#[derive(Debug)]
pub struct FixedWindowCc {
    window: u64,
}

impl FixedWindowCc {
    /// A controller pinned at `window` bytes.
    pub fn new(window: u64) -> FixedWindowCc {
        FixedWindowCc {
            window: window.clamp(WINDOW_FLOOR, WINDOW_CAP),
        }
    }
}

impl PathletCc for FixedWindowCc {
    fn window(&self) -> u64 {
        self.window
    }

    fn on_ack(&mut self, _: u64, _: Option<&Feedback>, _: Option<Duration>, _: Time) {}

    fn on_loss(&mut self, _: Time) {}

    fn kind(&self) -> &'static str {
        "fixed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Time = Time::ZERO;

    #[test]
    fn dctcp_like_grows_without_marks() {
        let mut cc = DctcpLikeCc::new(15_000);
        let before = cc.window();
        for _ in 0..10 {
            cc.on_ack(1500, Some(&Feedback::EcnMark { ce: false }), None, T);
        }
        assert!(cc.window() > before, "slow start growth");
    }

    #[test]
    fn dctcp_like_reduces_once_per_window() {
        let mut cc = DctcpLikeCc::new(15_000);
        cc.on_ack(1500, Some(&Feedback::EcnMark { ce: true }), None, T);
        let after_first = cc.window();
        assert!(after_first < 15_000, "alpha=1 initially => halving");
        // More marks inside the guard window do not reduce again (they grow
        // or hold).
        cc.on_ack(1500, Some(&Feedback::EcnMark { ce: true }), None, T);
        assert!(cc.window() >= after_first);
    }

    #[test]
    fn dctcp_like_alpha_decays_when_unmarked() {
        let mut cc = DctcpLikeCc::new(15_000);
        // Ack a full window at a time so each call closes one observation
        // window: alpha multiplies by 15/16 per window.
        for _ in 0..50 {
            cc.on_ack(cc.window(), None, None, T);
        }
        assert!(cc.alpha() < 0.1, "alpha={}", cc.alpha());
    }

    #[test]
    fn dctcp_like_respects_floor() {
        let mut cc = DctcpLikeCc::new(3000);
        for _ in 0..64 {
            cc.on_loss(T);
        }
        assert_eq!(cc.window(), WINDOW_FLOOR);
    }

    #[test]
    fn rcp_window_is_rate_times_rtt() {
        let mut cc = RcpLikeCc::new(15_000);
        // 80 Gbps rate, 10 us RTT => 100 KB window.
        cc.on_ack(
            1500,
            Some(&Feedback::RcpRate { mbps: 80_000 }),
            Some(Duration::from_micros(10)),
            T,
        );
        let w = cc.window();
        assert!((w as i64 - 100_000).unsigned_abs() < 2_000, "window {w}");
        assert_eq!(cc.rate_mbps(), Some(80_000));
    }

    #[test]
    fn rcp_updates_on_new_rate() {
        let mut cc = RcpLikeCc::new(15_000);
        cc.on_ack(
            1500,
            Some(&Feedback::RcpRate { mbps: 80_000 }),
            Some(Duration::from_micros(10)),
            T,
        );
        let w80 = cc.window();
        cc.on_ack(1500, Some(&Feedback::RcpRate { mbps: 8_000 }), None, T);
        assert!(cc.window() < w80 / 5, "rate cut 10x shrinks window ~10x");
    }

    #[test]
    fn swift_backs_off_above_target() {
        let mut cc = SwiftLikeCc::new(150_000, Duration::from_micros(10));
        let before = cc.window();
        cc.on_ack(1500, Some(&Feedback::Delay { ns: 40_000 }), None, T);
        assert!(cc.window() < before);
        // And grows when under target.
        let low = cc.window();
        cc.on_ack(1500, Some(&Feedback::Delay { ns: 1_000 }), None, T);
        assert!(cc.window() > low);
    }

    #[test]
    fn fixed_window_never_moves() {
        let mut cc = FixedWindowCc::new(30_000);
        cc.on_ack(1500, Some(&Feedback::EcnMark { ce: true }), None, T);
        cc.on_loss(T);
        assert_eq!(cc.window(), 30_000);
    }

    #[test]
    fn factories_build_expected_kinds() {
        assert_eq!(
            CcKind::DctcpLike { init_window: 1 }.factory()().kind(),
            "dctcp-like"
        );
        assert_eq!(
            CcKind::RcpLike { init_window: 1 }.factory()().kind(),
            "rcp-like"
        );
        assert_eq!(
            CcKind::SwiftLike {
                init_window: 1,
                target: Duration::from_micros(5)
            }
            .factory()()
            .kind(),
            "swift-like"
        );
        assert_eq!(CcKind::Fixed { window: 1 }.factory()().kind(), "fixed");
    }
}
