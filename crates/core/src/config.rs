//! MTP endpoint configuration.

use mtp_sim::time::Duration;

use crate::pathlet_cc::CcKind;

/// Dead-pathlet detection and failover (paper §3–4: endpoints route
/// *around* failed network elements mid-flight). Disabled by default so
/// clean-topology experiments keep their exact packet schedules; failure
/// studies opt in with [`MtpConfig::with_failover`].
#[derive(Debug, Clone)]
pub struct FailoverConfig {
    /// Master switch for the quarantine/re-probe state machine.
    pub enabled: bool,
    /// Consecutive loss attributions that declare a pathlet dead.
    pub dead_after_losses: u32,
    /// A pathlet carrying in-flight bytes that produces no feedback for
    /// this many RTOs is declared dead (feedback silence).
    pub silence_rtos: u32,
    /// First quarantine duration; doubles on each successive declaration
    /// (exponential-backoff re-probe).
    pub probe_backoff: Duration,
    /// Quarantine duration cap.
    pub max_backoff: Duration,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            enabled: false,
            dead_after_losses: 2,
            silence_rtos: 3,
            probe_backoff: Duration::from_micros(500),
            max_backoff: Duration::from_micros(8_000),
        }
    }
}

/// Configuration for MTP senders and receivers.
#[derive(Debug, Clone)]
pub struct MtpConfig {
    /// Maximum payload bytes per packet.
    pub mtu_payload: u32,
    /// Controller family for newly observed pathlets.
    pub cc: CcKind,
    /// Lower bound on the retransmission timeout.
    pub min_rto: Duration,
    /// How long a congested pathlet stays on the advertised exclude list.
    pub exclude_cooldown: Duration,
    /// Exclude a pathlet when its window is driven to the floor by loss —
    /// the end-host-to-network half of pathlet congestion control
    /// (paper §3.1.3: "end-hosts provide feedback to the network about the
    /// pathlets that should not be used").
    pub exclude_on_floor: bool,
    /// Dead-pathlet quarantine and failover.
    pub failover: FailoverConfig,
}

impl Default for MtpConfig {
    fn default() -> Self {
        MtpConfig {
            mtu_payload: 1460,
            cc: CcKind::DctcpLike {
                init_window: 10 * 1500,
            },
            min_rto: Duration::from_micros(200),
            exclude_cooldown: Duration::from_micros(500),
            exclude_on_floor: true,
            failover: FailoverConfig::default(),
        }
    }
}

impl MtpConfig {
    /// Configuration with RCP-style explicit-rate pathlet control.
    pub fn rcp() -> MtpConfig {
        MtpConfig {
            cc: CcKind::RcpLike {
                init_window: 10 * 1500,
            },
            ..MtpConfig::default()
        }
    }

    /// Configuration with Swift-style delay-target pathlet control.
    pub fn swift(target: Duration) -> MtpConfig {
        MtpConfig {
            cc: CcKind::SwiftLike {
                init_window: 10 * 1500,
                target,
            },
            ..MtpConfig::default()
        }
    }

    /// Enable dead-pathlet detection and failover with default thresholds.
    pub fn with_failover(mut self) -> MtpConfig {
        self.failover.enabled = true;
        self
    }
}
