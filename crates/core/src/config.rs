//! MTP endpoint configuration.

use mtp_sim::time::Duration;

use crate::pathlet_cc::CcKind;

/// Configuration for MTP senders and receivers.
#[derive(Debug, Clone)]
pub struct MtpConfig {
    /// Maximum payload bytes per packet.
    pub mtu_payload: u32,
    /// Controller family for newly observed pathlets.
    pub cc: CcKind,
    /// Lower bound on the retransmission timeout.
    pub min_rto: Duration,
    /// How long a congested pathlet stays on the advertised exclude list.
    pub exclude_cooldown: Duration,
    /// Exclude a pathlet when its window is driven to the floor by loss —
    /// the end-host-to-network half of pathlet congestion control
    /// (paper §3.1.3: "end-hosts provide feedback to the network about the
    /// pathlets that should not be used").
    pub exclude_on_floor: bool,
}

impl Default for MtpConfig {
    fn default() -> Self {
        MtpConfig {
            mtu_payload: 1460,
            cc: CcKind::DctcpLike {
                init_window: 10 * 1500,
            },
            min_rto: Duration::from_micros(200),
            exclude_cooldown: Duration::from_micros(500),
            exclude_on_floor: true,
        }
    }
}

impl MtpConfig {
    /// Configuration with RCP-style explicit-rate pathlet control.
    pub fn rcp() -> MtpConfig {
        MtpConfig {
            cc: CcKind::RcpLike {
                init_window: 10 * 1500,
            },
            ..MtpConfig::default()
        }
    }

    /// Configuration with Swift-style delay-target pathlet control.
    pub fn swift(target: Duration) -> MtpConfig {
        MtpConfig {
            cc: CcKind::SwiftLike {
                init_window: 10 * 1500,
                target,
            },
            ..MtpConfig::default()
        }
    }
}
