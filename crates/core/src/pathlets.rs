//! The sender's pathlet table: congestion state per `(pathlet, TC)` pair.
//!
//! This is the heart of pathlet congestion control (paper §3.1.3). Each
//! `(PathletId, TrafficClass)` key owns a [`PathletCc`] controller, an
//! in-flight byte count, and an optional exclusion deadline. Windows evolve
//! from echoed feedback; in-flight accounting is charged at transmission
//! and credited on SACK/NACK/timeout; exclusions are advertised back to the
//! network in the path-exclude header list.

use std::collections::HashMap;

use mtp_sim::time::Time;
use mtp_wire::{PathExclude, PathletId, TrafficClass};

use crate::pathlet_cc::{CcFactory, PathletCc};

/// Congestion state for one `(pathlet, TC)` pair.
pub struct PathletEntry {
    /// The controller evolving this pathlet's window.
    pub cc: Box<dyn PathletCc>,
    /// Bytes currently charged against this pathlet.
    pub inflight: u64,
    /// If set, the sender advertises this pathlet as excluded until then.
    pub excluded_until: Option<Time>,
    /// Last time feedback referenced this pathlet.
    pub last_seen: Time,
}

impl PathletEntry {
    /// Bytes of window headroom remaining.
    pub fn room(&self) -> u64 {
        self.cc.window().saturating_sub(self.inflight)
    }
}

/// All pathlet state kept by one sender.
pub struct PathletTable {
    entries: HashMap<(PathletId, TrafficClass), PathletEntry>,
    factory: CcFactory,
}

impl std::fmt::Debug for PathletTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PathletTable")
            .field("entries", &self.entries.len())
            .finish()
    }
}

impl PathletTable {
    /// An empty table; `factory` builds controllers for new pathlets.
    pub fn new(factory: CcFactory) -> PathletTable {
        PathletTable {
            entries: HashMap::new(),
            factory,
        }
    }

    /// Number of pathlets tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no pathlet has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Get or create the entry for a pathlet.
    pub fn entry(&mut self, path: PathletId, tc: TrafficClass, now: Time) -> &mut PathletEntry {
        self.entries
            .entry((path, tc))
            .or_insert_with(|| PathletEntry {
                cc: (self.factory)(),
                inflight: 0,
                excluded_until: None,
                last_seen: now,
            })
    }

    /// Read-only lookup.
    pub fn get(&self, path: PathletId, tc: TrafficClass) -> Option<&PathletEntry> {
        self.entries.get(&(path, tc))
    }

    /// Charge `bytes` of a new transmission against a pathlet.
    pub fn charge(&mut self, path: PathletId, tc: TrafficClass, bytes: u64, now: Time) {
        let e = self.entry(path, tc, now);
        e.inflight += bytes;
    }

    /// Credit `bytes` back (on ACK, NACK, or timeout of a charged packet).
    pub fn credit(&mut self, path: PathletId, tc: TrafficClass, bytes: u64) {
        if let Some(e) = self.entries.get_mut(&(path, tc)) {
            e.inflight = e.inflight.saturating_sub(bytes);
        }
    }

    /// Window headroom for admitting new data on a pathlet. An unknown
    /// pathlet reports the initial window of a fresh controller.
    pub fn room(&mut self, path: PathletId, tc: TrafficClass, now: Time) -> u64 {
        self.entry(path, tc, now).room()
    }

    /// Mark a pathlet excluded until `until`; data packets will carry the
    /// exclusion so the network steers around it.
    pub fn exclude(&mut self, path: PathletId, tc: TrafficClass, until: Time, now: Time) {
        let e = self.entry(path, tc, now);
        e.excluded_until = Some(until);
    }

    /// The active exclusions to advertise at time `now`. Expired entries
    /// are cleared as a side effect.
    pub fn active_exclusions(&mut self, now: Time) -> Vec<PathExclude> {
        let mut out = Vec::new();
        for (&(path, tc), e) in self.entries.iter_mut() {
            match e.excluded_until {
                Some(until) if until > now => out.push(PathExclude { path, tc }),
                Some(_) => e.excluded_until = None,
                None => {}
            }
        }
        // Deterministic order for reproducible headers.
        out.sort_by_key(|x| (x.path.0, x.tc.0));
        out
    }

    /// Iterate over `(key, entry)` pairs (for instrumentation).
    pub fn iter(&self) -> impl Iterator<Item = (&(PathletId, TrafficClass), &PathletEntry)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathlet_cc::CcKind;
    use mtp_sim::time::Duration;

    fn table() -> PathletTable {
        PathletTable::new(CcKind::Fixed { window: 10_000 }.factory())
    }

    const P1: PathletId = PathletId(1);
    const P2: PathletId = PathletId(2);
    const TC: TrafficClass = TrafficClass::BEST_EFFORT;

    #[test]
    fn charge_and_credit_track_room() {
        let mut t = table();
        assert_eq!(t.room(P1, TC, Time::ZERO), 10_000);
        t.charge(P1, TC, 4_000, Time::ZERO);
        assert_eq!(t.room(P1, TC, Time::ZERO), 6_000);
        t.credit(P1, TC, 4_000);
        assert_eq!(t.room(P1, TC, Time::ZERO), 10_000);
        // Over-credit saturates instead of wrapping.
        t.credit(P1, TC, 99_999);
        assert_eq!(t.room(P1, TC, Time::ZERO), 10_000);
    }

    #[test]
    fn pathlets_are_independent() {
        let mut t = table();
        t.charge(P1, TC, 10_000, Time::ZERO);
        assert_eq!(t.room(P1, TC, Time::ZERO), 0);
        assert_eq!(
            t.room(P2, TC, Time::ZERO),
            10_000,
            "other pathlet unaffected"
        );
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn same_pathlet_different_tc_is_separate() {
        let mut t = table();
        t.charge(P1, TrafficClass(1), 10_000, Time::ZERO);
        assert_eq!(t.room(P1, TrafficClass(2), Time::ZERO), 10_000);
    }

    #[test]
    fn exclusions_expire() {
        let mut t = table();
        let until = Time::ZERO + Duration::from_micros(100);
        t.exclude(P1, TC, until, Time::ZERO);
        t.exclude(P2, TC, until, Time::ZERO);
        let active = t.active_exclusions(Time::ZERO + Duration::from_micros(50));
        assert_eq!(active.len(), 2);
        assert_eq!(active[0].path, P1, "sorted order");
        let after = t.active_exclusions(Time::ZERO + Duration::from_micros(150));
        assert!(after.is_empty());
        // Cleared, not just filtered.
        assert!(t.get(P1, TC).unwrap().excluded_until.is_none());
    }
}
