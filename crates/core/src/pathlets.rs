//! The sender's pathlet table: congestion state per `(pathlet, TC)` pair.
//!
//! This is the heart of pathlet congestion control (paper §3.1.3). Each
//! `(PathletId, TrafficClass)` key owns a [`PathletCc`] controller, an
//! in-flight byte count, and an optional exclusion deadline. Windows evolve
//! from echoed feedback; in-flight accounting is charged at transmission
//! and credited on SACK/NACK/timeout; exclusions are advertised back to the
//! network in the path-exclude header list.
//!
//! ## Storage
//!
//! Entries live in a dense `Vec` in interning order; a key is mapped to its
//! [`PathIdx`] once (on first contact, or once per ACK for feedback
//! entries) through a small open-addressed probe table, and every
//! subsequent charge/credit/window access is a flat array index. The probe
//! table packs `(PathletId, TrafficClass)` into 24 bits — it exists only to
//! resolve keys arriving off the wire; protocol hot paths carry `PathIdx`
//! directly (e.g. each in-flight packet records the index it was charged
//! to). A table has tens of entries in realistic workloads, so the dense
//! layout also keeps the whole congestion state in one or two cache lines
//! per pathlet.

use mtp_sim::time::Time;
use mtp_wire::{PathExclude, PathletId, TrafficClass};

use crate::pathlet_cc::{CcFactory, PathIdx, PathletCc};

/// Congestion state for one `(pathlet, TC)` pair.
pub struct PathletEntry {
    /// The controller evolving this pathlet's window.
    pub cc: Box<dyn PathletCc>,
    /// Bytes currently charged against this pathlet.
    pub inflight: u64,
    /// If set, the sender advertises this pathlet as excluded until then.
    pub excluded_until: Option<Time>,
    /// Last time feedback referenced this pathlet.
    pub last_seen: Time,
    /// Consecutive loss attributions with no intervening successful ACK —
    /// the loss half of dead-pathlet detection.
    pub consec_losses: u32,
    /// If set, the pathlet is quarantined (presumed dead) until then.
    pub quarantined_until: Option<Time>,
    /// Re-probe backoff level: quarantine duration is
    /// `probe_backoff << level`, capped by config.
    pub backoff_level: u32,
}

impl PathletEntry {
    /// Bytes of window headroom remaining.
    pub fn room(&self) -> u64 {
        self.cc.window().saturating_sub(self.inflight)
    }

    /// True while the pathlet is quarantined at `now`.
    pub fn is_quarantined(&self, now: Time) -> bool {
        matches!(self.quarantined_until, Some(until) if until > now)
    }
}

/// Pack a key into the 24 bits the probe table hashes.
#[inline]
fn pack(path: PathletId, tc: TrafficClass) -> u32 {
    ((path.0 as u32) << 8) | tc.0 as u32
}

/// All pathlet state kept by one sender.
pub struct PathletTable {
    keys: Vec<(PathletId, TrafficClass)>,
    entries: Vec<PathletEntry>,
    /// Open-addressed key→index probe table; each slot holds `idx + 1`,
    /// 0 = empty. Length is a power of two.
    map: Vec<u32>,
    factory: CcFactory,
    /// Entries whose `excluded_until` is set (possibly expired); lets the
    /// per-packet exclusion scan short-circuit in the common case of no
    /// exclusions at all.
    excluded: usize,
    /// Entries whose `quarantined_until` is set (possibly expired); same
    /// fast-path trick for the per-event quarantine sweep.
    quarantined: usize,
}

impl std::fmt::Debug for PathletTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PathletTable")
            .field("entries", &self.entries.len())
            .finish()
    }
}

impl PathletTable {
    /// An empty table; `factory` builds controllers for new pathlets.
    pub fn new(factory: CcFactory) -> PathletTable {
        PathletTable {
            keys: Vec::new(),
            entries: Vec::new(),
            map: Vec::new(),
            factory,
            excluded: 0,
            quarantined: 0,
        }
    }

    /// Number of pathlets tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no pathlet has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    #[inline]
    fn probe_start(&self, key: u32) -> usize {
        // Fibonacci hashing spreads the 24-bit packed keys well enough for
        // linear probing at ≤ 7/8 load on these tiny tables.
        (key.wrapping_mul(0x9E37_79B1) as usize) & (self.map.len() - 1)
    }

    /// Find the dense index of a key, if interned.
    #[inline]
    pub fn lookup(&self, path: PathletId, tc: TrafficClass) -> Option<PathIdx> {
        if self.map.is_empty() {
            return None;
        }
        let key = pack(path, tc);
        let mask = self.map.len() - 1;
        let mut i = self.probe_start(key);
        loop {
            match self.map[i] {
                0 => return None,
                v => {
                    let idx = v - 1;
                    if pack(self.keys[idx as usize].0, self.keys[idx as usize].1) == key {
                        return Some(PathIdx(idx));
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    fn grow_map(&mut self) {
        let new_len = (self.map.len().max(8)) * 2;
        self.map.clear();
        self.map.resize(new_len, 0);
        for idx in 0..self.keys.len() as u32 {
            let key = pack(self.keys[idx as usize].0, self.keys[idx as usize].1);
            let mask = new_len - 1;
            let mut i = self.probe_start(key);
            while self.map[i] != 0 {
                i = (i + 1) & mask;
            }
            self.map[i] = idx + 1;
        }
    }

    /// Intern a key: return its dense index, creating a fresh controller
    /// (and `last_seen = now`) on first contact.
    pub fn intern(&mut self, path: PathletId, tc: TrafficClass, now: Time) -> PathIdx {
        if let Some(idx) = self.lookup(path, tc) {
            return idx;
        }
        let idx = self.entries.len() as u32;
        self.keys.push((path, tc));
        self.entries.push(PathletEntry {
            cc: (self.factory)(),
            inflight: 0,
            excluded_until: None,
            last_seen: now,
            consec_losses: 0,
            quarantined_until: None,
            backoff_level: 0,
        });
        // Keep load ≤ 3/4 so probe chains stay short.
        if (self.keys.len() + 1) * 4 > self.map.len() * 3 {
            self.grow_map();
        } else {
            let key = pack(path, tc);
            let mask = self.map.len() - 1;
            let mut i = self.probe_start(key);
            while self.map[i] != 0 {
                i = (i + 1) & mask;
            }
            self.map[i] = idx + 1;
        }
        PathIdx(idx)
    }

    /// The key interned at `idx`.
    #[inline]
    pub fn key_at(&self, idx: PathIdx) -> (PathletId, TrafficClass) {
        self.keys[idx.0 as usize]
    }

    /// The entry at a dense index.
    #[inline]
    pub fn at(&self, idx: PathIdx) -> &PathletEntry {
        &self.entries[idx.0 as usize]
    }

    /// The entry at a dense index, mutably.
    #[inline]
    pub fn at_mut(&mut self, idx: PathIdx) -> &mut PathletEntry {
        &mut self.entries[idx.0 as usize]
    }

    /// Get or create the entry for a pathlet.
    pub fn entry(&mut self, path: PathletId, tc: TrafficClass, now: Time) -> &mut PathletEntry {
        let idx = self.intern(path, tc, now);
        &mut self.entries[idx.0 as usize]
    }

    /// Read-only lookup.
    pub fn get(&self, path: PathletId, tc: TrafficClass) -> Option<&PathletEntry> {
        self.lookup(path, tc).map(|idx| self.at(idx))
    }

    /// Charge `bytes` of a new transmission against a pathlet.
    pub fn charge(&mut self, path: PathletId, tc: TrafficClass, bytes: u64, now: Time) {
        let e = self.entry(path, tc, now);
        e.inflight += bytes;
    }

    /// Charge `bytes` against an already-interned pathlet.
    #[inline]
    pub fn charge_at(&mut self, idx: PathIdx, bytes: u64) {
        self.entries[idx.0 as usize].inflight += bytes;
    }

    /// Credit `bytes` back (on ACK, NACK, or timeout of a charged packet).
    pub fn credit(&mut self, path: PathletId, tc: TrafficClass, bytes: u64) {
        if let Some(idx) = self.lookup(path, tc) {
            self.credit_at(idx, bytes);
        }
    }

    /// Credit `bytes` back on an already-interned pathlet.
    #[inline]
    pub fn credit_at(&mut self, idx: PathIdx, bytes: u64) {
        let e = &mut self.entries[idx.0 as usize];
        e.inflight = e.inflight.saturating_sub(bytes);
    }

    /// Window headroom for admitting new data on a pathlet. An unknown
    /// pathlet reports the initial window of a fresh controller.
    pub fn room(&mut self, path: PathletId, tc: TrafficClass, now: Time) -> u64 {
        self.entry(path, tc, now).room()
    }

    /// Window headroom on an already-interned pathlet.
    #[inline]
    pub fn room_at(&self, idx: PathIdx) -> u64 {
        self.entries[idx.0 as usize].room()
    }

    /// Mark a pathlet excluded until `until`; data packets will carry the
    /// exclusion so the network steers around it.
    pub fn exclude(&mut self, path: PathletId, tc: TrafficClass, until: Time, now: Time) {
        let idx = self.intern(path, tc, now);
        self.exclude_at(idx, until);
    }

    /// Mark an already-interned pathlet excluded until `until`.
    pub fn exclude_at(&mut self, idx: PathIdx, until: Time) {
        let e = &mut self.entries[idx.0 as usize];
        if e.excluded_until.is_none() {
            self.excluded += 1;
        }
        e.excluded_until = Some(until);
    }

    /// Quarantine an already-interned pathlet (presumed dead) until
    /// `until`, and advertise it excluded for the same span so the network
    /// steers other traffic around it too.
    pub fn quarantine_at(&mut self, idx: PathIdx, until: Time) {
        {
            let e = &mut self.entries[idx.0 as usize];
            if e.quarantined_until.is_none() {
                self.quarantined += 1;
            }
            e.quarantined_until = Some(until);
        }
        self.exclude_at(idx, until);
    }

    /// The best live alternative to `avoid` for the same traffic class:
    /// the non-quarantined entry with the most window headroom. `None`
    /// when no other live pathlet exists — callers must then keep using
    /// `avoid` rather than abandoning the only path.
    pub fn best_alternative(&self, avoid: PathIdx, now: Time) -> Option<PathIdx> {
        let (_, tc) = self.keys[avoid.0 as usize];
        let mut best: Option<(u64, u32)> = None;
        for (i, e) in self.entries.iter().enumerate() {
            if i as u32 == avoid.0 || self.keys[i].1 != tc || e.is_quarantined(now) {
                continue;
            }
            let room = e.room();
            if best.is_none_or(|(r, _)| room > r) {
                best = Some((room, i as u32));
            }
        }
        best.map(|(_, i)| PathIdx(i))
    }

    /// Feedback attributed acked bytes to this pathlet: it is demonstrably
    /// alive. Clears the loss streak, the re-probe backoff, and any
    /// standing quarantine (the advertised exclusion expires on its own).
    pub fn mark_alive(&mut self, idx: PathIdx) {
        let e = &mut self.entries[idx.0 as usize];
        e.consec_losses = 0;
        e.backoff_level = 0;
        if e.quarantined_until.take().is_some() {
            self.quarantined -= 1;
        }
    }

    /// Pathlets actually quarantined at `now` (unlike the internal
    /// counter, entries whose quarantine has expired but has not yet
    /// been released by a timer do not count). One counter check when
    /// nothing is quarantined.
    pub fn quarantined_now(&self, now: Time) -> usize {
        if self.quarantined == 0 {
            return 0;
        }
        self.entries
            .iter()
            .filter(|e| e.is_quarantined(now))
            .count()
    }

    /// The earliest pending quarantine release, if any pathlet is
    /// quarantined. This is the quarantine half of the sender's
    /// [`poll_at`](crate::MtpSender::poll_at) deadline: a driver that
    /// sleeps until this instant and then calls `on_timer` releases the
    /// quarantine exactly when it expires instead of at the next
    /// incidental ACK or RTO. One counter check when nothing is
    /// quarantined.
    pub fn next_quarantine_release(&self) -> Option<Time> {
        if self.quarantined == 0 {
            return None;
        }
        self.entries
            .iter()
            .filter_map(|e| e.quarantined_until)
            .min()
    }

    /// Clear quarantines that expired at `now`; each cleared entry opens a
    /// re-probe window. The loss streak resets (the probe starts clean)
    /// but the backoff level is retained — a pathlet that fails its probe
    /// goes back into quarantine for twice as long. Returns how many
    /// probes opened. One counter check when nothing is quarantined.
    pub fn release_expired_quarantines(&mut self, now: Time) -> u32 {
        if self.quarantined == 0 {
            return 0;
        }
        let mut released = 0;
        for e in &mut self.entries {
            if let Some(until) = e.quarantined_until {
                if until <= now {
                    e.quarantined_until = None;
                    e.consec_losses = 0;
                    self.quarantined -= 1;
                    released += 1;
                }
            }
        }
        released
    }

    /// Append the exclusions active at `now` to `out` and sort `out` by
    /// `(pathlet, TC)` for reproducible headers; expired entries are
    /// cleared as a side effect. `out` is typically a pooled header's
    /// `path_exclude` list, cleared by the pool on reuse. The common case —
    /// no exclusion ever set — is a single counter check.
    pub fn append_exclusions(&mut self, now: Time, out: &mut Vec<PathExclude>) {
        if self.excluded == 0 {
            return;
        }
        for (idx, e) in self.entries.iter_mut().enumerate() {
            match e.excluded_until {
                Some(until) if until > now => {
                    let (path, tc) = self.keys[idx];
                    out.push(PathExclude { path, tc });
                }
                Some(_) => {
                    e.excluded_until = None;
                    self.excluded -= 1;
                }
                None => {}
            }
        }
        out.sort_by_key(|x| (x.path.0, x.tc.0));
    }

    /// The active exclusions to advertise at time `now`, as a fresh `Vec`.
    /// Expired entries are cleared as a side effect. Hot paths use
    /// [`append_exclusions`](Self::append_exclusions) instead.
    pub fn active_exclusions(&mut self, now: Time) -> Vec<PathExclude> {
        let mut out = Vec::new();
        self.append_exclusions(now, &mut out);
        out
    }

    /// Iterate over `(key, entry)` pairs in interning order (for
    /// instrumentation).
    pub fn iter(&self) -> impl Iterator<Item = (&(PathletId, TrafficClass), &PathletEntry)> {
        self.keys.iter().zip(self.entries.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathlet_cc::CcKind;
    use mtp_sim::time::Duration;

    fn table() -> PathletTable {
        PathletTable::new(CcKind::Fixed { window: 10_000 }.factory())
    }

    const P1: PathletId = PathletId(1);
    const P2: PathletId = PathletId(2);
    const TC: TrafficClass = TrafficClass::BEST_EFFORT;

    #[test]
    fn charge_and_credit_track_room() {
        let mut t = table();
        assert_eq!(t.room(P1, TC, Time::ZERO), 10_000);
        t.charge(P1, TC, 4_000, Time::ZERO);
        assert_eq!(t.room(P1, TC, Time::ZERO), 6_000);
        t.credit(P1, TC, 4_000);
        assert_eq!(t.room(P1, TC, Time::ZERO), 10_000);
        // Over-credit saturates instead of wrapping.
        t.credit(P1, TC, 99_999);
        assert_eq!(t.room(P1, TC, Time::ZERO), 10_000);
    }

    #[test]
    fn pathlets_are_independent() {
        let mut t = table();
        t.charge(P1, TC, 10_000, Time::ZERO);
        assert_eq!(t.room(P1, TC, Time::ZERO), 0);
        assert_eq!(
            t.room(P2, TC, Time::ZERO),
            10_000,
            "other pathlet unaffected"
        );
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn same_pathlet_different_tc_is_separate() {
        let mut t = table();
        t.charge(P1, TrafficClass(1), 10_000, Time::ZERO);
        assert_eq!(t.room(P1, TrafficClass(2), Time::ZERO), 10_000);
    }

    #[test]
    fn exclusions_expire() {
        let mut t = table();
        let until = Time::ZERO + Duration::from_micros(100);
        t.exclude(P1, TC, until, Time::ZERO);
        t.exclude(P2, TC, until, Time::ZERO);
        let active = t.active_exclusions(Time::ZERO + Duration::from_micros(50));
        assert_eq!(active.len(), 2);
        assert_eq!(active[0].path, P1, "sorted order");
        let after = t.active_exclusions(Time::ZERO + Duration::from_micros(150));
        assert!(after.is_empty());
        // Cleared, not just filtered.
        assert!(t.get(P1, TC).unwrap().excluded_until.is_none());
    }

    #[test]
    fn interning_is_stable_and_dense() {
        let mut t = table();
        let a = t.intern(P1, TC, Time::ZERO);
        let b = t.intern(P2, TC, Time::ZERO);
        let c = t.intern(P1, TrafficClass(3), Time::ZERO);
        assert_eq!(a, PathIdx(0));
        assert_eq!(b, PathIdx(1));
        assert_eq!(c, PathIdx(2));
        // Re-interning returns the same index.
        assert_eq!(t.intern(P1, TC, Time::ZERO), a);
        assert_eq!(t.lookup(P2, TC), Some(b));
        assert_eq!(t.key_at(c), (P1, TrafficClass(3)));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn probe_table_survives_growth() {
        let mut t = table();
        let mut idxs = Vec::new();
        for p in 0..200u16 {
            for tc in 0..3u8 {
                idxs.push((p, tc, t.intern(PathletId(p), TrafficClass(tc), Time::ZERO)));
            }
        }
        for (p, tc, idx) in idxs {
            assert_eq!(t.lookup(PathletId(p), TrafficClass(tc)), Some(idx));
        }
        assert_eq!(t.len(), 600);
    }

    #[test]
    fn quarantine_release_and_alternatives() {
        let mut t = table();
        let a = t.intern(P1, TC, Time::ZERO);
        let b = t.intern(P2, TC, Time::ZERO);
        let until = Time::ZERO + Duration::from_micros(100);
        t.quarantine_at(a, until);
        assert!(t.at(a).is_quarantined(Time::ZERO));
        // Quarantine implies an advertised exclusion over the same span.
        assert_eq!(t.active_exclusions(Time::ZERO).len(), 1);
        // Alternatives skip quarantined entries; a quarantined-only pool
        // yields None.
        assert_eq!(t.best_alternative(a, Time::ZERO), Some(b));
        assert_eq!(t.best_alternative(b, Time::ZERO), None);
        // Different TC is never an alternative.
        t.intern(P2, TrafficClass(3), Time::ZERO);
        assert_eq!(t.best_alternative(b, Time::ZERO), None);
        // Expiry opens a re-probe: streak resets, counter balances.
        t.at_mut(a).consec_losses = 5;
        let later = Time::ZERO + Duration::from_micros(150);
        assert_eq!(t.release_expired_quarantines(later), 1);
        assert!(!t.at(a).is_quarantined(later));
        assert_eq!(t.at(a).consec_losses, 0);
        assert_eq!(t.release_expired_quarantines(later), 0);
        assert_eq!(t.best_alternative(b, later), Some(a));
    }

    #[test]
    fn best_alternative_prefers_headroom() {
        let mut t = table();
        let a = t.intern(P1, TC, Time::ZERO);
        let b = t.intern(P2, TC, Time::ZERO);
        let c = t.intern(PathletId(3), TC, Time::ZERO);
        t.charge_at(b, 8_000);
        t.charge_at(c, 2_000);
        // From a's perspective, c (8 kB room) beats b (2 kB room).
        assert_eq!(t.best_alternative(a, Time::ZERO), Some(c));
    }

    #[test]
    fn exclusion_fast_path_counter_balances() {
        let mut t = table();
        // No exclusions: append is a no-op even with entries present.
        t.intern(P1, TC, Time::ZERO);
        let mut out = Vec::new();
        t.append_exclusions(Time::ZERO, &mut out);
        assert!(out.is_empty());
        assert_eq!(t.excluded, 0);
        // Set, re-set (no double count), expire, and observe the counter
        // return to the fast path.
        let until = Time::ZERO + Duration::from_micros(10);
        t.exclude(P1, TC, until, Time::ZERO);
        t.exclude(P1, TC, until, Time::ZERO);
        assert_eq!(t.excluded, 1);
        t.append_exclusions(Time::ZERO + Duration::from_micros(20), &mut out);
        assert!(out.is_empty());
        assert_eq!(t.excluded, 0, "expired entry cleared and uncounted");
    }
}
