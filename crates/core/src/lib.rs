//! # mtp-core — the MTP endpoint: message transport + pathlet congestion control
//!
//! This crate is the paper's primary contribution, implemented as a library:
//!
//! * **Message transport** (§3.1.2). Applications submit *messages*;
//!   [`sender::MtpSender`] fragments them into packets that each carry the
//!   full message context (id, priority, lengths, offsets), and
//!   [`receiver::MtpReceiver`] reassembles them, SACKs every packet, and
//!   NACKs holes immediately (gaps within a message prove loss because the
//!   network processes messages atomically). Retransmission, scheduling,
//!   and load balancing all operate on `(message, packet)` coordinates —
//!   never on a byte stream — which is what makes in-network **data
//!   mutation** and per-message **load balancing** safe.
//! * **Pathlet congestion control** (§3.1.3). Senders keep one congestion
//!   controller per `(pathlet, traffic class)` pair
//!   ([`pathlets::PathletTable`]), with the algorithm selected by the TLV
//!   type of the network's feedback ([`pathlet_cc`]): DCTCP-like ECN
//!   windows, RCP-like explicit rates, and Swift-like delay targets
//!   coexist. Senders advertise congested pathlets back to the network via
//!   the header's path-exclude list.
//! * **Blob mode** (§3.1.2). Bulk data is carried as independent
//!   single-packet messages with a reassembly layer beneath the application
//!   ([`blob`]).
//!
//! The sans-IO cores ([`sender::MtpSender`], [`receiver::MtpReceiver`]) are
//! wrapped by simulator nodes in [`host`]; in-network devices that stamp
//! pathlet feedback and balance messages live in the `mtp-net` crate.
//!
//! ## Quick example
//!
//! ```
//! use mtp_core::{MtpConfig, MtpSenderNode, MtpSinkNode, ScheduledMsg};
//! use mtp_sim::time::{Bandwidth, Duration, Time};
//! use mtp_sim::{LinkCfg, PortId, Simulator};
//! use mtp_wire::EntityId;
//!
//! let mut sim = Simulator::new(7);
//! let snd = sim.add_node(Box::new(MtpSenderNode::new(
//!     MtpConfig::default(), 1, 2, EntityId(0), 1,
//!     vec![ScheduledMsg::new(Time::ZERO, 64 * 1024)],
//! )));
//! let sink = sim.add_node(Box::new(MtpSinkNode::new(2, Duration::from_micros(10))));
//! let rate = Bandwidth::from_gbps(100);
//! let d = Duration::from_micros(1);
//! sim.connect(snd, PortId(0), sink, PortId(0),
//!     LinkCfg::ecn(rate, d, 128, 20), LinkCfg::ecn(rate, d, 128, 20));
//! sim.run();
//! assert_eq!(sim.node_as::<MtpSinkNode>(sink).total_goodput(), 64 * 1024);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blob;
pub mod capabilities;
pub mod config;
pub mod host;
pub mod pathlet_cc;
pub mod pathlets;
pub mod receiver;
pub mod sender;

pub use blob::{send_blob, BlobComplete, BlobHandle, BlobReassembler};
pub use config::{FailoverConfig, MtpConfig};
pub use host::{EndpointMirror, MtpMsgRecord, MtpSenderNode, MtpSinkNode, ScheduledMsg};
pub use pathlet_cc::{CcKind, DctcpLikeCc, FixedWindowCc, PathletCc, RcpLikeCc, SwiftLikeCc};
pub use pathlets::{PathletEntry, PathletTable};
pub use receiver::{MsgDelivered, MtpReceiver, MtpReceiverStats};
pub use sender::{MtpSender, MtpSenderStats, PathHealth, SenderEvent, DEFAULT_PATHLET};

/// DCTCP's EWMA gain for the marking-fraction estimate (1/16, as in the
/// DCTCP paper; shared by the pathlet controller and the `mtp-tcp`
/// baseline).
pub const DCTCP_G: f64 = 1.0 / 16.0;
