//! The sans-IO MTP receiver.
//!
//! [`MtpReceiver`] reassembles messages from `(msg_id, pkt_num)`-addressed
//! packets, acknowledges every data packet with a SACK, NACKs holes the
//! moment they are observable, and echoes the accumulated path-feedback
//! list back to the sender (paper §3.1.1: the receiver "copies this list to
//! the ACK Path Feedback list").
//!
//! Two properties of the MTP design make the receiver cheap:
//!
//! * messages start at packet 0 and carry their total length in every
//!   packet, so the reassembly buffer is sized on first contact;
//! * the network never reorders packets *within* a message (atomic message
//!   processing, §3.1.2), so `pkt_num` skipping `max_seen + 1` is proof of
//!   loss — the receiver NACKs immediately instead of waiting for a
//!   timeout, NDP-style. Trimmed headers are NACKed the same way.

use std::collections::HashMap;

use mtp_sim::packet::{Headers, Packet};
use mtp_sim::time::Time;
use mtp_wire::{
    EcnCodepoint, Feedback, MsgId, MtpHeader, PathFeedback, PktNum, PktType, SackEntry,
};

use crate::sender::DEFAULT_PATHLET;

/// A message delivered to the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgDelivered {
    /// The message.
    pub id: MsgId,
    /// Total message bytes.
    pub bytes: u32,
    /// The sending host's address.
    pub src: u16,
    /// When the first packet of the message arrived.
    pub first_seen: Time,
    /// When the last packet arrived.
    pub completed: Time,
    /// The message's traffic class.
    pub tc: mtp_wire::TrafficClass,
    /// The message's priority.
    pub pri: u8,
}

#[derive(Debug)]
struct InMsg {
    src: u16,
    len_bytes: u32,
    len_pkts: u32,
    bitmap: Vec<u64>,
    received: u32,
    first_seen: Time,
    completed: Option<Time>,
    /// Highest packet number seen (for gap detection).
    max_seen: Option<u32>,
    /// Packets `< nacked_below` have already been NACKed once.
    nacked_below: u32,
    tc: mtp_wire::TrafficClass,
    pri: u8,
}

impl InMsg {
    fn test(&self, i: u32) -> bool {
        self.bitmap[(i / 64) as usize] & (1 << (i % 64)) != 0
    }

    fn set(&mut self, i: u32) -> bool {
        let w = (i / 64) as usize;
        let b = 1u64 << (i % 64);
        let was = self.bitmap[w] & b != 0;
        self.bitmap[w] |= b;
        was
    }
}

/// Counters kept by a receiver.
#[derive(Debug, Clone, Copy, Default)]
pub struct MtpReceiverStats {
    /// Data packets processed (including duplicates and trimmed headers).
    pub pkts_seen: u64,
    /// Duplicate data packets.
    pub duplicates: u64,
    /// Trimmed headers received.
    pub trimmed: u64,
    /// NACK entries emitted.
    pub nacks_sent: u64,
    /// Messages fully delivered.
    pub msgs_delivered: u64,
    /// Payload bytes newly received (first copy of each packet).
    pub goodput_bytes: u64,
}

/// One MTP receiving endpoint.
#[derive(Debug)]
pub struct MtpReceiver {
    /// This host's address (used as `src_port` on ACKs).
    addr: u16,
    msgs: HashMap<MsgId, InMsg>,
    events: Vec<MsgDelivered>,
    /// Payload bytes of incomplete messages currently held.
    buffered: u64,
    /// Counters.
    pub stats: MtpReceiverStats,
}

impl MtpReceiver {
    /// A receiver at address `addr`.
    pub fn new(addr: u16) -> MtpReceiver {
        MtpReceiver {
            addr,
            msgs: HashMap::new(),
            events: Vec::new(),
            buffered: 0,
            stats: MtpReceiverStats::default(),
        }
    }

    /// Drain delivery events.
    pub fn take_events(&mut self) -> Vec<MsgDelivered> {
        std::mem::take(&mut self.events)
    }

    /// Messages currently in reassembly (incomplete).
    pub fn in_reassembly(&self) -> usize {
        self.msgs.values().filter(|m| m.completed.is_none()).count()
    }

    /// Payload bytes held for incomplete messages. Bounded per message by
    /// the advertised `msg_len_bytes` — the "know in advance how much
    /// buffering is needed" property of §3.1.2.
    pub fn buffered_bytes(&self) -> u64 {
        self.buffered
    }

    /// Discard bookkeeping for messages that completed before `older_than`;
    /// returns how many were collected. A straggling duplicate of a
    /// collected message is simply re-acknowledged as if the message were
    /// new — harmless, because the sender treats SACKs idempotently.
    pub fn gc_completed(&mut self, older_than: Time) -> usize {
        let before = self.msgs.len();
        self.msgs
            .retain(|_, m| m.completed.map(|c| c >= older_than).unwrap_or(true));
        before - self.msgs.len()
    }

    /// Process a data packet; returns the ACK to transmit (every data
    /// packet is acknowledged immediately) and the number of new payload
    /// bytes it contributed.
    pub fn on_data(&mut self, now: Time, hdr: &MtpHeader, ecn: EcnCodepoint) -> (Packet, u64) {
        debug_assert_eq!(hdr.pkt_type, PktType::Data);
        self.stats.pkts_seen += 1;
        let trimmed = hdr.is_trimmed();
        let id = hdr.msg_id;
        let msg = self.msgs.entry(id).or_insert_with(|| InMsg {
            src: hdr.src_port,
            len_bytes: hdr.msg_len_bytes,
            len_pkts: hdr.msg_len_pkts,
            bitmap: vec![0u64; (hdr.msg_len_pkts as usize).div_ceil(64)],
            received: 0,
            first_seen: now,
            completed: None,
            max_seen: None,
            nacked_below: 0,
            tc: hdr.tc,
            pri: hdr.msg_pri,
        });

        let pkt_num = hdr.pkt_num.0.min(msg.len_pkts.saturating_sub(1));
        let mut sack = Vec::new();
        let mut nack = Vec::new();
        let mut newly = 0u64;

        if trimmed {
            // NDP-style: the payload was cut; NACK so the sender repairs
            // without waiting for an RTO.
            self.stats.trimmed += 1;
            if !msg.test(pkt_num) {
                nack.push(SackEntry {
                    msg: id,
                    pkt: PktNum(pkt_num),
                });
            }
        } else {
            let dup = msg.set(pkt_num);
            if dup {
                self.stats.duplicates += 1;
            } else {
                msg.received += 1;
                newly = hdr.pkt_len as u64;
                self.stats.goodput_bytes += newly;
                self.buffered += newly;
            }
            sack.push(SackEntry {
                msg: id,
                pkt: PktNum(pkt_num),
            });
            if msg.received == msg.len_pkts && msg.completed.is_none() {
                msg.completed = Some(now);
                self.stats.msgs_delivered += 1;
                self.buffered = self.buffered.saturating_sub(msg.len_bytes as u64);
                self.events.push(MsgDelivered {
                    id,
                    bytes: msg.len_bytes,
                    src: msg.src,
                    first_seen: msg.first_seen,
                    completed: now,
                    tc: msg.tc,
                    pri: msg.pri,
                });
            }
        }

        // Gap detection: within a message the network preserves order, so
        // skipping pkt numbers proves loss. NACK each hole once.
        // Retransmissions arrive out of order by design; skip the check.
        if !hdr.is_retx() {
            let expected = msg.max_seen.map(|m| m + 1).unwrap_or(0);
            if pkt_num > expected {
                let from = expected.max(msg.nacked_below);
                for missing in from..pkt_num {
                    if !msg.test(missing) && nack.len() < 255 {
                        nack.push(SackEntry {
                            msg: id,
                            pkt: PktNum(missing),
                        });
                    }
                }
                msg.nacked_below = msg.nacked_below.max(pkt_num);
            }
            msg.max_seen = Some(msg.max_seen.map_or(pkt_num, |m| m.max(pkt_num)));
        }
        self.stats.nacks_sent += nack.len() as u64;

        // Echo the path feedback, upgrading with the IP-level CE mark: if a
        // non-MTP-aware queue marked the packet, attribute the mark to the
        // stamped pathlets (or to the default pathlet if none stamped).
        let ack_path_feedback = Self::echo_feedback(hdr, ecn.is_ce());

        let ack_hdr = MtpHeader {
            src_port: self.addr,
            dst_port: hdr.src_port,
            pkt_type: PktType::Ack,
            msg_pri: hdr.msg_pri,
            tc: hdr.tc,
            flags: 0,
            msg_id: id,
            entity: hdr.entity,
            msg_len_pkts: hdr.msg_len_pkts,
            msg_len_bytes: hdr.msg_len_bytes,
            pkt_num: hdr.pkt_num,
            pkt_len: 0,
            pkt_offset: hdr.pkt_offset,
            ack_path_feedback,
            sack,
            nack,
            ..MtpHeader::default()
        };
        let wire = ack_hdr.wire_len() as u32;
        let mut ack = Packet::new(Headers::Mtp(mtp_sim::pool::boxed(ack_hdr)), wire);
        ack.sent_at = now;
        ack.ecn = EcnCodepoint::NotEct;
        (ack, newly)
    }

    fn echo_feedback(hdr: &MtpHeader, ce: bool) -> Vec<PathFeedback> {
        let mut echoed: Vec<PathFeedback> = Vec::with_capacity(hdr.path_feedback.len() + 1);
        let mut has_mark_entry = false;
        for fb in &hdr.path_feedback {
            let mut e = *fb;
            if let Feedback::EcnMark { ce: stamped } = e.feedback {
                has_mark_entry = true;
                e.feedback = Feedback::EcnMark { ce: stamped || ce };
            }
            echoed.push(e);
        }
        if ce && !has_mark_entry {
            let (path, tc) = echoed
                .first()
                .map(|e| (e.path, e.tc))
                .unwrap_or((DEFAULT_PATHLET, hdr.tc));
            echoed.push(PathFeedback {
                path,
                tc,
                feedback: Feedback::EcnMark { ce: true },
            });
        }
        if echoed.is_empty() {
            // No MTP-aware device stamped anything: report the whole network
            // as the default pathlet, unmarked, so the sender's window can
            // grow on clean ACKs.
            echoed.push(PathFeedback {
                path: DEFAULT_PATHLET,
                tc: hdr.tc,
                feedback: Feedback::EcnMark { ce: false },
            });
        }
        if echoed.len() > 255 {
            echoed.truncate(255);
        }
        echoed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_wire::types::flags;
    use mtp_wire::{PathletId, TrafficClass};

    fn data(msg: u64, pkt: u32, n_pkts: u32, len: u16) -> MtpHeader {
        MtpHeader {
            src_port: 1,
            dst_port: 2,
            pkt_type: PktType::Data,
            msg_id: MsgId(msg),
            msg_len_pkts: n_pkts,
            msg_len_bytes: n_pkts * len as u32,
            pkt_num: PktNum(pkt),
            pkt_len: len,
            pkt_offset: pkt * len as u32,
            flags: if pkt == n_pkts - 1 {
                flags::LAST_PKT
            } else {
                0
            },
            ..MtpHeader::default()
        }
    }

    fn ack_of(p: &Packet) -> &MtpHeader {
        p.headers.as_mtp().unwrap()
    }

    #[test]
    fn acks_every_packet_with_sack() {
        let mut r = MtpReceiver::new(2);
        let (ack, newly) = r.on_data(Time::ZERO, &data(5, 0, 3, 1000), EcnCodepoint::Ect0);
        assert_eq!(newly, 1000);
        let h = ack_of(&ack);
        assert_eq!(h.pkt_type, PktType::Ack);
        assert_eq!(
            h.sack,
            vec![SackEntry {
                msg: MsgId(5),
                pkt: PktNum(0)
            }]
        );
        assert_eq!(h.src_port, 2);
        assert_eq!(h.dst_port, 1);
    }

    #[test]
    fn completes_message_once() {
        let mut r = MtpReceiver::new(2);
        for pkt in 0..3 {
            r.on_data(Time::ZERO, &data(5, pkt, 3, 1000), EcnCodepoint::Ect0);
        }
        let ev = r.take_events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].bytes, 3000);
        assert_eq!(r.stats.msgs_delivered, 1);
        // A duplicate afterwards re-acks but does not re-deliver.
        let (_, newly) = r.on_data(Time::ZERO, &data(5, 1, 3, 1000), EcnCodepoint::Ect0);
        assert_eq!(newly, 0);
        assert_eq!(r.stats.duplicates, 1);
        assert!(r.take_events().is_empty());
    }

    #[test]
    fn gap_is_nacked_immediately_and_once() {
        let mut r = MtpReceiver::new(2);
        r.on_data(Time::ZERO, &data(5, 0, 5, 1000), EcnCodepoint::Ect0);
        // Packet 3 arrives: 1 and 2 are proven lost.
        let (ack, _) = r.on_data(Time::ZERO, &data(5, 3, 5, 1000), EcnCodepoint::Ect0);
        let h = ack_of(&ack);
        assert_eq!(
            h.nack,
            vec![
                SackEntry {
                    msg: MsgId(5),
                    pkt: PktNum(1)
                },
                SackEntry {
                    msg: MsgId(5),
                    pkt: PktNum(2)
                },
            ]
        );
        // Packet 4 arrives: holes already reported, no duplicate NACKs.
        let (ack2, _) = r.on_data(Time::ZERO, &data(5, 4, 5, 1000), EcnCodepoint::Ect0);
        assert!(ack_of(&ack2).nack.is_empty());
        assert_eq!(r.stats.nacks_sent, 2);
    }

    #[test]
    fn retransmissions_do_not_trigger_gap_detection() {
        let mut r = MtpReceiver::new(2);
        r.on_data(Time::ZERO, &data(5, 0, 5, 1000), EcnCodepoint::Ect0);
        let mut h = data(5, 4, 5, 1000);
        h.flags |= flags::RETX;
        let (ack, _) = r.on_data(Time::ZERO, &h, EcnCodepoint::Ect0);
        assert!(
            ack_of(&ack).nack.is_empty(),
            "retx arrives out of order by design"
        );
    }

    #[test]
    fn trimmed_header_is_nacked_not_counted() {
        let mut r = MtpReceiver::new(2);
        let mut h = data(5, 0, 2, 1000);
        h.flags |= flags::TRIMMED;
        let (ack, newly) = r.on_data(Time::ZERO, &h, EcnCodepoint::Ect0);
        assert_eq!(newly, 0);
        let ah = ack_of(&ack);
        assert!(ah.sack.is_empty());
        assert_eq!(
            ah.nack,
            vec![SackEntry {
                msg: MsgId(5),
                pkt: PktNum(0)
            }]
        );
        assert_eq!(r.stats.trimmed, 1);
    }

    #[test]
    fn ce_without_stamps_synthesizes_default_pathlet_mark() {
        let mut r = MtpReceiver::new(2);
        let (ack, _) = r.on_data(Time::ZERO, &data(5, 0, 1, 1000), EcnCodepoint::Ce);
        let fb = &ack_of(&ack).ack_path_feedback;
        assert_eq!(fb.len(), 1);
        assert_eq!(fb[0].path, DEFAULT_PATHLET);
        assert_eq!(fb[0].feedback, Feedback::EcnMark { ce: true });
    }

    #[test]
    fn clean_ack_reports_unmarked_default_pathlet() {
        let mut r = MtpReceiver::new(2);
        let (ack, _) = r.on_data(Time::ZERO, &data(5, 0, 1, 1000), EcnCodepoint::Ect0);
        let fb = &ack_of(&ack).ack_path_feedback;
        assert_eq!(fb[0].feedback, Feedback::EcnMark { ce: false });
    }

    #[test]
    fn ce_upgrades_stamped_pathlet_mark() {
        let mut r = MtpReceiver::new(2);
        let mut h = data(5, 0, 1, 1000);
        h.path_feedback = vec![PathFeedback {
            path: PathletId(3),
            tc: TrafficClass::BEST_EFFORT,
            feedback: Feedback::EcnMark { ce: false },
        }];
        let (ack, _) = r.on_data(Time::ZERO, &h, EcnCodepoint::Ce);
        let fb = &ack_of(&ack).ack_path_feedback;
        assert_eq!(fb.len(), 1);
        assert_eq!(fb[0].path, PathletId(3));
        assert_eq!(fb[0].feedback, Feedback::EcnMark { ce: true });
    }

    #[test]
    fn non_mark_stamps_are_echoed_and_ce_appended() {
        let mut r = MtpReceiver::new(2);
        let mut h = data(5, 0, 1, 1000);
        h.path_feedback = vec![PathFeedback {
            path: PathletId(3),
            tc: TrafficClass::BEST_EFFORT,
            feedback: Feedback::QueueDepth { bytes: 4096 },
        }];
        let (ack, _) = r.on_data(Time::ZERO, &h, EcnCodepoint::Ce);
        let fb = &ack_of(&ack).ack_path_feedback;
        assert_eq!(fb.len(), 2);
        assert_eq!(fb[0].feedback, Feedback::QueueDepth { bytes: 4096 });
        assert_eq!(
            fb[1].path,
            PathletId(3),
            "mark attributed to the stamped pathlet"
        );
        assert_eq!(fb[1].feedback, Feedback::EcnMark { ce: true });
    }

    #[test]
    fn single_packet_message_delivers() {
        let mut r = MtpReceiver::new(2);
        let (_, newly) = r.on_data(Time::ZERO, &data(9, 0, 1, 777), EcnCodepoint::Ect0);
        assert_eq!(newly, 777);
        let ev = r.take_events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].bytes, 777);
        assert_eq!(r.in_reassembly(), 0);
    }
}
