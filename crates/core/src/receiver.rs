//! The sans-IO MTP receiver.
//!
//! [`MtpReceiver`] reassembles messages from `(msg_id, pkt_num)`-addressed
//! packets, acknowledges every data packet with a SACK, NACKs holes the
//! moment they are observable, and echoes the accumulated path-feedback
//! list back to the sender (paper §3.1.1: the receiver "copies this list to
//! the ACK Path Feedback list").
//!
//! Two properties of the MTP design make the receiver cheap:
//!
//! * messages start at packet 0 and carry their total length in every
//!   packet, so the reassembly buffer is sized on first contact;
//! * the network never reorders packets *within* a message (atomic message
//!   processing, §3.1.2), so `pkt_num` skipping `max_seen + 1` is proof of
//!   loss — the receiver NACKs immediately instead of waiting for a
//!   timeout, NDP-style. Trimmed headers are NACKed the same way.

use mtp_sim::packet::{Headers, Packet};
use mtp_sim::time::{Duration, Time};
use mtp_wire::{
    EcnCodepoint, Feedback, MsgId, MtpHeader, PathFeedback, PktNum, PktType, SackEntry,
};

use crate::sender::DEFAULT_PATHLET;

/// A message delivered to the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgDelivered {
    /// The message.
    pub id: MsgId,
    /// Total message bytes.
    pub bytes: u32,
    /// The sending host's address.
    pub src: u16,
    /// When the first packet of the message arrived.
    pub first_seen: Time,
    /// When the last packet arrived.
    pub completed: Time,
    /// The message's traffic class.
    pub tc: mtp_wire::TrafficClass,
    /// The message's priority.
    pub pri: u8,
}

/// Per-message received-packet bitmap. Messages up to 128 packets — in
/// practice almost all of them — keep their bits inline in the `InMsg`
/// itself; only larger messages pay for a heap spill. This keeps the
/// per-packet test/set on the cache line the reassembly hot path has
/// already loaded and makes message setup allocation-free.
#[derive(Debug)]
enum Bitmap {
    Inline([u64; 2]),
    Spilled(Vec<u64>),
}

impl Bitmap {
    fn for_pkts(len_pkts: u32) -> Bitmap {
        if len_pkts <= 128 {
            Bitmap::Inline([0; 2])
        } else {
            Bitmap::Spilled(vec![0u64; (len_pkts as usize).div_ceil(64)])
        }
    }

    #[inline]
    fn words(&self) -> &[u64] {
        match self {
            Bitmap::Inline(w) => w,
            Bitmap::Spilled(v) => v,
        }
    }

    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        match self {
            Bitmap::Inline(w) => w,
            Bitmap::Spilled(v) => v,
        }
    }
}

#[derive(Debug)]
struct InMsg {
    id: MsgId,
    src: u16,
    len_bytes: u32,
    len_pkts: u32,
    bitmap: Bitmap,
    received: u32,
    first_seen: Time,
    completed: Option<Time>,
    /// Highest packet number seen (for gap detection).
    max_seen: Option<u32>,
    /// Packets `< nacked_below` have already been NACKed once.
    nacked_below: u32,
    tc: mtp_wire::TrafficClass,
    pri: u8,
}

impl InMsg {
    fn test(&self, i: u32) -> bool {
        self.bitmap.words()[(i / 64) as usize] & (1 << (i % 64)) != 0
    }

    fn set(&mut self, i: u32) -> bool {
        let w = &mut self.bitmap.words_mut()[(i / 64) as usize];
        let b = 1u64 << (i % 64);
        let was = *w & b != 0;
        *w |= b;
        was
    }
}

/// Counters kept by a receiver.
#[derive(Debug, Clone, Copy, Default)]
pub struct MtpReceiverStats {
    /// Data packets processed (including duplicates and trimmed headers).
    pub pkts_seen: u64,
    /// Duplicate data packets.
    pub duplicates: u64,
    /// Trimmed headers received.
    pub trimmed: u64,
    /// NACK entries emitted.
    pub nacks_sent: u64,
    /// Messages fully delivered.
    pub msgs_delivered: u64,
    /// Payload bytes newly received (first copy of each packet).
    pub goodput_bytes: u64,
}

/// One MTP receiving endpoint.
///
/// Reassembly state lives in a slab indexed by an open-addressed id→slot
/// probe map (ids arrive from many senders, so — unlike the sender's slab
/// — slots can't be computed arithmetically). The probe map stores
/// `slot + 1` (0 = empty) and is rebuilt from the slab on the cold
/// [`gc_completed`](Self::gc_completed) path, which keeps the per-packet
/// lookup a single multiply-and-probe with no tombstone handling.
#[derive(Debug)]
pub struct MtpReceiver {
    /// This host's address (used as `src_port` on ACKs).
    addr: u16,
    msgs: Vec<InMsg>,
    /// Open-addressed map from message id to `slot + 1` in `msgs`.
    map: Vec<u32>,
    events: Vec<MsgDelivered>,
    /// Payload bytes of incomplete messages currently held.
    buffered: u64,
    /// Total SACK entries per ACK, counting the fresh one (min 1). Above
    /// 1, each ACK re-echoes the most recent receptions, so the loss of
    /// any single ACK no longer strands its packet at the sender until an
    /// RTO — the same redundancy TCP gets from overlapping SACK blocks.
    sack_redundancy: usize,
    /// Ring of the most recent receptions, echoed for redundancy.
    recent: Vec<SackEntry>,
    /// Next write position in `recent`.
    recent_head: usize,
    /// Memo of the last successful id→slot lookup. Packets of one message
    /// arrive in bursts (a sender drains a window contiguously), so this
    /// answers most probes without touching the map — which, once many
    /// messages have passed through, no longer fits in cache. Validated
    /// against the slab on every hit, so slab compaction in
    /// [`gc_completed`](Self::gc_completed) can leave it stale safely.
    last_id: MsgId,
    last_slot: u32,
    /// If set, completed-message bookkeeping becomes collectable this
    /// long after completion and [`poll_at`](Self::poll_at) surfaces the
    /// deadline; `None` (the default) never collects, preserving the
    /// exact behaviour sim-driven receivers have always had.
    gc_linger: Option<Duration>,
    /// Completion time of the oldest still-resident completed message.
    oldest_completed: Option<Time>,
    /// Counters.
    pub stats: MtpReceiverStats,
}

#[inline]
fn probe_start(id: u64, len: usize) -> usize {
    // Fibonacci hashing spreads the monotone id ranges senders allocate
    // from; `len` is always a power of two.
    (id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & (len - 1)
}

impl MtpReceiver {
    /// A receiver at address `addr`.
    pub fn new(addr: u16) -> MtpReceiver {
        MtpReceiver {
            addr,
            msgs: Vec::new(),
            map: Vec::new(),
            events: Vec::new(),
            buffered: 0,
            sack_redundancy: 1,
            recent: Vec::new(),
            recent_head: 0,
            last_id: MsgId(0),
            last_slot: u32::MAX,
            gc_linger: None,
            oldest_completed: None,
            stats: MtpReceiverStats::default(),
        }
    }

    /// Echo up to `k - 1` recent receptions in every ACK in addition to
    /// the fresh SACK (so `k` entries total). `k = 1` (the default) is
    /// the plain one-packet-per-ACK behavior. Turn this up on topologies
    /// where the reverse path can lose ACKs — e.g. sprayed ACK fan-out
    /// with a failed return path — so a dropped ACK is covered by its
    /// successors instead of costing the sender a full RTO.
    pub fn with_sack_redundancy(mut self, k: usize) -> MtpReceiver {
        self.sack_redundancy = k.max(1);
        self
    }

    /// Collect completed-message bookkeeping `linger` after completion.
    /// The linger covers straggling duplicates: while a completed record
    /// is resident, a late copy is recognized as a duplicate; after
    /// collection it is re-acknowledged as if new (harmless — SACKs are
    /// idempotent at the sender — but it would inflate the duplicate
    /// stats a long-running wire receiver uses for monitoring).
    /// [`poll_at`](Self::poll_at) exposes the next collection deadline
    /// and [`on_poll`](Self::on_poll) performs it.
    pub fn with_gc_linger(mut self, linger: Duration) -> MtpReceiver {
        self.gc_linger = Some(linger);
        self
    }

    /// The next instant this receiver wants to be driven without packet
    /// arrival. The receiver has no protocol timers — ACKs and NACKs are
    /// emitted inline from [`on_data`](Self::on_data) — so the only
    /// deadline is the optional completed-message GC: the oldest resident
    /// completion time plus the configured linger. `None` when no linger
    /// is configured or nothing has completed.
    pub fn poll_at(&self) -> Option<Time> {
        let linger = self.gc_linger?;
        self.oldest_completed.map(|t| t + linger)
    }

    /// Run deferred work due at `now` — currently completed-message GC —
    /// and return how many records were collected. Call when the clock
    /// reaches [`poll_at`](Self::poll_at); early calls are no-ops.
    pub fn on_poll(&mut self, now: Time) -> usize {
        let Some(linger) = self.gc_linger else {
            return 0;
        };
        match self.oldest_completed {
            // Collect every record with `completed + linger <= now`.
            // `gc_completed` *retains* `completed >= older_than`, so the
            // cutoff must sit one tick past the boundary or a record
            // completed exactly at `now - linger` survives and the
            // `poll_at()` deadline never clears (a driver sleeping on it
            // would spin).
            Some(t) if t + linger <= now => {
                self.gc_completed(Time(now.0.saturating_sub(linger.0).saturating_add(1)))
            }
            _ => 0,
        }
    }

    /// The slab slot holding `id`, if present.
    #[inline]
    fn lookup(&mut self, id: MsgId) -> Option<usize> {
        if self.last_id == id {
            if let Some(m) = self.msgs.get(self.last_slot as usize) {
                if m.id == id {
                    return Some(self.last_slot as usize);
                }
            }
        }
        if self.map.is_empty() {
            return None;
        }
        let mut i = probe_start(id.0, self.map.len());
        loop {
            match self.map[i] {
                0 => return None,
                s => {
                    let slot = (s - 1) as usize;
                    if self.msgs[slot].id == id {
                        self.last_id = id;
                        self.last_slot = slot as u32;
                        return Some(slot);
                    }
                }
            }
            i = (i + 1) & (self.map.len() - 1);
        }
    }

    /// Rebuild the probe map from the slab (doubling it while the load
    /// factor would exceed 3/4).
    fn rebuild_map(&mut self) {
        let mut len = self.map.len().max(16);
        while (self.msgs.len() + 1) * 4 > len * 3 {
            len *= 2;
        }
        self.map.clear();
        self.map.resize(len, 0);
        for slot in 0..self.msgs.len() {
            let mut i = probe_start(self.msgs[slot].id.0, len);
            while self.map[i] != 0 {
                i = (i + 1) & (len - 1);
            }
            self.map[i] = slot as u32 + 1;
        }
    }

    /// Insert a new message at the next slab slot and index it.
    fn insert(&mut self, msg: InMsg) -> usize {
        let slot = self.msgs.len();
        self.last_id = msg.id;
        self.last_slot = slot as u32;
        self.msgs.push(msg);
        if (self.msgs.len() + 1) * 4 > self.map.len() * 3 {
            self.rebuild_map();
            return slot;
        }
        let mut i = probe_start(self.msgs[slot].id.0, self.map.len());
        while self.map[i] != 0 {
            i = (i + 1) & (self.map.len() - 1);
        }
        self.map[i] = slot as u32 + 1;
        slot
    }

    /// Append all pending delivery events to `out`, clearing the internal
    /// queue but keeping its capacity. Callers reuse one buffer across
    /// calls so steady-state event delivery never allocates.
    pub fn drain_events(&mut self, out: &mut Vec<MsgDelivered>) {
        out.append(&mut self.events);
    }

    /// Drain delivery events into a fresh `Vec`.
    #[deprecated(note = "use drain_events, which reuses a caller-owned buffer")]
    pub fn take_events(&mut self) -> Vec<MsgDelivered> {
        std::mem::take(&mut self.events)
    }

    /// Messages currently in reassembly (incomplete).
    pub fn in_reassembly(&self) -> usize {
        self.msgs.iter().filter(|m| m.completed.is_none()).count()
    }

    /// Payload bytes held for incomplete messages. Bounded per message by
    /// the advertised `msg_len_bytes` — the "know in advance how much
    /// buffering is needed" property of §3.1.2.
    pub fn buffered_bytes(&self) -> u64 {
        self.buffered
    }

    /// Discard bookkeeping for messages that completed before `older_than`;
    /// returns how many were collected. A straggling duplicate of a
    /// collected message is simply re-acknowledged as if the message were
    /// new — harmless, because the sender treats SACKs idempotently.
    pub fn gc_completed(&mut self, older_than: Time) -> usize {
        let before = self.msgs.len();
        self.msgs
            .retain(|m| m.completed.map(|c| c >= older_than).unwrap_or(true));
        let collected = before - self.msgs.len();
        if collected > 0 {
            self.rebuild_map();
        }
        self.oldest_completed = self.msgs.iter().filter_map(|m| m.completed).min();
        collected
    }

    /// Process a data packet; returns the ACK to transmit (every data
    /// packet is acknowledged immediately) and the number of new payload
    /// bytes it contributed.
    pub fn on_data(&mut self, now: Time, hdr: &MtpHeader, ecn: EcnCodepoint) -> (Packet, u64) {
        debug_assert_eq!(hdr.pkt_type, PktType::Data);
        self.stats.pkts_seen += 1;
        let trimmed = hdr.is_trimmed();
        let id = hdr.msg_id;
        let slot = self.lookup(id).unwrap_or_else(|| {
            self.insert(InMsg {
                id,
                src: hdr.src_port,
                len_bytes: hdr.msg_len_bytes,
                len_pkts: hdr.msg_len_pkts,
                bitmap: Bitmap::for_pkts(hdr.msg_len_pkts),
                received: 0,
                first_seen: now,
                completed: None,
                max_seen: None,
                nacked_below: 0,
                tc: hdr.tc,
                pri: hdr.msg_pri,
            })
        });
        let msg = &mut self.msgs[slot];

        let pkt_num = hdr.pkt_num.0.min(msg.len_pkts.saturating_sub(1));
        // The pooled header's retained Vec capacities are the reusable
        // buffers: SACK/NACK/feedback entries are written straight into
        // the ACK being built, so steady state performs no allocation.
        let mut ack_hdr = mtp_sim::pool::take_header();
        let mut newly = 0u64;

        if trimmed {
            // NDP-style: the payload was cut; NACK so the sender repairs
            // without waiting for an RTO.
            self.stats.trimmed += 1;
            if !msg.test(pkt_num) {
                ack_hdr.nack.push(SackEntry {
                    msg: id,
                    pkt: PktNum(pkt_num),
                });
            }
        } else {
            let dup = msg.set(pkt_num);
            if dup {
                self.stats.duplicates += 1;
            } else {
                msg.received += 1;
                newly = hdr.pkt_len as u64;
                self.stats.goodput_bytes += newly;
                self.buffered += newly;
            }
            ack_hdr.sack.push(SackEntry {
                msg: id,
                pkt: PktNum(pkt_num),
            });
            // Redundant echo of recent receptions (possibly of other
            // messages): a lost ACK is then covered by the next few ACKs
            // instead of stranding its packet until the sender's RTO. The
            // sender treats SACKs idempotently, so repeats are free.
            if self.sack_redundancy > 1 {
                let fresh = SackEntry {
                    msg: id,
                    pkt: PktNum(pkt_num),
                };
                for e in &self.recent {
                    if *e != fresh {
                        ack_hdr.sack.push(*e);
                    }
                }
                if self.recent.len() < self.sack_redundancy - 1 {
                    self.recent.push(fresh);
                } else {
                    self.recent[self.recent_head] = fresh;
                    self.recent_head = (self.recent_head + 1) % self.recent.len();
                }
            }
            if msg.received == msg.len_pkts && msg.completed.is_none() {
                msg.completed = Some(now);
                // Completions are monotone in `now`, so the first
                // resident one is the minimum.
                if self.oldest_completed.is_none() {
                    self.oldest_completed = Some(now);
                }
                self.stats.msgs_delivered += 1;
                self.buffered = self.buffered.saturating_sub(msg.len_bytes as u64);
                self.events.push(MsgDelivered {
                    id,
                    bytes: msg.len_bytes,
                    src: msg.src,
                    first_seen: msg.first_seen,
                    completed: now,
                    tc: msg.tc,
                    pri: msg.pri,
                });
            }
        }

        // Gap detection: within a message the network preserves order, so
        // skipping pkt numbers proves loss. NACK each hole once.
        // Retransmissions arrive out of order by design; skip the check.
        if !hdr.is_retx() {
            let expected = msg.max_seen.map(|m| m + 1).unwrap_or(0);
            if pkt_num > expected {
                let from = expected.max(msg.nacked_below);
                for missing in from..pkt_num {
                    if !msg.test(missing) && ack_hdr.nack.len() < 255 {
                        ack_hdr.nack.push(SackEntry {
                            msg: id,
                            pkt: PktNum(missing),
                        });
                    }
                }
                msg.nacked_below = msg.nacked_below.max(pkt_num);
            }
            msg.max_seen = Some(msg.max_seen.map_or(pkt_num, |m| m.max(pkt_num)));
        }
        self.stats.nacks_sent += ack_hdr.nack.len() as u64;

        // Echo the path feedback, upgrading with the IP-level CE mark: if a
        // non-MTP-aware queue marked the packet, attribute the mark to the
        // stamped pathlets (or to the default pathlet if none stamped).
        Self::echo_feedback_into(hdr, ecn.is_ce(), &mut ack_hdr.ack_path_feedback);

        ack_hdr.src_port = self.addr;
        ack_hdr.dst_port = hdr.src_port;
        ack_hdr.pkt_type = PktType::Ack;
        ack_hdr.msg_pri = hdr.msg_pri;
        ack_hdr.tc = hdr.tc;
        ack_hdr.flags = 0;
        ack_hdr.msg_id = id;
        ack_hdr.entity = hdr.entity;
        ack_hdr.msg_len_pkts = hdr.msg_len_pkts;
        ack_hdr.msg_len_bytes = hdr.msg_len_bytes;
        ack_hdr.pkt_num = hdr.pkt_num;
        ack_hdr.pkt_len = 0;
        ack_hdr.pkt_offset = hdr.pkt_offset;
        let wire = ack_hdr.wire_len() as u32;
        let mut ack = Packet::new(Headers::Mtp(ack_hdr), wire);
        ack.sent_at = now;
        ack.ecn = EcnCodepoint::NotEct;
        (ack, newly)
    }

    /// Copy `hdr`'s accumulated path feedback into `out` (assumed empty),
    /// upgrading/synthesizing ECN marks as [`on_data`](Self::on_data)
    /// describes.
    fn echo_feedback_into(hdr: &MtpHeader, ce: bool, out: &mut Vec<PathFeedback>) {
        debug_assert!(out.is_empty());
        let mut has_mark_entry = false;
        for fb in &hdr.path_feedback {
            let mut e = *fb;
            if let Feedback::EcnMark { ce: stamped } = e.feedback {
                has_mark_entry = true;
                e.feedback = Feedback::EcnMark { ce: stamped || ce };
            }
            out.push(e);
        }
        if ce && !has_mark_entry {
            let (path, tc) = out
                .first()
                .map(|e| (e.path, e.tc))
                .unwrap_or((DEFAULT_PATHLET, hdr.tc));
            out.push(PathFeedback {
                path,
                tc,
                feedback: Feedback::EcnMark { ce: true },
            });
        }
        if out.is_empty() {
            // No MTP-aware device stamped anything: report the whole network
            // as the default pathlet, unmarked, so the sender's window can
            // grow on clean ACKs.
            out.push(PathFeedback {
                path: DEFAULT_PATHLET,
                tc: hdr.tc,
                feedback: Feedback::EcnMark { ce: false },
            });
        }
        if out.len() > 255 {
            out.truncate(255);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_wire::types::flags;
    use mtp_wire::{PathletId, TrafficClass};

    fn data(msg: u64, pkt: u32, n_pkts: u32, len: u16) -> MtpHeader {
        MtpHeader {
            src_port: 1,
            dst_port: 2,
            pkt_type: PktType::Data,
            msg_id: MsgId(msg),
            msg_len_pkts: n_pkts,
            msg_len_bytes: n_pkts * len as u32,
            pkt_num: PktNum(pkt),
            pkt_len: len,
            pkt_offset: pkt * len as u32,
            flags: if pkt == n_pkts - 1 {
                flags::LAST_PKT
            } else {
                0
            },
            ..MtpHeader::default()
        }
    }

    fn ack_of(p: &Packet) -> &MtpHeader {
        p.headers.as_mtp().unwrap()
    }

    fn events(r: &mut MtpReceiver) -> Vec<MsgDelivered> {
        let mut ev = Vec::new();
        r.drain_events(&mut ev);
        ev
    }

    #[test]
    fn acks_every_packet_with_sack() {
        let mut r = MtpReceiver::new(2);
        let (ack, newly) = r.on_data(Time::ZERO, &data(5, 0, 3, 1000), EcnCodepoint::Ect0);
        assert_eq!(newly, 1000);
        let h = ack_of(&ack);
        assert_eq!(h.pkt_type, PktType::Ack);
        assert_eq!(
            h.sack,
            vec![SackEntry {
                msg: MsgId(5),
                pkt: PktNum(0)
            }]
        );
        assert_eq!(h.src_port, 2);
        assert_eq!(h.dst_port, 1);
    }

    #[test]
    fn completes_message_once() {
        let mut r = MtpReceiver::new(2);
        for pkt in 0..3 {
            r.on_data(Time::ZERO, &data(5, pkt, 3, 1000), EcnCodepoint::Ect0);
        }
        let ev = events(&mut r);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].bytes, 3000);
        assert_eq!(r.stats.msgs_delivered, 1);
        // A duplicate afterwards re-acks but does not re-deliver.
        let (_, newly) = r.on_data(Time::ZERO, &data(5, 1, 3, 1000), EcnCodepoint::Ect0);
        assert_eq!(newly, 0);
        assert_eq!(r.stats.duplicates, 1);
        assert!(events(&mut r).is_empty());
    }

    #[test]
    fn gap_is_nacked_immediately_and_once() {
        let mut r = MtpReceiver::new(2);
        r.on_data(Time::ZERO, &data(5, 0, 5, 1000), EcnCodepoint::Ect0);
        // Packet 3 arrives: 1 and 2 are proven lost.
        let (ack, _) = r.on_data(Time::ZERO, &data(5, 3, 5, 1000), EcnCodepoint::Ect0);
        let h = ack_of(&ack);
        assert_eq!(
            h.nack,
            vec![
                SackEntry {
                    msg: MsgId(5),
                    pkt: PktNum(1)
                },
                SackEntry {
                    msg: MsgId(5),
                    pkt: PktNum(2)
                },
            ]
        );
        // Packet 4 arrives: holes already reported, no duplicate NACKs.
        let (ack2, _) = r.on_data(Time::ZERO, &data(5, 4, 5, 1000), EcnCodepoint::Ect0);
        assert!(ack_of(&ack2).nack.is_empty());
        assert_eq!(r.stats.nacks_sent, 2);
    }

    #[test]
    fn retransmissions_do_not_trigger_gap_detection() {
        let mut r = MtpReceiver::new(2);
        r.on_data(Time::ZERO, &data(5, 0, 5, 1000), EcnCodepoint::Ect0);
        let mut h = data(5, 4, 5, 1000);
        h.flags |= flags::RETX;
        let (ack, _) = r.on_data(Time::ZERO, &h, EcnCodepoint::Ect0);
        assert!(
            ack_of(&ack).nack.is_empty(),
            "retx arrives out of order by design"
        );
    }

    #[test]
    fn trimmed_header_is_nacked_not_counted() {
        let mut r = MtpReceiver::new(2);
        let mut h = data(5, 0, 2, 1000);
        h.flags |= flags::TRIMMED;
        let (ack, newly) = r.on_data(Time::ZERO, &h, EcnCodepoint::Ect0);
        assert_eq!(newly, 0);
        let ah = ack_of(&ack);
        assert!(ah.sack.is_empty());
        assert_eq!(
            ah.nack,
            vec![SackEntry {
                msg: MsgId(5),
                pkt: PktNum(0)
            }]
        );
        assert_eq!(r.stats.trimmed, 1);
    }

    #[test]
    fn ce_without_stamps_synthesizes_default_pathlet_mark() {
        let mut r = MtpReceiver::new(2);
        let (ack, _) = r.on_data(Time::ZERO, &data(5, 0, 1, 1000), EcnCodepoint::Ce);
        let fb = &ack_of(&ack).ack_path_feedback;
        assert_eq!(fb.len(), 1);
        assert_eq!(fb[0].path, DEFAULT_PATHLET);
        assert_eq!(fb[0].feedback, Feedback::EcnMark { ce: true });
    }

    #[test]
    fn clean_ack_reports_unmarked_default_pathlet() {
        let mut r = MtpReceiver::new(2);
        let (ack, _) = r.on_data(Time::ZERO, &data(5, 0, 1, 1000), EcnCodepoint::Ect0);
        let fb = &ack_of(&ack).ack_path_feedback;
        assert_eq!(fb[0].feedback, Feedback::EcnMark { ce: false });
    }

    #[test]
    fn ce_upgrades_stamped_pathlet_mark() {
        let mut r = MtpReceiver::new(2);
        let mut h = data(5, 0, 1, 1000);
        h.path_feedback = vec![PathFeedback {
            path: PathletId(3),
            tc: TrafficClass::BEST_EFFORT,
            feedback: Feedback::EcnMark { ce: false },
        }];
        let (ack, _) = r.on_data(Time::ZERO, &h, EcnCodepoint::Ce);
        let fb = &ack_of(&ack).ack_path_feedback;
        assert_eq!(fb.len(), 1);
        assert_eq!(fb[0].path, PathletId(3));
        assert_eq!(fb[0].feedback, Feedback::EcnMark { ce: true });
    }

    #[test]
    fn non_mark_stamps_are_echoed_and_ce_appended() {
        let mut r = MtpReceiver::new(2);
        let mut h = data(5, 0, 1, 1000);
        h.path_feedback = vec![PathFeedback {
            path: PathletId(3),
            tc: TrafficClass::BEST_EFFORT,
            feedback: Feedback::QueueDepth { bytes: 4096 },
        }];
        let (ack, _) = r.on_data(Time::ZERO, &h, EcnCodepoint::Ce);
        let fb = &ack_of(&ack).ack_path_feedback;
        assert_eq!(fb.len(), 2);
        assert_eq!(fb[0].feedback, Feedback::QueueDepth { bytes: 4096 });
        assert_eq!(
            fb[1].path,
            PathletId(3),
            "mark attributed to the stamped pathlet"
        );
        assert_eq!(fb[1].feedback, Feedback::EcnMark { ce: true });
    }

    #[test]
    fn single_packet_message_delivers() {
        let mut r = MtpReceiver::new(2);
        let (_, newly) = r.on_data(Time::ZERO, &data(9, 0, 1, 777), EcnCodepoint::Ect0);
        assert_eq!(newly, 777);
        let ev = events(&mut r);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].bytes, 777);
        assert_eq!(r.in_reassembly(), 0);
    }

    #[test]
    fn echoed_feedback_wire_bytes_are_stable() {
        // Pin the exact wire encoding of an echoed-feedback ACK: building
        // the ACK in a pooled header (with whatever stale capacity it
        // carries) must emit byte-identical output to a fresh one.
        let mut h = data(5, 0, 1, 1000);
        h.path_feedback = vec![
            PathFeedback {
                path: PathletId(3),
                tc: TrafficClass::BEST_EFFORT,
                feedback: Feedback::RcpRate { mbps: 40_000 },
            },
            PathFeedback {
                path: PathletId(9),
                tc: TrafficClass(2),
                feedback: Feedback::EcnMark { ce: false },
            },
        ];
        fn wire_bytes(h: &MtpHeader) -> Vec<u8> {
            let mut buf = vec![0u8; 2048];
            let n = h.emit(&mut buf).expect("emit");
            buf.truncate(n);
            buf
        }
        let mut r1 = MtpReceiver::new(2);
        let (ack1, _) = r1.on_data(Time::ZERO, &h, EcnCodepoint::Ce);
        let bytes1 = wire_bytes(ack_of(&ack1));

        // Same ACK built from a header recycled with large dirty lists.
        let mut dirty = Box::<MtpHeader>::default();
        dirty.sack = vec![
            SackEntry {
                msg: MsgId(77),
                pkt: PktNum(4)
            };
            64
        ];
        dirty.ack_path_feedback = vec![
            PathFeedback {
                path: PathletId(200),
                tc: TrafficClass(7),
                feedback: Feedback::Delay { ns: 1 },
            };
            64
        ];
        mtp_sim::pool::recycle_header(dirty);
        let mut r2 = MtpReceiver::new(2);
        let (ack2, _) = r2.on_data(Time::ZERO, &h, EcnCodepoint::Ce);
        let h2 = ack_of(&ack2);
        assert_eq!(wire_bytes(h2), bytes1);

        // And the echoed list content itself: stamped entries in order,
        // EcnMark upgraded to carry the IP-level CE.
        assert_eq!(
            h2.ack_path_feedback,
            vec![
                PathFeedback {
                    path: PathletId(3),
                    tc: TrafficClass::BEST_EFFORT,
                    feedback: Feedback::RcpRate { mbps: 40_000 },
                },
                PathFeedback {
                    path: PathletId(9),
                    tc: TrafficClass(2),
                    feedback: Feedback::EcnMark { ce: true },
                },
            ]
        );
    }
}
