//! The sans-IO MTP sender.
//!
//! [`MtpSender`] fragments application messages into packets, admits them
//! against per-pathlet congestion windows, and repairs loss from SACK/NACK
//! lists and a retransmission timeout. Like the TCP cores in `mtp-tcp`, it
//! never touches the simulator: callers feed it ACK headers and the clock;
//! it pushes packets into a caller-provided `Vec` and surfaces completions
//! as [`SenderEvent`]s.
//!
//! ## Admission and attribution
//!
//! Every transmitted packet is *charged* against the currently active
//! pathlet (learned from the most recent feedback, or the synthetic
//! pathlet 0 before any feedback arrives). When its SACK comes back, the
//! charge is credited and the acknowledged bytes are attributed to the
//! pathlet the packet was charged to — whose controller consumes the
//! echoed feedback entry for that pathlet. Feedback for pathlets with no
//! acked bytes in the ACK (e.g. a rate update from an RCP segment) is still
//! delivered, with zero attributed bytes.
//!
//! When the network moves traffic to a different pathlet, the sender
//! switches its admission window to that pathlet's controller *without
//! discarding the old one* — this is what lets MTP resume at the converged
//! window when an optical switch flips paths back (paper §5.1).
//!
//! ## Hot-path layout
//!
//! Message state is a slab: `MsgId`s are allocated as
//! `msg_id_base + k` for monotonically increasing `k` and records are
//! never removed, so the slot of an id is pure arithmetic — no id→slot
//! map of any kind is needed on the ACK path. The send queue is an
//! intrusive ready-list threaded through the slab (one FIFO per priority
//! plus a 256-bit occupancy bitmap), making submit/poll/complete O(1)
//! instead of a sorted-`Vec` insert/scan. Packets record the [`PathIdx`]
//! they were charged to, so per-ACK credit and byte attribution are flat
//! array operations against reusable scratch tables — the steady-state
//! ACK path performs no allocation at all (headers come from the
//! simulator's thread-local pool and are filled in place).

use std::collections::VecDeque;

use mtp_sim::packet::{Headers, Packet};
use mtp_sim::rtt::RttEstimator;
use mtp_sim::time::{Duration, Time};
use mtp_wire::types::flags;
use mtp_wire::{EntityId, Feedback, MsgId, MtpHeader, PathletId, PktNum, PktType, TrafficClass};

use crate::config::MtpConfig;
use crate::pathlet_cc::PathIdx;
use crate::pathlets::PathletTable;

/// The synthetic pathlet charged before any network feedback identifies a
/// real one ("the entire network as a single pathlet mimics TCP", §3.1.3).
pub const DEFAULT_PATHLET: PathletId = PathletId(0);

/// Null link in the intrusive ready-list.
const NONE: u32 = u32::MAX;

/// Events surfaced to the application layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenderEvent {
    /// Every packet of the message has been acknowledged.
    MsgCompleted {
        /// The completed message.
        id: MsgId,
        /// When the application submitted it.
        submitted: Time,
        /// When the final SACK arrived.
        completed: Time,
    },
}

/// Counters kept by a sender.
#[derive(Debug, Clone, Copy, Default)]
pub struct MtpSenderStats {
    /// Data packets transmitted, including retransmissions.
    pub pkts_sent: u64,
    /// Retransmitted packets.
    pub retransmissions: u64,
    /// Retransmission-timeout events.
    pub timeouts: u64,
    /// NACK entries processed.
    pub nacks: u64,
    /// Messages completed.
    pub msgs_completed: u64,
    /// Pathlets declared dead and quarantined (failover enabled only).
    pub quarantines: u64,
    /// Times the *active* pathlet died and admissions switched to a
    /// surviving one.
    pub failovers: u64,
    /// Quarantines that expired and opened a re-probe window.
    pub reprobes: u64,
    /// In-flight packets evacuated off dead pathlets and re-sent on
    /// survivors.
    pub evacuated_pkts: u64,
}

/// A point-in-time summary of the sender's view of its path set (see
/// [`MtpSender::path_health`]). Carried inside wire-session errors so a
/// "peer dead" diagnosis distinguishes a dead network from a dead peer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathHealth {
    /// Pathlets known (observed via feedback or advertisement).
    pub known: usize,
    /// Pathlets currently quarantined as presumed dead.
    pub quarantined: usize,
    /// Lifetime quarantine events.
    pub quarantines: u64,
    /// Lifetime active-pathlet failovers.
    pub failovers: u64,
}

impl core::fmt::Display for PathHealth {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}/{} pathlets quarantined ({} quarantines, {} failovers lifetime)",
            self.quarantined, self.known, self.quarantines, self.failovers
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum PktState {
    Unsent,
    InFlight,
    Acked,
}

#[derive(Debug, Clone, Copy)]
struct OutPkt {
    len: u32,
    offset: u32,
    state: PktState,
    /// Interned pathlet this packet's bytes are currently charged to.
    charged: PathIdx,
    sent_at: Time,
    /// Transmission count; deque entries are valid only for the matching
    /// epoch, and only epoch-1 packets produce RTT samples (Karn).
    epoch: u32,
}

#[derive(Debug)]
struct OutMsg {
    dst: u16,
    pri: u8,
    tc: TrafficClass,
    total_bytes: u32,
    pkts: Vec<OutPkt>,
    acked: u32,
    next_unsent: u32,
    submitted: Time,
    completed: Option<Time>,
    /// Next message slot in this priority's ready FIFO ([`NONE`] = tail).
    next_ready: u32,
}

/// One MTP sending endpoint.
pub struct MtpSender {
    cfg: MtpConfig,
    /// This host's address (carried as `src_port`).
    addr: u16,
    entity: EntityId,
    msg_id_base: u64,
    /// Message slab, indexed by `id.0 - msg_id_base`. Records are never
    /// removed, so slot resolution is arithmetic.
    msgs: Vec<OutMsg>,
    /// Intrusive ready-list: head/tail slot of the FIFO of messages with
    /// unsent packets, one per priority, plus an occupancy bitmap. FIFO
    /// order within a priority is submission order (ids are monotone), so
    /// draining bucket 0 upward reproduces `(priority, id)` order exactly.
    ready_head: [u32; 256],
    ready_tail: [u32; 256],
    ready_bits: [u64; 4],
    /// FIFO of (slot, pkt, epoch, sent_at) for RTO scanning.
    inflight: VecDeque<(u32, u32, u32, Time)>,
    pathlets: PathletTable,
    /// The pathlet new transmissions are charged against.
    active: (PathletId, TrafficClass),
    rtt: RttEstimator,
    /// Counters.
    pub stats: MtpSenderStats,
    events: Vec<SenderEvent>,
    /// Per-ACK scratch: acked bytes accumulated per [`PathIdx`], plus the
    /// list of indices touched; both are cleared (cheaply, via the touched
    /// list) before `on_ack` returns, so no per-ACK allocation occurs.
    ack_scratch: Vec<u64>,
    ack_touched: Vec<u32>,
    /// Per-ACK scratch: distinct pathlets with NACKed packets.
    loss_scratch: Vec<u32>,
    /// Per-timeout scratch: (slot, pkt) pairs expired by the RTO.
    timer_scratch: Vec<(u32, u32)>,
    /// Failover scratch: (slot, pkt) pairs evacuated off a dead pathlet.
    evac_scratch: Vec<(u32, u32)>,
}

impl std::fmt::Debug for MtpSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MtpSender")
            .field("addr", &self.addr)
            .field("outstanding", &self.msgs.len())
            .field("active", &self.active)
            .finish()
    }
}

impl MtpSender {
    /// A sender at address `addr` for `entity`; message IDs are allocated
    /// from `msg_id_base` (must be globally unique per sender).
    pub fn new(cfg: MtpConfig, addr: u16, entity: EntityId, msg_id_base: u64) -> MtpSender {
        let rtt = RttEstimator::new(cfg.min_rto);
        let pathlets = PathletTable::new(cfg.cc.factory());
        MtpSender {
            cfg,
            addr,
            entity,
            msg_id_base,
            msgs: Vec::new(),
            ready_head: [NONE; 256],
            ready_tail: [NONE; 256],
            ready_bits: [0; 4],
            inflight: VecDeque::new(),
            pathlets,
            active: (DEFAULT_PATHLET, TrafficClass::BEST_EFFORT),
            rtt,
            stats: MtpSenderStats::default(),
            events: Vec::new(),
            ack_scratch: Vec::new(),
            ack_touched: Vec::new(),
            loss_scratch: Vec::new(),
            timer_scratch: Vec::new(),
            evac_scratch: Vec::new(),
        }
    }

    /// The slab slot of `id`, if it names a message of this sender.
    #[inline]
    fn slot_of(&self, id: MsgId) -> Option<u32> {
        let k = id.0.wrapping_sub(self.msg_id_base);
        (k < self.msgs.len() as u64).then_some(k as u32)
    }

    /// The message id stored in slab slot `slot`.
    #[inline]
    fn id_of(&self, slot: u32) -> MsgId {
        MsgId(self.msg_id_base + slot as u64)
    }

    /// Append `slot` to its priority's ready FIFO.
    fn ready_push(&mut self, slot: u32, pri: u8) {
        self.msgs[slot as usize].next_ready = NONE;
        let p = pri as usize;
        match self.ready_tail[p] {
            NONE => {
                self.ready_head[p] = slot;
                self.ready_bits[p / 64] |= 1u64 << (p % 64);
            }
            tail => self.msgs[tail as usize].next_ready = slot,
        }
        self.ready_tail[p] = slot;
    }

    /// Remove the head of priority `pri`'s ready FIFO.
    fn ready_pop(&mut self, pri: u8) {
        let p = pri as usize;
        let head = self.ready_head[p];
        debug_assert_ne!(head, NONE);
        let next = self.msgs[head as usize].next_ready;
        self.ready_head[p] = next;
        if next == NONE {
            self.ready_tail[p] = NONE;
            self.ready_bits[p / 64] &= !(1u64 << (p % 64));
        }
    }

    /// The most urgent priority with ready messages, if any.
    #[inline]
    fn first_ready(&self) -> Option<u8> {
        for (w, &bits) in self.ready_bits.iter().enumerate() {
            if bits != 0 {
                return Some((w * 64 + bits.trailing_zeros() as usize) as u8);
            }
        }
        None
    }

    /// Submit a message of `bytes` to destination address `dst` with the
    /// given priority (0 = most urgent) and traffic class. Returns the
    /// message id. Transmission starts immediately, window permitting.
    pub fn send_message(
        &mut self,
        dst: u16,
        bytes: u32,
        pri: u8,
        tc: TrafficClass,
        now: Time,
        out: &mut Vec<Packet>,
    ) -> MsgId {
        assert!(bytes > 0, "empty message");
        let slot = self.msgs.len() as u32;
        let id = self.id_of(slot);
        let mtu = self.cfg.mtu_payload;
        let n_pkts = bytes.div_ceil(mtu);
        let pkts = (0..n_pkts)
            .map(|i| OutPkt {
                len: if i == n_pkts - 1 {
                    bytes - i * mtu
                } else {
                    mtu
                },
                offset: i * mtu,
                state: PktState::Unsent,
                charged: PathIdx(0),
                sent_at: Time::ZERO,
                epoch: 0,
            })
            .collect();
        self.msgs.push(OutMsg {
            dst,
            pri,
            tc,
            total_bytes: bytes,
            pkts,
            acked: 0,
            next_unsent: 0,
            submitted: now,
            completed: None,
            next_ready: NONE,
        });
        self.ready_push(slot, pri);
        self.poll(now, out);
        id
    }

    /// Outstanding (incomplete) message count.
    pub fn outstanding(&self) -> usize {
        self.msgs.iter().filter(|m| m.completed.is_none()).count()
    }

    /// Append all pending completion events to `out`, clearing the
    /// internal queue but keeping its capacity. Callers reuse one buffer
    /// across calls so steady-state event delivery never allocates.
    pub fn drain_events(&mut self, out: &mut Vec<SenderEvent>) {
        out.append(&mut self.events);
    }

    /// Drain completion events into a fresh `Vec`.
    #[deprecated(note = "use drain_events, which reuses a caller-owned buffer")]
    pub fn take_events(&mut self) -> Vec<SenderEvent> {
        std::mem::take(&mut self.events)
    }

    /// The pathlet currently charged for new transmissions.
    pub fn active_pathlet(&self) -> (PathletId, TrafficClass) {
        self.active
    }

    /// The pathlet table (for instrumentation and tests).
    pub fn pathlets(&self) -> &PathletTable {
        &self.pathlets
    }

    /// The smoothed RTT estimate.
    pub fn srtt(&self) -> Option<Duration> {
        self.rtt.srtt()
    }

    /// The next time [`on_timer`](Self::on_timer) must run, if any packet
    /// is in flight.
    pub fn next_deadline(&mut self) -> Option<Time> {
        self.compact_inflight();
        self.inflight
            .front()
            .map(|&(_, _, _, sent)| sent + self.rtt.rto())
    }

    /// The next instant this sender wants to be driven even if no packet
    /// arrives: the earlier of the RTO deadline
    /// ([`next_deadline`](Self::next_deadline)) and — with failover
    /// enabled — the earliest quarantine release, which must be able to
    /// open its re-probe window without waiting for an unrelated ACK or
    /// timeout. Drivers outside the simulator (the real-wire backend)
    /// sleep until this instant and then call
    /// [`on_timer`](Self::on_timer); the sim adapter keeps arming plain
    /// `next_deadline`, whose firing schedule this method deliberately
    /// does not change.
    pub fn poll_at(&mut self) -> Option<Time> {
        let rto = self.next_deadline();
        let quarantine = if self.cfg.failover.enabled {
            self.pathlets.next_quarantine_release()
        } else {
            None
        };
        match (rto, quarantine) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn compact_inflight(&mut self) {
        while let Some(&(slot, pkt, epoch, _)) = self.inflight.front() {
            let p = &self.msgs[slot as usize].pkts[pkt as usize];
            if p.state != PktState::InFlight || p.epoch != epoch {
                self.inflight.pop_front();
            } else {
                break;
            }
        }
    }

    /// Process a Control packet: a network path advertisement. Each
    /// feedback entry names an available pathlet (paper §4, the NDP use
    /// case: "end-hosts learn about available paths from the network");
    /// the sender pre-creates its controller so the first data packet
    /// already has converging state, and rate/delay advertisements are
    /// consumed like ordinary feedback (with no bytes attributed).
    pub fn on_control(&mut self, now: Time, hdr: &MtpHeader) {
        debug_assert_eq!(hdr.pkt_type, PktType::Control);
        for fb in &hdr.path_feedback {
            let e = self.pathlets.entry(fb.path, fb.tc, now);
            e.last_seen = now;
            e.cc.on_ack(0, Some(&fb.feedback), None, now);
        }
    }

    /// Number of pathlets known (observed via feedback or advertisement).
    pub fn known_pathlets(&self) -> usize {
        self.pathlets.len()
    }

    /// Snapshot of pathlet-health state at `now`, for error reporting by
    /// outer layers: when a wire session declares its peer dead, the
    /// error says how much of the path set the core had already written
    /// off — a full quarantine points at the network, an empty one at
    /// the peer process.
    pub fn path_health(&self, now: Time) -> PathHealth {
        PathHealth {
            known: self.pathlets.len(),
            quarantined: self.pathlets.quarantined_now(now),
            quarantines: self.stats.quarantines,
            failovers: self.stats.failovers,
        }
    }

    // ---- Dead-pathlet detection and failover -----------------------------
    //
    // The quarantine/re-probe state machine (paper §3–4: endpoints route
    // around failed elements). Two independent detectors feed it: loss
    // attribution (consecutive NACK/RTO losses charged to one pathlet) and
    // feedback silence (in-flight bytes but no feedback for several RTOs).
    // A pathlet declared dead is quarantined with exponential backoff and
    // advertised excluded; its in-flight packets are evacuated onto the
    // best surviving pathlet. A pathlet is never quarantined when it is
    // the only live one — a sender with one path must keep trying it.
    // Everything below is gated on `cfg.failover.enabled` (off by
    // default), so clean-topology runs keep their exact packet schedules.

    /// Release expired quarantines (each opens a re-probe window).
    fn maybe_reprobe(&mut self, now: Time) {
        if !self.cfg.failover.enabled {
            return;
        }
        let released = self.pathlets.release_expired_quarantines(now);
        self.stats.reprobes += released as u64;
    }

    /// Attribute one loss event to `idx`; quarantine it once the streak
    /// reaches the configured threshold.
    fn note_loss(&mut self, idx: PathIdx, now: Time, out: &mut Vec<Packet>) {
        if !self.cfg.failover.enabled {
            return;
        }
        let e = self.pathlets.at_mut(idx);
        e.consec_losses += 1;
        if e.consec_losses >= self.cfg.failover.dead_after_losses {
            self.quarantine_pathlet(idx, now, out);
        }
    }

    /// Declare `idx` dead: quarantine it (backoff-doubled), steer the
    /// active pathlet off it, and evacuate its in-flight packets.
    fn quarantine_pathlet(&mut self, idx: PathIdx, now: Time, out: &mut Vec<Packet>) {
        if self.pathlets.at(idx).is_quarantined(now) {
            return;
        }
        // Never abandon the only live path.
        let Some(alt) = self.pathlets.best_alternative(idx, now) else {
            return;
        };
        let fo = &self.cfg.failover;
        let level = self.pathlets.at(idx).backoff_level;
        let span = Duration(
            fo.probe_backoff
                .0
                .checked_shl(level)
                .unwrap_or(u64::MAX)
                .min(fo.max_backoff.0),
        );
        self.pathlets.quarantine_at(idx, now + span);
        self.pathlets.at_mut(idx).backoff_level = level.saturating_add(1);
        self.stats.quarantines += 1;
        let (apath, atc) = self.active;
        if self.pathlets.lookup(apath, atc) == Some(idx) {
            self.active = self.pathlets.key_at(alt);
            self.stats.failovers += 1;
        }
        self.evacuate(idx, now, out);
    }

    /// Re-steer every in-flight packet charged to a dead pathlet: credit
    /// it back and retransmit on the (post-failover) active pathlet.
    fn evacuate(&mut self, dead: PathIdx, now: Time, out: &mut Vec<Packet>) {
        debug_assert!(self.evac_scratch.is_empty());
        for qi in 0..self.inflight.len() {
            let (slot, pkt, epoch, _) = self.inflight[qi];
            let p = &self.msgs[slot as usize].pkts[pkt as usize];
            if p.state == PktState::InFlight && p.epoch == epoch && p.charged == dead {
                self.evac_scratch.push((slot, pkt));
            }
        }
        for i in 0..self.evac_scratch.len() {
            let (slot, pkt) = self.evac_scratch[i];
            let p = &mut self.msgs[slot as usize].pkts[pkt as usize];
            p.state = PktState::Unsent;
            self.pathlets.credit_at(dead, p.len as u64);
            self.stats.evacuated_pkts += 1;
            self.retransmit(slot, pkt, now, out);
        }
        self.evac_scratch.clear();
    }

    /// Feedback-silence detector: a pathlet with bytes in flight that has
    /// produced no feedback for `silence_rtos` RTOs is presumed dead even
    /// if no NACK ever attributed a loss to it (a blackholed path produces
    /// no NACKs at all).
    fn check_silence(&mut self, now: Time, out: &mut Vec<Packet>) {
        if !self.cfg.failover.enabled {
            return;
        }
        if self.outstanding() == 0 {
            // Silence without demand is idleness, not failure.
            return;
        }
        let threshold = Duration(
            self.rtt
                .rto()
                .0
                .saturating_mul(self.cfg.failover.silence_rtos as u64),
        );
        // Deliberately NOT gated on per-pathlet charged in-flight: the
        // sender charges packets to its *guess* of the path, and the first
        // go-back-N round re-charges everything to the current active
        // pathlet — so a dead path the sender is not actively charging
        // would never trip an in-flight-gated detector, yet its drained
        // (empty) queue keeps attracting the network's load balancer. A
        // pathlet we have heard from before that stays silent for several
        // RTOs while messages are outstanding is suspect either way;
        // quarantining it advertises the exclusion that steers new
        // messages off it, and a false alarm costs one expiring exclusion.
        for i in 0..self.pathlets.len() as u32 {
            let idx = PathIdx(i);
            let e = self.pathlets.at(idx);
            if !e.is_quarantined(now) && now.since(e.last_seen) >= threshold {
                self.quarantine_pathlet(idx, now, out);
            }
        }
    }

    /// Process an ACK (or standalone NACK) addressed to this sender.
    pub fn on_ack(&mut self, now: Time, hdr: &MtpHeader, out: &mut Vec<Packet>) {
        debug_assert!(matches!(hdr.pkt_type, PktType::Ack | PktType::Nack));
        self.maybe_reprobe(now);

        // 1. SACKs: credit windows, accumulate per-pathlet acked bytes in
        //    the dense scratch table, sample RTT, detect completions.
        if self.ack_scratch.len() < self.pathlets.len() {
            self.ack_scratch.resize(self.pathlets.len(), 0);
        }
        debug_assert!(self.ack_touched.is_empty());
        let mut rtt_sample: Option<Duration> = None;
        for s in &hdr.sack {
            let Some(slot) = self.slot_of(s.msg) else {
                continue;
            };
            let msg = &mut self.msgs[slot as usize];
            let Some(pkt) = msg.pkts.get_mut(s.pkt.0 as usize) else {
                continue;
            };
            if pkt.state == PktState::Acked {
                continue;
            }
            let was_inflight = pkt.state == PktState::InFlight;
            if pkt.epoch == 1 && was_inflight {
                rtt_sample = Some(now.since(pkt.sent_at));
            }
            pkt.state = PktState::Acked;
            if was_inflight {
                let idx = pkt.charged;
                let len = pkt.len as u64;
                self.pathlets.credit_at(idx, len);
                let acc = &mut self.ack_scratch[idx.0 as usize];
                if *acc == 0 {
                    self.ack_touched.push(idx.0);
                }
                *acc += len;
            }
            msg.acked += 1;
            if msg.acked == msg.pkts.len() as u32 && msg.completed.is_none() {
                msg.completed = Some(now);
                self.stats.msgs_completed += 1;
                self.events.push(SenderEvent::MsgCompleted {
                    id: s.msg,
                    submitted: msg.submitted,
                    completed: now,
                });
            }
        }
        if let Some(rtt) = rtt_sample {
            self.rtt.sample(rtt);
        } else if !self.ack_touched.is_empty() {
            // Newly acked bytes without a cleanly timeable segment: still
            // forward progress, so unwind any RTO backoff.
            self.rtt.on_progress();
        }

        // 2. Feedback: deliver each echoed entry to its pathlet's
        //    controller, attributing (and consuming) the acked bytes
        //    charged to it.
        for fb in &hdr.ack_path_feedback {
            let idx = self.pathlets.intern(fb.path, fb.tc, now);
            let acked = self
                .ack_scratch
                .get_mut(idx.0 as usize)
                .map(std::mem::take)
                .unwrap_or(0);
            let e = self.pathlets.at_mut(idx);
            e.last_seen = now;
            e.cc.on_ack(acked, Some(&fb.feedback), rtt_sample, now);
            if let Feedback::PathChange { new_path } = fb.feedback {
                self.active = (new_path, fb.tc);
            }
            if acked > 0 && self.cfg.failover.enabled {
                self.pathlets.mark_alive(idx);
            }
        }
        // Acked bytes on pathlets the ACK carried no feedback for still
        // grow their windows (an unmarked ACK is itself feedback).
        for i in 0..self.ack_touched.len() {
            let idx = self.ack_touched[i];
            let acked = std::mem::take(&mut self.ack_scratch[idx as usize]);
            if acked == 0 {
                continue; // consumed by a feedback entry above
            }
            let e = self.pathlets.at_mut(PathIdx(idx));
            // A plain SACK attributing bytes to this pathlet is liveness
            // evidence even without an echoed feedback entry.
            e.last_seen = now;
            e.cc.on_ack(acked, None, rtt_sample, now);
            if self.cfg.failover.enabled {
                self.pathlets.mark_alive(PathIdx(idx));
            }
        }
        self.ack_touched.clear();
        // The first echoed entry names the path the data actually took:
        // make it the active pathlet for subsequent admissions.
        if let Some(first) = hdr.ack_path_feedback.first() {
            self.active = (first.path, first.tc);
        }

        // 3. NACKs: retransmit immediately and punish the charged pathlet
        //    once per distinct pathlet per ACK.
        debug_assert!(self.loss_scratch.is_empty());
        for n in &hdr.nack {
            let Some(slot) = self.slot_of(n.msg) else {
                continue;
            };
            let msg = &mut self.msgs[slot as usize];
            let Some(pkt) = msg.pkts.get_mut(n.pkt.0 as usize) else {
                continue;
            };
            if pkt.state != PktState::InFlight {
                continue;
            }
            self.stats.nacks += 1;
            let idx = pkt.charged;
            self.pathlets.credit_at(idx, pkt.len as u64);
            if !self.loss_scratch.contains(&idx.0) {
                self.loss_scratch.push(idx.0);
            }
            pkt.state = PktState::Unsent;
            self.retransmit(slot, n.pkt.0, now, out);
        }
        for i in 0..self.loss_scratch.len() {
            let idx = PathIdx(self.loss_scratch[i]);
            let e = self.pathlets.at_mut(idx);
            e.cc.on_loss(now);
            if self.cfg.exclude_on_floor && e.cc.window() <= crate::pathlet_cc::WINDOW_FLOOR {
                let until = now + self.cfg.exclude_cooldown;
                self.pathlets.exclude_at(idx, until);
            }
            self.note_loss(idx, now, out);
        }
        self.loss_scratch.clear();

        // Every ACK is a chance to notice a pathlet that has gone quiet:
        // a sender draining fine over the survivors may see no RTO for a
        // long time, and waiting for one delays failure detection by the
        // whole backed-off timeout.
        self.check_silence(now, out);

        self.poll(now, out);

        // Drop settled entries off the RTO queue's front now rather than
        // waiting for the next deadline query: a caller that never polls
        // timers (acks arrive faster than the RTO) must not see the queue
        // grow without bound. Amortized O(1) — each entry pops once.
        self.compact_inflight();
    }

    /// Drive the retransmission timeout; call when the clock passes
    /// [`next_deadline`](Self::next_deadline).
    ///
    /// An expired RTO declares *everything* in flight lost (go-back-N, as
    /// TCP's RTO does): retransmitting only the oldest packet would let
    /// the exponential backoff outpace repair — each doubled RTO expires
    /// one packet and pushes the next deadline out twice as far, so a
    /// lossy path never converges.
    pub fn on_timer(&mut self, now: Time, out: &mut Vec<Packet>) {
        self.maybe_reprobe(now);
        self.compact_inflight();
        self.check_silence(now, out);
        let rto = self.rtt.rto();
        let front_expired =
            matches!(self.inflight.front(), Some(&(_, _, _, sent)) if sent + rto <= now);
        if !front_expired {
            return;
        }
        debug_assert!(self.timer_scratch.is_empty());
        while let Some((slot, pkt, epoch, _)) = self.inflight.pop_front() {
            let p = &mut self.msgs[slot as usize].pkts[pkt as usize];
            if p.state == PktState::InFlight && p.epoch == epoch {
                p.state = PktState::Unsent;
                let idx = p.charged;
                let len = p.len as u64;
                self.pathlets.credit_at(idx, len);
                self.timer_scratch.push((slot, pkt));
            }
        }
        if self.timer_scratch.is_empty() {
            return;
        }
        self.stats.timeouts += 1;
        self.rtt.on_timeout();
        if self.cfg.failover.enabled {
            // Attribute the timeout to every pathlet that had expired
            // bytes in flight — both the congestion signal and the dead-
            // path streak — so a repeatedly timing-out pathlet collapses
            // its own window and gets quarantined, while a survivor the
            // sender happens to have active keeps its window. (Blanket-
            // punishing the active pathlet here would re-collapse the
            // healthy path every time a re-probe casualty expires.) The
            // go-back-N retransmits below then charge the post-failover
            // active pathlet instead of the dead one.
            debug_assert!(self.loss_scratch.is_empty());
            for i in 0..self.timer_scratch.len() {
                let (slot, pkt) = self.timer_scratch[i];
                let idx = self.msgs[slot as usize].pkts[pkt as usize].charged;
                if !self.loss_scratch.contains(&idx.0) {
                    self.loss_scratch.push(idx.0);
                }
            }
            for i in 0..self.loss_scratch.len() {
                let idx = PathIdx(self.loss_scratch[i]);
                self.pathlets.at_mut(idx).cc.on_loss(now);
                self.note_loss(idx, now, out);
            }
            self.loss_scratch.clear();
        } else {
            // One loss signal per timeout event on the active pathlet.
            let (p, tc) = self.active;
            self.pathlets.entry(p, tc, now).cc.on_loss(now);
        }
        for i in 0..self.timer_scratch.len() {
            let (slot, pkt) = self.timer_scratch[i];
            self.retransmit(slot, pkt, now, out);
        }
        self.timer_scratch.clear();
        self.poll(now, out);
    }

    /// Fill every pathlet window with unsent packets, highest-priority
    /// messages first.
    pub fn poll(&mut self, now: Time, out: &mut Vec<Packet>) {
        while let Some(pri) = self.first_ready() {
            let slot = self.ready_head[pri as usize];
            let (done, blocked) = self.send_from(slot, now, out);
            if done {
                self.ready_pop(pri);
            } else if blocked {
                // Window full: lower-priority messages must not overtake on
                // the same pathlet, and all admissions share the active
                // pathlet, so stop.
                return;
            }
        }
    }

    /// Returns (all packets sent, window blocked).
    fn send_from(&mut self, slot: u32, now: Time, out: &mut Vec<Packet>) -> (bool, bool) {
        let (path, _) = self.active;
        let msg = &self.msgs[slot as usize];
        let tc = msg.tc;
        let n = msg.pkts.len() as u32;
        if msg.next_unsent >= n {
            return (true, false);
        }
        let id = self.id_of(slot);
        // Intern the admission pathlet once per call, not once per packet.
        let aidx = self.pathlets.intern(path, tc, now);
        loop {
            let msg = &mut self.msgs[slot as usize];
            if msg.next_unsent >= n {
                return (true, false);
            }
            let idx = msg.next_unsent as usize;
            let len = msg.pkts[idx].len;
            if self.pathlets.room_at(aidx) < len as u64 {
                return (false, true);
            }
            let pkt_meta = &mut msg.pkts[idx];
            pkt_meta.state = PktState::InFlight;
            pkt_meta.charged = aidx;
            pkt_meta.sent_at = now;
            pkt_meta.epoch += 1;
            let epoch = pkt_meta.epoch;
            let pkt_len = pkt_meta.len;
            let offset = pkt_meta.offset;
            let pri = msg.pri;
            let dst = msg.dst;
            let total_bytes = msg.total_bytes;
            msg.next_unsent += 1;
            self.pathlets.charge_at(aidx, pkt_len as u64);
            self.inflight.push_back((slot, idx as u32, epoch, now));

            let mut hdr = mtp_sim::pool::take_header();
            hdr.src_port = self.addr;
            hdr.dst_port = dst;
            hdr.pkt_type = PktType::Data;
            hdr.msg_pri = pri;
            hdr.tc = tc;
            hdr.flags = if idx as u32 == n - 1 {
                flags::LAST_PKT
            } else {
                0
            };
            hdr.msg_id = id;
            hdr.entity = self.entity;
            hdr.msg_len_pkts = n;
            hdr.msg_len_bytes = total_bytes;
            hdr.pkt_num = PktNum(idx as u32);
            hdr.pkt_len = pkt_len as u16;
            hdr.pkt_offset = offset;
            self.pathlets.append_exclusions(now, &mut hdr.path_exclude);
            let wire = pkt_len + hdr.wire_len() as u32;
            let mut packet = Packet::new(Headers::Mtp(hdr), wire);
            packet.sent_at = now;
            out.push(packet);
            self.stats.pkts_sent += 1;
        }
    }

    /// Retransmit one packet immediately (bypassing the window, standard
    /// loss-repair behaviour), charging the active pathlet.
    fn retransmit(&mut self, slot: u32, pkt_idx: u32, now: Time, out: &mut Vec<Packet>) {
        let (path, _) = self.active;
        let id = self.id_of(slot);
        let tc = self.msgs[slot as usize].tc;
        let aidx = self.pathlets.intern(path, tc, now);
        let msg = &mut self.msgs[slot as usize];
        let n = msg.pkts.len() as u32;
        let p = &mut msg.pkts[pkt_idx as usize];
        if p.state == PktState::Acked {
            return;
        }
        p.state = PktState::InFlight;
        p.charged = aidx;
        p.sent_at = now;
        p.epoch += 1;
        let epoch = p.epoch;
        let pkt_len = p.len;
        let offset = p.offset;
        let pri = msg.pri;
        let dst = msg.dst;
        let total_bytes = msg.total_bytes;
        self.pathlets.charge_at(aidx, pkt_len as u64);
        self.inflight.push_back((slot, pkt_idx, epoch, now));

        let mut hdr = mtp_sim::pool::take_header();
        hdr.src_port = self.addr;
        hdr.dst_port = dst;
        hdr.pkt_type = PktType::Data;
        hdr.msg_pri = pri;
        hdr.tc = tc;
        hdr.flags = flags::RETX | if pkt_idx == n - 1 { flags::LAST_PKT } else { 0 };
        hdr.msg_id = id;
        hdr.entity = self.entity;
        hdr.msg_len_pkts = n;
        hdr.msg_len_bytes = total_bytes;
        hdr.pkt_num = PktNum(pkt_idx);
        hdr.pkt_len = pkt_len as u16;
        hdr.pkt_offset = offset;
        self.pathlets.append_exclusions(now, &mut hdr.path_exclude);
        let wire = pkt_len + hdr.wire_len() as u32;
        let mut packet = Packet::new(Headers::Mtp(hdr), wire);
        packet.sent_at = now;
        out.push(packet);
        self.stats.pkts_sent += 1;
        self.stats.retransmissions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_wire::{PathFeedback, SackEntry};

    fn sender() -> MtpSender {
        MtpSender::new(MtpConfig::default(), 1, EntityId(0), 1000)
    }

    fn events(s: &mut MtpSender) -> Vec<SenderEvent> {
        let mut ev = Vec::new();
        s.drain_events(&mut ev);
        ev
    }

    fn data_hdr(p: &Packet) -> &MtpHeader {
        p.headers.as_mtp().expect("mtp packet")
    }

    fn ack_for(pkts: &[&Packet]) -> MtpHeader {
        MtpHeader {
            pkt_type: PktType::Ack,
            sack: pkts
                .iter()
                .map(|p| {
                    let h = data_hdr(p);
                    SackEntry {
                        msg: h.msg_id,
                        pkt: h.pkt_num,
                    }
                })
                .collect(),
            ..MtpHeader::default()
        }
    }

    #[test]
    fn fragments_message_into_mtu_packets() {
        let mut s = sender();
        let mut out = Vec::new();
        s.send_message(2, 4000, 0, TrafficClass::BEST_EFFORT, Time::ZERO, &mut out);
        assert_eq!(out.len(), 3, "4000 B / 1460 = 3 packets");
        let h0 = data_hdr(&out[0]);
        assert_eq!(h0.msg_len_pkts, 3);
        assert_eq!(h0.msg_len_bytes, 4000);
        assert_eq!(h0.pkt_num, PktNum(0));
        assert_eq!(h0.pkt_len, 1460);
        let h2 = data_hdr(&out[2]);
        assert_eq!(h2.pkt_len, (4000 - 2 * 1460) as u16);
        assert_eq!(h2.pkt_offset, 2 * 1460);
        assert!(h2.is_last_pkt());
    }

    #[test]
    fn window_limits_initial_burst() {
        let mut s = sender();
        let mut out = Vec::new();
        s.send_message(
            2,
            1_000_000,
            0,
            TrafficClass::BEST_EFFORT,
            Time::ZERO,
            &mut out,
        );
        // init window 15000 B admits 10 full packets.
        assert_eq!(out.len(), 10);
        assert_eq!(s.outstanding(), 1);
    }

    #[test]
    fn sack_opens_window_and_completes() {
        let mut s = sender();
        let mut out = Vec::new();
        s.send_message(2, 3000, 0, TrafficClass::BEST_EFFORT, Time::ZERO, &mut out);
        assert_eq!(out.len(), 3);
        let first: Vec<&Packet> = out.iter().collect();
        let ack = ack_for(&first);
        let mut out2 = Vec::new();
        s.on_ack(Time::ZERO + Duration::from_micros(10), &ack, &mut out2);
        let ev = events(&mut s);
        assert_eq!(ev.len(), 1);
        assert!(matches!(ev[0], SenderEvent::MsgCompleted { .. }));
        assert_eq!(s.outstanding(), 0);
        assert_eq!(s.next_deadline(), None);
    }

    #[test]
    fn priority_zero_preempts_new_admissions() {
        let mut s = sender();
        let mut out = Vec::new();
        // Low-priority bulk fills the window.
        s.send_message(
            2,
            1_000_000,
            5,
            TrafficClass::BEST_EFFORT,
            Time::ZERO,
            &mut out,
        );
        let burst: Vec<&Packet> = out.iter().collect();
        let n_burst = burst.len();
        let ack = ack_for(&burst[..2]);
        out.clear();
        // An urgent message arrives; next window space must go to it.
        let urgent = s.send_message(2, 1460, 0, TrafficClass::BEST_EFFORT, Time::ZERO, &mut out);
        assert!(out.is_empty(), "window still full");
        let mut out2 = Vec::new();
        s.on_ack(Time::ZERO + Duration::from_micros(5), &ack, &mut out2);
        assert!(!out2.is_empty());
        assert_eq!(
            data_hdr(&out2[0]).msg_id,
            urgent,
            "urgent message admitted before remaining bulk (burst was {n_burst})"
        );
    }

    #[test]
    fn nack_triggers_immediate_retransmission() {
        let mut s = sender();
        let mut out = Vec::new();
        s.send_message(2, 3000, 0, TrafficClass::BEST_EFFORT, Time::ZERO, &mut out);
        let h1 = data_hdr(&out[1]);
        let nack = MtpHeader {
            pkt_type: PktType::Ack,
            nack: vec![SackEntry {
                msg: h1.msg_id,
                pkt: h1.pkt_num,
            }],
            ..MtpHeader::default()
        };
        let mut out2 = Vec::new();
        s.on_ack(Time::ZERO + Duration::from_micros(10), &nack, &mut out2);
        assert_eq!(s.stats.retransmissions, 1);
        let retx = data_hdr(&out2[0]);
        assert_eq!(retx.pkt_num, PktNum(1));
        assert!(retx.is_retx());
    }

    #[test]
    fn rto_resends_unacked_packets() {
        let mut s = sender();
        let mut out = Vec::new();
        s.send_message(2, 2920, 0, TrafficClass::BEST_EFFORT, Time::ZERO, &mut out);
        assert_eq!(out.len(), 2);
        let deadline = s.next_deadline().expect("armed");
        let mut out2 = Vec::new();
        s.on_timer(deadline, &mut out2);
        assert_eq!(s.stats.timeouts, 1);
        assert_eq!(out2.len(), 2, "both unacked packets resent");
        assert!(out2.iter().all(|p| data_hdr(p).is_retx()));
    }

    #[test]
    fn feedback_moves_active_pathlet_and_keeps_old_window() {
        let mut s = sender();
        let mut out = Vec::new();
        s.send_message(
            2,
            100_000,
            0,
            TrafficClass::BEST_EFFORT,
            Time::ZERO,
            &mut out,
        );
        let acked: Vec<&Packet> = out.iter().take(2).collect();
        let mut ack = ack_for(&acked);
        ack.ack_path_feedback = vec![PathFeedback {
            path: PathletId(7),
            tc: TrafficClass::BEST_EFFORT,
            feedback: Feedback::EcnMark { ce: false },
        }];
        let mut out2 = Vec::new();
        s.on_ack(Time::ZERO + Duration::from_micros(10), &ack, &mut out2);
        assert_eq!(s.active_pathlet().0, PathletId(7));
        // Both pathlets now exist independently.
        assert!(s
            .pathlets()
            .get(PathletId(7), TrafficClass::BEST_EFFORT)
            .is_some());
        assert!(s
            .pathlets()
            .get(DEFAULT_PATHLET, TrafficClass::BEST_EFFORT)
            .is_some());
    }

    #[test]
    fn path_change_notification_switches_immediately() {
        let mut s = sender();
        let mut out = Vec::new();
        s.send_message(
            2,
            100_000,
            0,
            TrafficClass::BEST_EFFORT,
            Time::ZERO,
            &mut out,
        );
        let acked: Vec<&Packet> = out.iter().take(1).collect();
        let mut ack = ack_for(&acked);
        ack.ack_path_feedback = vec![PathFeedback {
            path: PathletId(1),
            tc: TrafficClass::BEST_EFFORT,
            feedback: Feedback::PathChange {
                new_path: PathletId(9),
            },
        }];
        let mut out2 = Vec::new();
        s.on_ack(Time::ZERO + Duration::from_micros(10), &ack, &mut out2);
        // PathChange overrides the stamped entry itself... unless another
        // entry follows; here the notification wins.
        assert_eq!(s.active_pathlet().0, PathletId(1));
    }

    #[test]
    fn duplicate_sacks_are_idempotent() {
        let mut s = sender();
        let mut out = Vec::new();
        s.send_message(2, 1460, 0, TrafficClass::BEST_EFFORT, Time::ZERO, &mut out);
        let ack = ack_for(&[&out[0]]);
        let mut o = Vec::new();
        s.on_ack(Time::ZERO + Duration::from_micros(5), &ack, &mut o);
        s.on_ack(Time::ZERO + Duration::from_micros(6), &ack, &mut o);
        assert_eq!(events(&mut s).len(), 1, "one completion only");
        assert_eq!(s.stats.msgs_completed, 1);
    }

    #[test]
    fn repeated_loss_floors_window_and_excludes_pathlet() {
        let mut s = sender();
        let mut out = Vec::new();
        s.send_message(
            2,
            1_000_000,
            0,
            TrafficClass::BEST_EFFORT,
            Time::ZERO,
            &mut out,
        );
        // NACK everything in flight repeatedly to drive the window down.
        for round in 0..8 {
            let now = Time::ZERO + Duration::from_micros(10 * (round + 1));
            let nacks: Vec<SackEntry> = out
                .iter()
                .map(|p| {
                    let h = data_hdr(p);
                    SackEntry {
                        msg: h.msg_id,
                        pkt: h.pkt_num,
                    }
                })
                .collect();
            let hdr = MtpHeader {
                pkt_type: PktType::Ack,
                nack: nacks,
                ..MtpHeader::default()
            };
            out.clear();
            s.on_ack(now, &hdr, &mut out);
        }
        // Retransmissions after the window floored must advertise the
        // exclusion.
        let last = data_hdr(out.last().expect("retransmissions emitted"));
        assert!(
            !last.path_exclude.is_empty(),
            "floored pathlet should be advertised as excluded"
        );
        // Failover is opt-in: with the default config a loss streak never
        // quarantines or re-steers.
        assert_eq!(s.stats.quarantines, 0);
        assert_eq!(s.stats.failovers, 0);
        assert_eq!(s.stats.evacuated_pkts, 0);
    }

    #[test]
    fn loss_streak_quarantines_pathlet_and_fails_over() {
        let mut s = MtpSender::new(MtpConfig::default().with_failover(), 1, EntityId(0), 1000);
        let mut out = Vec::new();
        s.send_message(
            2,
            1_000_000,
            0,
            TrafficClass::BEST_EFFORT,
            Time::ZERO,
            &mut out,
        );
        // Move the active pathlet to 7 via echoed feedback; the window
        // space opened by the ACK admits fresh packets charged to 7.
        let mut ack = ack_for(&[&out[0]]);
        ack.ack_path_feedback = vec![PathFeedback {
            path: PathletId(7),
            tc: TrafficClass::BEST_EFFORT,
            feedback: Feedback::EcnMark { ce: false },
        }];
        let mut on7 = Vec::new();
        s.on_ack(Time::ZERO + Duration::from_micros(10), &ack, &mut on7);
        assert_eq!(s.active_pathlet().0, PathletId(7));
        assert!(!on7.is_empty(), "opened window admits packets on 7");
        // Two successive loss events attributed to pathlet 7 reach the
        // dead_after_losses threshold.
        let nack_hdr = MtpHeader {
            pkt_type: PktType::Ack,
            nack: on7
                .iter()
                .map(|p| {
                    let h = data_hdr(p);
                    SackEntry {
                        msg: h.msg_id,
                        pkt: h.pkt_num,
                    }
                })
                .collect(),
            ..MtpHeader::default()
        };
        let mut out2 = Vec::new();
        s.on_ack(Time::ZERO + Duration::from_micros(20), &nack_hdr, &mut out2);
        assert_eq!(s.stats.quarantines, 0, "one loss event is not a streak");
        out2.clear();
        s.on_ack(Time::ZERO + Duration::from_micros(30), &nack_hdr, &mut out2);
        assert_eq!(s.stats.quarantines, 1);
        assert_eq!(s.stats.failovers, 1);
        assert!(
            s.stats.evacuated_pkts > 0,
            "in-flight on the dead pathlet re-steered"
        );
        assert_eq!(
            s.active_pathlet().0,
            DEFAULT_PATHLET,
            "fell back to the surviving pathlet"
        );
        // Re-steered packets advertise the dead pathlet as excluded.
        let last = data_hdr(out2.last().expect("evacuation retransmits"));
        assert!(last.path_exclude.iter().any(|x| x.path == PathletId(7)));
        // After the backoff expires, the next event releases the
        // quarantine so the pathlet can be re-probed.
        let empty = MtpHeader {
            pkt_type: PktType::Ack,
            ..MtpHeader::default()
        };
        let mut out3 = Vec::new();
        s.on_ack(Time::ZERO + Duration::from_micros(2_000), &empty, &mut out3);
        assert_eq!(s.stats.reprobes, 1);
    }

    #[test]
    fn feedback_silence_quarantines_but_never_abandons_last_path() {
        let mut s = MtpSender::new(MtpConfig::default().with_failover(), 1, EntityId(0), 1000);
        let mut out = Vec::new();
        s.send_message(
            2,
            1_000_000,
            0,
            TrafficClass::BEST_EFFORT,
            Time::ZERO,
            &mut out,
        );
        // ACK one packet with feedback naming pathlet 7: the default
        // pathlet keeps its unacked burst in flight while 7 becomes
        // active and demonstrably alive.
        let mut ack = ack_for(&[&out[0]]);
        ack.ack_path_feedback = vec![PathFeedback {
            path: PathletId(7),
            tc: TrafficClass::BEST_EFFORT,
            feedback: Feedback::EcnMark { ce: false },
        }];
        let mut o = Vec::new();
        s.on_ack(Time::ZERO + Duration::from_micros(10), &ack, &mut o);
        assert_eq!(s.active_pathlet().0, PathletId(7));
        // Well past silence_rtos * RTO with bytes still charged to the
        // default pathlet and no sign of life from it.
        let mut out2 = Vec::new();
        s.on_timer(Time::ZERO + Duration::from_micros(10_000), &mut out2);
        assert!(s.stats.quarantines >= 1, "silent pathlet quarantined");
        assert!(s
            .pathlets()
            .get(DEFAULT_PATHLET, TrafficClass::BEST_EFFORT)
            .expect("still interned")
            .quarantined_until
            .is_some());
        // Pathlet 7 is now the only live path: no amount of timeouts may
        // quarantine it.
        assert!(s
            .pathlets()
            .get(PathletId(7), TrafficClass::BEST_EFFORT)
            .expect("still interned")
            .quarantined_until
            .is_none());
        assert_eq!(s.active_pathlet().0, PathletId(7));
    }

    #[test]
    fn mtu_sized_message_is_single_packet() {
        let mut s = sender();
        let mut out = Vec::new();
        s.send_message(2, 1460, 0, TrafficClass::BEST_EFFORT, Time::ZERO, &mut out);
        assert_eq!(out.len(), 1);
        let h = data_hdr(&out[0]);
        assert_eq!(h.msg_len_pkts, 1);
        assert!(h.is_last_pkt());
    }

    #[test]
    fn foreign_message_ids_are_ignored() {
        let mut s = sender();
        let mut out = Vec::new();
        s.send_message(2, 1460, 0, TrafficClass::BEST_EFFORT, Time::ZERO, &mut out);
        // SACK/NACK for ids below the base, far above the slab, and from
        // another sender's range must all be ignored without panicking.
        for bogus in [0u64, 999, 1001, 1 << 40] {
            let hdr = MtpHeader {
                pkt_type: PktType::Ack,
                sack: vec![SackEntry {
                    msg: MsgId(bogus),
                    pkt: PktNum(0),
                }],
                nack: vec![SackEntry {
                    msg: MsgId(bogus),
                    pkt: PktNum(0),
                }],
                ..MtpHeader::default()
            };
            let mut o = Vec::new();
            s.on_ack(Time::ZERO + Duration::from_micros(1), &hdr, &mut o);
        }
        assert_eq!(s.stats.msgs_completed, 0);
        assert_eq!(s.stats.retransmissions, 0);
    }

    #[test]
    fn ready_list_preserves_priority_then_fifo_order() {
        let mut s = sender();
        let mut out = Vec::new();
        // Fill the window so later submissions queue.
        s.send_message(
            2,
            1_000_000,
            3,
            TrafficClass::BEST_EFFORT,
            Time::ZERO,
            &mut out,
        );
        let first_burst: Vec<&Packet> = out.iter().collect();
        let ack = ack_for(&first_burst);
        out.clear();
        // Two messages at pri 1 (FIFO between them) and one at pri 0.
        let m_a = s.send_message(2, 1460, 1, TrafficClass::BEST_EFFORT, Time::ZERO, &mut out);
        let m_b = s.send_message(2, 1460, 1, TrafficClass::BEST_EFFORT, Time::ZERO, &mut out);
        let m_c = s.send_message(2, 1460, 0, TrafficClass::BEST_EFFORT, Time::ZERO, &mut out);
        assert!(out.is_empty(), "window still full");
        let mut out2 = Vec::new();
        s.on_ack(Time::ZERO + Duration::from_micros(5), &ack, &mut out2);
        let order: Vec<MsgId> = out2.iter().map(|p| data_hdr(p).msg_id).collect();
        let pos = |id: MsgId| order.iter().position(|&x| x == id).expect("sent");
        assert!(pos(m_c) < pos(m_a), "pri 0 before pri 1");
        assert!(pos(m_a) < pos(m_b), "same pri drains in submission order");
    }
}
