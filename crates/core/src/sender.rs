//! The sans-IO MTP sender.
//!
//! [`MtpSender`] fragments application messages into packets, admits them
//! against per-pathlet congestion windows, and repairs loss from SACK/NACK
//! lists and a retransmission timeout. Like the TCP cores in `mtp-tcp`, it
//! never touches the simulator: callers feed it ACK headers and the clock;
//! it pushes packets into a caller-provided `Vec` and surfaces completions
//! as [`SenderEvent`]s.
//!
//! ## Admission and attribution
//!
//! Every transmitted packet is *charged* against the currently active
//! pathlet (learned from the most recent feedback, or the synthetic
//! pathlet 0 before any feedback arrives). When its SACK comes back, the
//! charge is credited and the acknowledged bytes are attributed to the
//! pathlet the packet was charged to — whose controller consumes the
//! echoed feedback entry for that pathlet. Feedback for pathlets with no
//! acked bytes in the ACK (e.g. a rate update from an RCP segment) is still
//! delivered, with zero attributed bytes.
//!
//! When the network moves traffic to a different pathlet, the sender
//! switches its admission window to that pathlet's controller *without
//! discarding the old one* — this is what lets MTP resume at the converged
//! window when an optical switch flips paths back (paper §5.1).

use std::collections::{HashMap, VecDeque};

use mtp_sim::packet::{Headers, Packet};
use mtp_sim::rtt::RttEstimator;
use mtp_sim::time::{Duration, Time};
use mtp_wire::types::flags;
use mtp_wire::{EntityId, Feedback, MsgId, MtpHeader, PathletId, PktNum, PktType, TrafficClass};

use crate::config::MtpConfig;
use crate::pathlets::PathletTable;

/// The synthetic pathlet charged before any network feedback identifies a
/// real one ("the entire network as a single pathlet mimics TCP", §3.1.3).
pub const DEFAULT_PATHLET: PathletId = PathletId(0);

/// Events surfaced to the application layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenderEvent {
    /// Every packet of the message has been acknowledged.
    MsgCompleted {
        /// The completed message.
        id: MsgId,
        /// When the application submitted it.
        submitted: Time,
        /// When the final SACK arrived.
        completed: Time,
    },
}

/// Counters kept by a sender.
#[derive(Debug, Clone, Copy, Default)]
pub struct MtpSenderStats {
    /// Data packets transmitted, including retransmissions.
    pub pkts_sent: u64,
    /// Retransmitted packets.
    pub retransmissions: u64,
    /// Retransmission-timeout events.
    pub timeouts: u64,
    /// NACK entries processed.
    pub nacks: u64,
    /// Messages completed.
    pub msgs_completed: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum PktState {
    Unsent,
    InFlight,
    Acked,
}

#[derive(Debug, Clone, Copy)]
struct OutPkt {
    len: u32,
    offset: u32,
    state: PktState,
    /// Pathlet/TC this packet's bytes are currently charged to.
    charged: (PathletId, TrafficClass),
    sent_at: Time,
    /// Transmission count; deque entries are valid only for the matching
    /// epoch, and only epoch-1 packets produce RTT samples (Karn).
    epoch: u32,
}

#[derive(Debug)]
struct OutMsg {
    dst: u16,
    pri: u8,
    tc: TrafficClass,
    total_bytes: u32,
    pkts: Vec<OutPkt>,
    acked: u32,
    next_unsent: u32,
    submitted: Time,
    completed: Option<Time>,
}

/// One MTP sending endpoint.
pub struct MtpSender {
    cfg: MtpConfig,
    /// This host's address (carried as `src_port`).
    addr: u16,
    entity: EntityId,
    msg_id_base: u64,
    next_msg: u64,
    msgs: HashMap<MsgId, OutMsg>,
    /// Messages with unsent packets, kept sorted by (priority, submission).
    sendq: Vec<MsgId>,
    /// FIFO of (msg, pkt, epoch, sent_at) for RTO scanning.
    inflight: VecDeque<(MsgId, u32, u32, Time)>,
    pathlets: PathletTable,
    /// The pathlet new transmissions are charged against.
    active: (PathletId, TrafficClass),
    rtt: RttEstimator,
    /// Counters.
    pub stats: MtpSenderStats,
    events: Vec<SenderEvent>,
}

impl std::fmt::Debug for MtpSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MtpSender")
            .field("addr", &self.addr)
            .field("outstanding", &self.msgs.len())
            .field("active", &self.active)
            .finish()
    }
}

impl MtpSender {
    /// A sender at address `addr` for `entity`; message IDs are allocated
    /// from `msg_id_base` (must be globally unique per sender).
    pub fn new(cfg: MtpConfig, addr: u16, entity: EntityId, msg_id_base: u64) -> MtpSender {
        let rtt = RttEstimator::new(cfg.min_rto);
        let pathlets = PathletTable::new(cfg.cc.factory());
        MtpSender {
            cfg,
            addr,
            entity,
            msg_id_base,
            next_msg: 0,
            msgs: HashMap::new(),
            sendq: Vec::new(),
            inflight: VecDeque::new(),
            pathlets,
            active: (DEFAULT_PATHLET, TrafficClass::BEST_EFFORT),
            rtt,
            stats: MtpSenderStats::default(),
            events: Vec::new(),
        }
    }

    /// Submit a message of `bytes` to destination address `dst` with the
    /// given priority (0 = most urgent) and traffic class. Returns the
    /// message id. Transmission starts immediately, window permitting.
    pub fn send_message(
        &mut self,
        dst: u16,
        bytes: u32,
        pri: u8,
        tc: TrafficClass,
        now: Time,
        out: &mut Vec<Packet>,
    ) -> MsgId {
        assert!(bytes > 0, "empty message");
        let id = MsgId(self.msg_id_base + self.next_msg);
        self.next_msg += 1;
        let mtu = self.cfg.mtu_payload;
        let n_pkts = bytes.div_ceil(mtu);
        let pkts = (0..n_pkts)
            .map(|i| OutPkt {
                len: if i == n_pkts - 1 {
                    bytes - i * mtu
                } else {
                    mtu
                },
                offset: i * mtu,
                state: PktState::Unsent,
                charged: self.active,
                sent_at: Time::ZERO,
                epoch: 0,
            })
            .collect();
        self.msgs.insert(
            id,
            OutMsg {
                dst,
                pri,
                tc,
                total_bytes: bytes,
                pkts,
                acked: 0,
                next_unsent: 0,
                submitted: now,
                completed: None,
            },
        );
        // Insert keeping (priority, msg id) order; message ids are monotone
        // so they encode submission order.
        let pos = self
            .sendq
            .binary_search_by_key(&(pri, id.0), |m| (self.msgs[m].pri, m.0))
            .unwrap_or_else(|p| p);
        self.sendq.insert(pos, id);
        self.poll(now, out);
        id
    }

    /// Outstanding (incomplete) message count.
    pub fn outstanding(&self) -> usize {
        self.msgs.values().filter(|m| m.completed.is_none()).count()
    }

    /// Drain completion events.
    pub fn take_events(&mut self) -> Vec<SenderEvent> {
        std::mem::take(&mut self.events)
    }

    /// The pathlet currently charged for new transmissions.
    pub fn active_pathlet(&self) -> (PathletId, TrafficClass) {
        self.active
    }

    /// The pathlet table (for instrumentation and tests).
    pub fn pathlets(&self) -> &PathletTable {
        &self.pathlets
    }

    /// The smoothed RTT estimate.
    pub fn srtt(&self) -> Option<Duration> {
        self.rtt.srtt()
    }

    /// The next time [`on_timer`](Self::on_timer) must run, if any packet
    /// is in flight.
    pub fn next_deadline(&mut self) -> Option<Time> {
        self.compact_inflight();
        self.inflight
            .front()
            .map(|&(_, _, _, sent)| sent + self.rtt.rto())
    }

    fn compact_inflight(&mut self) {
        while let Some(&(mid, pkt, epoch, _)) = self.inflight.front() {
            let stale = match self.msgs.get(&mid) {
                Some(m) => {
                    let p = &m.pkts[pkt as usize];
                    p.state != PktState::InFlight || p.epoch != epoch
                }
                None => true,
            };
            if stale {
                self.inflight.pop_front();
            } else {
                break;
            }
        }
    }

    /// Process a Control packet: a network path advertisement. Each
    /// feedback entry names an available pathlet (paper §4, the NDP use
    /// case: "end-hosts learn about available paths from the network");
    /// the sender pre-creates its controller so the first data packet
    /// already has converging state, and rate/delay advertisements are
    /// consumed like ordinary feedback (with no bytes attributed).
    pub fn on_control(&mut self, now: Time, hdr: &MtpHeader) {
        debug_assert_eq!(hdr.pkt_type, PktType::Control);
        for fb in &hdr.path_feedback {
            let e = self.pathlets.entry(fb.path, fb.tc, now);
            e.last_seen = now;
            e.cc.on_ack(0, Some(&fb.feedback), None, now);
        }
    }

    /// Number of pathlets known (observed via feedback or advertisement).
    pub fn known_pathlets(&self) -> usize {
        self.pathlets.len()
    }

    /// Process an ACK (or standalone NACK) addressed to this sender.
    pub fn on_ack(&mut self, now: Time, hdr: &MtpHeader, out: &mut Vec<Packet>) {
        debug_assert!(matches!(hdr.pkt_type, PktType::Ack | PktType::Nack));

        // 1. SACKs: credit windows, collect per-pathlet acked bytes, sample
        //    RTT, detect completions.
        let mut acked_by_path: HashMap<(PathletId, TrafficClass), u64> = HashMap::new();
        let mut rtt_sample: Option<Duration> = None;
        for s in &hdr.sack {
            let Some(msg) = self.msgs.get_mut(&s.msg) else {
                continue;
            };
            let Some(pkt) = msg.pkts.get_mut(s.pkt.0 as usize) else {
                continue;
            };
            if pkt.state == PktState::Acked {
                continue;
            }
            let was_inflight = pkt.state == PktState::InFlight;
            if pkt.epoch == 1 && was_inflight {
                rtt_sample = Some(now.since(pkt.sent_at));
            }
            pkt.state = PktState::Acked;
            if was_inflight {
                let (p, tc) = pkt.charged;
                self.pathlets.credit(p, tc, pkt.len as u64);
                *acked_by_path.entry(pkt.charged).or_default() += pkt.len as u64;
            }
            msg.acked += 1;
            if msg.acked == msg.pkts.len() as u32 && msg.completed.is_none() {
                msg.completed = Some(now);
                self.stats.msgs_completed += 1;
                self.events.push(SenderEvent::MsgCompleted {
                    id: s.msg,
                    submitted: msg.submitted,
                    completed: now,
                });
            }
        }
        if let Some(rtt) = rtt_sample {
            self.rtt.sample(rtt);
        }

        // 2. Feedback: deliver each echoed entry to its pathlet's
        //    controller, attributing the acked bytes charged to it.
        for fb in &hdr.ack_path_feedback {
            let acked = acked_by_path.remove(&(fb.path, fb.tc)).unwrap_or(0);
            let e = self.pathlets.entry(fb.path, fb.tc, now);
            e.last_seen = now;
            e.cc.on_ack(acked, Some(&fb.feedback), rtt_sample, now);
            if let Feedback::PathChange { new_path } = fb.feedback {
                self.active = (new_path, fb.tc);
            }
        }
        // Acked bytes on pathlets the ACK carried no feedback for still
        // grow their windows (an unmarked ACK is itself feedback).
        for ((p, tc), acked) in acked_by_path {
            let e = self.pathlets.entry(p, tc, now);
            e.cc.on_ack(acked, None, rtt_sample, now);
        }
        // The first echoed entry names the path the data actually took:
        // make it the active pathlet for subsequent admissions.
        if let Some(first) = hdr.ack_path_feedback.first() {
            self.active = (first.path, first.tc);
        }

        // 3. NACKs: retransmit immediately and punish the charged pathlet
        //    once per distinct pathlet per ACK.
        let mut losses: Vec<(PathletId, TrafficClass)> = Vec::new();
        for n in &hdr.nack {
            let Some(msg) = self.msgs.get_mut(&n.msg) else {
                continue;
            };
            let Some(pkt) = msg.pkts.get_mut(n.pkt.0 as usize) else {
                continue;
            };
            if pkt.state != PktState::InFlight {
                continue;
            }
            self.stats.nacks += 1;
            let (p, tc) = pkt.charged;
            self.pathlets.credit(p, tc, pkt.len as u64);
            if !losses.contains(&(p, tc)) {
                losses.push((p, tc));
            }
            pkt.state = PktState::Unsent;
            self.retransmit(n.msg, n.pkt.0, now, out);
        }
        for (p, tc) in losses {
            let e = self.pathlets.entry(p, tc, now);
            e.cc.on_loss(now);
            if self.cfg.exclude_on_floor && e.cc.window() <= crate::pathlet_cc::WINDOW_FLOOR {
                let until = now + self.cfg.exclude_cooldown;
                self.pathlets.exclude(p, tc, until, now);
            }
        }

        self.poll(now, out);
    }

    /// Drive the retransmission timeout; call when the clock passes
    /// [`next_deadline`](Self::next_deadline).
    ///
    /// An expired RTO declares *everything* in flight lost (go-back-N, as
    /// TCP's RTO does): retransmitting only the oldest packet would let
    /// the exponential backoff outpace repair — each doubled RTO expires
    /// one packet and pushes the next deadline out twice as far, so a
    /// lossy path never converges.
    pub fn on_timer(&mut self, now: Time, out: &mut Vec<Packet>) {
        self.compact_inflight();
        let rto = self.rtt.rto();
        let front_expired =
            matches!(self.inflight.front(), Some(&(_, _, _, sent)) if sent + rto <= now);
        if !front_expired {
            return;
        }
        let mut expired: Vec<(MsgId, u32)> = Vec::new();
        while let Some((mid, pkt, epoch, _)) = self.inflight.pop_front() {
            let Some(msg) = self.msgs.get_mut(&mid) else {
                continue;
            };
            let p = &mut msg.pkts[pkt as usize];
            if p.state == PktState::InFlight && p.epoch == epoch {
                p.state = PktState::Unsent;
                let (path, tc) = p.charged;
                self.pathlets.credit(path, tc, p.len as u64);
                expired.push((mid, pkt));
            }
        }
        if expired.is_empty() {
            return;
        }
        self.stats.timeouts += 1;
        self.rtt.on_timeout();
        // One loss signal per timeout event on the active pathlet.
        let (p, tc) = self.active;
        self.pathlets.entry(p, tc, now).cc.on_loss(now);
        for (mid, pkt) in expired {
            self.retransmit(mid, pkt, now, out);
        }
        self.poll(now, out);
    }

    /// Fill every pathlet window with unsent packets, highest-priority
    /// messages first.
    pub fn poll(&mut self, now: Time, out: &mut Vec<Packet>) {
        let mut qi = 0;
        while qi < self.sendq.len() {
            let mid = self.sendq[qi];
            let (done, blocked) = self.send_from(mid, now, out);
            if done {
                self.sendq.remove(qi);
            } else if blocked {
                // Window full: lower-priority messages must not overtake on
                // the same pathlet, and all admissions share the active
                // pathlet, so stop.
                break;
            } else {
                qi += 1;
            }
        }
    }

    /// Returns (all packets sent, window blocked).
    fn send_from(&mut self, mid: MsgId, now: Time, out: &mut Vec<Packet>) -> (bool, bool) {
        let (path, _) = self.active;
        let Some(msg) = self.msgs.get_mut(&mid) else {
            return (true, false);
        };
        let tc = msg.tc;
        let n = msg.pkts.len() as u32;
        while msg.next_unsent < n {
            let idx = msg.next_unsent as usize;
            let len = msg.pkts[idx].len;
            if self.pathlets.room(path, tc, now) < len as u64 {
                return (false, true);
            }
            let pkt_meta = &mut msg.pkts[idx];
            pkt_meta.state = PktState::InFlight;
            pkt_meta.charged = (path, tc);
            pkt_meta.sent_at = now;
            pkt_meta.epoch += 1;
            let epoch = pkt_meta.epoch;
            let pkt_len = pkt_meta.len;
            let offset = pkt_meta.offset;
            self.pathlets.charge(path, tc, pkt_len as u64, now);
            self.inflight.push_back((mid, idx as u32, epoch, now));

            let hdr = MtpHeader {
                src_port: self.addr,
                dst_port: msg.dst,
                pkt_type: PktType::Data,
                msg_pri: msg.pri,
                tc,
                flags: if idx as u32 == n - 1 {
                    flags::LAST_PKT
                } else {
                    0
                },
                msg_id: mid,
                entity: self.entity,
                msg_len_pkts: n,
                msg_len_bytes: msg.total_bytes,
                pkt_num: PktNum(idx as u32),
                pkt_len: pkt_len as u16,
                pkt_offset: offset,
                path_exclude: self.pathlets.active_exclusions(now),
                ..MtpHeader::default()
            };
            let wire = pkt_len + hdr.wire_len() as u32;
            let mut packet = Packet::new(Headers::Mtp(mtp_sim::pool::boxed(hdr)), wire);
            packet.sent_at = now;
            out.push(packet);
            self.stats.pkts_sent += 1;
            msg.next_unsent += 1;
        }
        (true, false)
    }

    /// Retransmit one packet immediately (bypassing the window, standard
    /// loss-repair behaviour), charging the active pathlet.
    fn retransmit(&mut self, mid: MsgId, pkt_idx: u32, now: Time, out: &mut Vec<Packet>) {
        let (path, _) = self.active;
        let exclusions = self.pathlets.active_exclusions(now);
        let Some(msg) = self.msgs.get_mut(&mid) else {
            return;
        };
        let tc = msg.tc;
        let n = msg.pkts.len() as u32;
        let p = &mut msg.pkts[pkt_idx as usize];
        if p.state == PktState::Acked {
            return;
        }
        p.state = PktState::InFlight;
        p.charged = (path, tc);
        p.sent_at = now;
        p.epoch += 1;
        self.pathlets.charge(path, tc, p.len as u64, now);
        self.inflight.push_back((mid, pkt_idx, p.epoch, now));

        let hdr = MtpHeader {
            src_port: self.addr,
            dst_port: msg.dst,
            pkt_type: PktType::Data,
            msg_pri: msg.pri,
            tc,
            flags: flags::RETX | if pkt_idx == n - 1 { flags::LAST_PKT } else { 0 },
            msg_id: mid,
            entity: self.entity,
            msg_len_pkts: n,
            msg_len_bytes: msg.total_bytes,
            pkt_num: PktNum(pkt_idx),
            pkt_len: p.len as u16,
            pkt_offset: p.offset,
            path_exclude: exclusions,
            ..MtpHeader::default()
        };
        let wire = p.len + hdr.wire_len() as u32;
        let mut packet = Packet::new(Headers::Mtp(mtp_sim::pool::boxed(hdr)), wire);
        packet.sent_at = now;
        out.push(packet);
        self.stats.pkts_sent += 1;
        self.stats.retransmissions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_wire::{PathFeedback, SackEntry};

    fn sender() -> MtpSender {
        MtpSender::new(MtpConfig::default(), 1, EntityId(0), 1000)
    }

    fn data_hdr(p: &Packet) -> &MtpHeader {
        p.headers.as_mtp().expect("mtp packet")
    }

    fn ack_for(pkts: &[&Packet]) -> MtpHeader {
        MtpHeader {
            pkt_type: PktType::Ack,
            sack: pkts
                .iter()
                .map(|p| {
                    let h = data_hdr(p);
                    SackEntry {
                        msg: h.msg_id,
                        pkt: h.pkt_num,
                    }
                })
                .collect(),
            ..MtpHeader::default()
        }
    }

    #[test]
    fn fragments_message_into_mtu_packets() {
        let mut s = sender();
        let mut out = Vec::new();
        s.send_message(2, 4000, 0, TrafficClass::BEST_EFFORT, Time::ZERO, &mut out);
        assert_eq!(out.len(), 3, "4000 B / 1460 = 3 packets");
        let h0 = data_hdr(&out[0]);
        assert_eq!(h0.msg_len_pkts, 3);
        assert_eq!(h0.msg_len_bytes, 4000);
        assert_eq!(h0.pkt_num, PktNum(0));
        assert_eq!(h0.pkt_len, 1460);
        let h2 = data_hdr(&out[2]);
        assert_eq!(h2.pkt_len, (4000 - 2 * 1460) as u16);
        assert_eq!(h2.pkt_offset, 2 * 1460);
        assert!(h2.is_last_pkt());
    }

    #[test]
    fn window_limits_initial_burst() {
        let mut s = sender();
        let mut out = Vec::new();
        s.send_message(
            2,
            1_000_000,
            0,
            TrafficClass::BEST_EFFORT,
            Time::ZERO,
            &mut out,
        );
        // init window 15000 B admits 10 full packets.
        assert_eq!(out.len(), 10);
        assert_eq!(s.outstanding(), 1);
    }

    #[test]
    fn sack_opens_window_and_completes() {
        let mut s = sender();
        let mut out = Vec::new();
        s.send_message(2, 3000, 0, TrafficClass::BEST_EFFORT, Time::ZERO, &mut out);
        assert_eq!(out.len(), 3);
        let first: Vec<&Packet> = out.iter().collect();
        let ack = ack_for(&first);
        let mut out2 = Vec::new();
        s.on_ack(Time::ZERO + Duration::from_micros(10), &ack, &mut out2);
        let ev = s.take_events();
        assert_eq!(ev.len(), 1);
        assert!(matches!(ev[0], SenderEvent::MsgCompleted { .. }));
        assert_eq!(s.outstanding(), 0);
        assert_eq!(s.next_deadline(), None);
    }

    #[test]
    fn priority_zero_preempts_new_admissions() {
        let mut s = sender();
        let mut out = Vec::new();
        // Low-priority bulk fills the window.
        s.send_message(
            2,
            1_000_000,
            5,
            TrafficClass::BEST_EFFORT,
            Time::ZERO,
            &mut out,
        );
        let burst: Vec<&Packet> = out.iter().collect();
        let n_burst = burst.len();
        let ack = ack_for(&burst[..2]);
        out.clear();
        // An urgent message arrives; next window space must go to it.
        let urgent = s.send_message(2, 1460, 0, TrafficClass::BEST_EFFORT, Time::ZERO, &mut out);
        assert!(out.is_empty(), "window still full");
        let mut out2 = Vec::new();
        s.on_ack(Time::ZERO + Duration::from_micros(5), &ack, &mut out2);
        assert!(!out2.is_empty());
        assert_eq!(
            data_hdr(&out2[0]).msg_id,
            urgent,
            "urgent message admitted before remaining bulk (burst was {n_burst})"
        );
    }

    #[test]
    fn nack_triggers_immediate_retransmission() {
        let mut s = sender();
        let mut out = Vec::new();
        s.send_message(2, 3000, 0, TrafficClass::BEST_EFFORT, Time::ZERO, &mut out);
        let h1 = data_hdr(&out[1]);
        let nack = MtpHeader {
            pkt_type: PktType::Ack,
            nack: vec![SackEntry {
                msg: h1.msg_id,
                pkt: h1.pkt_num,
            }],
            ..MtpHeader::default()
        };
        let mut out2 = Vec::new();
        s.on_ack(Time::ZERO + Duration::from_micros(10), &nack, &mut out2);
        assert_eq!(s.stats.retransmissions, 1);
        let retx = data_hdr(&out2[0]);
        assert_eq!(retx.pkt_num, PktNum(1));
        assert!(retx.is_retx());
    }

    #[test]
    fn rto_resends_unacked_packets() {
        let mut s = sender();
        let mut out = Vec::new();
        s.send_message(2, 2920, 0, TrafficClass::BEST_EFFORT, Time::ZERO, &mut out);
        assert_eq!(out.len(), 2);
        let deadline = s.next_deadline().expect("armed");
        let mut out2 = Vec::new();
        s.on_timer(deadline, &mut out2);
        assert_eq!(s.stats.timeouts, 1);
        assert_eq!(out2.len(), 2, "both unacked packets resent");
        assert!(out2.iter().all(|p| data_hdr(p).is_retx()));
    }

    #[test]
    fn feedback_moves_active_pathlet_and_keeps_old_window() {
        let mut s = sender();
        let mut out = Vec::new();
        s.send_message(
            2,
            100_000,
            0,
            TrafficClass::BEST_EFFORT,
            Time::ZERO,
            &mut out,
        );
        let acked: Vec<&Packet> = out.iter().take(2).collect();
        let mut ack = ack_for(&acked);
        ack.ack_path_feedback = vec![PathFeedback {
            path: PathletId(7),
            tc: TrafficClass::BEST_EFFORT,
            feedback: Feedback::EcnMark { ce: false },
        }];
        let mut out2 = Vec::new();
        s.on_ack(Time::ZERO + Duration::from_micros(10), &ack, &mut out2);
        assert_eq!(s.active_pathlet().0, PathletId(7));
        // Both pathlets now exist independently.
        assert!(s
            .pathlets()
            .get(PathletId(7), TrafficClass::BEST_EFFORT)
            .is_some());
        assert!(s
            .pathlets()
            .get(DEFAULT_PATHLET, TrafficClass::BEST_EFFORT)
            .is_some());
    }

    #[test]
    fn path_change_notification_switches_immediately() {
        let mut s = sender();
        let mut out = Vec::new();
        s.send_message(
            2,
            100_000,
            0,
            TrafficClass::BEST_EFFORT,
            Time::ZERO,
            &mut out,
        );
        let acked: Vec<&Packet> = out.iter().take(1).collect();
        let mut ack = ack_for(&acked);
        ack.ack_path_feedback = vec![PathFeedback {
            path: PathletId(1),
            tc: TrafficClass::BEST_EFFORT,
            feedback: Feedback::PathChange {
                new_path: PathletId(9),
            },
        }];
        let mut out2 = Vec::new();
        s.on_ack(Time::ZERO + Duration::from_micros(10), &ack, &mut out2);
        // PathChange overrides the stamped entry itself... unless another
        // entry follows; here the notification wins.
        assert_eq!(s.active_pathlet().0, PathletId(1));
    }

    #[test]
    fn duplicate_sacks_are_idempotent() {
        let mut s = sender();
        let mut out = Vec::new();
        s.send_message(2, 1460, 0, TrafficClass::BEST_EFFORT, Time::ZERO, &mut out);
        let ack = ack_for(&[&out[0]]);
        let mut o = Vec::new();
        s.on_ack(Time::ZERO + Duration::from_micros(5), &ack, &mut o);
        s.on_ack(Time::ZERO + Duration::from_micros(6), &ack, &mut o);
        assert_eq!(s.take_events().len(), 1, "one completion only");
        assert_eq!(s.stats.msgs_completed, 1);
    }

    #[test]
    fn repeated_loss_floors_window_and_excludes_pathlet() {
        let mut s = sender();
        let mut out = Vec::new();
        s.send_message(
            2,
            1_000_000,
            0,
            TrafficClass::BEST_EFFORT,
            Time::ZERO,
            &mut out,
        );
        // NACK everything in flight repeatedly to drive the window down.
        for round in 0..8 {
            let now = Time::ZERO + Duration::from_micros(10 * (round + 1));
            let nacks: Vec<SackEntry> = out
                .iter()
                .map(|p| {
                    let h = data_hdr(p);
                    SackEntry {
                        msg: h.msg_id,
                        pkt: h.pkt_num,
                    }
                })
                .collect();
            let hdr = MtpHeader {
                pkt_type: PktType::Ack,
                nack: nacks,
                ..MtpHeader::default()
            };
            out.clear();
            s.on_ack(now, &hdr, &mut out);
        }
        // Retransmissions after the window floored must advertise the
        // exclusion.
        let last = data_hdr(out.last().expect("retransmissions emitted"));
        assert!(
            !last.path_exclude.is_empty(),
            "floored pathlet should be advertised as excluded"
        );
    }

    #[test]
    fn mtu_sized_message_is_single_packet() {
        let mut s = sender();
        let mut out = Vec::new();
        s.send_message(2, 1460, 0, TrafficClass::BEST_EFFORT, Time::ZERO, &mut out);
        assert_eq!(out.len(), 1);
        let h = data_hdr(&out[0]);
        assert_eq!(h.msg_len_pkts, 1);
        assert!(h.is_last_pkt());
    }
}
