//! Raw syscall bindings: `sendmmsg`, `recvmmsg`, and `poll`.
//!
//! The workspace vendors no `libc` crate, so the handful of kernel
//! interfaces the wire driver needs beyond `std::net::UdpSocket` are
//! declared here by hand. This is the only module in the crate allowed
//! to contain `unsafe`; everything above it speaks safe Rust
//! ([`crate::socket::BatchSocket`] wraps these behind an automatic
//! fallback to `send_to`/`recv_from`).
//!
//! Struct layouts match `x86_64-unknown-linux-gnu` (the only tier-1
//! target this repo builds on); other platforms compile the stub halves
//! at the bottom, which report `Unsupported` and push callers onto the
//! portable std path. The `MTP_IO_FORCE_FALLBACK` environment variable
//! forces that path on Linux too, so CI exercises both.

#![allow(unsafe_code)]

use std::net::SocketAddrV4;

/// Largest number of datagrams moved per `sendmmsg`/`recvmmsg` call.
///
/// Bounded so the per-call scratch (iovecs, headers, addresses) lives in
/// fixed arrays; the kernel caps `vlen` at `UIO_MAXIOV` (1024) anyway.
pub const BATCH: usize = 32;

/// One receive slot: a caller-owned buffer plus the length and source
/// address the kernel filled in.
#[derive(Debug)]
pub struct RecvSlot {
    /// Datagram bytes land here; capacity bounds the receivable size.
    pub buf: Vec<u8>,
    /// Valid bytes in `buf` after a receive.
    pub len: usize,
    /// Source address of the datagram.
    pub addr: SocketAddrV4,
}

impl RecvSlot {
    /// A slot able to receive datagrams up to `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> RecvSlot {
        RecvSlot {
            buf: vec![0; capacity],
            len: 0,
            addr: SocketAddrV4::new(std::net::Ipv4Addr::UNSPECIFIED, 0),
        }
    }

    /// The received bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.buf[..self.len]
    }
}

#[cfg(target_os = "linux")]
mod linux {
    use super::{RecvSlot, BATCH};
    use std::io;
    use std::net::SocketAddrV4;
    use std::os::fd::RawFd;

    const AF_INET: u16 = 2;
    const POLLIN: i16 = 0x001;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct SockaddrIn {
        sin_family: u16,
        sin_port: u16, // network byte order
        sin_addr: u32, // network byte order
        sin_zero: [u8; 8],
    }

    impl SockaddrIn {
        fn from_addr(a: &SocketAddrV4) -> SockaddrIn {
            SockaddrIn {
                sin_family: AF_INET,
                sin_port: a.port().to_be(),
                sin_addr: u32::from_be_bytes(a.ip().octets()).to_be(),
                sin_zero: [0; 8],
            }
        }

        fn to_addr(self) -> SocketAddrV4 {
            SocketAddrV4::new(
                std::net::Ipv4Addr::from(u32::from_be(self.sin_addr).to_be_bytes()),
                u16::from_be(self.sin_port),
            )
        }

        fn zeroed() -> SockaddrIn {
            SockaddrIn {
                sin_family: 0,
                sin_port: 0,
                sin_addr: 0,
                sin_zero: [0; 8],
            }
        }
    }

    #[repr(C)]
    struct IoVec {
        iov_base: *mut u8,
        iov_len: usize,
    }

    #[repr(C)]
    struct MsgHdr {
        msg_name: *mut SockaddrIn,
        msg_namelen: u32,
        msg_iov: *mut IoVec,
        msg_iovlen: usize,
        msg_control: *mut u8,
        msg_controllen: usize,
        msg_flags: i32,
    }

    #[repr(C)]
    struct MMsgHdr {
        msg_hdr: MsgHdr,
        msg_len: u32,
    }

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn sendmmsg(sockfd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
        fn recvmmsg(
            sockfd: i32,
            msgvec: *mut MMsgHdr,
            vlen: u32,
            flags: i32,
            timeout: *mut u8, // struct timespec*; always null here
        ) -> i32;
        fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: i32) -> i32;
    }

    /// Transmit up to [`BATCH`] datagrams in one syscall. Returns how
    /// many the kernel accepted (possibly fewer than offered).
    pub fn send_batch(fd: RawFd, dgrams: &[(SocketAddrV4, &[u8])]) -> io::Result<usize> {
        let n = dgrams.len().min(BATCH);
        let mut addrs = [SockaddrIn::zeroed(); BATCH];
        let mut iovs: [IoVec; BATCH] = std::array::from_fn(|_| IoVec {
            iov_base: std::ptr::null_mut(),
            iov_len: 0,
        });
        let mut hdrs: [MMsgHdr; BATCH] = std::array::from_fn(|_| MMsgHdr {
            msg_hdr: MsgHdr {
                msg_name: std::ptr::null_mut(),
                msg_namelen: 0,
                msg_iov: std::ptr::null_mut(),
                msg_iovlen: 0,
                msg_control: std::ptr::null_mut(),
                msg_controllen: 0,
                msg_flags: 0,
            },
            msg_len: 0,
        });
        for (i, (addr, bytes)) in dgrams.iter().take(n).enumerate() {
            addrs[i] = SockaddrIn::from_addr(addr);
            iovs[i] = IoVec {
                // sendmmsg never writes through the iovec; the cast is
                // only to satisfy the (historically non-const) ABI type.
                iov_base: bytes.as_ptr() as *mut u8,
                iov_len: bytes.len(),
            };
            hdrs[i].msg_hdr.msg_name = &mut addrs[i];
            hdrs[i].msg_hdr.msg_namelen = std::mem::size_of::<SockaddrIn>() as u32;
            hdrs[i].msg_hdr.msg_iov = &mut iovs[i];
            hdrs[i].msg_hdr.msg_iovlen = 1;
        }
        // SAFETY: every pointer in `hdrs` targets a live stack array or
        // a caller slice that outlives the call; vlen == n bounds the
        // kernel's reads to initialized entries.
        let rc = unsafe { sendmmsg(fd, hdrs.as_mut_ptr(), n as u32, 0) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(rc as usize)
    }

    /// Receive up to `slots.len().min(BATCH)` datagrams in one syscall.
    /// Returns how many slots were filled; 0 means nothing ready is NOT
    /// possible (the kernel reports `EAGAIN` instead on a nonblocking
    /// socket, surfaced as `WouldBlock`).
    pub fn recv_batch(fd: RawFd, slots: &mut [RecvSlot]) -> io::Result<usize> {
        let n = slots.len().min(BATCH);
        let mut addrs = [SockaddrIn::zeroed(); BATCH];
        let mut iovs: [IoVec; BATCH] = std::array::from_fn(|_| IoVec {
            iov_base: std::ptr::null_mut(),
            iov_len: 0,
        });
        let mut hdrs: [MMsgHdr; BATCH] = std::array::from_fn(|_| MMsgHdr {
            msg_hdr: MsgHdr {
                msg_name: std::ptr::null_mut(),
                msg_namelen: 0,
                msg_iov: std::ptr::null_mut(),
                msg_iovlen: 0,
                msg_control: std::ptr::null_mut(),
                msg_controllen: 0,
                msg_flags: 0,
            },
            msg_len: 0,
        });
        for i in 0..n {
            iovs[i] = IoVec {
                iov_base: slots[i].buf.as_mut_ptr(),
                iov_len: slots[i].buf.len(),
            };
            hdrs[i].msg_hdr.msg_name = &mut addrs[i];
            hdrs[i].msg_hdr.msg_namelen = std::mem::size_of::<SockaddrIn>() as u32;
            hdrs[i].msg_hdr.msg_iov = &mut iovs[i];
            hdrs[i].msg_hdr.msg_iovlen = 1;
        }
        // SAFETY: as in `send_batch`; buffers are distinct `Vec`s so the
        // kernel's writes cannot alias.
        let rc = unsafe { recvmmsg(fd, hdrs.as_mut_ptr(), n as u32, 0, std::ptr::null_mut()) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        let got = rc as usize;
        for i in 0..got {
            slots[i].len = hdrs[i].msg_len as usize;
            slots[i].addr = addrs[i].to_addr();
        }
        Ok(got)
    }

    /// Block until any fd is readable or `timeout_ms` elapses. Returns
    /// whether at least one fd is readable.
    pub fn poll_readable(fds: &[RawFd], timeout_ms: i32) -> io::Result<bool> {
        let mut pfds: Vec<PollFd> = fds
            .iter()
            .map(|&fd| PollFd {
                fd,
                events: POLLIN,
                revents: 0,
            })
            .collect();
        // SAFETY: `pfds` is a live, initialized slice for the duration
        // of the call.
        let rc = unsafe { poll(pfds.as_mut_ptr(), pfds.len() as u64, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            // A signal is not a failure; report "nothing readable yet".
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(false);
            }
            return Err(err);
        }
        Ok(rc > 0)
    }
}

#[cfg(target_os = "linux")]
pub use linux::{poll_readable, recv_batch, send_batch};

#[cfg(not(target_os = "linux"))]
mod portable {
    use super::RecvSlot;
    use std::io;
    use std::net::SocketAddrV4;

    /// Raw fd stand-in on platforms without the Linux FFI.
    pub type RawFd = i32;

    fn unsupported() -> io::Error {
        io::Error::new(io::ErrorKind::Unsupported, "mmsg syscalls are Linux-only")
    }

    /// Always `Unsupported`; callers fall back to `send_to` loops.
    pub fn send_batch(_fd: RawFd, _dgrams: &[(SocketAddrV4, &[u8])]) -> io::Result<usize> {
        Err(unsupported())
    }

    /// Always `Unsupported`; callers fall back to `recv_from` loops.
    pub fn recv_batch(_fd: RawFd, _slots: &mut [RecvSlot]) -> io::Result<usize> {
        Err(unsupported())
    }

    /// Always `Unsupported`; callers fall back to sleeping briefly.
    pub fn poll_readable(_fds: &[RawFd], _timeout_ms: i32) -> io::Result<bool> {
        Err(unsupported())
    }
}

#[cfg(not(target_os = "linux"))]
pub use portable::{poll_readable, recv_batch, send_batch};
