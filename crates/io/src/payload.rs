//! Deterministic payload synthesis and content digests.
//!
//! The simulator never materializes payload bytes — packets carry
//! lengths and a payload *descriptor* checksum. The wire backend does
//! ship real bytes, so comparing the two worlds needs a convention for
//! what a message's content *is*: byte `i` of message `m` is a pure
//! function of `(m, i)`. Both worlds can then compute the same
//! per-message digest — the sim from `(msg_id, bytes)` pairs alone, the
//! wire receiver from the bytes it actually reassembled — and a digest
//! mismatch convicts the transport of corrupting, duplicating, or
//! misplacing payload, byte-for-byte.
//!
//! The function is position-independent per 8-byte block (keyed
//! splitmix64 of the block index), so a packet's worth of payload can be
//! synthesized for any `(offset, len)` range without streaming from
//! byte 0 — exactly what a sender fragmenting at MTU boundaries needs.

use mtp_wire::MsgId;

/// splitmix64: the standard 64-bit finalizer-style mixer.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The 64-bit word covering block `block` (bytes `8*block..8*block+8`)
/// of message `id`.
#[inline]
fn block_word(id: MsgId, block: u64) -> u64 {
    splitmix64(id.0.wrapping_mul(0xA076_1D64_78BD_642F) ^ block)
}

/// Fill `buf` with the bytes of message `id` starting at byte `offset`.
pub fn fill(id: MsgId, offset: u32, buf: &mut [u8]) {
    // Sentinel: no real position sits in block u64::MAX (offsets are
    // u32-bounded), so the first byte always computes its word.
    let mut block = u64::MAX;
    let mut word = [0u8; 8];
    for (k, b) in buf.iter_mut().enumerate() {
        let pos = offset as u64 + k as u64;
        if pos / 8 != block {
            block = pos / 8;
            word = block_word(id, block).to_le_bytes();
        }
        *b = word[(pos % 8) as usize];
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// FNV-1a over a byte slice.
#[inline]
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Digest of one message's reassembled bytes.
pub fn message_digest(bytes: &[u8]) -> u64 {
    fnv1a(FNV_OFFSET, bytes)
}

/// Digest of the message `id` of length `len` as [`fill`] defines it —
/// what [`message_digest`] returns for a correctly delivered copy.
/// `scratch` is reused across calls to avoid re-allocating.
pub fn synth_message_digest(id: MsgId, len: u32, scratch: &mut Vec<u8>) -> u64 {
    scratch.clear();
    scratch.resize(len as usize, 0);
    fill(id, 0, scratch);
    message_digest(scratch)
}

/// Combined digest of a delivered-message set: fold `(id, len, digest)`
/// triples, sorted by id, into one FNV accumulator. Both worlds sort, so
/// delivery *order* (which legitimately differs between sim and kernel
/// scheduling) does not affect the result — content and multiplicity do.
pub fn content_digest(msgs: &[(u64, u32, u64)]) -> u64 {
    let mut sorted: Vec<(u64, u32, u64)> = msgs.to_vec();
    sorted.sort_unstable();
    let mut h = FNV_OFFSET;
    for (id, len, digest) in sorted {
        h = fnv1a(h, &id.to_le_bytes());
        h = fnv1a(h, &len.to_le_bytes());
        h = fnv1a(h, &digest.to_le_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_is_offset_independent() {
        // Filling [0, 4000) at once must equal filling arbitrary
        // fragments, including ones not aligned to the 8-byte blocks
        // (1460 % 8 == 4, the realistic MTU case).
        let id = MsgId(0xDEAD_BEEF);
        let mut whole = vec![0u8; 4000];
        fill(id, 0, &mut whole);
        for (off, len) in [(0usize, 1460usize), (1460, 1460), (2920, 1080), (3999, 1)] {
            let mut frag = vec![0u8; len];
            fill(id, off as u32, &mut frag);
            assert_eq!(&whole[off..off + len], &frag[..], "fragment at {off}");
        }
    }

    #[test]
    fn different_messages_differ() {
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        fill(MsgId(1), 0, &mut a);
        fill(MsgId(2), 0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn synth_digest_matches_reassembled_digest() {
        let id = MsgId(42);
        let mut buf = vec![0u8; 3001];
        fill(id, 0, &mut buf);
        let mut scratch = Vec::new();
        assert_eq!(
            message_digest(&buf),
            synth_message_digest(id, 3001, &mut scratch)
        );
    }

    #[test]
    fn content_digest_is_order_independent_but_multiplicity_sensitive() {
        let a = [(1u64, 10u32, 111u64), (2, 20, 222)];
        let b = [(2u64, 20u32, 222u64), (1, 10, 111)];
        assert_eq!(content_digest(&a), content_digest(&b));
        let dup = [(1u64, 10u32, 111u64), (1, 10, 111), (2, 20, 222)];
        assert_ne!(content_digest(&a), content_digest(&dup));
    }
}
