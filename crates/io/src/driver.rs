//! The wire driver: golden workloads over the session transport.
//!
//! Earlier revisions carried bespoke event loops (`WireSender` /
//! `WireReceiver`) that bootstrapped from out-of-band port maps and shut
//! down by a side-channel `AtomicBool`. Both jobs now belong to the
//! session layer ([`crate::session`]): the listener hands out its port
//! map in the HELLO-ACK, and FIN/FIN-ACK says when serving is over. What
//! remains here is the workload harness — [`run_wire_golden`] replays a
//! sim golden workload over real loopback sockets through
//! [`SenderSession`]/[`Listener`] and assembles the same [`Ledger`]
//! shape the simulator produces, so the exactly-once assertion is
//! literally the same code in both worlds.
//!
//! No async runtime — each side is a plain poll loop on its own thread:
//!
//! 1. submit any workload messages that have come due (as real owned
//!    byte buffers — the caller-supplies-bytes path, with backpressure),
//! 2. drain every socket nonblockingly and hand frames to the core,
//! 3. fire the core's timer if its `poll_at()` deadline has passed,
//! 4. block in `poll(2)` until readable or the next deadline.

use std::io;
use std::time::Instant;

use mtp_faults::Ledger;
use mtp_sim::time::{Duration as SimDuration, Time};
use mtp_telemetry::Registry;
use mtp_wire::MsgId;

use crate::frame::DEFAULT_DATAGRAM_BUDGET;
use crate::golden::{GoldenWorkload, GOLDEN_MSG_ID_BASE};
use crate::payload;
use crate::relay::ChaosConfig;
use crate::session::{Listener, SenderSession, SessionConfig, SessionError};
use mtp_core::MtpConfig;

/// Sender and receiver app-port addresses (the MTP header's ports, not
/// UDP ports — UDP ports are ephemeral and per-pathlet).
const SENDER_ADDR: u16 = 1;
const RECEIVER_ADDR: u16 = 2;

/// Configuration shared by both wire endpoints.
#[derive(Debug, Clone)]
pub struct IoConfig {
    /// Sockets (= pathlets = loopback port pairs) per endpoint.
    pub pathlets: usize,
    /// Per-datagram coalescing budget in bytes.
    pub datagram_budget: usize,
    /// Endpoint-core configuration.
    pub mtp: MtpConfig,
    /// Receiver SACK redundancy (`MtpReceiver::with_sack_redundancy`).
    pub sack_redundancy: usize,
    /// Receiver completed-record linger before GC.
    pub gc_linger: SimDuration,
}

impl Default for IoConfig {
    fn default() -> IoConfig {
        // The sim's min_rto default (200µs) is tuned to modeled 2µs
        // links. On a real kernel a preempted thread easily stalls past
        // that, and a spurious RTO storm follows; 3ms rides out
        // scheduler noise while still repairing genuine loss quickly.
        // Correctness is content-based, so timing tuning cannot affect
        // the digests.
        let mtp = MtpConfig {
            min_rto: SimDuration::from_micros(3_000),
            ..MtpConfig::default()
        };
        IoConfig {
            pathlets: 4,
            datagram_budget: DEFAULT_DATAGRAM_BUDGET,
            mtp,
            sack_redundancy: 8,
            gc_linger: SimDuration::from_micros(100_000),
        }
    }
}

/// The [`SessionConfig`] the golden harness runs under: the shared
/// `IoConfig` plus the workspace's canonical app ports and message-id
/// base. The soak harness derives its chaos configs from this too.
pub fn golden_session_config(cfg: &IoConfig) -> SessionConfig {
    SessionConfig {
        io: cfg.clone(),
        client_port: SENDER_ADDR,
        server_port: RECEIVER_ADDR,
        msg_id_base: GOLDEN_MSG_ID_BASE,
        ..SessionConfig::default()
    }
}

/// Flatten a session-layer error into the `io::Result` these harness
/// entry points promise.
fn sess_io(e: SessionError) -> io::Error {
    match e {
        SessionError::Io(e) => e,
        SessionError::HandshakeTimeout { .. }
        | SessionError::CloseTimeout { .. }
        | SessionError::PeerDead { .. }
        | SessionError::WallDeadline { .. } => {
            io::Error::new(io::ErrorKind::TimedOut, e.to_string())
        }
        other => io::Error::other(other.to_string()),
    }
}

// ---------------------------------------------------------------------------
// Outcomes
// ---------------------------------------------------------------------------

/// What the receiving side ended a run with.
#[derive(Debug, Clone)]
pub struct WireRxOutcome {
    /// `(msg_id, bytes)` per delivery event, sorted by id.
    pub delivered: Vec<(u64, u32)>,
    /// `(msg_id, bytes, digest)` per delivery, digest computed from the
    /// actually reassembled bytes.
    pub digests: Vec<(u64, u32, u64)>,
    /// First-copy payload bytes delivered.
    pub goodput: u64,
    /// Telemetry counters recorded by the listener.
    pub registry: Registry,
}

impl WireRxOutcome {
    /// Combined content digest of everything delivered.
    pub fn content_digest(&self) -> u64 {
        payload::content_digest(&self.digests)
    }
}

/// What the sending side ended a run with.
#[derive(Debug, Clone)]
pub struct WireTxOutcome {
    /// `(bytes, completed_ps)` per schedule entry that finished.
    pub completed: Vec<(u32, u64)>,
    /// Schedule entries that never completed.
    pub unfinished: usize,
    /// Wall-clock time from connect to close.
    pub wall: std::time::Duration,
    /// Timeouts the core fired (diagnostics).
    pub timeouts: u64,
    /// Retransmissions the core sent (diagnostics).
    pub retransmissions: u64,
    /// HELLO rounds the handshake took (1 = first try answered).
    pub handshake_rounds: u32,
    /// FIN rounds the close took.
    pub close_rounds: u32,
    /// Packets emitted per repair (RTO) round, in round order — the
    /// retransmission-round histogram `bench_wire` records.
    pub retx_round_hist: Vec<u32>,
    /// Telemetry counters recorded by the sender session.
    pub registry: Registry,
}

/// Both ends of a wire run, assembled into the same [`Ledger`] shape the
/// simulator produces — so the exactly-once assertion is literally the
/// same code in both worlds.
#[derive(Debug, Clone)]
pub struct WireOutcome {
    /// The exactly-once ledger.
    pub ledger: Ledger,
    /// Combined content digest of everything delivered.
    pub content_digest: u64,
    /// Sender-side outcome.
    pub tx: WireTxOutcome,
    /// Receiver-side outcome.
    pub rx: WireRxOutcome,
    /// Relay fault statistics, when a relay was interposed.
    pub relay: Option<crate::relay::RelayStats>,
}

impl WireOutcome {
    /// Assemble the two halves.
    pub fn assemble(tx: WireTxOutcome, rx: WireRxOutcome) -> WireOutcome {
        let ledger = Ledger {
            delivered: rx.delivered.clone(),
            completed: tx.completed.clone(),
            unfinished: tx.unfinished,
            goodput: rx.goodput,
        };
        let content_digest = rx.content_digest();
        WireOutcome {
            ledger,
            content_digest,
            tx,
            rx,
            relay: None,
        }
    }
}

// ---------------------------------------------------------------------------
// The golden harness
// ---------------------------------------------------------------------------

/// Submit `workload` on its schedule through an established session and
/// poll until every message completes (or the wall deadline, an error).
/// Each message is submitted as a real caller-owned byte buffer whose
/// content matches the deterministic synth corpus, so digests stay
/// comparable with the simulator reference.
fn run_schedule(
    sess: &mut SenderSession,
    workload: &GoldenWorkload,
    deadline: Instant,
) -> io::Result<Vec<(u32, Option<u64>)>> {
    let mut records: Vec<(u32, Option<u64>)> =
        workload.msgs.iter().map(|&(_, b)| (b, None)).collect();
    let mut index: Vec<(u64, usize)> = Vec::new();
    let mut next_sub = 0usize;
    let mut consumed = 0usize;
    loop {
        // 1. Submissions that have come due — or backpressure, in which
        //    case drain completions first and come back.
        let now = sess.now();
        let mut blocked = false;
        while next_sub < workload.msgs.len() && Time::ZERO + workload.msgs[next_sub].0 <= now {
            let (_, bytes) = workload.msgs[next_sub];
            let id = sess.next_msg_id();
            let mut buf = vec![0u8; bytes as usize];
            payload::fill(MsgId(id), 0, &mut buf);
            match sess.try_send(buf) {
                Ok(got) => {
                    debug_assert_eq!(got.0, id, "session ids are sequential");
                    index.push((got.0, next_sub));
                    next_sub += 1;
                }
                Err(SessionError::Backpressure { .. }) => {
                    blocked = true;
                    break;
                }
                Err(e) => return Err(sess_io(e)),
            }
        }
        // 2+3. Drain sockets, fire timers, police liveness.
        sess.poll().map_err(sess_io)?;
        for &(mid, at) in &sess.completions()[consumed..] {
            if let Ok(k) = index.binary_search_by_key(&mid, |&(m, _)| m) {
                records[index[k].1].1 = Some(at.0);
            }
        }
        consumed = sess.completions().len();
        if next_sub == records.len() && records.iter().all(|r| r.1.is_some()) {
            return Ok(records);
        }
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!(
                    "wire sender: {}/{} messages before deadline",
                    records.iter().filter(|r| r.1.is_some()).count(),
                    records.len()
                ),
            ));
        }
        // 4. Sleep until readable or the next deadline. Under
        //    backpressure the next schedule slot is already due but
        //    cannot be admitted, so do not spin on it.
        let mut wake = std::time::Duration::from_millis(5);
        if !blocked && next_sub < workload.msgs.len() {
            let due = Time::ZERO + workload.msgs[next_sub].0;
            let now = sess.now();
            if due > now {
                wake = wake.min(std::time::Duration::from_nanos((due.0 - now.0) / 1_000));
            }
        }
        if wake.is_zero() {
            continue;
        }
        sess.wait(wake).map_err(sess_io)?;
    }
}

/// Run `workload` over real loopback sockets end to end: bind a
/// listener, optionally interpose a
/// [`LossyRelay`](crate::relay::LossyRelay) (with a NAT'ing control
/// lane), connect a session, replay the schedule, close gracefully, and
/// assemble the combined outcome. `wall_budget` bounds the whole run.
pub fn run_wire_golden(
    cfg: &IoConfig,
    workload: &GoldenWorkload,
    relay: Option<crate::relay::RelayConfig>,
    wall_budget: std::time::Duration,
) -> io::Result<WireOutcome> {
    let deadline = Instant::now() + wall_budget;
    let scfg = golden_session_config(cfg);
    let mut listener = Listener::bind(&scfg)?;
    let ctrl_dst = listener.hello_addr()?;
    let data_dsts = listener.pathlet_addrs()?;
    let relay = match relay {
        Some(rcfg) => Some(crate::relay::LossyRelay::start_session(
            rcfg,
            ChaosConfig::default(),
            ctrl_dst,
            &data_dsts,
        )?),
        None => None,
    };
    let server = match &relay {
        Some(r) => r.ctrl_addr().expect("session relay has a ctrl lane"),
        None => ctrl_dst,
    };
    let rx_thread = std::thread::Builder::new()
        .name("mtp-io-rx".into())
        .spawn(move || {
            let res = listener.run_until_closed(deadline);
            (listener, res)
        })?;
    let started = Instant::now();
    let tx_res = SenderSession::connect(&scfg, server)
        .and_then(|mut sess| {
            let records = run_schedule(&mut sess, workload, deadline).map_err(SessionError::Io)?;
            sess.close(deadline)?;
            Ok((sess, records))
        })
        .map_err(sess_io);
    let (listener, rx_res) = rx_thread
        .join()
        .map_err(|_| io::Error::other("wire listener thread panicked"))?;
    let relay_stats = relay.map(crate::relay::LossyRelay::stop);
    let (sess, records) = tx_res?;
    let report = rx_res.map_err(sess_io)?;
    let tx = WireTxOutcome {
        completed: records
            .iter()
            .filter_map(|&(b, c)| c.map(|at| (b, at)))
            .collect(),
        unfinished: records.iter().filter(|r| r.1.is_none()).count(),
        wall: started.elapsed(),
        timeouts: sess.core().stats.timeouts,
        retransmissions: sess.core().stats.retransmissions,
        handshake_rounds: sess.handshake_rounds(),
        close_rounds: sess.close_rounds(),
        retx_round_hist: sess.retx_rounds().to_vec(),
        registry: sess.registry().clone(),
    };
    let rx = WireRxOutcome {
        delivered: report.delivered.clone(),
        digests: report.digests.clone(),
        goodput: report.goodput,
        registry: listener.registry().clone(),
    };
    let mut out = WireOutcome::assemble(tx, rx);
    out.relay = relay_stats;
    Ok(out)
}
