//! The wire event loops: [`WireSender`] and [`WireReceiver`].
//!
//! These are the real-world counterparts of the simulator's host
//! adapters (`mtp_core::host`): they own sockets and a clock, and feed
//! the *same* sans-IO cores the sim feeds. No async runtime — each
//! driver is a plain poll loop:
//!
//! 1. submit any workload messages that have come due,
//! 2. drain every socket nonblockingly and hand frames to the core,
//! 3. fire the core's timer if its `poll_at()` deadline has passed,
//! 4. block in `poll(2)` until readable or the next deadline.
//!
//! One socket per pathlet: pathlet `p` is loopback port pair `p`, so
//! multi-pathlet spraying, quarantine, and `path_exclude` all act on
//! real ports. The sender routes each *message* onto a pathlet (hash of
//! the id over the non-excluded set) so packets of one message stay
//! ordered; retransmissions rotate onto other pathlets, which is what
//! lets a blackholed port drain through the survivors.

use std::collections::HashMap;
use std::io;
use std::net::{Ipv4Addr, SocketAddrV4};
use std::time::Instant;

use mtp_core::{MsgDelivered, MtpConfig, MtpReceiver, MtpSender, SenderEvent};
use mtp_faults::Ledger;
use mtp_sim::time::{Duration as SimDuration, Time};
use mtp_sim::{Headers, Packet};
use mtp_telemetry::{Metric, Registry};
use mtp_wire::{
    EcnCodepoint, EntityId, Feedback, MsgId, MtpHeader, PathFeedback, PathletId, PktType,
};

use crate::clock::{Clock, MonotonicClock};
use crate::frame::{append_frame, FrameIter, DEFAULT_DATAGRAM_BUDGET};
use crate::golden::{GoldenWorkload, GOLDEN_MSG_ID_BASE};
use crate::payload;
use crate::socket::{wait_readable, BatchSocket};

/// Sender and receiver app-port addresses (the MTP header's ports, not
/// UDP ports — UDP ports are ephemeral and per-pathlet).
const SENDER_ADDR: u16 = 1;
const RECEIVER_ADDR: u16 = 2;

/// Configuration shared by both wire drivers.
#[derive(Debug, Clone)]
pub struct IoConfig {
    /// Sockets (= pathlets = loopback port pairs) per endpoint.
    pub pathlets: usize,
    /// Per-datagram coalescing budget in bytes.
    pub datagram_budget: usize,
    /// Endpoint-core configuration.
    pub mtp: MtpConfig,
    /// Receiver SACK redundancy (`MtpReceiver::with_sack_redundancy`).
    pub sack_redundancy: usize,
    /// Receiver completed-record linger before GC.
    pub gc_linger: SimDuration,
}

impl Default for IoConfig {
    fn default() -> IoConfig {
        // The sim's min_rto default (200µs) is tuned to modeled 2µs
        // links. On a real kernel a preempted thread easily stalls past
        // that, and a spurious RTO storm follows; 3ms rides out
        // scheduler noise while still repairing genuine loss quickly.
        // Correctness is content-based, so timing tuning cannot affect
        // the digests.
        let mtp = MtpConfig {
            min_rto: SimDuration::from_micros(3_000),
            ..MtpConfig::default()
        };
        IoConfig {
            pathlets: 4,
            datagram_budget: DEFAULT_DATAGRAM_BUDGET,
            mtp,
            sack_redundancy: 8,
            gc_linger: SimDuration::from_micros(100_000),
        }
    }
}

fn bind_pathlet_sockets(n: usize) -> io::Result<Vec<BatchSocket>> {
    (0..n.max(1))
        .map(|_| BatchSocket::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0)))
        .collect()
}

fn invalid<E: std::error::Error + Send + Sync + 'static>(e: E) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

/// Sim-time picoseconds until `t`, as a wall `std::time::Duration`.
fn until(now: Time, t: Time) -> std::time::Duration {
    std::time::Duration::from_nanos(t.0.saturating_sub(now.0) / 1_000)
}

// ---------------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------------

/// What the wire receiver ended a run with.
#[derive(Debug, Clone)]
pub struct WireRxOutcome {
    /// `(msg_id, bytes)` per delivery event, sorted by id.
    pub delivered: Vec<(u64, u32)>,
    /// `(msg_id, bytes, digest)` per delivery, digest computed from the
    /// actually reassembled bytes.
    pub digests: Vec<(u64, u32, u64)>,
    /// First-copy payload bytes delivered.
    pub goodput: u64,
    /// Telemetry counters recorded by this driver.
    pub registry: Registry,
}

impl WireRxOutcome {
    /// Combined content digest of everything delivered.
    pub fn content_digest(&self) -> u64 {
        payload::content_digest(&self.digests)
    }
}

/// The receiving wire driver: reassembles real payload bytes and ACKs
/// every data packet back to the datagram's source.
pub struct WireReceiver {
    socks: Vec<BatchSocket>,
    recv: MtpReceiver,
    clock: MonotonicClock,
    budget: usize,
    reasm: HashMap<u64, Vec<u8>>,
    digests: Vec<(u64, u32, u64)>,
    delivered: Vec<(u64, u32)>,
    ev_buf: Vec<MsgDelivered>,
    registry: Registry,
}

impl WireReceiver {
    /// Bind `cfg.pathlets` loopback sockets and construct the core.
    pub fn bind(cfg: &IoConfig) -> io::Result<WireReceiver> {
        Ok(WireReceiver {
            socks: bind_pathlet_sockets(cfg.pathlets)?,
            recv: MtpReceiver::new(RECEIVER_ADDR)
                .with_sack_redundancy(cfg.sack_redundancy)
                .with_gc_linger(cfg.gc_linger),
            clock: MonotonicClock::new(),
            budget: cfg.datagram_budget,
            reasm: HashMap::new(),
            digests: Vec::new(),
            delivered: Vec::new(),
            ev_buf: Vec::new(),
            registry: Registry::new(),
        })
    }

    /// The per-pathlet addresses senders (or a relay) should target.
    pub fn pathlet_addrs(&self) -> io::Result<Vec<SocketAddrV4>> {
        self.socks.iter().map(|s| s.local_addr()).collect()
    }

    /// Serve until `stop` is raised (the sender has retired everything)
    /// or the wall deadline passes, then verify `expected_msgs` messages
    /// were delivered.
    ///
    /// The receiver must NOT exit at its own `expected_msgs` count: the
    /// datagram carrying the final ACK can be lost on the wire, in which
    /// case the sender retransmits — and a receiver that already left
    /// would strand it until the deadline. Serving until the *sender*
    /// declares completion closes that shutdown race; an ACK implies
    /// receipt, so sender-done guarantees receiver-done.
    pub fn run_until(
        &mut self,
        expected_msgs: usize,
        deadline: Instant,
        stop: &std::sync::atomic::AtomicBool,
    ) -> io::Result<()> {
        use std::sync::atomic::Ordering;
        while !stop.load(Ordering::Acquire) {
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "wire receiver: {}/{} messages before deadline",
                        self.delivered.len(),
                        expected_msgs
                    ),
                ));
            }
            {
                let socks: Vec<&BatchSocket> = self.socks.iter().collect();
                let _ = wait_readable(&socks, std::time::Duration::from_millis(5))?;
            }
            self.poll_once()?;
        }
        // One final drain so late-arriving duplicates are counted.
        self.poll_once()?;
        if self.delivered.len() < expected_msgs {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "wire receiver: sender finished but only {}/{} messages delivered",
                    self.delivered.len(),
                    expected_msgs
                ),
            ));
        }
        Ok(())
    }

    /// Drain every socket once, process frames, send ACKs, run GC.
    pub fn poll_once(&mut self) -> io::Result<()> {
        let mut dgrams = Vec::new();
        // Open ACK datagram per (socket, peer) this round.
        let mut acks: Vec<(usize, SocketAddrV4, Vec<Vec<u8>>)> = Vec::new();
        for p in 0..self.socks.len() {
            dgrams.clear();
            let report = self.socks[p].recv_batch(self.budget + 64, &mut dgrams)?;
            self.registry
                .count(Metric::WireDatagramsRx, report.datagrams as u64);
            self.registry
                .count(Metric::WireRecvBatches, report.syscalls as u64);
            for (bytes, src) in dgrams.drain(..) {
                self.on_datagram(p, src, &bytes, &mut acks)?;
            }
        }
        // Flush coalesced ACKs back out the sockets they arrived on.
        for (p, peer, dgrams) in acks {
            let sends: Vec<(SocketAddrV4, &[u8])> =
                dgrams.iter().map(|d| (peer, d.as_slice())).collect();
            let report = self.socks[p].send_batch(&sends)?;
            self.registry
                .count(Metric::WireDatagramsTx, report.datagrams as u64);
            self.registry
                .count(Metric::WireSendBatches, report.syscalls as u64);
        }
        // Completed-record GC runs off the receiver's own poll deadline.
        let now = self.clock.now();
        if self.recv.poll_at().is_some_and(|t| t <= now) {
            self.recv.on_poll(now);
        }
        Ok(())
    }

    fn on_datagram(
        &mut self,
        p: usize,
        src: SocketAddrV4,
        bytes: &[u8],
        acks: &mut Vec<(usize, SocketAddrV4, Vec<Vec<u8>>)>,
    ) -> io::Result<()> {
        for frame in FrameIter::new(bytes) {
            let frame = match frame {
                Ok(f) => f,
                Err(_) => {
                    self.registry.count(Metric::WireParseErrors, 1);
                    break;
                }
            };
            let (mut hdr, used, payload_ok) = match MtpHeader::parse_sealed(frame) {
                Ok(v) => v,
                Err(_) => {
                    self.registry.count(Metric::WireParseErrors, 1);
                    continue;
                }
            };
            self.registry.count(Metric::WireFramesRx, 1);
            if hdr.pkt_type != PktType::Data {
                continue;
            }
            let payload = &frame[used..];
            let end = hdr.pkt_offset as u64 + hdr.pkt_len as u64;
            if payload.len() != hdr.pkt_len as usize || end > hdr.msg_len_bytes as u64 {
                self.registry.count(Metric::WireParseErrors, 1);
                continue;
            }
            if !payload_ok {
                // Trustworthy header, untrustworthy payload: drop with
                // no ACK, exactly as the sim sink does, and the sender
                // repairs it like any loss.
                self.registry.count(Metric::WirePayloadCsumFail, 1);
                continue;
            }
            // This driver is the first-hop network: stamp which pathlet
            // (socket) the packet actually used, so the sender's
            // per-pathlet controllers attribute feedback to real ports.
            hdr.path_feedback.clear();
            hdr.path_feedback.push(PathFeedback {
                path: PathletId(p as u16),
                tc: hdr.tc,
                feedback: Feedback::EcnMark { ce: false },
            });
            let now = self.clock.now();
            let (ack, newly) = self.recv.on_data(now, &hdr, EcnCodepoint::Ect0);
            if newly > 0 {
                let buf = self
                    .reasm
                    .entry(hdr.msg_id.0)
                    .or_insert_with(|| vec![0; hdr.msg_len_bytes as usize]);
                buf[hdr.pkt_offset as usize..end as usize].copy_from_slice(payload);
            }
            self.queue_ack(p, src, ack, acks)?;
            self.drain_deliveries();
        }
        Ok(())
    }

    fn queue_ack(
        &mut self,
        p: usize,
        peer: SocketAddrV4,
        ack: Packet,
        acks: &mut Vec<(usize, SocketAddrV4, Vec<Vec<u8>>)>,
    ) -> io::Result<()> {
        let Headers::Mtp(ack_hdr) = ack.headers else {
            return Ok(());
        };
        let pos = match acks.iter().position(|(sp, sa, _)| *sp == p && *sa == peer) {
            Some(i) => i,
            None => {
                acks.push((p, peer, vec![Vec::new()]));
                acks.len() - 1
            }
        };
        let slot = &mut acks[pos].2;
        let open = slot.last_mut().expect("always one open datagram");
        match append_frame(open, self.budget, &ack_hdr, &[]) {
            Ok(true) => {}
            Ok(false) => {
                slot.push(Vec::new());
                let open = slot.last_mut().expect("just pushed");
                append_frame(open, self.budget, &ack_hdr, &[]).map_err(invalid)?;
            }
            Err(e) => return Err(invalid(e)),
        }
        self.registry.count(Metric::WireFramesTx, 1);
        mtp_sim::pool::recycle_header(ack_hdr);
        Ok(())
    }

    fn drain_deliveries(&mut self) {
        let mut ev = std::mem::take(&mut self.ev_buf);
        self.recv.drain_events(&mut ev);
        for d in ev.drain(..) {
            let buf = self.reasm.remove(&d.id.0).unwrap_or_default();
            debug_assert_eq!(buf.len(), d.bytes as usize);
            self.digests
                .push((d.id.0, d.bytes, payload::message_digest(&buf)));
            self.delivered.push((d.id.0, d.bytes));
        }
        self.ev_buf = ev;
    }

    /// Snapshot the run's outcome.
    pub fn outcome(&self) -> WireRxOutcome {
        let mut delivered = self.delivered.clone();
        delivered.sort_unstable();
        WireRxOutcome {
            delivered,
            digests: self.digests.clone(),
            goodput: self.recv.stats.goodput_bytes,
            registry: self.registry.clone(),
        }
    }
}

// ---------------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------------

/// What the wire sender ended a run with.
#[derive(Debug, Clone)]
pub struct WireTxOutcome {
    /// `(bytes, completed_ps)` per schedule entry that finished.
    pub completed: Vec<(u32, u64)>,
    /// Schedule entries that never completed.
    pub unfinished: usize,
    /// Wall-clock time from first submission to last completion.
    pub wall: std::time::Duration,
    /// Timeouts the core fired (diagnostics).
    pub timeouts: u64,
    /// Retransmissions the core sent (diagnostics).
    pub retransmissions: u64,
    /// Telemetry counters recorded by this driver.
    pub registry: Registry,
}

/// The sending wire driver: submits a workload on schedule, sprays
/// messages across pathlet sockets, and retires them on real ACKs.
pub struct WireSender {
    socks: Vec<BatchSocket>,
    peers: Vec<SocketAddrV4>,
    snd: MtpSender,
    clock: MonotonicClock,
    budget: usize,
    records: Vec<(u32, Option<u64>)>,
    index: Vec<(MsgId, usize)>,
    retx_rr: u64,
    out_buf: Vec<Packet>,
    ev_buf: Vec<SenderEvent>,
    scratch: Vec<u8>,
    registry: Registry,
}

impl WireSender {
    /// Bind one socket per peer address and construct the core. `peers`
    /// are the receiver's (or relay's) per-pathlet addresses; their
    /// order defines pathlet ids on the wire.
    pub fn connect(cfg: &IoConfig, peers: Vec<SocketAddrV4>) -> io::Result<WireSender> {
        Ok(WireSender {
            socks: bind_pathlet_sockets(peers.len())?,
            peers,
            snd: MtpSender::new(
                cfg.mtp.clone(),
                SENDER_ADDR,
                EntityId(0),
                GOLDEN_MSG_ID_BASE,
            ),
            clock: MonotonicClock::new(),
            budget: cfg.datagram_budget,
            records: Vec::new(),
            index: Vec::new(),
            retx_rr: 0,
            out_buf: Vec::new(),
            ev_buf: Vec::new(),
            scratch: Vec::new(),
            registry: Registry::new(),
        })
    }

    /// Access the core (for instrumentation and tests).
    pub fn core(&self) -> &MtpSender {
        &self.snd
    }

    /// Submit `workload` on its schedule and run the event loop until
    /// every message completes or the wall deadline passes (an error).
    pub fn run_workload(
        &mut self,
        workload: &GoldenWorkload,
        deadline: Instant,
    ) -> io::Result<WireTxOutcome> {
        let started = Instant::now();
        self.records = workload.msgs.iter().map(|&(_, b)| (b, None)).collect();
        let mut next_sub = 0usize;
        loop {
            let now = self.clock.now();
            // 1. Submissions that have come due.
            while next_sub < workload.msgs.len() && Time::ZERO + workload.msgs[next_sub].0 <= now {
                let (_, bytes) = workload.msgs[next_sub];
                let mut out = std::mem::take(&mut self.out_buf);
                let id = self.snd.send_message(
                    RECEIVER_ADDR,
                    bytes,
                    0,
                    mtp_wire::TrafficClass::BEST_EFFORT,
                    now,
                    &mut out,
                );
                self.index.push((id, next_sub));
                next_sub += 1;
                self.dispatch(&mut out)?;
                self.out_buf = out;
            }
            // 2. Drain ACKs from every socket.
            self.drain_acks()?;
            // 3. Fire the core's timer if its deadline passed.
            let now = self.clock.now();
            if self.snd.poll_at().is_some_and(|t| t <= now) {
                let mut out = std::mem::take(&mut self.out_buf);
                self.snd.on_timer(now, &mut out);
                if !out.is_empty() {
                    // Route this round of repairs onto the next pathlet:
                    // a dead port's packets must not retry the same hole.
                    self.retx_rr += 1;
                }
                self.dispatch(&mut out)?;
                self.out_buf = out;
            }
            self.drain_completions();
            // 4. Done, dead, or sleep until something can happen.
            if next_sub == self.records.len() && self.records.iter().all(|r| r.1.is_some()) {
                break;
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "wire sender: {}/{} messages before deadline",
                        self.records.iter().filter(|r| r.1.is_some()).count(),
                        self.records.len()
                    ),
                ));
            }
            let now = self.clock.now();
            let mut wake = std::time::Duration::from_millis(5);
            if next_sub < workload.msgs.len() {
                wake = wake.min(until(now, Time::ZERO + workload.msgs[next_sub].0));
            }
            if let Some(t) = self.snd.poll_at() {
                wake = wake.min(until(now, t));
            }
            if !wake.is_zero() {
                let socks: Vec<&BatchSocket> = self.socks.iter().collect();
                let _ = wait_readable(&socks, wake)?;
            }
        }
        Ok(WireTxOutcome {
            completed: self
                .records
                .iter()
                .filter_map(|&(b, c)| c.map(|at| (b, at)))
                .collect(),
            unfinished: self.records.iter().filter(|r| r.1.is_none()).count(),
            wall: started.elapsed(),
            timeouts: self.snd.stats.timeouts,
            retransmissions: self.snd.stats.retransmissions,
            registry: self.registry.clone(),
        })
    }

    /// Pick the wire pathlet for a packet: hash the message id over the
    /// pathlets its header does not exclude (exclusions come from the
    /// core's quarantine and window-floor logic and land on real ports
    /// here), rotated by the retransmission round.
    fn route(&self, hdr: &MtpHeader) -> usize {
        let n = self.socks.len();
        let excluded = |p: usize| {
            hdr.path_exclude
                .iter()
                .any(|e| e.path == PathletId(p as u16))
        };
        let live: Vec<usize> = (0..n).filter(|&p| !excluded(p)).collect();
        if live.is_empty() {
            // Everything excluded: sending somewhere beats deadlock.
            return ((hdr.msg_id.0 + self.retx_rr) % n as u64) as usize;
        }
        live[((hdr.msg_id.0 + self.retx_rr) % live.len() as u64) as usize]
    }

    /// Seal, coalesce, and transmit a batch of core-emitted packets.
    fn dispatch(&mut self, pkts: &mut Vec<Packet>) -> io::Result<()> {
        if pkts.is_empty() {
            return Ok(());
        }
        // Closed datagrams plus one open builder per pathlet.
        let n = self.socks.len();
        let mut closed: Vec<Vec<Vec<u8>>> = vec![Vec::new(); n];
        let mut open: Vec<Vec<u8>> = vec![Vec::new(); n];
        let mut frames = 0u64;
        for pkt in pkts.drain(..) {
            let Headers::Mtp(hdr) = pkt.headers else {
                continue;
            };
            let p = self.route(&hdr);
            let len = hdr.pkt_len as usize;
            if self.scratch.len() < len {
                self.scratch.resize(len, 0);
            }
            payload::fill(hdr.msg_id, hdr.pkt_offset, &mut self.scratch[..len]);
            let (head, tail) = (&mut open[p], &self.scratch[..len]);
            match append_frame(head, self.budget, &hdr, tail) {
                Ok(true) => {}
                Ok(false) => {
                    closed[p].push(std::mem::take(head));
                    append_frame(&mut open[p], self.budget, &hdr, tail).map_err(invalid)?;
                }
                Err(e) => return Err(invalid(e)),
            }
            frames += 1;
            mtp_sim::pool::recycle_header(hdr);
        }
        self.registry.count(Metric::WireFramesTx, frames);
        for p in 0..n {
            if !open[p].is_empty() {
                closed[p].push(std::mem::take(&mut open[p]));
            }
            if closed[p].is_empty() {
                continue;
            }
            let sends: Vec<(SocketAddrV4, &[u8])> = closed[p]
                .iter()
                .map(|d| (self.peers[p], d.as_slice()))
                .collect();
            let report = self.socks[p].send_batch(&sends)?;
            self.registry
                .count(Metric::WireDatagramsTx, report.datagrams as u64);
            self.registry
                .count(Metric::WireSendBatches, report.syscalls as u64);
        }
        Ok(())
    }

    fn drain_acks(&mut self) -> io::Result<()> {
        let mut dgrams = Vec::new();
        for p in 0..self.socks.len() {
            dgrams.clear();
            let report = self.socks[p].recv_batch(self.budget + 64, &mut dgrams)?;
            self.registry
                .count(Metric::WireDatagramsRx, report.datagrams as u64);
            self.registry
                .count(Metric::WireRecvBatches, report.syscalls as u64);
            for (bytes, _src) in dgrams.drain(..) {
                for frame in FrameIter::new(&bytes) {
                    let frame = match frame {
                        Ok(f) => f,
                        Err(_) => {
                            self.registry.count(Metric::WireParseErrors, 1);
                            break;
                        }
                    };
                    let (hdr, _, _) = match MtpHeader::parse_sealed(frame) {
                        Ok(v) => v,
                        Err(_) => {
                            self.registry.count(Metric::WireParseErrors, 1);
                            continue;
                        }
                    };
                    self.registry.count(Metric::WireFramesRx, 1);
                    let now = self.clock.now();
                    match hdr.pkt_type {
                        PktType::Ack | PktType::Nack => {
                            let mut out = std::mem::take(&mut self.out_buf);
                            self.snd.on_ack(now, &hdr, &mut out);
                            self.dispatch(&mut out)?;
                            self.out_buf = out;
                        }
                        PktType::Control => self.snd.on_control(now, &hdr),
                        PktType::Data => {}
                    }
                }
            }
        }
        Ok(())
    }

    fn drain_completions(&mut self) {
        let mut ev = std::mem::take(&mut self.ev_buf);
        self.snd.drain_events(&mut ev);
        for e in ev.drain(..) {
            let SenderEvent::MsgCompleted { id, completed, .. } = e;
            if let Ok(at) = self.index.binary_search_by_key(&id.0, |&(m, _)| m.0) {
                let idx = self.index[at].1;
                self.records[idx].1 = Some(completed.0);
            }
        }
        self.ev_buf = ev;
    }
}

// ---------------------------------------------------------------------------
// Combined outcome
// ---------------------------------------------------------------------------

/// Both ends of a wire run, assembled into the same [`Ledger`] shape the
/// simulator produces — so the exactly-once assertion is literally the
/// same code in both worlds.
#[derive(Debug, Clone)]
pub struct WireOutcome {
    /// The exactly-once ledger.
    pub ledger: Ledger,
    /// Combined content digest of everything delivered.
    pub content_digest: u64,
    /// Sender-side outcome.
    pub tx: WireTxOutcome,
    /// Receiver-side outcome.
    pub rx: WireRxOutcome,
    /// Relay fault statistics, when a relay was interposed.
    pub relay: Option<crate::relay::RelayStats>,
}

/// Run `workload` over real loopback sockets end to end: bind a
/// receiver, optionally interpose a [`LossyRelay`](crate::relay::LossyRelay),
/// run the receiver on its own thread and the sender on this one, and
/// assemble the combined outcome. `wall_budget` bounds the whole run.
pub fn run_wire_golden(
    cfg: &IoConfig,
    workload: &GoldenWorkload,
    relay: Option<crate::relay::RelayConfig>,
    wall_budget: std::time::Duration,
) -> io::Result<WireOutcome> {
    let deadline = Instant::now() + wall_budget;
    let mut rx = WireReceiver::bind(cfg)?;
    let rx_addrs = rx.pathlet_addrs()?;
    let relay = match relay {
        Some(rcfg) => Some(crate::relay::LossyRelay::start(rcfg, &rx_addrs)?),
        None => None,
    };
    let peers = match &relay {
        Some(r) => r.addrs().to_vec(),
        None => rx_addrs,
    };
    let expected = workload.msgs.len();
    let sender_done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let done_rx = std::sync::Arc::clone(&sender_done);
    let rx_thread = std::thread::Builder::new()
        .name("mtp-io-rx".into())
        .spawn(move || {
            let res = rx.run_until(expected, deadline, &done_rx);
            (rx, res)
        })?;
    let mut tx = WireSender::connect(cfg, peers)?;
    let tx_out = tx.run_workload(workload, deadline);
    sender_done.store(true, std::sync::atomic::Ordering::Release);
    let (rx, rx_res) = rx_thread
        .join()
        .map_err(|_| io::Error::other("wire receiver thread panicked"))?;
    let relay_stats = relay.map(crate::relay::LossyRelay::stop);
    let tx_out = tx_out?;
    rx_res?;
    let mut out = WireOutcome::assemble(tx_out, rx.outcome());
    out.relay = relay_stats;
    Ok(out)
}

impl WireOutcome {
    /// Assemble the two halves.
    pub fn assemble(tx: WireTxOutcome, rx: WireRxOutcome) -> WireOutcome {
        let ledger = Ledger {
            delivered: rx.delivered.clone(),
            completed: tx.completed.clone(),
            unfinished: tx.unfinished,
            goodput: rx.goodput,
        };
        let content_digest = rx.content_digest();
        WireOutcome {
            ledger,
            content_digest,
            tx,
            rx,
            relay: None,
        }
    }
}
