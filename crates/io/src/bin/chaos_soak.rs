//! The chaos soak as a bench: seeded session-lifecycle fault matrix
//! over real loopback sockets, recorded to `results/BENCH_chaos.json`.
//!
//! Every scenario × seed run must end in exactly-once delivery or a
//! typed session failure — the process exits nonzero on any run that
//! hung, leaked a session, busted its reassembly cap, or lost data.
//!
//! Where UDP loopback is unavailable (sandboxed CI), the record is
//! written with `"skipped": true` and the process exits 0 after a
//! visible NOTICE — a skip must never look like a pass.

use std::path::{Path, PathBuf};

use serde::Serialize;

use mtp_io::{run_soak_suite, SoakRun};

#[derive(Debug, Serialize)]
struct BenchChaosRecord {
    bench: &'static str,
    skipped: bool,
    skip_reason: Option<&'static str>,
    seeds: Vec<u64>,
    pass: bool,
    runs: Vec<SoakRun>,
}

fn results_dir() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("results").is_dir() || dir.join("Cargo.toml").is_file() {
            let r = dir.join("results");
            std::fs::create_dir_all(&r).expect("create results dir");
            return r;
        }
        if !dir.pop() {
            let r = Path::new("results").to_path_buf();
            std::fs::create_dir_all(&r).expect("create results dir");
            return r;
        }
    }
}

fn write_record(record: &BenchChaosRecord) -> PathBuf {
    let path = results_dir().join("BENCH_chaos.json");
    let json = serde_json::to_string_pretty(record).expect("serializable record");
    std::fs::write(&path, json).expect("write results file");
    path
}

fn main() {
    let seeds = vec![11u64, 42, 1337];

    if !mtp_io::loopback_available() {
        eprintln!("NOTICE: UDP loopback unavailable; writing skipped BENCH_chaos.json");
        let path = write_record(&BenchChaosRecord {
            bench: "chaos",
            skipped: true,
            skip_reason: Some("UDP loopback unavailable in this environment"),
            seeds,
            pass: false,
            runs: Vec::new(),
        });
        println!("wrote {}", path.display());
        return;
    }

    let outcome = run_soak_suite(&seeds, std::time::Duration::from_secs(20)).expect("soak suite");
    for run in &outcome.runs {
        println!(
            "  {:18} seed {:>5}: {:24} {}/{} delivered, hs {} rounds, fin {} rounds, \
             {} retx, peak reasm {}B/{}B, {} leaked — {}",
            run.scenario,
            run.seed,
            run.outcome,
            run.delivered,
            run.submitted,
            run.handshake_rounds,
            run.close_rounds,
            run.retransmissions,
            run.peak_reasm_bytes,
            run.reasm_cap,
            run.sessions_leaked,
            if run.pass { "ok" } else { "FAIL" },
        );
    }
    let record = BenchChaosRecord {
        bench: "chaos",
        skipped: false,
        skip_reason: None,
        seeds,
        pass: outcome.pass,
        runs: outcome.runs,
    };
    let path = write_record(&record);
    println!("wrote {}", path.display());
    if !record.pass {
        eprintln!("FAIL: at least one chaos run ended outside the allowed terminal states");
        std::process::exit(1);
    }
    println!("every chaos run ended in exactly-once delivery or a typed session error");
}
