//! Probe whether this environment can run UDP loopback traffic.
//!
//! CI's `wire-interop` job runs this first: exit 0 means the wire tests
//! and bench are expected to pass, nonzero means the environment cannot
//! exchange loopback datagrams and the job must skip **visibly** (a
//! workflow warning), never silently pass.

fn main() {
    if mtp_io::loopback_available() {
        println!("loopback-ok");
    } else {
        eprintln!("NOTICE: UDP loopback unavailable in this environment; wire tests cannot run");
        std::process::exit(1);
    }
}
