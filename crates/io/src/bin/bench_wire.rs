//! Loopback wire bench: the golden workload over real UDP sockets.
//!
//! Runs the interop workload three ways — simulator reference, clean
//! loopback wire, and wire through the lossy relay — and writes
//! `results/BENCH_wire.json` with wall times, syscall batching factors,
//! and the digest comparisons. The digests are the headline: the wire
//! runs must reproduce the simulator's delivered content byte-for-byte,
//! or this binary exits nonzero.
//!
//! Where UDP loopback is unavailable (sandboxed CI), the record is
//! written with `"skipped": true` and the process exits 0 after a
//! visible NOTICE — a skip must never look like a pass.

use std::path::{Path, PathBuf};

use serde::Serialize;

use mtp_io::{run_sim_golden, run_wire_golden, GoldenWorkload, IoConfig, RelayConfig, WireOutcome};
use mtp_telemetry::Metric;

#[derive(Debug, Serialize)]
struct WireRunRecord {
    digest: String,
    digest_matches_sim: bool,
    wall_ms: f64,
    goodput_mbps: f64,
    datagrams_tx: u64,
    frames_tx: u64,
    frames_per_datagram: f64,
    send_batches: u64,
    datagrams_per_send_syscall: f64,
    timeouts: u64,
    retransmissions: u64,
    /// HELLO rounds the handshake took (1 = first try answered).
    handshake_rounds: u32,
    /// FIN rounds the graceful close took.
    close_rounds: u32,
    /// Packets emitted per repair (RTO) round, in round order: a long
    /// tail here means loss recovery needed many rounds, not one burst.
    retx_round_hist: Vec<u32>,
    relay_dropped: u64,
    relay_duplicated: u64,
    relay_reordered: u64,
}

#[derive(Debug, Serialize)]
struct BenchWireRecord {
    bench: &'static str,
    skipped: bool,
    skip_reason: Option<&'static str>,
    seed: u64,
    messages: usize,
    total_bytes: u64,
    pathlets: usize,
    sim_digest: String,
    sim_elapsed_ms: f64,
    clean: Option<WireRunRecord>,
    lossy: Option<WireRunRecord>,
}

fn results_dir() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("results").is_dir() || dir.join("Cargo.toml").is_file() {
            let r = dir.join("results");
            std::fs::create_dir_all(&r).expect("create results dir");
            return r;
        }
        if !dir.pop() {
            let r = Path::new("results").to_path_buf();
            std::fs::create_dir_all(&r).expect("create results dir");
            return r;
        }
    }
}

fn write_record(record: &BenchWireRecord) -> PathBuf {
    let path = results_dir().join("BENCH_wire.json");
    let json = serde_json::to_string_pretty(record).expect("serializable record");
    std::fs::write(&path, json).expect("write results file");
    path
}

fn run_record(out: &WireOutcome, sim_digest: u64, total_bytes: u64) -> WireRunRecord {
    let reg = &out.rx.registry;
    let tx_reg = &out.tx.registry;
    let wall_ms = out.tx.wall.as_secs_f64() * 1e3;
    let datagrams_tx = tx_reg.get(Metric::WireDatagramsTx);
    let frames_tx = tx_reg.get(Metric::WireFramesTx);
    let send_batches = tx_reg.get(Metric::WireSendBatches);
    let _ = reg;
    WireRunRecord {
        digest: format!("{:#018x}", out.content_digest),
        digest_matches_sim: out.content_digest == sim_digest,
        wall_ms,
        goodput_mbps: total_bytes as f64 * 8.0 / (out.tx.wall.as_secs_f64().max(1e-9) * 1e6),
        datagrams_tx,
        frames_tx,
        frames_per_datagram: frames_tx as f64 / datagrams_tx.max(1) as f64,
        send_batches,
        datagrams_per_send_syscall: datagrams_tx as f64 / send_batches.max(1) as f64,
        timeouts: out.tx.timeouts,
        retransmissions: out.tx.retransmissions,
        handshake_rounds: out.tx.handshake_rounds,
        close_rounds: out.tx.close_rounds,
        retx_round_hist: out.tx.retx_round_hist.clone(),
        relay_dropped: out.relay.map_or(0, |r| r.dropped),
        relay_duplicated: out.relay.map_or(0, |r| r.duplicated),
        relay_reordered: out.relay.map_or(0, |r| r.reordered),
    }
}

fn main() {
    let seed = 42;
    let workload = GoldenWorkload::generate(seed, 60, 1_000, 64_000);
    let total_bytes = workload.total_bytes();
    let cfg = IoConfig::default();
    let budget = std::time::Duration::from_secs(60);

    println!(
        "bench_wire: {} messages, {} total bytes, {} pathlets",
        workload.msgs.len(),
        total_bytes,
        cfg.pathlets
    );

    let sim = run_sim_golden(&workload);
    println!(
        "  sim      : digest {:#018x}, {:.3} ms virtual",
        sim.content_digest,
        sim.sim_elapsed.0 as f64 / 1e9
    );

    if !mtp_io::loopback_available() {
        eprintln!("NOTICE: UDP loopback unavailable; writing skipped BENCH_wire.json");
        let path = write_record(&BenchWireRecord {
            bench: "wire",
            skipped: true,
            skip_reason: Some("UDP loopback unavailable in this environment"),
            seed,
            messages: workload.msgs.len(),
            total_bytes,
            pathlets: cfg.pathlets,
            sim_digest: format!("{:#018x}", sim.content_digest),
            sim_elapsed_ms: sim.sim_elapsed.0 as f64 / 1e9,
            clean: None,
            lossy: None,
        });
        println!("wrote {}", path.display());
        return;
    }

    let clean = run_wire_golden(&cfg, &workload, None, budget).expect("clean wire run");
    clean.ledger.assert_exactly_once("bench wire clean");
    println!(
        "  wire     : digest {:#018x}, {:.1} ms wall, {:.1} frames/datagram, {:.1} datagrams/syscall",
        clean.content_digest,
        clean.tx.wall.as_secs_f64() * 1e3,
        clean.tx.registry.get(Metric::WireFramesTx) as f64
            / clean.tx.registry.get(Metric::WireDatagramsTx).max(1) as f64,
        clean.tx.registry.get(Metric::WireDatagramsTx) as f64
            / clean.tx.registry.get(Metric::WireSendBatches).max(1) as f64,
    );

    let lossy = run_wire_golden(&cfg, &workload, Some(RelayConfig::lossy(seed)), budget)
        .expect("lossy wire run");
    lossy.ledger.assert_exactly_once("bench wire lossy");
    let relay = lossy.relay.unwrap_or_default();
    println!(
        "  wire+loss: digest {:#018x}, {:.1} ms wall, {} dropped / {} dup / {} reordered, {} retx over {} rounds, hs {} fin {}",
        lossy.content_digest,
        lossy.tx.wall.as_secs_f64() * 1e3,
        relay.dropped,
        relay.duplicated,
        relay.reordered,
        lossy.tx.retransmissions,
        lossy.tx.retx_round_hist.len(),
        lossy.tx.handshake_rounds,
        lossy.tx.close_rounds,
    );

    let record = BenchWireRecord {
        bench: "wire",
        skipped: false,
        skip_reason: None,
        seed,
        messages: workload.msgs.len(),
        total_bytes,
        pathlets: cfg.pathlets,
        sim_digest: format!("{:#018x}", sim.content_digest),
        sim_elapsed_ms: sim.sim_elapsed.0 as f64 / 1e9,
        clean: Some(run_record(&clean, sim.content_digest, total_bytes)),
        lossy: Some(run_record(&lossy, sim.content_digest, total_bytes)),
    };
    let ok = record.clean.as_ref().is_some_and(|r| r.digest_matches_sim)
        && record.lossy.as_ref().is_some_and(|r| r.digest_matches_sim);
    let path = write_record(&record);
    println!("wrote {}", path.display());
    if !ok {
        eprintln!("FAIL: wire content digest disagrees with simulator reference");
        std::process::exit(1);
    }
    println!("digests match the simulator reference on both wire runs");
}
