//! # mtp-io — the real-wire UDP backend
//!
//! Everything protocol-shaped in this workspace lives in the sans-IO
//! cores: [`mtp_core::MtpSender`] and [`mtp_core::MtpReceiver`] consume
//! headers and a clock, and push packets into caller-owned buffers. The
//! simulator drives them through node adapters; this crate drives the
//! *same* state machines over actual UDP sockets on a real kernel. The
//! cores never learn which world they run in — that is the whole point,
//! and the interop test in `tests/interop.rs` proves it by replaying a
//! sim golden workload over 127.0.0.1 and demanding byte-identical
//! delivered content.
//!
//! ## Layout
//!
//! * [`clock`] — monotonic wall clock mapped onto the simulator's
//!   picosecond [`mtp_sim::time::Time`], plus a manual clock for tests.
//! * [`payload`] — deterministic position-independent payload synthesis
//!   and FNV digests, so both worlds can agree on message *content*
//!   without shipping golden byte blobs around.
//! * [`frame`] — datagram coalescing: many sealed MTP frames per UDP
//!   datagram (GSO/GRO-style, as s2n-quic's platform layer does with
//!   segments), with a hard budget guard at seal time.
//! * [`sys`] — the only unsafe module: `sendmmsg`/`recvmmsg`/`poll`
//!   FFI on Linux, feature-detected at runtime with a portable
//!   `send_to`/`recv_from` fallback.
//! * [`socket`] — nonblocking batch sockets and multi-socket readiness
//!   waiting built on [`sys`].
//! * [`driver`] — [`WireSender`]/[`WireReceiver`]: the event loops that
//!   own sockets and timers and feed the sans-IO cores. One socket per
//!   pathlet; pathlet ids map to distinct loopback ports.
//! * [`relay`] — an in-process lossy UDP relay (seeded drop, duplicate,
//!   reorder, blackhole) for exercising loss on real sockets.
//! * [`golden`] — the shared golden workload and its simulator run,
//!   the reference every wire run is compared against.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod driver;
pub mod frame;
pub mod golden;
pub mod payload;
pub mod relay;
pub mod socket;
pub mod sys;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use driver::{
    run_wire_golden, IoConfig, WireOutcome, WireReceiver, WireRxOutcome, WireSender, WireTxOutcome,
};
pub use frame::{FrameError, FrameIter, DEFAULT_DATAGRAM_BUDGET};
pub use golden::{run_sim_golden, GoldenWorkload, SimOutcome, GOLDEN_MSG_ID_BASE};
pub use relay::{LossyRelay, RelayConfig, RelayStats};
pub use socket::{loopback_available, BatchSocket};
