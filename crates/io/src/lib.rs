//! # mtp-io — the real-wire UDP backend
//!
//! Everything protocol-shaped in this workspace lives in the sans-IO
//! cores: [`mtp_core::MtpSender`] and [`mtp_core::MtpReceiver`] consume
//! headers and a clock, and push packets into caller-owned buffers. The
//! simulator drives them through node adapters; this crate drives the
//! *same* state machines over actual UDP sockets on a real kernel. The
//! cores never learn which world they run in — that is the whole point,
//! and the interop test in `tests/interop.rs` proves it by replaying a
//! sim golden workload over 127.0.0.1 and demanding byte-identical
//! delivered content.
//!
//! ## Layout
//!
//! * [`clock`] — monotonic wall clock mapped onto the simulator's
//!   picosecond [`mtp_sim::time::Time`], plus a manual clock for tests.
//! * [`payload`] — deterministic position-independent payload synthesis
//!   and FNV digests, so both worlds can agree on message *content*
//!   without shipping golden byte blobs around.
//! * [`frame`] — datagram coalescing: many sealed MTP frames per UDP
//!   datagram (GSO/GRO-style, as s2n-quic's platform layer does with
//!   segments), with a hard budget guard at seal time.
//! * [`sys`] — the only unsafe module: `sendmmsg`/`recvmmsg`/`poll`
//!   FFI on Linux, feature-detected at runtime with a portable
//!   `send_to`/`recv_from` fallback.
//! * [`socket`] — nonblocking batch sockets and multi-socket readiness
//!   waiting built on [`sys`].
//! * [`session`] — the session lifecycle: [`SenderSession`]/[`Listener`]
//!   with a versioned HELLO/HELLO-ACK handshake (which carries the
//!   per-pathlet port map), keepalive liveness with typed peer-death
//!   errors, FIN/FIN-ACK graceful close with TIME-WAIT linger, and
//!   bounded admission (inflight/buffered/reassembly caps).
//! * [`driver`] — the golden workload harness: replays a sim workload
//!   through the session transport and assembles the exactly-once
//!   ledger. One socket per pathlet; pathlet ids map to distinct
//!   loopback ports.
//! * [`relay`] — an in-process lossy UDP relay (seeded drop, duplicate,
//!   reorder, blackhole, lane flap, control-plane faults) with a
//!   NAT-style HELLO-ACK port rewrite, for exercising loss on real
//!   sockets.
//! * [`golden`] — the shared golden workload and its simulator run,
//!   the reference every wire run is compared against.
//! * [`soak`] — the seeded chaos-soak scenarios: handshake loss, FIN
//!   loss, blackhole flap, peer kill/restart — each must end in
//!   exactly-once delivery or a typed session error.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod driver;
pub mod frame;
pub mod golden;
pub mod payload;
pub mod relay;
pub mod session;
pub mod soak;
pub mod socket;
pub mod sys;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use driver::{
    golden_session_config, run_wire_golden, IoConfig, WireOutcome, WireRxOutcome, WireTxOutcome,
};
pub use frame::{
    append_ctrl_frame, append_frame, FrameError, FrameIter, FrameKind, DEFAULT_DATAGRAM_BUDGET,
    FRAME_OVERHEAD,
};
pub use golden::{run_sim_golden, GoldenWorkload, SimOutcome, GOLDEN_MSG_ID_BASE};
pub use relay::{ChaosConfig, LossyRelay, RelayConfig, RelayStats};
pub use session::{
    Listener, PayloadSource, SenderSession, SessionCaps, SessionConfig, SessionError,
    SessionReport, SessionState,
};
pub use soak::{run_soak_suite, ChaosScenario, SoakOutcome, SoakRun};
pub use socket::{loopback_available, BatchSocket};
