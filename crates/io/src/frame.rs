//! Datagram framing: many sealed frames per UDP datagram.
//!
//! A UDP datagram is an expensive unit — every one costs a syscall (or a
//! slot in a `sendmmsg` batch) and a trip through the kernel's socket
//! machinery. MTP's control traffic is small (a sealed ACK is well under
//! 200 bytes), so the driver coalesces: a datagram carries a sequence of
//! length-prefixed frames, each tagged with a one-byte *kind* so session
//! control and MTP data can share a wire without probabilistic format
//! sniffing. This mirrors what s2n-quic's platform layer does with GSO
//! segments, but in userspace and explicit on the wire:
//!
//! ```text
//! datagram := frame*
//! frame    := u16_be(len) ‖ kind(u8) ‖ body
//! kind     := 0 (Mtp: sealed MTP header ‖ payload[pkt_len])
//!           | 1 (Ctrl: sealed session-control frame)
//! ```
//!
//! where `len` counts the kind byte plus body (not the prefix itself).
//! The receiver splits with [`FrameIter`]; a torn tail — a prefix
//! promising more bytes than the datagram holds — is a framing error,
//! never a silent truncation. An *unknown* kind is a per-frame error but
//! does **not** poison the rest of the datagram: the length prefix still
//! frames it, so iteration steps over it (how a v1 node coexists with a
//! future kind).
//!
//! [`append_frame`] is also where the **MTU guard** lives: a frame whose
//! sealed header plus payload cannot fit a datagram budget *at all* is a
//! protocol bug (the header grew past what `MtpConfig::mtu_payload`
//! left room for), and is reported as [`FrameError::FrameTooBig`] at
//! seal time rather than surfacing as an `EMSGSIZE` from the kernel.

use mtp_wire::{MtpHeader, SessionCtrl, WireError};

/// Length of the per-frame big-endian length prefix.
pub const FRAME_PREFIX_LEN: usize = 2;

/// Length of the per-frame kind byte.
pub const FRAME_KIND_LEN: usize = 1;

/// Total per-frame overhead: length prefix plus kind byte.
pub const FRAME_OVERHEAD: usize = FRAME_PREFIX_LEN + FRAME_KIND_LEN;

/// Default per-datagram byte budget.
///
/// Loopback interfaces run an MTU of 65536, but 9000 (jumbo-frame sized)
/// keeps the test traffic honest about what a real NIC path would carry
/// and still coalesces six 1460-byte data packets per datagram.
pub const DEFAULT_DATAGRAM_BUDGET: usize = 9000;

/// What a frame's body holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FrameKind {
    /// A sealed MTP header followed by that packet's payload bytes.
    Mtp = 0,
    /// A sealed session-control frame ([`SessionCtrl`]).
    Ctrl = 1,
}

/// Why a frame could not be appended to a datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The frame exceeds the datagram budget even in an empty datagram.
    /// This is the seal-time MTU guard firing: the header's variable
    /// sections plus payload outgrew the wire. Carries (frame, budget).
    FrameTooBig {
        /// Total encoded frame size, prefix and kind included.
        frame: usize,
        /// The per-datagram budget it had to fit.
        budget: usize,
    },
    /// The sealed header failed to emit.
    Wire(WireError),
    /// A length prefix promised more bytes than the datagram holds.
    TornFrame {
        /// Bytes the prefix promised.
        promised: usize,
        /// Bytes remaining in the datagram.
        available: usize,
    },
    /// A trailing fragment too short to hold a length prefix and kind.
    TornPrefix,
    /// A frame carried a kind byte this node does not speak. The frame
    /// is skippable (its length is known); iteration continues after it.
    UnknownKind(u8),
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::FrameTooBig { frame, budget } => {
                write!(f, "frame of {frame} bytes exceeds datagram budget {budget}")
            }
            FrameError::Wire(e) => write!(f, "sealed emit failed: {e:?}"),
            FrameError::TornFrame {
                promised,
                available,
            } => write!(
                f,
                "torn frame: prefix promised {promised} bytes, {available} remain"
            ),
            FrameError::TornPrefix => write!(f, "torn frame length prefix"),
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> FrameError {
        FrameError::Wire(e)
    }
}

/// Append one MTP `header ‖ payload` frame to a datagram under
/// construction.
///
/// Returns `Ok(true)` if appended, `Ok(false)` if the frame is valid but
/// does not fit the *remaining* budget (flush the datagram and retry),
/// and `Err` if the frame could never fit (the MTU guard) or the header
/// would not seal.
pub fn append_frame(
    dgram: &mut Vec<u8>,
    budget: usize,
    hdr: &MtpHeader,
    payload: &[u8],
) -> Result<bool, FrameError> {
    debug_assert_eq!(
        hdr.pkt_len as usize,
        payload.len(),
        "pkt_len/payload mismatch"
    );
    let sealed = hdr.sealed_wire_len();
    let frame = FRAME_OVERHEAD + sealed + payload.len();
    if frame > budget {
        return Err(FrameError::FrameTooBig { frame, budget });
    }
    if dgram.len() + frame > budget {
        return Ok(false);
    }
    let body = FRAME_KIND_LEN + sealed + payload.len();
    dgram.extend_from_slice(&(body as u16).to_be_bytes());
    dgram.push(FrameKind::Mtp as u8);
    let at = dgram.len();
    dgram.resize(at + sealed, 0);
    hdr.emit_sealed(&mut dgram[at..])?;
    dgram.extend_from_slice(payload);
    Ok(true)
}

/// Append one sealed session-control frame to a datagram under
/// construction. Same contract as [`append_frame`].
pub fn append_ctrl_frame(
    dgram: &mut Vec<u8>,
    budget: usize,
    ctrl: &SessionCtrl,
) -> Result<bool, FrameError> {
    let sealed = ctrl.wire_len();
    let frame = FRAME_OVERHEAD + sealed;
    if frame > budget {
        return Err(FrameError::FrameTooBig { frame, budget });
    }
    if dgram.len() + frame > budget {
        return Ok(false);
    }
    dgram.extend_from_slice(&((FRAME_KIND_LEN + sealed) as u16).to_be_bytes());
    dgram.push(FrameKind::Ctrl as u8);
    let at = dgram.len();
    dgram.resize(at + sealed, 0);
    ctrl.emit_sealed(&mut dgram[at..])?;
    Ok(true)
}

/// Iterator over the frames of a received datagram.
///
/// Yields `(kind, body)` pairs; an MTP body goes to
/// [`MtpHeader::parse_sealed`] (which returns how many bytes the sealed
/// header consumed — the rest is payload), a Ctrl body to
/// [`SessionCtrl::parse_sealed`]. Torn frames terminate iteration;
/// an [`FrameError::UnknownKind`] frame is reported but stepped over.
pub struct FrameIter<'a> {
    rest: &'a [u8],
}

impl<'a> FrameIter<'a> {
    /// Split `datagram` into frames.
    pub fn new(datagram: &'a [u8]) -> FrameIter<'a> {
        FrameIter { rest: datagram }
    }
}

impl<'a> Iterator for FrameIter<'a> {
    type Item = Result<(FrameKind, &'a [u8]), FrameError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.rest.is_empty() {
            return None;
        }
        if self.rest.len() < FRAME_OVERHEAD {
            self.rest = &[];
            return Some(Err(FrameError::TornPrefix));
        }
        let body = u16::from_be_bytes([self.rest[0], self.rest[1]]) as usize;
        let rest = &self.rest[FRAME_PREFIX_LEN..];
        if body > rest.len() || body < FRAME_KIND_LEN {
            self.rest = &[];
            return Some(Err(FrameError::TornFrame {
                promised: body,
                available: rest.len(),
            }));
        }
        let (frame, tail) = rest.split_at(body);
        self.rest = tail;
        let kind = match frame[0] {
            0 => FrameKind::Mtp,
            1 => FrameKind::Ctrl,
            // The frame is well-delimited, just unintelligible: report
            // it and keep walking the datagram.
            other => return Some(Err(FrameError::UnknownKind(other))),
        };
        Some(Ok((kind, &frame[FRAME_KIND_LEN..])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_wire::{CtrlKind, MsgId, PktNum, PktType};

    fn data_hdr(msg: u64, pkt: u32, len: u16) -> MtpHeader {
        MtpHeader {
            pkt_type: PktType::Data,
            msg_id: MsgId(msg),
            msg_len_pkts: 4,
            msg_len_bytes: 4 * 1460,
            pkt_num: PktNum(pkt),
            pkt_len: len,
            pkt_offset: pkt * 1460,
            ..MtpHeader::default()
        }
    }

    #[test]
    fn roundtrip_coalesced_frames() {
        let mut dgram = Vec::new();
        let payloads: Vec<Vec<u8>> = (0..3u32).map(|i| vec![i as u8 + 1; 100]).collect();
        for (i, p) in payloads.iter().enumerate() {
            let hdr = data_hdr(7, i as u32, p.len() as u16);
            assert!(append_frame(&mut dgram, DEFAULT_DATAGRAM_BUDGET, &hdr, p).unwrap());
        }
        let mut seen = 0;
        for frame in FrameIter::new(&dgram) {
            let (kind, body) = frame.unwrap();
            assert_eq!(kind, FrameKind::Mtp);
            let (hdr, used, payload_ok) = MtpHeader::parse_sealed(body).unwrap();
            assert!(payload_ok);
            assert_eq!(hdr.msg_id, MsgId(7));
            assert_eq!(hdr.pkt_num, PktNum(seen));
            assert_eq!(&body[used..], &payloads[seen as usize][..]);
            seen += 1;
        }
        assert_eq!(seen, 3);
    }

    #[test]
    fn ctrl_and_data_share_a_datagram() {
        let mut dgram = Vec::new();
        let mut ctrl = SessionCtrl::new(CtrlKind::HelloAck, 11, 22);
        ctrl.ports = vec![1000, 1001];
        assert!(append_ctrl_frame(&mut dgram, DEFAULT_DATAGRAM_BUDGET, &ctrl).unwrap());
        let hdr = data_hdr(7, 0, 64);
        assert!(append_frame(&mut dgram, DEFAULT_DATAGRAM_BUDGET, &hdr, &[9u8; 64]).unwrap());

        let frames: Vec<(FrameKind, &[u8])> = FrameIter::new(&dgram)
            .collect::<Result<_, _>>()
            .expect("clean iteration");
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].0, FrameKind::Ctrl);
        let (back, used) = SessionCtrl::parse_sealed(frames[0].1).unwrap();
        assert_eq!(back, ctrl);
        assert_eq!(used, frames[0].1.len());
        assert_eq!(frames[1].0, FrameKind::Mtp);
        let (back, _, _) = MtpHeader::parse_sealed(frames[1].1).unwrap();
        assert_eq!(back.msg_id, MsgId(7));
    }

    #[test]
    fn unknown_kind_is_skipped_not_fatal() {
        let mut dgram = Vec::new();
        let hdr = data_hdr(5, 0, 8);
        append_frame(&mut dgram, DEFAULT_DATAGRAM_BUDGET, &hdr, &[1; 8]).unwrap();
        // Splice in a well-framed body with a kind from the future...
        let alien = [0xEE, 0xAA, 0xBB];
        dgram.extend_from_slice(&(alien.len() as u16 + 1).to_be_bytes());
        dgram.push(7);
        dgram.extend_from_slice(&alien);
        // ...followed by another valid frame.
        append_frame(&mut dgram, DEFAULT_DATAGRAM_BUDGET, &hdr, &[1; 8]).unwrap();

        let frames: Vec<_> = FrameIter::new(&dgram).collect();
        assert_eq!(frames.len(), 3);
        assert!(matches!(frames[0], Ok((FrameKind::Mtp, _))));
        assert!(matches!(frames[1], Err(FrameError::UnknownKind(7))));
        assert!(
            matches!(frames[2], Ok((FrameKind::Mtp, _))),
            "iteration must continue past an unknown kind"
        );
    }

    #[test]
    fn full_datagram_defers_not_errors() {
        let mut dgram = Vec::new();
        let payload = vec![0u8; 1460];
        let hdr = data_hdr(1, 0, 1460);
        let frame = FRAME_OVERHEAD + hdr.sealed_wire_len() + payload.len();
        // Budget fits exactly one frame: second append defers.
        let budget = frame + frame / 2;
        assert!(append_frame(&mut dgram, budget, &hdr, &payload).unwrap());
        assert!(!append_frame(&mut dgram, budget, &hdr, &payload).unwrap());
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut dgram = Vec::new();
        let payload = vec![0u8; 1460];
        let hdr = data_hdr(1, 0, 1460);
        let err = append_frame(&mut dgram, 256, &hdr, &payload).unwrap_err();
        assert!(matches!(err, FrameError::FrameTooBig { budget: 256, .. }));
        assert!(
            dgram.is_empty(),
            "failed append must not leave partial bytes"
        );

        let mut ctrl = SessionCtrl::new(CtrlKind::Hello, 1, 0);
        ctrl.ports = vec![0; 100];
        let err = append_ctrl_frame(&mut dgram, 64, &ctrl).unwrap_err();
        assert!(matches!(err, FrameError::FrameTooBig { budget: 64, .. }));
        assert!(dgram.is_empty());
    }

    #[test]
    fn torn_tail_is_an_error() {
        let mut dgram = Vec::new();
        let hdr = data_hdr(9, 0, 8);
        append_frame(&mut dgram, DEFAULT_DATAGRAM_BUDGET, &hdr, &[1; 8]).unwrap();
        // Chop the final payload byte off: the last frame is torn.
        dgram.pop();
        let frames: Vec<_> = FrameIter::new(&dgram).collect();
        assert_eq!(frames.len(), 1);
        assert!(matches!(frames[0], Err(FrameError::TornFrame { .. })));

        // A lone dangling byte can't even hold a prefix.
        let frames: Vec<_> = FrameIter::new(&[0xAB]).collect();
        assert!(matches!(frames[0], Err(FrameError::TornPrefix)));

        // A prefix promising a kindless (zero-length) body is torn too.
        let frames: Vec<_> = FrameIter::new(&[0, 0, 0]).collect();
        assert!(matches!(frames[0], Err(FrameError::TornFrame { .. })));
    }
}
