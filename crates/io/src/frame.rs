//! Datagram framing: many sealed MTP frames per UDP datagram.
//!
//! A UDP datagram is an expensive unit — every one costs a syscall (or a
//! slot in a `sendmmsg` batch) and a trip through the kernel's socket
//! machinery. MTP's control traffic is small (a sealed ACK is well under
//! 200 bytes), so the driver coalesces: a datagram carries a sequence of
//! length-prefixed frames, each a sealed MTP header followed by that
//! packet's payload bytes. This mirrors what s2n-quic's platform layer
//! does with GSO segments, but in userspace and explicit on the wire:
//!
//! ```text
//! datagram := frame*
//! frame    := u16_be(len) ‖ sealed_header ‖ payload[pkt_len]
//! ```
//!
//! where `len` counts the sealed header plus payload (not the prefix
//! itself). The receiver splits with [`FrameIter`]; a torn tail — a
//! prefix promising more bytes than the datagram holds — is a framing
//! error, never a silent truncation.
//!
//! [`append_frame`] is also where the **MTU guard** lives: a frame whose
//! sealed header plus payload cannot fit a datagram budget *at all* is a
//! protocol bug (the header grew past what `MtpConfig::mtu_payload`
//! left room for), and is reported as [`FrameError::FrameTooBig`] at
//! seal time rather than surfacing as an `EMSGSIZE` from the kernel.

use mtp_wire::{MtpHeader, WireError};

/// Length of the per-frame big-endian length prefix.
pub const FRAME_PREFIX_LEN: usize = 2;

/// Default per-datagram byte budget.
///
/// Loopback interfaces run an MTU of 65536, but 9000 (jumbo-frame sized)
/// keeps the test traffic honest about what a real NIC path would carry
/// and still coalesces six 1460-byte data packets per datagram.
pub const DEFAULT_DATAGRAM_BUDGET: usize = 9000;

/// Why a frame could not be appended to a datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The frame exceeds the datagram budget even in an empty datagram.
    /// This is the seal-time MTU guard firing: the header's variable
    /// sections plus payload outgrew the wire. Carries (frame, budget).
    FrameTooBig {
        /// Total encoded frame size, prefix included.
        frame: usize,
        /// The per-datagram budget it had to fit.
        budget: usize,
    },
    /// The sealed header failed to emit.
    Wire(WireError),
    /// A length prefix promised more bytes than the datagram holds.
    TornFrame {
        /// Bytes the prefix promised.
        promised: usize,
        /// Bytes remaining in the datagram.
        available: usize,
    },
    /// A trailing fragment too short to hold a length prefix.
    TornPrefix,
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::FrameTooBig { frame, budget } => {
                write!(f, "frame of {frame} bytes exceeds datagram budget {budget}")
            }
            FrameError::Wire(e) => write!(f, "sealed emit failed: {e:?}"),
            FrameError::TornFrame {
                promised,
                available,
            } => write!(
                f,
                "torn frame: prefix promised {promised} bytes, {available} remain"
            ),
            FrameError::TornPrefix => write!(f, "torn frame length prefix"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> FrameError {
        FrameError::Wire(e)
    }
}

/// Append one `header ‖ payload` frame to a datagram under construction.
///
/// Returns `Ok(true)` if appended, `Ok(false)` if the frame is valid but
/// does not fit the *remaining* budget (flush the datagram and retry),
/// and `Err` if the frame could never fit (the MTU guard) or the header
/// would not seal.
pub fn append_frame(
    dgram: &mut Vec<u8>,
    budget: usize,
    hdr: &MtpHeader,
    payload: &[u8],
) -> Result<bool, FrameError> {
    debug_assert_eq!(
        hdr.pkt_len as usize,
        payload.len(),
        "pkt_len/payload mismatch"
    );
    let sealed = hdr.sealed_wire_len();
    let frame = FRAME_PREFIX_LEN + sealed + payload.len();
    if frame > budget {
        return Err(FrameError::FrameTooBig { frame, budget });
    }
    if dgram.len() + frame > budget {
        return Ok(false);
    }
    let body = sealed + payload.len();
    dgram.extend_from_slice(&(body as u16).to_be_bytes());
    let at = dgram.len();
    dgram.resize(at + sealed, 0);
    hdr.emit_sealed(&mut dgram[at..])?;
    dgram.extend_from_slice(payload);
    Ok(true)
}

/// Iterator over the frames of a received datagram.
///
/// Yields `(sealed_header_and_payload)` byte slices; the caller hands
/// each to [`MtpHeader::parse_sealed`], which returns how many bytes the
/// sealed header consumed — the rest of the slice is payload.
pub struct FrameIter<'a> {
    rest: &'a [u8],
}

impl<'a> FrameIter<'a> {
    /// Split `datagram` into frames.
    pub fn new(datagram: &'a [u8]) -> FrameIter<'a> {
        FrameIter { rest: datagram }
    }
}

impl<'a> Iterator for FrameIter<'a> {
    type Item = Result<&'a [u8], FrameError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.rest.is_empty() {
            return None;
        }
        if self.rest.len() < FRAME_PREFIX_LEN {
            self.rest = &[];
            return Some(Err(FrameError::TornPrefix));
        }
        let body = u16::from_be_bytes([self.rest[0], self.rest[1]]) as usize;
        let rest = &self.rest[FRAME_PREFIX_LEN..];
        if body > rest.len() {
            self.rest = &[];
            return Some(Err(FrameError::TornFrame {
                promised: body,
                available: rest.len(),
            }));
        }
        let (frame, tail) = rest.split_at(body);
        self.rest = tail;
        Some(Ok(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_wire::{MsgId, PktNum, PktType};

    fn data_hdr(msg: u64, pkt: u32, len: u16) -> MtpHeader {
        MtpHeader {
            pkt_type: PktType::Data,
            msg_id: MsgId(msg),
            msg_len_pkts: 4,
            msg_len_bytes: 4 * 1460,
            pkt_num: PktNum(pkt),
            pkt_len: len,
            pkt_offset: pkt * 1460,
            ..MtpHeader::default()
        }
    }

    #[test]
    fn roundtrip_coalesced_frames() {
        let mut dgram = Vec::new();
        let payloads: Vec<Vec<u8>> = (0..3u32).map(|i| vec![i as u8 + 1; 100]).collect();
        for (i, p) in payloads.iter().enumerate() {
            let hdr = data_hdr(7, i as u32, p.len() as u16);
            assert!(append_frame(&mut dgram, DEFAULT_DATAGRAM_BUDGET, &hdr, p).unwrap());
        }
        let mut seen = 0;
        for frame in FrameIter::new(&dgram) {
            let frame = frame.unwrap();
            let (hdr, used, payload_ok) = MtpHeader::parse_sealed(frame).unwrap();
            assert!(payload_ok);
            assert_eq!(hdr.msg_id, MsgId(7));
            assert_eq!(hdr.pkt_num, PktNum(seen));
            assert_eq!(&frame[used..], &payloads[seen as usize][..]);
            seen += 1;
        }
        assert_eq!(seen, 3);
    }

    #[test]
    fn full_datagram_defers_not_errors() {
        let mut dgram = Vec::new();
        let payload = vec![0u8; 1460];
        let hdr = data_hdr(1, 0, 1460);
        let frame = FRAME_PREFIX_LEN + hdr.sealed_wire_len() + payload.len();
        // Budget fits exactly one frame: second append defers.
        let budget = frame + frame / 2;
        assert!(append_frame(&mut dgram, budget, &hdr, &payload).unwrap());
        assert!(!append_frame(&mut dgram, budget, &hdr, &payload).unwrap());
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut dgram = Vec::new();
        let payload = vec![0u8; 1460];
        let hdr = data_hdr(1, 0, 1460);
        let err = append_frame(&mut dgram, 256, &hdr, &payload).unwrap_err();
        assert!(matches!(err, FrameError::FrameTooBig { budget: 256, .. }));
        assert!(
            dgram.is_empty(),
            "failed append must not leave partial bytes"
        );
    }

    #[test]
    fn torn_tail_is_an_error() {
        let mut dgram = Vec::new();
        let hdr = data_hdr(9, 0, 8);
        append_frame(&mut dgram, DEFAULT_DATAGRAM_BUDGET, &hdr, &[1; 8]).unwrap();
        // Chop the final payload byte off: the last frame is torn.
        dgram.pop();
        let frames: Vec<_> = FrameIter::new(&dgram).collect();
        assert_eq!(frames.len(), 1);
        assert!(matches!(frames[0], Err(FrameError::TornFrame { .. })));

        // A lone dangling byte can't even hold a prefix.
        let frames: Vec<_> = FrameIter::new(&[0xAB]).collect();
        assert!(matches!(frames[0], Err(FrameError::TornPrefix)));
    }
}
