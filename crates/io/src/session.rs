//! The wire session lifecycle: connect, send, serve, close.
//!
//! PR 8's drivers bootstrapped from fixed out-of-band port maps and shut
//! down by side channel (an `AtomicBool` raised when the sender was
//! done). This module replaces both with a protocol, turning the wire
//! backend into a public connect/accept/send/recv transport:
//!
//! * **Handshake** — a versioned HELLO/HELLO-ACK exchange
//!   ([`mtp_wire::SessionCtrl`]) that assigns session ids and carries
//!   the responder's per-pathlet UDP port map. HELLOs are retried with
//!   capped exponential backoff plus seeded jitter; duplicate HELLOs are
//!   idempotent (the listener re-acks the same session).
//! * **Liveness** — the connector probes feedback silence with PINGs;
//!   silence past the idle timeout declares the peer dead and fails
//!   every pending message with a typed [`SessionError::PeerDead`]
//!   (carrying the core's [`PathHealth`]) instead of spinning forever.
//! * **Graceful close** — FIN/FIN-ACK with retries; the listener holds
//!   a TIME-WAIT-style linger so a lost FIN-ACK is re-answered rather
//!   than stranding the closer.
//! * **Bounded admission** — send-side caps on inflight messages and
//!   buffered payload bytes ([`SessionError::Backpressure`], never an
//!   unbounded queue) and a receive-side reassembly-byte cap (excess
//!   first-copy data goes unACKed, so the sender repairs it later, when
//!   there is room).
//!
//! State machines (see DESIGN.md "Session lifecycle" for the timer
//! table):
//!
//! ```text
//! connector: IDLE → CONNECTING → ESTABLISHED → CLOSING → CLOSED
//!                       │              │           │
//!                       └──────────────┴───────────┴──→ FAILED
//! listener:  IDLE → ESTABLISHED → TIME-WAIT → CLOSED   (per session)
//! ```

use std::collections::HashMap;
use std::io;
use std::net::{Ipv4Addr, SocketAddrV4};
use std::time::Instant;

use mtp_core::{MsgDelivered, MtpReceiver, MtpSender, PathHealth, SenderEvent};
use mtp_sim::time::{Duration as SimDuration, Time};
use mtp_sim::{Headers, Packet};
use mtp_telemetry::{Gauge, Metric, Registry};
use mtp_wire::{
    CtrlKind, EcnCodepoint, EntityId, Feedback, MsgId, MtpHeader, PathFeedback, PathletId, PktType,
    SessionCtrl, TrafficClass, SESSION_WIRE_VERSION,
};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::clock::{Clock, MonotonicClock};
use crate::driver::IoConfig;
use crate::frame::{append_ctrl_frame, append_frame, FrameIter, FrameKind};
use crate::payload;
use crate::socket::{wait_readable, BatchSocket};

/// Sim-time picoseconds until `t`, as a wall `std::time::Duration`.
fn until(now: Time, t: Time) -> std::time::Duration {
    std::time::Duration::from_nanos(t.0.saturating_sub(now.0) / 1_000)
}

/// A sim duration as a wall duration.
fn wall(d: SimDuration) -> std::time::Duration {
    std::time::Duration::from_nanos(d.0 / 1_000)
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Bounded-resource admission caps. Every queue a session owns is
/// bounded by one of these; hitting a cap is backpressure (send side)
/// or deferred repair (receive side), never unbounded growth.
#[derive(Debug, Clone, Copy)]
pub struct SessionCaps {
    /// Most messages admitted and not yet completed at the sender.
    pub max_inflight_msgs: usize,
    /// Most payload bytes the sender will hold buffered for
    /// retransmission across all inflight messages.
    pub max_buffered_bytes: u64,
    /// Most reassembly bytes the receiver will hold across partially
    /// received messages. One message is always admitted even if it
    /// alone exceeds the cap (progress guarantee); the enforced bound is
    /// therefore `max(cap, largest single message)`.
    pub max_reassembly_bytes: u64,
}

impl Default for SessionCaps {
    fn default() -> SessionCaps {
        SessionCaps {
            max_inflight_msgs: 64,
            max_buffered_bytes: 16 << 20,
            max_reassembly_bytes: 16 << 20,
        }
    }
}

/// Configuration for one side of a wire session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Socket/core configuration shared with the plain drivers.
    pub io: IoConfig,
    /// MTP app port of the connecting (sending) side.
    pub client_port: u16,
    /// MTP app port of the listening (receiving) side.
    pub server_port: u16,
    /// `msg_id_base` the sender core allocates message ids from.
    pub msg_id_base: u64,
    /// Initial HELLO/FIN retransmission timeout.
    pub handshake_rto: SimDuration,
    /// Backoff cap for HELLO/FIN retransmissions.
    pub handshake_rto_max: SimDuration,
    /// HELLO/FIN attempts before giving up with a typed error.
    pub handshake_tries: u32,
    /// Feedback silence before a liveness PING is sent (and between
    /// successive PINGs).
    pub keepalive_interval: SimDuration,
    /// Feedback silence that declares the peer dead.
    pub idle_timeout: SimDuration,
    /// TIME-WAIT span the listener holds a closed session for, so
    /// duplicate FINs keep being acknowledged after a lost FIN-ACK.
    pub linger: SimDuration,
    /// Admission caps.
    pub caps: SessionCaps,
    /// Seed for handshake jitter and session-id assignment. Two
    /// endpoints may share a seed; ids are drawn from independent
    /// streams.
    pub seed: u64,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            io: IoConfig::default(),
            client_port: 1,
            server_port: 2,
            msg_id_base: 1 << 32,
            handshake_rto: SimDuration::from_micros(10_000),
            handshake_rto_max: SimDuration::from_micros(160_000),
            handshake_tries: 8,
            keepalive_interval: SimDuration::from_micros(50_000),
            idle_timeout: SimDuration::from_micros(600_000),
            linger: SimDuration::from_micros(150_000),
            caps: SessionCaps::default(),
            seed: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Errors and state
// ---------------------------------------------------------------------------

/// Why a session operation failed. Every terminal outcome of a session
/// is either clean completion or exactly one of these — the chaos soak
/// asserts there is no third bucket (hangs, busy-loops, leaks).
#[derive(Debug)]
pub enum SessionError {
    /// The HELLO exchange exhausted its retries without a HELLO-ACK.
    HandshakeTimeout {
        /// HELLOs sent.
        tries: u32,
        /// Wall time spent trying.
        elapsed: std::time::Duration,
    },
    /// Feedback silence exceeded the idle timeout: the peer (or the
    /// whole path set) is gone. Pending messages are failed and listed.
    PeerDead {
        /// How long the silence lasted.
        silence: std::time::Duration,
        /// Message ids that were admitted but never completed.
        pending: Vec<u64>,
        /// The sender core's view of the path set at the time of death
        /// (all-quarantined points at the network, none at the peer).
        path_health: PathHealth,
    },
    /// The FIN exchange exhausted its retries without a FIN-ACK.
    CloseTimeout {
        /// FINs sent.
        tries: u32,
        /// Messages still unacknowledged (always 0: close flushes first).
        outstanding: usize,
    },
    /// An admission cap refused the submission; retry after completions
    /// drain. Carries the state that tripped the cap.
    Backpressure {
        /// Messages currently inflight.
        inflight: usize,
        /// Payload bytes currently buffered.
        buffered_bytes: u64,
    },
    /// The session is not in a state that allows the operation.
    Closed,
    /// The caller-supplied wall deadline expired.
    WallDeadline {
        /// Messages still outstanding when the deadline hit.
        outstanding: usize,
    },
    /// The socket layer failed.
    Io(io::Error),
}

impl core::fmt::Display for SessionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SessionError::HandshakeTimeout { tries, elapsed } => {
                write!(f, "handshake timed out after {tries} HELLOs ({elapsed:?})")
            }
            SessionError::PeerDead {
                silence,
                pending,
                path_health,
            } => write!(
                f,
                "peer dead after {silence:?} of silence; {} pending messages failed; {path_health}",
                pending.len()
            ),
            SessionError::CloseTimeout { tries, outstanding } => {
                write!(
                    f,
                    "close timed out after {tries} FINs ({outstanding} outstanding)"
                )
            }
            SessionError::Backpressure {
                inflight,
                buffered_bytes,
            } => write!(
                f,
                "backpressure: {inflight} messages inflight, {buffered_bytes} bytes buffered"
            ),
            SessionError::Closed => write!(f, "session is closed"),
            SessionError::WallDeadline { outstanding } => {
                write!(f, "wall deadline expired with {outstanding} outstanding")
            }
            SessionError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<io::Error> for SessionError {
    fn from(e: io::Error) -> SessionError {
        SessionError::Io(e)
    }
}

impl SessionError {
    /// A short stable label for reports (`results/BENCH_chaos.json`).
    pub fn kind(&self) -> &'static str {
        match self {
            SessionError::HandshakeTimeout { .. } => "handshake_timeout",
            SessionError::PeerDead { .. } => "peer_dead",
            SessionError::CloseTimeout { .. } => "close_timeout",
            SessionError::Backpressure { .. } => "backpressure",
            SessionError::Closed => "closed",
            SessionError::WallDeadline { .. } => "wall_deadline",
            SessionError::Io(_) => "io",
        }
    }
}

/// Where a session is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Constructed, no handshake yet.
    Idle,
    /// HELLO sent, awaiting HELLO-ACK.
    Connecting,
    /// Handshake complete; data flows.
    Established,
    /// FIN sent, awaiting FIN-ACK.
    Closing,
    /// (Listener only) closed, lingering to re-ack duplicate FINs.
    TimeWait,
    /// Cleanly closed.
    Closed,
    /// Dead by typed error; resources released.
    Failed,
}

impl core::fmt::Display for SessionState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            SessionState::Idle => "IDLE",
            SessionState::Connecting => "CONNECTING",
            SessionState::Established => "ESTABLISHED",
            SessionState::Closing => "CLOSING",
            SessionState::TimeWait => "TIME-WAIT",
            SessionState::Closed => "CLOSED",
            SessionState::Failed => "FAILED",
        };
        f.write_str(s)
    }
}

/// Where a submitted message's bytes come from.
#[derive(Debug, Clone)]
pub enum PayloadSource {
    /// Deterministic synthesized content ([`payload::fill`]) — the test
    /// generator; no bytes are stored.
    Synth,
    /// Caller-owned bytes, held until the message completes.
    Owned(Vec<u8>),
}

fn bind_pathlet_sockets(n: usize) -> io::Result<Vec<BatchSocket>> {
    (0..n.max(1))
        .map(|_| BatchSocket::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0)))
        .collect()
}

fn invalid<E: std::error::Error + Send + Sync + 'static>(e: E) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

/// One sealed control frame as its own datagram. Control never shares a
/// datagram with data: the relay (a stand-in middlebox) classifies and
/// rewrites control datagrams by the kind byte at a fixed offset.
fn ctrl_datagram(ctrl: &SessionCtrl, budget: usize) -> io::Result<Vec<u8>> {
    let mut dgram = Vec::with_capacity(ctrl.wire_len() + 3);
    match append_ctrl_frame(&mut dgram, budget, ctrl) {
        Ok(true) => Ok(dgram),
        Ok(false) => unreachable!("fresh datagram refused a fitting frame"),
        Err(e) => Err(invalid(e)),
    }
}

// ---------------------------------------------------------------------------
// Connector / sender session
// ---------------------------------------------------------------------------

/// The connecting, sending end of a wire session.
///
/// Owns one socket per pathlet, the sans-IO [`MtpSender`] core, and the
/// session control state. Built by [`SenderSession::connect`]; fed by
/// [`try_send`](SenderSession::try_send) /
/// [`try_send_synth`](SenderSession::try_send_synth); driven by
/// [`poll`](SenderSession::poll) (or the blocking helpers
/// [`flush`](SenderSession::flush) and [`close`](SenderSession::close)).
pub struct SenderSession {
    cfg: SessionConfig,
    socks: Vec<BatchSocket>,
    peers: Vec<SocketAddrV4>,
    ctrl_peer: SocketAddrV4,
    snd: MtpSender,
    clock: MonotonicClock,
    rng: SmallRng,
    state: SessionState,
    sid: u64,
    peer_sid: u64,
    last_heard: Time,
    last_ping: Time,
    ping_seq: u32,
    payloads: HashMap<u64, PayloadSource>,
    submitted: u64,
    buffered_bytes: u64,
    retx_rr: u64,
    /// Packets emitted per repair (RTO) round — the retransmission-round
    /// histogram `bench_wire` records.
    retx_rounds: Vec<u32>,
    handshake_rounds: u32,
    close_rounds: u32,
    fin_acked: bool,
    completions: Vec<(u64, Time)>,
    out_buf: Vec<Packet>,
    ev_buf: Vec<SenderEvent>,
    scratch: Vec<u8>,
    dgrams: Vec<(Vec<u8>, SocketAddrV4)>,
    registry: Registry,
}

impl SenderSession {
    /// Connect to a listener whose control address is `server`: bind
    /// pathlet sockets, run the HELLO exchange (capped exponential
    /// backoff with jitter), and return an ESTABLISHED session whose
    /// per-pathlet peers came from the HELLO-ACK's port map.
    pub fn connect(
        cfg: &SessionConfig,
        server: SocketAddrV4,
    ) -> Result<SenderSession, SessionError> {
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5E55_1011_C0FF_EE00);
        let sid = rng.next_u64() | 1;
        let mut s = SenderSession {
            cfg: cfg.clone(),
            socks: bind_pathlet_sockets(cfg.io.pathlets)?,
            peers: Vec::new(),
            ctrl_peer: server,
            snd: MtpSender::new(
                cfg.io.mtp.clone(),
                cfg.client_port,
                EntityId(0),
                cfg.msg_id_base,
            ),
            clock: MonotonicClock::new(),
            rng,
            state: SessionState::Idle,
            sid,
            peer_sid: 0,
            last_heard: Time::ZERO,
            last_ping: Time::ZERO,
            ping_seq: 0,
            payloads: HashMap::new(),
            submitted: 0,
            buffered_bytes: 0,
            retx_rr: 0,
            retx_rounds: Vec::new(),
            handshake_rounds: 0,
            close_rounds: 0,
            fin_acked: false,
            completions: Vec::new(),
            out_buf: Vec::new(),
            ev_buf: Vec::new(),
            scratch: Vec::new(),
            dgrams: Vec::new(),
            registry: Registry::new(),
        };
        s.handshake()?;
        Ok(s)
    }

    fn send_ctrl(&mut self, kind: CtrlKind, seq: u32) -> Result<(), SessionError> {
        let mut ctrl = SessionCtrl::new(kind, self.sid, self.peer_sid);
        ctrl.src_port = self.cfg.client_port;
        ctrl.dst_port = self.cfg.server_port;
        ctrl.seq = seq;
        let dgram = ctrl_datagram(&ctrl, self.cfg.io.datagram_budget)?;
        let report = self.socks[0].send_batch(&[(self.ctrl_peer, dgram.as_slice())])?;
        self.registry
            .count(Metric::WireDatagramsTx, report.datagrams as u64);
        self.registry
            .count(Metric::WireSendBatches, report.syscalls as u64);
        self.registry.count(Metric::WireFramesTx, 1);
        Ok(())
    }

    /// The HELLO exchange: send, back off, retry; capped and jittered.
    fn handshake(&mut self) -> Result<(), SessionError> {
        self.state = SessionState::Connecting;
        let started = Instant::now();
        let mut rto = self.cfg.handshake_rto;
        for try_n in 0..self.cfg.handshake_tries {
            self.send_ctrl(CtrlKind::Hello, try_n)?;
            self.registry.count(Metric::SessionHelloTx, 1);
            if try_n > 0 {
                self.registry.count(Metric::SessionHandshakeRetries, 1);
            }
            // Full jitter on top of the deterministic floor: retries
            // de-synchronize instead of re-colliding with whatever loss
            // pattern ate the previous round.
            let jitter = SimDuration(self.rng.gen_range(0..=rto.0 / 4));
            let round_ends = Instant::now() + wall(rto + jitter);
            while Instant::now() < round_ends {
                let timeout = round_ends - Instant::now();
                wait_readable(&[&self.socks[0]], timeout)?;
                if self.drain_handshake()? {
                    self.state = SessionState::Established;
                    self.handshake_rounds = try_n + 1;
                    let now = self.clock.now();
                    self.last_heard = now;
                    self.last_ping = now;
                    return Ok(());
                }
            }
            rto = SimDuration((rto.0 * 2).min(self.cfg.handshake_rto_max.0));
        }
        self.state = SessionState::Failed;
        Err(SessionError::HandshakeTimeout {
            tries: self.cfg.handshake_tries,
            elapsed: started.elapsed(),
        })
    }

    /// Drain the control socket during CONNECTING; true once a matching
    /// HELLO-ACK establishes the session.
    fn drain_handshake(&mut self) -> Result<bool, SessionError> {
        let mut dgrams = std::mem::take(&mut self.dgrams);
        dgrams.clear();
        let report = self.socks[0].recv_batch(self.cfg.io.datagram_budget + 64, &mut dgrams)?;
        self.registry
            .count(Metric::WireDatagramsRx, report.datagrams as u64);
        self.registry
            .count(Metric::WireRecvBatches, report.syscalls as u64);
        let mut established = false;
        for (bytes, src) in dgrams.drain(..) {
            for frame in FrameIter::new(&bytes) {
                let Ok((FrameKind::Ctrl, body)) = frame else {
                    continue;
                };
                let Ok((ctrl, used)) = SessionCtrl::parse_sealed(body) else {
                    self.registry.count(Metric::WireParseErrors, 1);
                    continue;
                };
                if used != body.len() {
                    self.registry.count(Metric::WireParseErrors, 1);
                    continue;
                }
                self.registry.count(Metric::WireFramesRx, 1);
                if ctrl.version != SESSION_WIRE_VERSION
                    || ctrl.kind != CtrlKind::HelloAck
                    || ctrl.session_id != self.sid
                    || ctrl.ports.is_empty()
                {
                    self.registry.count(Metric::SessionCtrlRejected, 1);
                    continue;
                }
                // The HELLO-ACK's source is where control replies worked
                // from; its port list is where data goes. Keep only as
                // many pathlets as both sides can serve.
                self.peer_sid = ctrl.peer_session_id;
                self.ctrl_peer = src;
                let ip = *src.ip();
                self.peers = ctrl
                    .ports
                    .iter()
                    .map(|&p| SocketAddrV4::new(ip, p))
                    .collect();
                let effective = self.peers.len().min(self.socks.len());
                self.peers.truncate(effective);
                self.socks.truncate(effective);
                established = true;
            }
        }
        self.dgrams = dgrams;
        Ok(established)
    }

    /// Submit a message whose bytes the caller owns. The buffer is held
    /// (for retransmission) until the message completes, then dropped.
    /// Fails fast with [`SessionError::Backpressure`] at the caps.
    pub fn try_send(&mut self, bytes: Vec<u8>) -> Result<MsgId, SessionError> {
        let len = u32::try_from(bytes.len()).expect("message larger than u32 bytes");
        assert!(len > 0, "empty messages are not a thing MTP sends");
        self.admit(len as u64)?;
        let id = self.submit(len)?;
        self.buffered_bytes += len as u64;
        self.payloads.insert(id.0, PayloadSource::Owned(bytes));
        self.flush_submission(id)?;
        Ok(id)
    }

    /// Submit a message of `len` synthesized bytes ([`payload::fill`]) —
    /// the deterministic test generator. Same admission as
    /// [`try_send`](Self::try_send) minus the buffered-byte charge
    /// (synthesized content is regenerated, not stored).
    pub fn try_send_synth(&mut self, len: u32) -> Result<MsgId, SessionError> {
        assert!(len > 0, "empty messages are not a thing MTP sends");
        self.admit(0)?;
        let id = self.submit(len)?;
        self.payloads.insert(id.0, PayloadSource::Synth);
        self.flush_submission(id)?;
        Ok(id)
    }

    fn admit(&mut self, add_bytes: u64) -> Result<(), SessionError> {
        if self.state != SessionState::Established {
            return Err(SessionError::Closed);
        }
        let inflight = self.snd.outstanding();
        if inflight >= self.cfg.caps.max_inflight_msgs
            || self.buffered_bytes + add_bytes > self.cfg.caps.max_buffered_bytes
        {
            self.registry.count(Metric::SessionBackpressure, 1);
            return Err(SessionError::Backpressure {
                inflight,
                buffered_bytes: self.buffered_bytes,
            });
        }
        Ok(())
    }

    fn submit(&mut self, len: u32) -> Result<MsgId, SessionError> {
        let now = self.clock.now();
        let mut out = std::mem::take(&mut self.out_buf);
        let id = self.snd.send_message(
            self.cfg.server_port,
            len,
            0,
            TrafficClass::BEST_EFFORT,
            now,
            &mut out,
        );
        self.out_buf = out;
        self.submitted += 1;
        self.registry.gauge_add(Gauge::MsgsInFlight, 1);
        Ok(id)
    }

    fn flush_submission(&mut self, _id: MsgId) -> Result<(), SessionError> {
        let mut out = std::mem::take(&mut self.out_buf);
        let res = self.dispatch(&mut out);
        self.out_buf = out;
        res?;
        Ok(())
    }

    /// Pick the wire pathlet for a packet: hash the message id over the
    /// pathlets its header does not exclude (exclusions come from the
    /// core's quarantine and window-floor logic and land on real ports
    /// here), rotated by the retransmission round.
    fn route(&self, hdr: &MtpHeader) -> usize {
        let n = self.socks.len();
        let excluded = |p: usize| {
            hdr.path_exclude
                .iter()
                .any(|e| e.path == PathletId(p as u16))
        };
        let live: Vec<usize> = (0..n).filter(|&p| !excluded(p)).collect();
        if live.is_empty() {
            // Everything excluded: sending somewhere beats deadlock.
            return ((hdr.msg_id.0 + self.retx_rr) % n as u64) as usize;
        }
        live[((hdr.msg_id.0 + self.retx_rr) % live.len() as u64) as usize]
    }

    /// Seal, coalesce, and transmit a batch of core-emitted packets,
    /// materializing payload bytes from each message's source.
    fn dispatch(&mut self, pkts: &mut Vec<Packet>) -> Result<(), SessionError> {
        if pkts.is_empty() {
            return Ok(());
        }
        let n = self.socks.len();
        let budget = self.cfg.io.datagram_budget;
        let mut closed: Vec<Vec<Vec<u8>>> = vec![Vec::new(); n];
        let mut open: Vec<Vec<u8>> = vec![Vec::new(); n];
        let mut frames = 0u64;
        for pkt in pkts.drain(..) {
            let Headers::Mtp(hdr) = pkt.headers else {
                continue;
            };
            let p = self.route(&hdr);
            let len = hdr.pkt_len as usize;
            let off = hdr.pkt_offset as usize;
            let bytes: &[u8] = match self.payloads.get(&hdr.msg_id.0) {
                Some(PayloadSource::Owned(buf)) => &buf[off..off + len],
                _ => {
                    if self.scratch.len() < len {
                        self.scratch.resize(len, 0);
                    }
                    payload::fill(hdr.msg_id, hdr.pkt_offset, &mut self.scratch[..len]);
                    &self.scratch[..len]
                }
            };
            let head = &mut open[p];
            match append_frame(head, budget, &hdr, bytes) {
                Ok(true) => {}
                Ok(false) => {
                    closed[p].push(std::mem::take(head));
                    append_frame(&mut open[p], budget, &hdr, bytes).map_err(invalid)?;
                }
                Err(e) => return Err(invalid(e).into()),
            }
            frames += 1;
            mtp_sim::pool::recycle_header(hdr);
        }
        self.registry.count(Metric::WireFramesTx, frames);
        for p in 0..n {
            if !open[p].is_empty() {
                closed[p].push(std::mem::take(&mut open[p]));
            }
            if closed[p].is_empty() {
                continue;
            }
            let sends: Vec<(SocketAddrV4, &[u8])> = closed[p]
                .iter()
                .map(|d| (self.peers[p], d.as_slice()))
                .collect();
            let report = self.socks[p].send_batch(&sends)?;
            self.registry
                .count(Metric::WireDatagramsTx, report.datagrams as u64);
            self.registry
                .count(Metric::WireSendBatches, report.syscalls as u64);
        }
        Ok(())
    }

    /// One non-blocking event-loop turn: drain ACKs and control replies,
    /// fire the core's timer, probe and police liveness, reap
    /// completions. Call [`wait`](Self::wait) between turns.
    pub fn poll(&mut self) -> Result<(), SessionError> {
        match self.state {
            SessionState::Established | SessionState::Closing => {}
            _ => return Err(SessionError::Closed),
        }
        self.drain_sockets()?;
        let now = self.clock.now();
        if self.snd.poll_at().is_some_and(|t| t <= now) {
            let mut out = std::mem::take(&mut self.out_buf);
            self.snd.on_timer(now, &mut out);
            if !out.is_empty() {
                // Route this round of repairs onto the next pathlet: a
                // dead port's packets must not retry the same hole.
                self.retx_rr += 1;
                self.retx_rounds.push(out.len() as u32);
            }
            let res = self.dispatch(&mut out);
            self.out_buf = out;
            res?;
        }
        self.keepalive()?;
        self.check_liveness()?;
        self.drain_completions();
        Ok(())
    }

    fn drain_sockets(&mut self) -> Result<(), SessionError> {
        let mut dgrams = std::mem::take(&mut self.dgrams);
        let mut first_err: Option<SessionError> = None;
        'socks: for p in 0..self.socks.len() {
            dgrams.clear();
            let report =
                match self.socks[p].recv_batch(self.cfg.io.datagram_budget + 64, &mut dgrams) {
                    Ok(r) => r,
                    Err(e) => {
                        first_err = Some(e.into());
                        break 'socks;
                    }
                };
            self.registry
                .count(Metric::WireDatagramsRx, report.datagrams as u64);
            self.registry
                .count(Metric::WireRecvBatches, report.syscalls as u64);
            for (bytes, _src) in dgrams.drain(..) {
                if first_err.is_some() {
                    continue;
                }
                for frame in FrameIter::new(&bytes) {
                    match frame {
                        Ok((FrameKind::Mtp, body)) => {
                            if let Err(e) = self.on_mtp_frame(body) {
                                first_err = Some(e);
                                break;
                            }
                        }
                        Ok((FrameKind::Ctrl, body)) => self.on_ctrl_frame(body),
                        Err(_) => {
                            self.registry.count(Metric::WireParseErrors, 1);
                        }
                    }
                }
            }
            if first_err.is_some() {
                break 'socks;
            }
        }
        self.dgrams = dgrams;
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn on_mtp_frame(&mut self, body: &[u8]) -> Result<(), SessionError> {
        let (hdr, _, _) = match MtpHeader::parse_sealed(body) {
            Ok(v) => v,
            Err(_) => {
                self.registry.count(Metric::WireParseErrors, 1);
                return Ok(());
            }
        };
        self.registry.count(Metric::WireFramesRx, 1);
        let now = self.clock.now();
        self.last_heard = now;
        match hdr.pkt_type {
            PktType::Ack | PktType::Nack => {
                let mut out = std::mem::take(&mut self.out_buf);
                self.snd.on_ack(now, &hdr, &mut out);
                let res = self.dispatch(&mut out);
                self.out_buf = out;
                res?;
            }
            PktType::Control => self.snd.on_control(now, &hdr),
            PktType::Data => {}
        }
        Ok(())
    }

    fn on_ctrl_frame(&mut self, body: &[u8]) {
        let Ok((ctrl, used)) = SessionCtrl::parse_sealed(body) else {
            self.registry.count(Metric::WireParseErrors, 1);
            return;
        };
        if used != body.len() {
            self.registry.count(Metric::WireParseErrors, 1);
            return;
        }
        self.registry.count(Metric::WireFramesRx, 1);
        if ctrl.version != SESSION_WIRE_VERSION || ctrl.session_id != self.sid {
            self.registry.count(Metric::SessionCtrlRejected, 1);
            return;
        }
        match ctrl.kind {
            CtrlKind::Pong => {
                self.registry.count(Metric::SessionKeepaliveRx, 1);
                self.last_heard = self.clock.now();
            }
            CtrlKind::FinAck => {
                self.fin_acked = true;
                self.last_heard = self.clock.now();
            }
            // A duplicate HELLO-ACK after establishment: stale but
            // harmless, and proof the peer is alive.
            CtrlKind::HelloAck => {
                self.last_heard = self.clock.now();
            }
            _ => {
                self.registry.count(Metric::SessionCtrlRejected, 1);
            }
        }
    }

    /// Probe feedback silence: one PING per keepalive interval of quiet.
    fn keepalive(&mut self) -> Result<(), SessionError> {
        let now = self.clock.now();
        let quiet = now.since(self.last_heard);
        if quiet >= self.cfg.keepalive_interval
            && now.since(self.last_ping) >= self.cfg.keepalive_interval
        {
            self.ping_seq += 1;
            let seq = self.ping_seq;
            self.send_ctrl(CtrlKind::Ping, seq)?;
            self.registry.count(Metric::SessionKeepaliveTx, 1);
            self.last_ping = now;
        }
        Ok(())
    }

    /// Declare the peer dead once silence outlasts the idle timeout:
    /// fail every pending message, release their buffers, and surface
    /// the core's path-health so the error says *what* died.
    fn check_liveness(&mut self) -> Result<(), SessionError> {
        let now = self.clock.now();
        let silence = now.since(self.last_heard);
        if silence <= self.cfg.idle_timeout {
            return Ok(());
        }
        self.registry.count(Metric::SessionPeerDeaths, 1);
        self.state = SessionState::Failed;
        let mut pending: Vec<u64> = self.payloads.keys().copied().collect();
        pending.sort_unstable();
        self.registry
            .gauge_add(Gauge::MsgsInFlight, -(pending.len() as i64));
        self.payloads.clear();
        self.buffered_bytes = 0;
        Err(SessionError::PeerDead {
            silence: wall(silence),
            pending,
            path_health: self.snd.path_health(now),
        })
    }

    fn drain_completions(&mut self) {
        let mut ev = std::mem::take(&mut self.ev_buf);
        self.snd.drain_events(&mut ev);
        for e in ev.drain(..) {
            let SenderEvent::MsgCompleted { id, completed, .. } = e;
            if let Some(src) = self.payloads.remove(&id.0) {
                if let PayloadSource::Owned(buf) = src {
                    self.buffered_bytes -= buf.len() as u64;
                }
                self.registry.gauge_add(Gauge::MsgsInFlight, -1);
            }
            self.completions.push((id.0, completed));
        }
        self.ev_buf = ev;
    }

    /// Block until a socket is readable, the core's next deadline, or
    /// `max_wait` — whichever is soonest.
    pub fn wait(&mut self, max_wait: std::time::Duration) -> Result<(), SessionError> {
        let now = self.clock.now();
        let mut timeout = max_wait;
        if let Some(t) = self.snd.poll_at() {
            timeout = timeout.min(until(now, t));
        }
        // Keepalive and idle policing need turns even in total silence.
        timeout = timeout.min(wall(self.cfg.keepalive_interval));
        if !timeout.is_zero() {
            let socks: Vec<&BatchSocket> = self.socks.iter().collect();
            wait_readable(&socks, timeout)?;
        }
        Ok(())
    }

    /// Poll until every admitted message completes or `deadline` hits.
    pub fn flush(&mut self, deadline: Instant) -> Result<(), SessionError> {
        while self.snd.outstanding() > 0 {
            if Instant::now() >= deadline {
                return Err(SessionError::WallDeadline {
                    outstanding: self.snd.outstanding(),
                });
            }
            self.poll()?;
            if self.snd.outstanding() > 0 {
                self.wait(std::time::Duration::from_millis(5))?;
            }
        }
        Ok(())
    }

    /// Graceful close: flush outstanding messages, then run the FIN
    /// exchange (same backoff discipline as the handshake). On success
    /// every message was acknowledged *and* the peer confirmed the
    /// goodbye; a lost final FIN-ACK is covered by the listener's
    /// TIME-WAIT re-acks.
    pub fn close(&mut self, deadline: Instant) -> Result<(), SessionError> {
        match self.state {
            SessionState::Closed => return Ok(()),
            SessionState::Established => {}
            _ => return Err(SessionError::Closed),
        }
        self.flush(deadline)?;
        self.state = SessionState::Closing;
        let mut rto = self.cfg.handshake_rto;
        for try_n in 0..self.cfg.handshake_tries {
            self.close_rounds = try_n + 1;
            self.send_ctrl(CtrlKind::Fin, try_n)?;
            self.registry.count(Metric::SessionFinTx, 1);
            let jitter = SimDuration(self.rng.gen_range(0..=rto.0 / 4));
            let round_ends = Instant::now() + wall(rto + jitter);
            while Instant::now() < round_ends {
                self.poll()?;
                if self.fin_acked {
                    self.state = SessionState::Closed;
                    return Ok(());
                }
                let remaining = round_ends.saturating_duration_since(Instant::now());
                self.wait(remaining.min(std::time::Duration::from_millis(5)))?;
            }
            rto = SimDuration((rto.0 * 2).min(self.cfg.handshake_rto_max.0));
            if Instant::now() >= deadline {
                break;
            }
        }
        self.state = SessionState::Failed;
        Err(SessionError::CloseTimeout {
            tries: self.close_rounds,
            outstanding: self.snd.outstanding(),
        })
    }

    /// The session's lifecycle state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// The session's clock reading (sim picoseconds since construction).
    pub fn now(&self) -> Time {
        self.clock.now()
    }

    /// The id the *next* submitted message will get (ids are allocated
    /// sequentially from `msg_id_base`) — lets a caller synthesize
    /// content that depends on the id before submitting it.
    pub fn next_msg_id(&self) -> u64 {
        self.cfg.msg_id_base + self.submitted
    }

    /// This side's session id.
    pub fn session_id(&self) -> u64 {
        self.sid
    }

    /// The listener-assigned peer session id (0 before establishment).
    pub fn peer_session_id(&self) -> u64 {
        self.peer_sid
    }

    /// HELLO rounds the handshake took (1 = first try answered).
    pub fn handshake_rounds(&self) -> u32 {
        self.handshake_rounds
    }

    /// FIN rounds the close took (0 = close never ran).
    pub fn close_rounds(&self) -> u32 {
        self.close_rounds
    }

    /// Packets emitted per repair round, in round order.
    pub fn retx_rounds(&self) -> &[u32] {
        &self.retx_rounds
    }

    /// `(msg_id, completed_at)` for every completed message so far.
    pub fn completions(&self) -> &[(u64, Time)] {
        &self.completions
    }

    /// Messages admitted and not yet completed.
    pub fn outstanding(&self) -> usize {
        self.snd.outstanding()
    }

    /// Payload bytes currently buffered for retransmission.
    pub fn buffered_bytes(&self) -> u64 {
        self.buffered_bytes
    }

    /// The sans-IO sender core (for instrumentation and tests).
    pub fn core(&self) -> &MtpSender {
        &self.snd
    }

    /// Telemetry recorded by this session.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

// ---------------------------------------------------------------------------
// Listener / receiver session
// ---------------------------------------------------------------------------

/// What one served session delivered.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// The connector's session id.
    pub client_sid: u64,
    /// This listener's session id.
    pub server_sid: u64,
    /// `(msg_id, bytes)` per delivery event, sorted by id.
    pub delivered: Vec<(u64, u32)>,
    /// `(msg_id, bytes, digest)` per delivery, digest computed from the
    /// actually reassembled bytes.
    pub digests: Vec<(u64, u32, u64)>,
    /// First-copy payload bytes delivered.
    pub goodput: u64,
    /// High-water mark of reassembly bytes held at once.
    pub peak_reasm_bytes: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    Established,
    TimeWait { until: Time },
}

struct Conn {
    client_sid: u64,
    server_sid: u64,
    ctrl_peer: SocketAddrV4,
    state: ConnState,
    recv: MtpReceiver,
    reasm: HashMap<u64, Vec<u8>>,
    reasm_bytes: u64,
    peak_reasm_bytes: u64,
    delivered: Vec<(u64, u32)>,
    digests: Vec<(u64, u32, u64)>,
    last_heard: Time,
}

/// The listening, receiving end: owns a control socket (the published
/// rendezvous address) plus one data socket per pathlet, accepts one
/// session at a time, and serves it through FIN and TIME-WAIT.
///
/// Single-session by design — the workspace's wire proofs are pairwise —
/// but nothing leaks between sessions: when a session finalizes (linger
/// expiry or idle death) its state is dropped and the listener accepts
/// the next HELLO, as the kill/restart chaos scenario exercises.
pub struct Listener {
    cfg: SessionConfig,
    ctrl: BatchSocket,
    socks: Vec<BatchSocket>,
    clock: MonotonicClock,
    rng: SmallRng,
    conn: Option<Conn>,
    finished: Vec<SessionReport>,
    died: Option<SessionError>,
    ev_buf: Vec<MsgDelivered>,
    dgrams: Vec<(Vec<u8>, SocketAddrV4)>,
    registry: Registry,
}

impl Listener {
    /// Bind a listener on an ephemeral control port.
    pub fn bind(cfg: &SessionConfig) -> io::Result<Listener> {
        Listener::bind_at(cfg, SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0))
    }

    /// Bind a listener whose control socket sits at `ctrl_addr` — how a
    /// restarted peer reappears at the address its clients know.
    pub fn bind_at(cfg: &SessionConfig, ctrl_addr: SocketAddrV4) -> io::Result<Listener> {
        Ok(Listener {
            cfg: cfg.clone(),
            ctrl: BatchSocket::bind(ctrl_addr)?,
            socks: bind_pathlet_sockets(cfg.io.pathlets)?,
            clock: MonotonicClock::new(),
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0x0011_57EA_D1AC_CE97),
            conn: None,
            finished: Vec::new(),
            died: None,
            ev_buf: Vec::new(),
            dgrams: Vec::new(),
            registry: Registry::new(),
        })
    }

    /// The control (rendezvous) address connectors HELLO.
    pub fn hello_addr(&self) -> io::Result<SocketAddrV4> {
        self.ctrl.local_addr()
    }

    /// The per-pathlet data addresses (what HELLO-ACKs advertise).
    pub fn pathlet_addrs(&self) -> io::Result<Vec<SocketAddrV4>> {
        self.socks.iter().map(|s| s.local_addr()).collect()
    }

    /// Sessions currently held (established or lingering): the leak
    /// check the chaos soak asserts reaches zero.
    pub fn active_sessions(&self) -> usize {
        usize::from(self.conn.is_some())
    }

    /// The active session's state, if any.
    pub fn session_state(&self) -> Option<SessionState> {
        self.conn.as_ref().map(|c| match c.state {
            ConnState::Established => SessionState::Established,
            ConnState::TimeWait { .. } => SessionState::TimeWait,
        })
    }

    /// `(msg_id, bytes)` delivered by the *active* session so far (the
    /// kill scenario snapshots this before dropping the listener).
    pub fn delivered_snapshot(&self) -> Vec<(u64, u32)> {
        self.conn
            .as_ref()
            .map(|c| c.delivered.clone())
            .unwrap_or_default()
    }

    /// Telemetry recorded by this listener.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Reports of sessions that ran to completion (FIN + linger).
    pub fn take_finished(&mut self) -> Vec<SessionReport> {
        std::mem::take(&mut self.finished)
    }

    fn send_ctrl_to(&mut self, to: SocketAddrV4, ctrl: &SessionCtrl) -> io::Result<()> {
        let dgram = ctrl_datagram(ctrl, self.cfg.io.datagram_budget)?;
        let report = self.ctrl.send_batch(&[(to, dgram.as_slice())])?;
        self.registry
            .count(Metric::WireDatagramsTx, report.datagrams as u64);
        self.registry
            .count(Metric::WireSendBatches, report.syscalls as u64);
        self.registry.count(Metric::WireFramesTx, 1);
        Ok(())
    }

    /// One non-blocking service turn: control socket, data sockets,
    /// receiver GC, liveness, linger expiry. Call
    /// [`wait`](Listener::wait) between turns, or use
    /// [`run_until_closed`](Listener::run_until_closed).
    pub fn poll_once(&mut self) -> io::Result<()> {
        self.drain_ctrl()?;
        self.drain_data()?;
        let now = self.clock.now();
        if let Some(conn) = &mut self.conn {
            if conn.recv.poll_at().is_some_and(|t| t <= now) {
                conn.recv.on_poll(now);
            }
            match conn.state {
                ConnState::Established => {
                    if now.since(conn.last_heard) > self.cfg.idle_timeout {
                        let silence = wall(now.since(conn.last_heard));
                        self.registry.count(Metric::SessionPeerDeaths, 1);
                        self.drop_conn();
                        self.died = Some(SessionError::PeerDead {
                            silence,
                            pending: Vec::new(),
                            path_health: PathHealth::default(),
                        });
                    }
                }
                ConnState::TimeWait { until } => {
                    if now >= until {
                        self.finalize_conn();
                    }
                }
            }
        }
        Ok(())
    }

    fn drop_conn(&mut self) {
        if let Some(conn) = self.conn.take() {
            self.registry.gauge_add(Gauge::SessionsActive, -1);
            self.registry
                .gauge_add(Gauge::SessionReasmBytes, -(conn.reasm_bytes as i64));
        }
    }

    fn finalize_conn(&mut self) {
        if let Some(conn) = self.conn.take() {
            self.registry.gauge_add(Gauge::SessionsActive, -1);
            self.registry
                .gauge_add(Gauge::SessionReasmBytes, -(conn.reasm_bytes as i64));
            let mut delivered = conn.delivered;
            delivered.sort_unstable();
            self.finished.push(SessionReport {
                client_sid: conn.client_sid,
                server_sid: conn.server_sid,
                delivered,
                digests: conn.digests,
                goodput: conn.recv.stats.goodput_bytes,
                peak_reasm_bytes: conn.peak_reasm_bytes,
            });
        }
    }

    fn drain_ctrl(&mut self) -> io::Result<()> {
        let mut dgrams = std::mem::take(&mut self.dgrams);
        dgrams.clear();
        let report = self
            .ctrl
            .recv_batch(self.cfg.io.datagram_budget + 64, &mut dgrams)?;
        self.registry
            .count(Metric::WireDatagramsRx, report.datagrams as u64);
        self.registry
            .count(Metric::WireRecvBatches, report.syscalls as u64);
        for (bytes, src) in dgrams.drain(..) {
            for frame in FrameIter::new(&bytes) {
                match frame {
                    Ok((FrameKind::Ctrl, body)) => self.on_ctrl_frame(src, body)?,
                    Ok((FrameKind::Mtp, _)) => {
                        self.registry.count(Metric::SessionOrphanFrames, 1);
                    }
                    Err(_) => {
                        self.registry.count(Metric::WireParseErrors, 1);
                    }
                }
            }
        }
        self.dgrams = dgrams;
        Ok(())
    }

    fn on_ctrl_frame(&mut self, src: SocketAddrV4, body: &[u8]) -> io::Result<()> {
        let Ok((ctrl, used)) = SessionCtrl::parse_sealed(body) else {
            self.registry.count(Metric::WireParseErrors, 1);
            return Ok(());
        };
        if used != body.len() {
            self.registry.count(Metric::WireParseErrors, 1);
            return Ok(());
        }
        self.registry.count(Metric::WireFramesRx, 1);
        if ctrl.version != SESSION_WIRE_VERSION {
            // A version this listener does not speak: ignore it. The
            // connector keeps retrying and times out with a typed
            // handshake error — the defined cross-version outcome.
            self.registry.count(Metric::SessionCtrlRejected, 1);
            return Ok(());
        }
        match ctrl.kind {
            CtrlKind::Hello => self.on_hello(src, &ctrl)?,
            CtrlKind::Ping => {
                let (matches, server_sid) = match &mut self.conn {
                    Some(c) if c.client_sid == ctrl.session_id => {
                        c.last_heard = self.clock.now();
                        c.ctrl_peer = src;
                        (true, c.server_sid)
                    }
                    _ => (false, 0),
                };
                if matches {
                    self.registry.count(Metric::SessionKeepaliveRx, 1);
                    let mut pong = SessionCtrl::new(CtrlKind::Pong, ctrl.session_id, server_sid);
                    pong.src_port = self.cfg.server_port;
                    pong.dst_port = self.cfg.client_port;
                    pong.seq = ctrl.seq;
                    self.send_ctrl_to(src, &pong)?;
                    self.registry.count(Metric::SessionKeepaliveTx, 1);
                } else {
                    self.registry.count(Metric::SessionCtrlRejected, 1);
                }
            }
            CtrlKind::Fin => self.on_fin(src, &ctrl)?,
            // HELLO-ACK / FIN-ACK / PONG arriving at a listener are
            // misdirected (or reflected) frames.
            _ => {
                self.registry.count(Metric::SessionCtrlRejected, 1);
            }
        }
        Ok(())
    }

    fn hello_ack(&self, client_sid: u64, server_sid: u64, seq: u32) -> io::Result<SessionCtrl> {
        let mut ack = SessionCtrl::new(CtrlKind::HelloAck, client_sid, server_sid);
        ack.src_port = self.cfg.server_port;
        ack.dst_port = self.cfg.client_port;
        ack.seq = seq;
        ack.ports = self
            .pathlet_addrs()?
            .iter()
            .map(SocketAddrV4::port)
            .collect();
        Ok(ack)
    }

    fn on_hello(&mut self, src: SocketAddrV4, hello: &SessionCtrl) -> io::Result<()> {
        match &mut self.conn {
            // Duplicate HELLO of the live session (first HELLO-ACK lost,
            // or a backoff retry crossing it): idempotent re-ack.
            Some(c) if c.client_sid == hello.session_id => {
                c.last_heard = self.clock.now();
                c.ctrl_peer = src;
                let server_sid = c.server_sid;
                self.registry.count(Metric::SessionHelloRx, 1);
                let ack = self.hello_ack(hello.session_id, server_sid, hello.seq)?;
                self.send_ctrl_to(src, &ack)?;
            }
            // A different connector while a session is live: refuse
            // silently (bounded state — no queue of half-open peers).
            Some(_) => {
                self.registry.count(Metric::SessionCtrlRejected, 1);
            }
            None => {
                self.registry.count(Metric::SessionHelloRx, 1);
                let now = self.clock.now();
                let server_sid = self.rng.next_u64() | 1;
                self.conn = Some(Conn {
                    client_sid: hello.session_id,
                    server_sid,
                    ctrl_peer: src,
                    state: ConnState::Established,
                    recv: MtpReceiver::new(self.cfg.server_port)
                        .with_sack_redundancy(self.cfg.io.sack_redundancy)
                        .with_gc_linger(self.cfg.io.gc_linger),
                    reasm: HashMap::new(),
                    reasm_bytes: 0,
                    peak_reasm_bytes: 0,
                    delivered: Vec::new(),
                    digests: Vec::new(),
                    last_heard: now,
                });
                self.registry.gauge_add(Gauge::SessionsActive, 1);
                self.died = None;
                let ack = self.hello_ack(hello.session_id, server_sid, hello.seq)?;
                self.send_ctrl_to(src, &ack)?;
            }
        }
        Ok(())
    }

    fn on_fin(&mut self, src: SocketAddrV4, fin: &SessionCtrl) -> io::Result<()> {
        let now = self.clock.now();
        let (acked, server_sid) = match &mut self.conn {
            Some(c) if c.client_sid == fin.session_id => {
                c.last_heard = now;
                c.ctrl_peer = src;
                if matches!(c.state, ConnState::Established) {
                    c.state = ConnState::TimeWait {
                        until: now + self.cfg.linger,
                    };
                }
                (true, c.server_sid)
            }
            _ => (false, 0),
        };
        if acked {
            self.registry.count(Metric::SessionFinRx, 1);
            let mut ack = SessionCtrl::new(CtrlKind::FinAck, fin.session_id, server_sid);
            ack.src_port = self.cfg.server_port;
            ack.dst_port = self.cfg.client_port;
            ack.seq = fin.seq;
            self.send_ctrl_to(src, &ack)?;
        } else {
            // A FIN for a session already finalized (linger expired):
            // nothing to ack with; the closer's retries are bounded.
            self.registry.count(Metric::SessionCtrlRejected, 1);
        }
        Ok(())
    }

    fn drain_data(&mut self) -> io::Result<()> {
        let mut dgrams = std::mem::take(&mut self.dgrams);
        // Open ACK datagram per (socket, peer) this round.
        let mut acks: Vec<(usize, SocketAddrV4, Vec<Vec<u8>>)> = Vec::new();
        for p in 0..self.socks.len() {
            dgrams.clear();
            let report = self.socks[p].recv_batch(self.cfg.io.datagram_budget + 64, &mut dgrams)?;
            self.registry
                .count(Metric::WireDatagramsRx, report.datagrams as u64);
            self.registry
                .count(Metric::WireRecvBatches, report.syscalls as u64);
            for (bytes, src) in dgrams.drain(..) {
                self.on_data_datagram(p, src, &bytes, &mut acks)?;
            }
        }
        self.dgrams = dgrams;
        // Flush coalesced ACKs back out the sockets they arrived on.
        for (p, peer, out) in acks {
            let sends: Vec<(SocketAddrV4, &[u8])> =
                out.iter().map(|d| (peer, d.as_slice())).collect();
            let report = self.socks[p].send_batch(&sends)?;
            self.registry
                .count(Metric::WireDatagramsTx, report.datagrams as u64);
            self.registry
                .count(Metric::WireSendBatches, report.syscalls as u64);
        }
        Ok(())
    }

    fn on_data_datagram(
        &mut self,
        p: usize,
        src: SocketAddrV4,
        bytes: &[u8],
        acks: &mut Vec<(usize, SocketAddrV4, Vec<Vec<u8>>)>,
    ) -> io::Result<()> {
        for frame in FrameIter::new(bytes) {
            let body = match frame {
                Ok((FrameKind::Mtp, body)) => body,
                Ok((FrameKind::Ctrl, _)) => {
                    // Control belongs on the control socket.
                    self.registry.count(Metric::SessionCtrlRejected, 1);
                    continue;
                }
                Err(_) => {
                    self.registry.count(Metric::WireParseErrors, 1);
                    break;
                }
            };
            let (mut hdr, used, payload_ok) = match MtpHeader::parse_sealed(body) {
                Ok(v) => v,
                Err(_) => {
                    self.registry.count(Metric::WireParseErrors, 1);
                    continue;
                }
            };
            self.registry.count(Metric::WireFramesRx, 1);
            if hdr.pkt_type != PktType::Data {
                continue;
            }
            let Some(conn) = &mut self.conn else {
                // No session owns this data (it died, or never was):
                // count and drop — no ACK keeps the sender honest.
                self.registry.count(Metric::SessionOrphanFrames, 1);
                continue;
            };
            if !matches!(conn.state, ConnState::Established) {
                self.registry.count(Metric::SessionOrphanFrames, 1);
                continue;
            }
            let data = &body[used..];
            let end = hdr.pkt_offset as u64 + hdr.pkt_len as u64;
            if data.len() != hdr.pkt_len as usize || end > hdr.msg_len_bytes as u64 {
                self.registry.count(Metric::WireParseErrors, 1);
                continue;
            }
            if !payload_ok {
                // Trustworthy header, untrustworthy payload: drop with
                // no ACK, exactly as the sim sink does, and the sender
                // repairs it like any loss.
                self.registry.count(Metric::WirePayloadCsumFail, 1);
                continue;
            }
            // Reassembly admission: a message not yet buffered only
            // starts reassembling if its whole length fits the cap.
            // Refusing means no `on_data`, hence no ACK — the sender
            // retransmits once delivery has drained room. An empty
            // buffer always admits (progress guarantee).
            let msg_new = !conn.reasm.contains_key(&hdr.msg_id.0);
            if msg_new
                && !conn.reasm.is_empty()
                && conn.reasm_bytes + hdr.msg_len_bytes as u64 > self.cfg.caps.max_reassembly_bytes
            {
                self.registry.count(Metric::SessionReasmRefused, 1);
                continue;
            }
            conn.last_heard = self.clock.now();
            // This driver is the first-hop network: stamp which pathlet
            // (socket) the packet actually used, so the sender's
            // per-pathlet controllers attribute feedback to real ports.
            hdr.path_feedback.clear();
            hdr.path_feedback.push(PathFeedback {
                path: PathletId(p as u16),
                tc: hdr.tc,
                feedback: Feedback::EcnMark { ce: false },
            });
            let now = self.clock.now();
            let (ack, newly) = conn.recv.on_data(now, &hdr, EcnCodepoint::Ect0);
            if newly > 0 {
                if msg_new {
                    conn.reasm_bytes += hdr.msg_len_bytes as u64;
                    conn.peak_reasm_bytes = conn.peak_reasm_bytes.max(conn.reasm_bytes);
                    self.registry
                        .gauge_add(Gauge::SessionReasmBytes, hdr.msg_len_bytes as i64);
                }
                let buf = conn
                    .reasm
                    .entry(hdr.msg_id.0)
                    .or_insert_with(|| vec![0; hdr.msg_len_bytes as usize]);
                buf[hdr.pkt_offset as usize..end as usize].copy_from_slice(data);
            }
            self.queue_ack(p, src, ack, acks)?;
            self.drain_deliveries();
        }
        Ok(())
    }

    fn queue_ack(
        &mut self,
        p: usize,
        peer: SocketAddrV4,
        ack: Packet,
        acks: &mut Vec<(usize, SocketAddrV4, Vec<Vec<u8>>)>,
    ) -> io::Result<()> {
        let Headers::Mtp(ack_hdr) = ack.headers else {
            return Ok(());
        };
        let budget = self.cfg.io.datagram_budget;
        let pos = match acks.iter().position(|(sp, sa, _)| *sp == p && *sa == peer) {
            Some(i) => i,
            None => {
                acks.push((p, peer, vec![Vec::new()]));
                acks.len() - 1
            }
        };
        let slot = &mut acks[pos].2;
        let open = slot.last_mut().expect("always one open datagram");
        match append_frame(open, budget, &ack_hdr, &[]) {
            Ok(true) => {}
            Ok(false) => {
                slot.push(Vec::new());
                let open = slot.last_mut().expect("just pushed");
                append_frame(open, budget, &ack_hdr, &[]).map_err(invalid)?;
            }
            Err(e) => return Err(invalid(e)),
        }
        self.registry.count(Metric::WireFramesTx, 1);
        mtp_sim::pool::recycle_header(ack_hdr);
        Ok(())
    }

    fn drain_deliveries(&mut self) {
        let Some(conn) = &mut self.conn else {
            return;
        };
        let mut ev = std::mem::take(&mut self.ev_buf);
        conn.recv.drain_events(&mut ev);
        for d in ev.drain(..) {
            let buf = conn.reasm.remove(&d.id.0).unwrap_or_default();
            debug_assert_eq!(buf.len(), d.bytes as usize);
            conn.reasm_bytes -= buf.len() as u64;
            self.registry
                .gauge_add(Gauge::SessionReasmBytes, -(buf.len() as i64));
            conn.digests
                .push((d.id.0, d.bytes, payload::message_digest(&buf)));
            conn.delivered.push((d.id.0, d.bytes));
        }
        self.ev_buf = ev;
    }

    /// Block until any socket is readable or `max_wait` passes.
    pub fn wait(&mut self, max_wait: std::time::Duration) -> io::Result<()> {
        let mut timeout = max_wait;
        if let Some(conn) = &mut self.conn {
            let now = self.clock.now();
            if let Some(t) = conn.recv.poll_at() {
                timeout = timeout.min(until(now, t));
            }
            if let ConnState::TimeWait { until: u } = conn.state {
                timeout = timeout.min(until(now, u));
            }
        }
        if !timeout.is_zero() {
            let mut socks: Vec<&BatchSocket> = self.socks.iter().collect();
            socks.push(&self.ctrl);
            wait_readable(&socks, timeout)?;
        }
        Ok(())
    }

    /// Serve until one full session lifecycle completes (HELLO through
    /// FIN and linger) and return its report; a peer death or the wall
    /// deadline is a typed error. The serve-until-sender-says-done side
    /// channel is gone — the protocol itself says when serving is over.
    pub fn run_until_closed(&mut self, deadline: Instant) -> Result<SessionReport, SessionError> {
        loop {
            self.poll_once()?;
            if let Some(report) = self.finished.pop() {
                return Ok(report);
            }
            if let Some(err) = self.died.take() {
                return Err(err);
            }
            if Instant::now() >= deadline {
                return Err(SessionError::WallDeadline {
                    outstanding: self.conn.as_ref().map_or(0, |c| c.reasm.len()),
                });
            }
            self.wait(std::time::Duration::from_millis(5))?;
        }
    }
}
