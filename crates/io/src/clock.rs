//! The clock boundary between the sans-IO cores and the outside world.
//!
//! The endpoint cores take [`Time`] — picoseconds from an arbitrary
//! epoch — on every call and never read a clock themselves. In the
//! simulator the engine supplies virtual time; on the wire a driver
//! supplies real time through this trait. Because the cores only ever
//! *difference* times (RTT samples, RTO deadlines, quarantine spans),
//! the epoch is free: [`MonotonicClock`] simply anchors `Time::ZERO` at
//! construction.

use std::time::Instant;

use mtp_sim::time::Time;

/// A source of monotonic picosecond timestamps for driving the cores.
pub trait Clock {
    /// The current instant.
    fn now(&self) -> Time;
}

/// Real time: `std::time::Instant` elapsed-since-construction, scaled
/// to the simulator's picosecond unit.
#[derive(Debug, Clone, Copy)]
pub struct MonotonicClock {
    start: Instant,
}

impl MonotonicClock {
    /// A clock whose `Time::ZERO` is now.
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            start: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> Time {
        // u64 picoseconds wrap after ~213 days of process uptime; a
        // saturating conversion keeps pathological cases monotone.
        let nanos = self.start.elapsed().as_nanos();
        Time((nanos.saturating_mul(1_000)).min(u64::MAX as u128) as u64)
    }
}

/// A hand-advanced clock for unit tests.
#[derive(Debug, Clone)]
pub struct ManualClock {
    now: std::cell::Cell<u64>,
}

impl ManualClock {
    /// A clock reading `Time::ZERO`.
    pub fn new() -> ManualClock {
        ManualClock {
            now: std::cell::Cell::new(0),
        }
    }

    /// Advance by `ps` picoseconds.
    pub fn advance(&self, ps: u64) {
        self.now.set(self.now.get() + ps);
    }

    /// Jump to an absolute instant (must not move backwards).
    pub fn set(&self, t: Time) {
        debug_assert!(t.0 >= self.now.get(), "manual clock moved backwards");
        self.now.set(t.0);
    }
}

impl Default for ManualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Time {
        Time(self.now.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotone() {
        let c = MonotonicClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Time(0));
        c.advance(5);
        assert_eq!(c.now(), Time(5));
        c.set(Time(9));
        assert_eq!(c.now(), Time(9));
    }
}
