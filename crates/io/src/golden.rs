//! The golden workload and its simulator reference run.
//!
//! Interop proof structure: generate one seeded workload, run it through
//! the discrete-event simulator (virtual time, modeled links), then run
//! the *same* workload through the wire driver (real time, real kernel
//! sockets), and demand that the delivered *content* is byte-identical —
//! same message ids, same lengths, same per-message payload digests (as
//! [`crate::payload`] defines content), and an exactly-once
//! [`Ledger`] on both sides. Timings legitimately differ between the two
//! worlds; content may not.
//!
//! Message ids make this comparison possible: both worlds submit the
//! workload's messages in schedule order to a core constructed with the
//! same `msg_id_base`, and the sender allocates ids monotonically, so
//! message *k* gets the same id in both runs.

use mtp_core::{MtpConfig, MtpSenderNode, MtpSinkNode, ScheduledMsg};
use mtp_faults::Ledger;
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::{LinkCfg, PortId, Simulator};
use mtp_wire::{EntityId, MsgId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::payload;

/// The `msg_id_base` both worlds construct their sender with.
pub const GOLDEN_MSG_ID_BASE: u64 = 7 << 32;

/// One seeded message workload, identical across worlds.
#[derive(Debug, Clone)]
pub struct GoldenWorkload {
    /// The seed that produced it (recorded for diagnostics).
    pub seed: u64,
    /// `(submit_offset, bytes)` per message, in submission order.
    pub msgs: Vec<(Duration, u32)>,
}

impl GoldenWorkload {
    /// Generate `n` messages of `min..=max` bytes, submissions staggered
    /// a few microseconds apart so the sim schedule is deterministic.
    pub fn generate(seed: u64, n: usize, min: u32, max: u32) -> GoldenWorkload {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut at = Duration(0);
        let msgs = (0..n)
            .map(|_| {
                let bytes = rng.gen_range(min..=max);
                let this = at;
                at += Duration::from_micros(rng.gen_range(1..=20));
                (this, bytes)
            })
            .collect();
        GoldenWorkload { seed, msgs }
    }

    /// The schedule as sim host submissions starting at `Time::ZERO`.
    pub fn schedule(&self) -> Vec<ScheduledMsg> {
        self.msgs
            .iter()
            .map(|&(off, bytes)| ScheduledMsg::new(Time::ZERO + off, bytes))
            .collect()
    }

    /// Total payload bytes across the workload.
    pub fn total_bytes(&self) -> u64 {
        self.msgs.iter().map(|&(_, b)| b as u64).sum()
    }

    /// The content digest a correct run must reproduce: every message
    /// delivered exactly once with [`crate::payload::fill`] content.
    pub fn expected_digest(&self) -> u64 {
        let mut scratch = Vec::new();
        let triples: Vec<(u64, u32, u64)> = self
            .msgs
            .iter()
            .enumerate()
            .map(|(k, &(_, bytes))| {
                let id = MsgId(GOLDEN_MSG_ID_BASE + k as u64);
                (
                    id.0,
                    bytes,
                    payload::synth_message_digest(id, bytes, &mut scratch),
                )
            })
            .collect();
        payload::content_digest(&triples)
    }
}

/// What the simulator reference run produced.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Exactly-once ledger (already asserted).
    pub ledger: Ledger,
    /// Combined content digest of everything delivered.
    pub content_digest: u64,
    /// Virtual time the run took to complete.
    pub sim_elapsed: Duration,
}

/// Run `workload` through the simulator on a clean 10 Gbps / 2 µs
/// loopback-like link pair and return its ledger and content digest.
///
/// The sim never materializes payload bytes, so its digest is
/// *synthesized* from the delivered `(id, bytes)` pairs — which is the
/// point: if the wire run reassembles different bytes for any message,
/// its digest (computed from real buffers) will disagree.
pub fn run_sim_golden(workload: &GoldenWorkload) -> SimOutcome {
    let rate = Bandwidth::from_gbps(10);
    let d = Duration::from_micros(2);
    let mut sim = Simulator::new(workload.seed);
    let snd = sim.add_node(Box::new(MtpSenderNode::new(
        MtpConfig::default(),
        1,
        2,
        EntityId(0),
        GOLDEN_MSG_ID_BASE,
        workload.schedule(),
    )));
    let sink = sim.add_node(Box::new(
        MtpSinkNode::new(2, Duration::from_micros(100)).with_sack_redundancy(8),
    ));
    sim.connect(
        snd,
        PortId(0),
        sink,
        PortId(0),
        LinkCfg::drop_tail(rate, d, 1024),
        LinkCfg::drop_tail(rate, d, 1024),
    );
    let horizon = Time::ZERO + Duration::from_millis(500);
    sim.run_until(horizon);
    assert!(
        sim.node_as::<MtpSenderNode>(snd).all_done(),
        "golden sim run failed to complete within its horizon"
    );
    mtp_sim::assert_conservation(&sim);

    let ledger = Ledger::capture(&sim, snd, sink);
    ledger.assert_exactly_once("golden sim run");

    let mut scratch = Vec::new();
    let triples: Vec<(u64, u32, u64)> = ledger
        .delivered
        .iter()
        .map(|&(id, bytes)| {
            (
                id,
                bytes,
                payload::synth_message_digest(MsgId(id), bytes, &mut scratch),
            )
        })
        .collect();
    let content_digest = payload::content_digest(&triples);

    let sim_elapsed = Duration(
        ledger
            .completed
            .iter()
            .map(|&(_, at)| at)
            .max()
            .unwrap_or(0),
    );
    SimOutcome {
        ledger,
        content_digest,
        sim_elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_generation_is_deterministic() {
        let a = GoldenWorkload::generate(11, 20, 100, 50_000);
        let b = GoldenWorkload::generate(11, 20, 100, 50_000);
        assert_eq!(a.msgs, b.msgs);
        let c = GoldenWorkload::generate(12, 20, 100, 50_000);
        assert_ne!(a.msgs, c.msgs);
    }

    #[test]
    fn sim_golden_reproduces_expected_digest() {
        let w = GoldenWorkload::generate(3, 12, 64, 20_000);
        let out = run_sim_golden(&w);
        assert_eq!(out.ledger.delivered.len(), 12);
        // The sim delivered every message exactly once, so its digest is
        // exactly the workload's closed-form expectation.
        assert_eq!(out.content_digest, w.expected_digest());
    }
}
