//! An in-process lossy UDP relay.
//!
//! The kernel's loopback path never drops, duplicates, or reorders a
//! datagram, so a wire test that wants loss must manufacture it. The
//! relay sits between the sender and the receiver as a set of real UDP
//! sockets — one per pathlet, plus (for session runs) one control lane —
//! and forwards datagrams both ways while applying seeded faults. Faults
//! are per *datagram*, which on this wire means whole coalesced bundles
//! of frames vanish or repeat at once — strictly harsher than the
//! simulator's per-packet faults.
//!
//! Topology per pathlet `p` (and likewise for the control lane):
//!
//! ```text
//! sender sock[p]  ⇄  relay sock[p]  ⇄  receiver sock[p]
//! ```
//!
//! The relay knows the receiver's addresses up front; it learns the
//! sender's address from the first datagram that is not from the
//! receiver, then forwards by source matching. An optional blackhole
//! kills one pathlet after a fault budget, for failover tests;
//! [`ChaosConfig`] adds a flapping variant plus control-plane faults for
//! the chaos soak.
//!
//! Because the session handshake advertises the listener's *real* data
//! ports inside HELLO-ACK, a relay that merely forwarded bytes would
//! route all subsequent data around itself. The control lane therefore
//! behaves like a NAT'ing middlebox: it rewrites the port map in
//! relayed HELLO-ACKs to its own lane ports (re-sealing the frame), so
//! the sender's data keeps crossing the faulty lanes.

use std::io;
use std::net::{Ipv4Addr, SocketAddrV4};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use mtp_wire::{CtrlKind, SessionCtrl};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::frame::{append_ctrl_frame, FrameIter, FrameKind, DEFAULT_DATAGRAM_BUDGET};
use crate::socket::{wait_readable, BatchSocket};

/// Largest datagram the relay will receive: the protocol's coalescing
/// budget plus slack. Receiving at 64 KiB would pin `BATCH` slots of
/// that size per thread for traffic that never exceeds ~9 KB.
const RELAY_DATAGRAM_MAX: usize = DEFAULT_DATAGRAM_BUDGET + 64;

/// Seeded fault rates, in parts-per-million per datagram.
#[derive(Debug, Clone)]
pub struct RelayConfig {
    /// Probability of discarding a datagram outright.
    pub drop_ppm: u32,
    /// Probability of forwarding a datagram twice.
    pub dup_ppm: u32,
    /// Probability of holding a datagram back until one more passes it.
    pub reorder_ppm: u32,
    /// RNG seed; one stream drives every fault decision.
    pub seed: u64,
    /// Kill pathlet `.0` entirely after it has forwarded `.1` datagrams
    /// in the sender→receiver direction.
    pub blackhole: Option<(usize, u64)>,
}

impl RelayConfig {
    /// Moderate loss on every pathlet: 2% drop, 1% dup, 1% reorder.
    pub fn lossy(seed: u64) -> RelayConfig {
        RelayConfig {
            drop_ppm: 20_000,
            dup_ppm: 10_000,
            reorder_ppm: 10_000,
            seed,
            blackhole: None,
        }
    }
}

/// Chaos-soak fault knobs layered on top of [`RelayConfig`]: control
/// plane faults and lane flapping. Kept separate so existing
/// data-plane tests construct `RelayConfig` exactly as before.
#[derive(Debug, Clone, Default)]
pub struct ChaosConfig {
    /// Deterministically swallow the first N sender→receiver control
    /// datagrams (HELLO retries must ride over this).
    pub ctrl_drop_first: u32,
    /// Probability of discarding a control datagram, either direction.
    /// `1_000_000` makes the control lane a dead drop — the handshake
    /// must then fail with its typed timeout.
    pub ctrl_drop_ppm: u32,
    /// Probability of forwarding a control datagram twice (duplicate
    /// HELLO/FIN delivery — idempotency food).
    pub ctrl_dup_ppm: u32,
    /// Deterministically swallow the first N sender→receiver control
    /// datagrams that carry a FIN (graceful close must retry over
    /// this — a seeded drop could let the first FIN through).
    pub fin_drop_first: u32,
    /// Flap pathlet `.0`: alternate alive/dead every `.1`
    /// sender→receiver datagrams (a blackhole that heals and relapses).
    pub flap: Option<(usize, u64)>,
}

/// A running relay; dropping it stops and joins the forwarding thread.
pub struct LossyRelay {
    addrs: Vec<SocketAddrV4>,
    ctrl_addr: Option<SocketAddrV4>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<RelayStats>>,
}

/// What the relay did to the traffic, for test diagnostics.
#[derive(Debug, Clone, Copy, Default)]
pub struct RelayStats {
    /// Datagrams forwarded unmodified.
    pub forwarded: u64,
    /// Datagrams discarded by the drop fault.
    pub dropped: u64,
    /// Extra copies emitted by the duplicate fault.
    pub duplicated: u64,
    /// Datagrams that were overtaken by a later one.
    pub reordered: u64,
    /// Datagrams swallowed by the blackhole (or a flap's dead phase).
    pub blackholed: u64,
    /// Control-lane datagrams forwarded.
    pub ctrl_forwarded: u64,
    /// Control-lane datagrams discarded (deterministic or seeded).
    pub ctrl_dropped: u64,
    /// Control-lane datagrams forwarded twice.
    pub ctrl_duplicated: u64,
    /// HELLO-ACKs whose advertised port maps were NAT-rewritten.
    pub acks_rewritten: u64,
    /// Lanes (pathlets) that carried at least one sender→receiver
    /// datagram — the spray proof that multi-pathlet traffic really
    /// crossed distinct ports rather than collapsing onto one.
    /// Control-lane traffic is not counted.
    pub lanes_with_traffic: usize,
}

struct Lane {
    sock: BatchSocket,
    dst: SocketAddrV4,
    sender: Option<SocketAddrV4>,
    /// A datagram held back by the reorder fault: (destination, bytes).
    stash: Option<(SocketAddrV4, Vec<u8>)>,
    /// Sender→receiver datagrams seen, for the blackhole/flap budget.
    data_seen: u64,
    dead: bool,
}

struct CtrlLane {
    sock: BatchSocket,
    dst: SocketAddrV4,
    sender: Option<SocketAddrV4>,
    /// Sender→receiver control datagrams seen (drives `ctrl_drop_first`).
    seen: u64,
    /// Sender→receiver FIN datagrams seen (drives `fin_drop_first`).
    fins_seen: u64,
    /// Listener data port → relay lane port, for the HELLO-ACK rewrite.
    port_map: Vec<(u16, u16)>,
}

impl LossyRelay {
    /// Start a data-plane relay in front of `receiver_addrs` (one lane
    /// per pathlet), with no control lane — the pre-session topology.
    pub fn start(cfg: RelayConfig, receiver_addrs: &[SocketAddrV4]) -> io::Result<LossyRelay> {
        LossyRelay::start_inner(cfg, ChaosConfig::default(), None, receiver_addrs)
    }

    /// Start a relay with a control lane in front of the listener's
    /// rendezvous address `ctrl_dst`, plus one data lane per pathlet.
    /// `chaos` adds control-plane faults and lane flapping.
    pub fn start_session(
        cfg: RelayConfig,
        chaos: ChaosConfig,
        ctrl_dst: SocketAddrV4,
        receiver_addrs: &[SocketAddrV4],
    ) -> io::Result<LossyRelay> {
        LossyRelay::start_inner(cfg, chaos, Some(ctrl_dst), receiver_addrs)
    }

    fn start_inner(
        cfg: RelayConfig,
        chaos: ChaosConfig,
        ctrl_dst: Option<SocketAddrV4>,
        receiver_addrs: &[SocketAddrV4],
    ) -> io::Result<LossyRelay> {
        let mut lanes = Vec::with_capacity(receiver_addrs.len());
        let mut addrs = Vec::with_capacity(receiver_addrs.len());
        for &dst in receiver_addrs {
            let sock = BatchSocket::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0))?;
            addrs.push(sock.local_addr()?);
            lanes.push(Lane {
                sock,
                dst,
                sender: None,
                stash: None,
                data_seen: 0,
                dead: false,
            });
        }
        let (ctrl, ctrl_addr) = match ctrl_dst {
            Some(dst) => {
                let sock = BatchSocket::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0))?;
                let addr = sock.local_addr()?;
                let port_map = receiver_addrs
                    .iter()
                    .zip(addrs.iter())
                    .map(|(real, lane)| (real.port(), lane.port()))
                    .collect();
                (
                    Some(CtrlLane {
                        sock,
                        dst,
                        sender: None,
                        seen: 0,
                        fins_seen: 0,
                        port_map,
                    }),
                    Some(addr),
                )
            }
            None => (None, None),
        };
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("mtp-io-relay".into())
            .spawn(move || relay_loop(cfg, chaos, lanes, ctrl, &stop2))?;
        Ok(LossyRelay {
            addrs,
            ctrl_addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The sender-facing data addresses, one per pathlet (same order as
    /// the receiver addresses the relay was started with).
    pub fn addrs(&self) -> &[SocketAddrV4] {
        &self.addrs
    }

    /// The sender-facing control address, when started with a control
    /// lane ([`LossyRelay::start_session`]).
    pub fn ctrl_addr(&self) -> Option<SocketAddrV4> {
        self.ctrl_addr
    }

    /// Stop the forwarding thread and return its fault statistics.
    pub fn stop(mut self) -> RelayStats {
        self.stop.store(true, Ordering::Relaxed);
        match self.handle.take() {
            Some(h) => h.join().unwrap_or_default(),
            None => RelayStats::default(),
        }
    }
}

impl Drop for LossyRelay {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Whether any control frame in this datagram is a FIN.
fn datagram_has_fin(bytes: &[u8]) -> bool {
    FrameIter::new(bytes).any(|frame| match frame {
        Ok((FrameKind::Ctrl, body)) => matches!(
            SessionCtrl::parse_sealed(body),
            Ok((c, used)) if used == body.len() && c.kind == CtrlKind::Fin
        ),
        _ => false,
    })
}

/// Append one raw frame (already-sealed body) to a rebuilt datagram.
fn append_raw(out: &mut Vec<u8>, kind: FrameKind, body: &[u8]) {
    let len = (body.len() + 1) as u16;
    out.extend_from_slice(&len.to_be_bytes());
    out.push(kind as u8);
    out.extend_from_slice(body);
}

/// NAT-rewrite a receiver→sender control datagram: every HELLO-ACK's
/// advertised port list is mapped from the listener's real data ports
/// onto the relay's lane ports and the frame re-sealed. Frames that are
/// not HELLO-ACKs (or fail to parse) pass through byte-identical.
fn rewrite_ctrl_datagram(bytes: &[u8], port_map: &[(u16, u16)], stats: &mut RelayStats) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len());
    for frame in FrameIter::new(bytes) {
        match frame {
            Ok((FrameKind::Ctrl, body)) => {
                let rewritten = SessionCtrl::parse_sealed(body)
                    .ok()
                    .and_then(|(mut c, used)| {
                        if used != body.len() || c.kind != CtrlKind::HelloAck {
                            return None;
                        }
                        for p in c.ports.iter_mut() {
                            if let Some(&(_, lane)) = port_map.iter().find(|&&(real, _)| real == *p)
                            {
                                *p = lane;
                            }
                        }
                        Some(c)
                    });
                match rewritten {
                    Some(c) => {
                        if append_ctrl_frame(&mut out, usize::MAX, &c).unwrap_or(false) {
                            stats.acks_rewritten += 1;
                        } else {
                            append_raw(&mut out, FrameKind::Ctrl, body);
                        }
                    }
                    None => append_raw(&mut out, FrameKind::Ctrl, body),
                }
            }
            Ok((kind, body)) => append_raw(&mut out, kind, body),
            Err(_) => break,
        }
    }
    out
}

fn relay_loop(
    cfg: RelayConfig,
    chaos: ChaosConfig,
    mut lanes: Vec<Lane>,
    mut ctrl: Option<CtrlLane>,
    stop: &AtomicBool,
) -> RelayStats {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut stats = RelayStats::default();
    let mut dgrams = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        {
            let mut socks: Vec<&BatchSocket> = lanes.iter().map(|l| &l.sock).collect();
            if let Some(c) = &ctrl {
                socks.push(&c.sock);
            }
            let _ = wait_readable(&socks, Duration::from_millis(1));
        }
        if let Some(c) = &mut ctrl {
            dgrams.clear();
            if c.sock.recv_batch(RELAY_DATAGRAM_MAX, &mut dgrams).is_ok() {
                for (bytes, src) in dgrams.drain(..) {
                    let from_receiver = src == c.dst;
                    if !from_receiver {
                        c.sender = Some(src);
                        c.seen += 1;
                        if c.seen <= chaos.ctrl_drop_first as u64 {
                            stats.ctrl_dropped += 1;
                            continue;
                        }
                        if chaos.fin_drop_first > 0 && datagram_has_fin(&bytes) {
                            c.fins_seen += 1;
                            if c.fins_seen <= chaos.fin_drop_first as u64 {
                                stats.ctrl_dropped += 1;
                                continue;
                            }
                        }
                    }
                    let fwd_to = if from_receiver {
                        match c.sender {
                            Some(a) => a,
                            None => {
                                stats.ctrl_dropped += 1;
                                continue;
                            }
                        }
                    } else {
                        c.dst
                    };
                    if rng.gen_range(0..1_000_000u32) < chaos.ctrl_drop_ppm {
                        stats.ctrl_dropped += 1;
                        continue;
                    }
                    let payload = if from_receiver {
                        rewrite_ctrl_datagram(&bytes, &c.port_map, &mut stats)
                    } else {
                        bytes
                    };
                    let dup = rng.gen_range(0..1_000_000u32) < chaos.ctrl_dup_ppm;
                    let mut sends: Vec<(SocketAddrV4, &[u8])> = vec![(fwd_to, payload.as_slice())];
                    if dup {
                        sends.push((fwd_to, payload.as_slice()));
                        stats.ctrl_duplicated += 1;
                    }
                    if c.sock.send_batch(&sends).is_ok() {
                        stats.ctrl_forwarded += 1;
                    }
                }
            }
        }
        for (p, lane) in lanes.iter_mut().enumerate() {
            dgrams.clear();
            if lane
                .sock
                .recv_batch(RELAY_DATAGRAM_MAX, &mut dgrams)
                .is_err()
            {
                continue;
            }
            for (bytes, src) in dgrams.drain(..) {
                let from_receiver = src == lane.dst;
                if !from_receiver {
                    lane.sender = Some(src);
                    lane.data_seen += 1;
                    if let Some((hole, after)) = cfg.blackhole {
                        if hole == p && lane.data_seen > after {
                            lane.dead = true;
                        }
                    }
                }
                // A flap is a blackhole that heals and relapses: the
                // lane alternates phases every `period` data datagrams.
                let flapped = matches!(
                    chaos.flap,
                    Some((l, period)) if l == p && period > 0 && (lane.data_seen / period) % 2 == 1
                );
                if lane.dead || flapped {
                    stats.blackholed += 1;
                    continue;
                }
                let fwd_to = if from_receiver {
                    match lane.sender {
                        Some(a) => a,
                        // An ACK before any data: nowhere to send it.
                        None => {
                            stats.dropped += 1;
                            continue;
                        }
                    }
                } else {
                    lane.dst
                };
                if rng.gen_range(0..1_000_000u32) < cfg.drop_ppm {
                    stats.dropped += 1;
                    continue;
                }
                let dup = rng.gen_range(0..1_000_000u32) < cfg.dup_ppm;
                let hold = rng.gen_range(0..1_000_000u32) < cfg.reorder_ppm;
                if hold && lane.stash.is_none() {
                    lane.stash = Some((fwd_to, bytes));
                    continue;
                }
                let mut sends: Vec<(SocketAddrV4, &[u8])> = vec![(fwd_to, bytes.as_slice())];
                if dup {
                    sends.push((fwd_to, bytes.as_slice()));
                    stats.duplicated += 1;
                }
                // Release any held datagram *after* this one: the held
                // one has now been overtaken.
                let held = lane.stash.take();
                if let Some((hdst, hbytes)) = &held {
                    sends.push((*hdst, hbytes.as_slice()));
                    stats.reordered += 1;
                }
                if lane.sock.send_batch(&sends).is_ok() {
                    stats.forwarded += 1;
                }
            }
        }
    }
    // Flush anything still stashed so shutdown is not itself a drop.
    for lane in lanes.iter_mut() {
        if let Some((dst, bytes)) = lane.stash.take() {
            if !lane.dead {
                let _ = lane.sock.send_batch(&[(dst, bytes.as_slice())]);
            }
        }
    }
    stats.lanes_with_traffic = lanes.iter().filter(|l| l.data_seen > 0).count();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::socket::loopback_available;

    #[test]
    fn relay_forwards_both_directions() {
        if !loopback_available() {
            eprintln!("NOTICE: UDP loopback unavailable; skipping relay_forwards_both_directions");
            return;
        }
        let rx = BatchSocket::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0)).unwrap();
        let relay = LossyRelay::start(
            RelayConfig {
                drop_ppm: 0,
                dup_ppm: 0,
                reorder_ppm: 0,
                seed: 1,
                blackhole: None,
            },
            &[rx.local_addr().unwrap()],
        )
        .unwrap();
        let tx = BatchSocket::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0)).unwrap();
        tx.send_batch(&[(relay.addrs()[0], &b"ping"[..])]).unwrap();

        let recv_one = |s: &BatchSocket| -> (Vec<u8>, SocketAddrV4) {
            let mut got = Vec::new();
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while got.is_empty() {
                assert!(std::time::Instant::now() < deadline, "relay timeout");
                let _ = wait_readable(&[s], Duration::from_millis(10));
                s.recv_batch(1500, &mut got).unwrap();
            }
            got.remove(0)
        };

        let (bytes, from) = recv_one(&rx);
        assert_eq!(bytes, b"ping");
        // Reply to the relay (as the MTP receiver replies to a datagram's
        // source); it must come back to the original sender.
        rx.send_batch(&[(from, &b"pong"[..])]).unwrap();
        let (bytes, _) = recv_one(&tx);
        assert_eq!(bytes, b"pong");
        let stats = relay.stop();
        assert_eq!(stats.forwarded, 2);
    }

    #[test]
    fn ctrl_lane_rewrites_hello_ack_ports() {
        if !loopback_available() {
            eprintln!(
                "NOTICE: UDP loopback unavailable; skipping ctrl_lane_rewrites_hello_ack_ports"
            );
            return;
        }
        let data_rx = BatchSocket::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0)).unwrap();
        let ctrl_rx = BatchSocket::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0)).unwrap();
        let real_data = data_rx.local_addr().unwrap();
        let relay = LossyRelay::start_session(
            RelayConfig {
                drop_ppm: 0,
                dup_ppm: 0,
                reorder_ppm: 0,
                seed: 1,
                blackhole: None,
            },
            ChaosConfig::default(),
            ctrl_rx.local_addr().unwrap(),
            &[real_data],
        )
        .unwrap();
        let relay_ctrl = relay.ctrl_addr().expect("session relay has a ctrl lane");
        let tx = BatchSocket::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0)).unwrap();

        // HELLO toward the listener so the relay learns the sender.
        let hello = SessionCtrl::new(CtrlKind::Hello, 7, 0);
        let mut dgram = Vec::new();
        append_ctrl_frame(&mut dgram, 65536, &hello).unwrap();
        tx.send_batch(&[(relay_ctrl, dgram.as_slice())]).unwrap();

        let recv_one = |s: &BatchSocket| -> (Vec<u8>, SocketAddrV4) {
            let mut got = Vec::new();
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while got.is_empty() {
                assert!(std::time::Instant::now() < deadline, "relay timeout");
                let _ = wait_readable(&[s], Duration::from_millis(10));
                s.recv_batch(RELAY_DATAGRAM_MAX, &mut got).unwrap();
            }
            got.remove(0)
        };
        let (_, from) = recv_one(&ctrl_rx);

        // HELLO-ACK back, advertising the listener's REAL data port.
        let mut ack = SessionCtrl::new(CtrlKind::HelloAck, 7, 9);
        ack.ports = vec![real_data.port()];
        let mut dgram = Vec::new();
        append_ctrl_frame(&mut dgram, 65536, &ack).unwrap();
        ctrl_rx.send_batch(&[(from, dgram.as_slice())]).unwrap();

        // The sender must see the RELAY's lane port instead.
        let (bytes, _) = recv_one(&tx);
        let frames: Vec<_> = FrameIter::new(&bytes).collect::<Result<_, _>>().unwrap();
        assert_eq!(frames.len(), 1);
        let (kind, body) = frames[0];
        assert_eq!(kind, FrameKind::Ctrl);
        let (got, used) = SessionCtrl::parse_sealed(body).unwrap();
        assert_eq!(used, body.len());
        assert_eq!(got.kind, CtrlKind::HelloAck);
        assert_eq!(got.ports, vec![relay.addrs()[0].port()]);
        let stats = relay.stop();
        assert_eq!(stats.acks_rewritten, 1);
    }
}
