//! An in-process lossy UDP relay.
//!
//! The kernel's loopback path never drops, duplicates, or reorders a
//! datagram, so a wire test that wants loss must manufacture it. The
//! relay sits between the sender and the receiver as a set of real UDP
//! sockets — one per pathlet — and forwards datagrams both ways while
//! applying seeded faults. Faults are per *datagram*, which on this wire
//! means whole coalesced bundles of frames vanish or repeat at once —
//! strictly harsher than the simulator's per-packet faults.
//!
//! Topology per pathlet `p`:
//!
//! ```text
//! sender sock[p]  ⇄  relay sock[p]  ⇄  receiver sock[p]
//! ```
//!
//! The relay knows the receiver's address up front; it learns the
//! sender's address from the first datagram that is not from the
//! receiver, then forwards by source matching. An optional blackhole
//! kills one pathlet after a fault budget, for failover tests.

use std::io;
use std::net::{Ipv4Addr, SocketAddrV4};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::socket::{wait_readable, BatchSocket};

/// Seeded fault rates, in parts-per-million per datagram.
#[derive(Debug, Clone)]
pub struct RelayConfig {
    /// Probability of discarding a datagram outright.
    pub drop_ppm: u32,
    /// Probability of forwarding a datagram twice.
    pub dup_ppm: u32,
    /// Probability of holding a datagram back until one more passes it.
    pub reorder_ppm: u32,
    /// RNG seed; one stream drives every fault decision.
    pub seed: u64,
    /// Kill pathlet `.0` entirely after it has forwarded `.1` datagrams
    /// in the sender→receiver direction.
    pub blackhole: Option<(usize, u64)>,
}

impl RelayConfig {
    /// Moderate loss on every pathlet: 2% drop, 1% dup, 1% reorder.
    pub fn lossy(seed: u64) -> RelayConfig {
        RelayConfig {
            drop_ppm: 20_000,
            dup_ppm: 10_000,
            reorder_ppm: 10_000,
            seed,
            blackhole: None,
        }
    }
}

/// A running relay; dropping it stops and joins the forwarding thread.
pub struct LossyRelay {
    addrs: Vec<SocketAddrV4>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<RelayStats>>,
}

/// What the relay did to the traffic, for test diagnostics.
#[derive(Debug, Clone, Copy, Default)]
pub struct RelayStats {
    /// Datagrams forwarded unmodified.
    pub forwarded: u64,
    /// Datagrams discarded by the drop fault.
    pub dropped: u64,
    /// Extra copies emitted by the duplicate fault.
    pub duplicated: u64,
    /// Datagrams that were overtaken by a later one.
    pub reordered: u64,
    /// Datagrams swallowed by the blackhole.
    pub blackholed: u64,
    /// Lanes (pathlets) that carried at least one sender→receiver
    /// datagram — the spray proof that multi-pathlet traffic really
    /// crossed distinct ports rather than collapsing onto one.
    pub lanes_with_traffic: usize,
}

struct Lane {
    sock: BatchSocket,
    dst: SocketAddrV4,
    sender: Option<SocketAddrV4>,
    /// A datagram held back by the reorder fault: (destination, bytes).
    stash: Option<(SocketAddrV4, Vec<u8>)>,
    /// Sender→receiver datagrams seen, for the blackhole budget.
    data_seen: u64,
    dead: bool,
}

impl LossyRelay {
    /// Start a relay in front of `receiver_addrs` (one lane per pathlet).
    pub fn start(cfg: RelayConfig, receiver_addrs: &[SocketAddrV4]) -> io::Result<LossyRelay> {
        let mut lanes = Vec::with_capacity(receiver_addrs.len());
        let mut addrs = Vec::with_capacity(receiver_addrs.len());
        for &dst in receiver_addrs {
            let sock = BatchSocket::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0))?;
            addrs.push(sock.local_addr()?);
            lanes.push(Lane {
                sock,
                dst,
                sender: None,
                stash: None,
                data_seen: 0,
                dead: false,
            });
        }
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("mtp-io-relay".into())
            .spawn(move || relay_loop(cfg, lanes, &stop2))?;
        Ok(LossyRelay {
            addrs,
            stop,
            handle: Some(handle),
        })
    }

    /// The sender-facing addresses, one per pathlet (same order as the
    /// receiver addresses the relay was started with).
    pub fn addrs(&self) -> &[SocketAddrV4] {
        &self.addrs
    }

    /// Stop the forwarding thread and return its fault statistics.
    pub fn stop(mut self) -> RelayStats {
        self.stop.store(true, Ordering::Relaxed);
        match self.handle.take() {
            Some(h) => h.join().unwrap_or_default(),
            None => RelayStats::default(),
        }
    }
}

impl Drop for LossyRelay {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn relay_loop(cfg: RelayConfig, mut lanes: Vec<Lane>, stop: &AtomicBool) -> RelayStats {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut stats = RelayStats::default();
    let mut dgrams = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        {
            let socks: Vec<&BatchSocket> = lanes.iter().map(|l| &l.sock).collect();
            let _ = wait_readable(&socks, Duration::from_millis(1));
        }
        for (p, lane) in lanes.iter_mut().enumerate() {
            dgrams.clear();
            if lane.sock.recv_batch(65536, &mut dgrams).is_err() {
                continue;
            }
            for (bytes, src) in dgrams.drain(..) {
                let from_receiver = src == lane.dst;
                if !from_receiver {
                    lane.sender = Some(src);
                    lane.data_seen += 1;
                    if let Some((hole, after)) = cfg.blackhole {
                        if hole == p && lane.data_seen > after {
                            lane.dead = true;
                        }
                    }
                }
                if lane.dead {
                    stats.blackholed += 1;
                    continue;
                }
                let fwd_to = if from_receiver {
                    match lane.sender {
                        Some(a) => a,
                        // An ACK before any data: nowhere to send it.
                        None => {
                            stats.dropped += 1;
                            continue;
                        }
                    }
                } else {
                    lane.dst
                };
                if rng.gen_range(0..1_000_000u32) < cfg.drop_ppm {
                    stats.dropped += 1;
                    continue;
                }
                let dup = rng.gen_range(0..1_000_000u32) < cfg.dup_ppm;
                let hold = rng.gen_range(0..1_000_000u32) < cfg.reorder_ppm;
                if hold && lane.stash.is_none() {
                    lane.stash = Some((fwd_to, bytes));
                    continue;
                }
                let mut sends: Vec<(SocketAddrV4, &[u8])> = vec![(fwd_to, bytes.as_slice())];
                if dup {
                    sends.push((fwd_to, bytes.as_slice()));
                    stats.duplicated += 1;
                }
                // Release any held datagram *after* this one: the held
                // one has now been overtaken.
                let held = lane.stash.take();
                if let Some((hdst, hbytes)) = &held {
                    sends.push((*hdst, hbytes.as_slice()));
                    stats.reordered += 1;
                }
                if lane.sock.send_batch(&sends).is_ok() {
                    stats.forwarded += 1;
                }
            }
        }
    }
    // Flush anything still stashed so shutdown is not itself a drop.
    for lane in lanes.iter_mut() {
        if let Some((dst, bytes)) = lane.stash.take() {
            if !lane.dead {
                let _ = lane.sock.send_batch(&[(dst, bytes.as_slice())]);
            }
        }
    }
    stats.lanes_with_traffic = lanes.iter().filter(|l| l.data_seen > 0).count();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::socket::loopback_available;

    #[test]
    fn relay_forwards_both_directions() {
        if !loopback_available() {
            eprintln!("NOTICE: UDP loopback unavailable; skipping relay_forwards_both_directions");
            return;
        }
        let rx = BatchSocket::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0)).unwrap();
        let relay = LossyRelay::start(
            RelayConfig {
                drop_ppm: 0,
                dup_ppm: 0,
                reorder_ppm: 0,
                seed: 1,
                blackhole: None,
            },
            &[rx.local_addr().unwrap()],
        )
        .unwrap();
        let tx = BatchSocket::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0)).unwrap();
        tx.send_batch(&[(relay.addrs()[0], &b"ping"[..])]).unwrap();

        let recv_one = |s: &BatchSocket| -> (Vec<u8>, SocketAddrV4) {
            let mut got = Vec::new();
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while got.is_empty() {
                assert!(std::time::Instant::now() < deadline, "relay timeout");
                let _ = wait_readable(&[s], Duration::from_millis(10));
                s.recv_batch(1500, &mut got).unwrap();
            }
            got.remove(0)
        };

        let (bytes, from) = recv_one(&rx);
        assert_eq!(bytes, b"ping");
        // Reply to the relay (as the MTP receiver replies to a datagram's
        // source); it must come back to the original sender.
        rx.send_batch(&[(from, &b"pong"[..])]).unwrap();
        let (bytes, _) = recv_one(&tx);
        assert_eq!(bytes, b"pong");
        let stats = relay.stop();
        assert_eq!(stats.forwarded, 2);
    }
}
