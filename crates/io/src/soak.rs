//! The seeded chaos soak: session lifecycle under adversarial faults.
//!
//! Four scenarios, each run under multiple seeds, each required to end
//! in one of exactly two buckets — **exactly-once delivery** (every
//! submitted message delivered once, content verified against the
//! deterministic corpus) or a **typed session failure**
//! ([`SessionError`]). A hang, a busy-loop, a leaked session, or
//! reassembly memory above its cap is a bug the soak exists to catch:
//!
//! * [`ChaosScenario::HandshakeLoss`] — the relay swallows the first
//!   HELLOs (retries must establish), then a dead-drop control lane
//!   (the handshake must fail with its typed timeout, promptly).
//! * [`ChaosScenario::FinLoss`] — heavy loss and duplication on the
//!   control lane while data also suffers: FIN retries and duplicate
//!   FIN re-acks must converge, or time out typed; the listener reaps
//!   the session either way (FIN + linger, or idle death).
//! * [`ChaosScenario::BlackholeFlap`] — one pathlet lane alternates
//!   alive/dead on a period while all lanes drop datagrams; repair
//!   rounds must rotate traffic off the dead phases and deliver.
//! * [`ChaosScenario::PeerKillRestart`] — the listener is killed (and
//!   its sockets closed) mid-transfer: the sender must declare peer
//!   death with the pending ids, and a fresh listener must rebind the
//!   same control port (proof nothing leaked) and serve a new session.
//!
//! [`run_soak_suite`] drives the full matrix and returns machine-shaped
//! [`SoakRun`] records; `bin/chaos_soak.rs` writes them to
//! `results/BENCH_chaos.json`.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mtp_sim::time::Duration as SimDuration;
use mtp_wire::MsgId;
use serde::Serialize;

use crate::driver::{golden_session_config, IoConfig};
use crate::payload;
use crate::relay::{ChaosConfig, LossyRelay, RelayConfig, RelayStats};
use crate::session::{Listener, SenderSession, SessionConfig, SessionError, SessionReport};

/// A chaos scenario the soak can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosScenario {
    /// Lost and delayed HELLOs; then a dead control lane.
    HandshakeLoss,
    /// Lost and duplicated FINs (plus lossy data).
    FinLoss,
    /// A pathlet lane that flaps dead/alive mid-transfer.
    BlackholeFlap,
    /// The listener dies mid-transfer and restarts at the same port.
    PeerKillRestart,
}

impl ChaosScenario {
    /// Every scenario, in suite order.
    pub const ALL: [ChaosScenario; 4] = [
        ChaosScenario::HandshakeLoss,
        ChaosScenario::FinLoss,
        ChaosScenario::BlackholeFlap,
        ChaosScenario::PeerKillRestart,
    ];

    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ChaosScenario::HandshakeLoss => "handshake_loss",
            ChaosScenario::FinLoss => "fin_loss",
            ChaosScenario::BlackholeFlap => "blackhole_flap",
            ChaosScenario::PeerKillRestart => "peer_kill_restart",
        }
    }
}

/// One scenario × seed execution, machine-shaped for
/// `results/BENCH_chaos.json`.
#[derive(Debug, Clone, Serialize)]
pub struct SoakRun {
    /// Scenario name.
    pub scenario: &'static str,
    /// The seed that drove every random decision in the run.
    pub seed: u64,
    /// Terminal bucket: `"exactly_once"` or a typed
    /// [`SessionError::kind`] label.
    pub outcome: String,
    /// Whether this terminal state is one the scenario allows.
    pub pass: bool,
    /// Messages delivered exactly once with verified content.
    pub delivered: usize,
    /// Messages the sender submitted.
    pub submitted: usize,
    /// HELLO rounds the (first successful) handshake took.
    pub handshake_rounds: u32,
    /// FIN rounds the close took (0 if close never ran).
    pub close_rounds: u32,
    /// Retransmissions the sender core issued.
    pub retransmissions: u64,
    /// Peak reassembly bytes the listener held (must stay under cap).
    pub peak_reasm_bytes: u64,
    /// The reassembly cap in force.
    pub reasm_cap: u64,
    /// Sessions still held by the listener at the end (must be 0).
    pub sessions_leaked: usize,
    /// Relay data-lane datagrams forwarded (both directions).
    pub relay_forwarded: u64,
    /// Data lanes that carried at least one sender→receiver datagram.
    pub relay_lanes_with_traffic: usize,
    /// Relay datagram drops (data lanes).
    pub relay_dropped: u64,
    /// Relay data-lane duplicates.
    pub relay_duplicated: u64,
    /// Relay data-lane reorders.
    pub relay_reordered: u64,
    /// Relay blackholed/flapped datagrams.
    pub relay_blackholed: u64,
    /// Relay control-lane drops.
    pub relay_ctrl_dropped: u64,
    /// Relay control-lane duplicates.
    pub relay_ctrl_duplicated: u64,
    /// HELLO-ACK port maps the relay NAT-rewrote.
    pub relay_acks_rewritten: u64,
    /// Wall-clock milliseconds the run took.
    pub wall_ms: f64,
}

/// The whole suite's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct SoakOutcome {
    /// Every scenario × seed run.
    pub runs: Vec<SoakRun>,
    /// True iff every run passed.
    pub pass: bool,
}

/// The soak's session timers: compressed so peer death, linger expiry,
/// and handshake exhaustion all land within a second of wall clock.
fn soak_session_config(cfg: &IoConfig, seed: u64) -> SessionConfig {
    let mut scfg = golden_session_config(cfg);
    scfg.seed = seed;
    scfg.handshake_rto = SimDuration::from_micros(5_000);
    scfg.handshake_rto_max = SimDuration::from_micros(40_000);
    scfg.keepalive_interval = SimDuration::from_micros(20_000);
    // Idle timeout = 20 keepalive intervals: declaring a live peer dead
    // would take ~20 consecutive lost keepalive exchanges (or a 400 ms
    // scheduler stall), so a chaos run's liveness verdicts are about the
    // protocol, not about host jitter.
    scfg.idle_timeout = SimDuration::from_micros(400_000);
    scfg.linger = SimDuration::from_micros(40_000);
    scfg.caps.max_reassembly_bytes = 64 * 1024;
    scfg
}

/// Message sizes for a soak transfer: deterministic per seed, several
/// larger than the per-message MTU so reassembly is real, with a total
/// comfortably above the reassembly cap so admission has to work.
fn soak_sizes(seed: u64, n: usize) -> Vec<u32> {
    (0..n)
        .map(|i| {
            let x = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            1 + (x % 16_000) as u32
        })
        .collect()
}

fn empty_run(scenario: ChaosScenario, seed: u64) -> SoakRun {
    SoakRun {
        scenario: scenario.name(),
        seed,
        outcome: String::new(),
        pass: false,
        delivered: 0,
        submitted: 0,
        handshake_rounds: 0,
        close_rounds: 0,
        retransmissions: 0,
        peak_reasm_bytes: 0,
        reasm_cap: 0,
        sessions_leaked: 0,
        relay_forwarded: 0,
        relay_lanes_with_traffic: 0,
        relay_dropped: 0,
        relay_duplicated: 0,
        relay_reordered: 0,
        relay_blackholed: 0,
        relay_ctrl_dropped: 0,
        relay_ctrl_duplicated: 0,
        relay_acks_rewritten: 0,
        wall_ms: 0.0,
    }
}

fn record_relay(run: &mut SoakRun, stats: &RelayStats) {
    run.relay_forwarded = stats.forwarded;
    run.relay_lanes_with_traffic = stats.lanes_with_traffic;
    run.relay_dropped = stats.dropped;
    run.relay_duplicated = stats.duplicated;
    run.relay_reordered = stats.reordered;
    run.relay_blackholed = stats.blackholed;
    run.relay_ctrl_dropped = stats.ctrl_dropped;
    run.relay_ctrl_duplicated = stats.ctrl_duplicated;
    run.relay_acks_rewritten = stats.acks_rewritten;
}

/// Submit `sizes` as owned buffers (retrying through backpressure),
/// flush, and close. Ids are pushed as they are accepted so the caller
/// keeps an exact submission ledger even when a typed error cuts the
/// transfer short.
fn pump_messages(
    sess: &mut SenderSession,
    sizes: &[u32],
    ids: &mut Vec<u64>,
    deadline: Instant,
) -> Result<(), SessionError> {
    for &bytes in sizes {
        loop {
            let id = sess.next_msg_id();
            let mut buf = vec![0u8; bytes as usize];
            payload::fill(MsgId(id), 0, &mut buf);
            match sess.try_send(buf) {
                Ok(got) => {
                    ids.push(got.0);
                    break;
                }
                Err(SessionError::Backpressure { .. }) => {
                    if Instant::now() >= deadline {
                        return Err(SessionError::WallDeadline {
                            outstanding: sess.outstanding(),
                        });
                    }
                    sess.poll()?;
                    sess.wait(Duration::from_millis(2))?;
                }
                Err(e) => return Err(e),
            }
        }
    }
    sess.flush(deadline)?;
    sess.close(deadline)?;
    Ok(())
}

/// Verify a listener report against the submitted ids: every id
/// delivered exactly once, nothing extra, and every message's content
/// digest matches the deterministic corpus.
fn verify_exactly_once(ids: &[u64], report: &SessionReport) -> Result<(), String> {
    let mut want: Vec<u64> = ids.to_vec();
    want.sort_unstable();
    let got: Vec<u64> = report.delivered.iter().map(|&(id, _)| id).collect();
    if got != want {
        return Err(format!(
            "delivered ids diverge: got {} msgs, want {}",
            got.len(),
            want.len()
        ));
    }
    let mut scratch = Vec::new();
    for &(id, bytes, digest) in &report.digests {
        if digest != payload::synth_message_digest(MsgId(id), bytes, &mut scratch) {
            return Err(format!("content digest mismatch on msg {id}"));
        }
    }
    Ok(())
}

/// A relay-interposed scenario: start listener + relay, connect through
/// the faults, pump a transfer, and classify the terminal state.
fn run_relay_scenario(
    scenario: ChaosScenario,
    seed: u64,
    chaos: ChaosConfig,
    relay_cfg: RelayConfig,
    expect_handshake_failure: bool,
    wall_budget: Duration,
) -> io::Result<SoakRun> {
    let started = Instant::now();
    let deadline = started + wall_budget;
    let cfg = IoConfig::default();
    let scfg = soak_session_config(&cfg, seed);
    let mut run = empty_run(scenario, seed);
    run.reasm_cap = scfg.caps.max_reassembly_bytes;

    let listener = Listener::bind(&scfg)?;
    let ctrl_dst = listener.hello_addr()?;
    let data_dsts = listener.pathlet_addrs()?;
    let relay = LossyRelay::start_session(relay_cfg, chaos, ctrl_dst, &data_dsts)?;
    let server = relay.ctrl_addr().expect("session relay has a ctrl lane");

    // The listener serves until a full lifecycle completes (FIN +
    // linger) or its peer goes silent past the idle timeout — both
    // reap the session. Only a never-connected listener runs to the
    // deadline, which is exactly the handshake-failure scenario.
    let mut listener = listener;
    let rx = std::thread::Builder::new()
        .name("mtp-soak-rx".into())
        .spawn(move || {
            let res = listener.run_until_closed(deadline);
            (listener, res)
        })?;

    let sizes = soak_sizes(seed, 24);
    let mut ids: Vec<u64> = Vec::new();
    let tx_res: Result<(), SessionError> = match SenderSession::connect(&scfg, server) {
        Ok(mut sess) => {
            let res = pump_messages(&mut sess, &sizes, &mut ids, deadline);
            // Record the sender's diagnostics whether it ended clean or
            // typed — a failed run must still explain itself.
            run.submitted = ids.len();
            run.handshake_rounds = sess.handshake_rounds();
            run.close_rounds = sess.close_rounds();
            run.retransmissions = sess.core().stats.retransmissions;
            res
        }
        Err(e) => Err(e),
    };
    // The sender is done (or dead) before joining the listener: a failed
    // close or handshake leaves the listener to reap by idle timeout or
    // deadline on its own.
    let (listener, rx_res) = rx
        .join()
        .map_err(|_| io::Error::other("soak listener thread panicked"))?;
    let stats = relay.stop();
    record_relay(&mut run, &stats);
    run.sessions_leaked = listener.active_sessions();
    run.wall_ms = started.elapsed().as_secs_f64() * 1e3;
    if let Ok(report) = &rx_res {
        run.delivered = report.delivered.len();
        run.peak_reasm_bytes = report.peak_reasm_bytes;
    }

    match tx_res {
        Ok(()) => match rx_res {
            Ok(report) => match verify_exactly_once(&ids, &report) {
                Ok(()) => {
                    run.outcome = "exactly_once".into();
                    run.pass = !expect_handshake_failure
                        && run.peak_reasm_bytes <= run.reasm_cap
                        && run.sessions_leaked == 0;
                }
                Err(why) => {
                    run.outcome = format!("ledger_mismatch: {why}");
                    run.pass = false;
                }
            },
            Err(e) => {
                // Sender finished but the listener ended typed
                // (e.g. every FIN was eaten and it reaped by idle
                // timeout). Typed is a legal bucket; leak is not.
                run.outcome = format!("listener_{}", e.kind());
                run.pass = !expect_handshake_failure && run.sessions_leaked == 0;
            }
        },
        Err(e) => {
            run.outcome = e.kind().into();
            match e {
                SessionError::HandshakeTimeout { .. } => {
                    run.pass = expect_handshake_failure && run.sessions_leaked == 0;
                }
                // A typed close failure after a fully flushed transfer
                // is an allowed terminal state under FIN loss.
                SessionError::CloseTimeout { outstanding, .. } => {
                    run.pass = scenario == ChaosScenario::FinLoss
                        && outstanding == 0
                        && run.sessions_leaked == 0;
                }
                // So is a close-phase liveness expiry with nothing
                // pending: all data was flushed, only the farewell died.
                SessionError::PeerDead { ref pending, .. } => {
                    run.pass = scenario == ChaosScenario::FinLoss
                        && pending.is_empty()
                        && run.sessions_leaked == 0;
                }
                _ => run.pass = false,
            }
        }
    }
    Ok(run)
}

fn handshake_loss(seed: u64, wall_budget: Duration) -> io::Result<Vec<SoakRun>> {
    // Phase A: the relay eats the first two HELLOs; backoff retries
    // must still establish and the transfer must complete.
    let mut a = run_relay_scenario(
        ChaosScenario::HandshakeLoss,
        seed,
        ChaosConfig {
            ctrl_drop_first: 2,
            ..ChaosConfig::default()
        },
        RelayConfig {
            drop_ppm: 10_000,
            dup_ppm: 5_000,
            reorder_ppm: 5_000,
            seed,
            blackhole: None,
        },
        false,
        wall_budget,
    )?;
    if a.pass && a.handshake_rounds < 3 {
        a.outcome = format!(
            "handshake took {} rounds, expected >= 3",
            a.handshake_rounds
        );
        a.pass = false;
    }
    // Phase B: the control lane is a dead drop; the handshake must fail
    // with its typed timeout instead of hanging. The budget is clamped
    // well above the handshake's worst case (~0.3 s of backoff) but low
    // enough that the never-connected listener exits promptly.
    let b = run_relay_scenario(
        ChaosScenario::HandshakeLoss,
        seed.wrapping_add(1),
        ChaosConfig {
            ctrl_drop_ppm: 1_000_000,
            ..ChaosConfig::default()
        },
        RelayConfig {
            drop_ppm: 0,
            dup_ppm: 0,
            reorder_ppm: 0,
            seed,
            blackhole: None,
        },
        true,
        wall_budget.min(Duration::from_secs(3)),
    )?;
    Ok(vec![a, b])
}

fn fin_loss(seed: u64, wall_budget: Duration) -> io::Result<Vec<SoakRun>> {
    // The first two FINs are eaten deterministically (a seeded drop
    // could let them through), so a clean close *must* take at least
    // three rounds — proof the retry path ran. Seeded control loss and
    // duplication ride on top for re-ack and idempotency coverage.
    let mut run = run_relay_scenario(
        ChaosScenario::FinLoss,
        seed,
        ChaosConfig {
            ctrl_drop_ppm: 250_000,
            ctrl_dup_ppm: 200_000,
            fin_drop_first: 2,
            ..ChaosConfig::default()
        },
        RelayConfig {
            drop_ppm: 60_000,
            dup_ppm: 20_000,
            reorder_ppm: 20_000,
            seed,
            blackhole: None,
        },
        false,
        wall_budget,
    )?;
    if run.pass && run.outcome == "exactly_once" && run.close_rounds < 3 {
        run.outcome = format!(
            "close took {} rounds with the first 2 FINs eaten",
            run.close_rounds
        );
        run.pass = false;
    }
    Ok(vec![run])
}

fn blackhole_flap(seed: u64, wall_budget: Duration) -> io::Result<Vec<SoakRun>> {
    // Lane 1 alternates alive/dead every 3 sender→receiver datagrams —
    // a short period so the dead phase provably engages even on a small
    // transfer (coalescing leaves each lane only a handful of
    // datagrams). A run that never blackholed anything proved nothing
    // and fails.
    let mut run = run_relay_scenario(
        ChaosScenario::BlackholeFlap,
        seed,
        ChaosConfig {
            flap: Some((1, 3)),
            ..ChaosConfig::default()
        },
        RelayConfig {
            drop_ppm: 20_000,
            dup_ppm: 5_000,
            reorder_ppm: 5_000,
            seed,
            blackhole: None,
        },
        false,
        wall_budget,
    )?;
    if run.pass && run.relay_blackholed == 0 {
        run.outcome = "flap never engaged".into();
        run.pass = false;
    }
    Ok(vec![run])
}

/// Kill the listener mid-transfer; the sender must fail typed with the
/// pending ids; a fresh listener must rebind the *same* control port
/// (nothing leaked) and serve a clean second session.
fn peer_kill_restart(seed: u64, wall_budget: Duration) -> io::Result<Vec<SoakRun>> {
    let started = Instant::now();
    let deadline = started + wall_budget;
    let cfg = IoConfig::default();
    let scfg = soak_session_config(&cfg, seed);
    let mut run = empty_run(ChaosScenario::PeerKillRestart, seed);
    run.reasm_cap = scfg.caps.max_reassembly_bytes;

    let mut listener = Listener::bind(&scfg)?;
    let ctrl_dst = listener.hello_addr()?;
    let kill = Arc::new(AtomicBool::new(false));
    let kill2 = Arc::clone(&kill);
    let rx = std::thread::Builder::new()
        .name("mtp-soak-victim".into())
        .spawn(move || -> io::Result<usize> {
            while !kill2.load(Ordering::Acquire) {
                listener.poll_once()?;
                listener.wait(Duration::from_millis(2))?;
            }
            // Dropping the listener here closes every socket it owns.
            Ok(listener.delivered_snapshot().len())
        })?;

    let mut sess = SenderSession::connect(&scfg, ctrl_dst)
        .map_err(|e| io::Error::other(format!("kill/restart: first connect failed: {e}")))?;
    run.handshake_rounds = sess.handshake_rounds();
    let sizes = soak_sizes(seed, 24);
    let mut ids = Vec::new();
    // Submit everything (through backpressure), then kill the listener
    // once some — but not all — messages have completed.
    for &bytes in &sizes {
        loop {
            let id = sess.next_msg_id();
            let mut buf = vec![0u8; bytes as usize];
            payload::fill(MsgId(id), 0, &mut buf);
            match sess.try_send(buf) {
                Ok(got) => {
                    ids.push(got.0);
                    break;
                }
                Err(SessionError::Backpressure { .. }) => {
                    if let Err(e) = sess.poll() {
                        return Err(io::Error::other(format!(
                            "kill/restart: poll failed pre-kill: {e}"
                        )));
                    }
                    sess.wait(Duration::from_millis(2))
                        .map_err(|e| io::Error::other(format!("kill/restart: wait failed: {e}")))?;
                }
                Err(e) => {
                    return Err(io::Error::other(format!(
                        "kill/restart: submit failed pre-kill: {e}"
                    )))
                }
            }
        }
        if sess.completions().len() >= 4 {
            break;
        }
    }
    run.submitted = ids.len();
    kill.store(true, Ordering::Release);
    let victim_delivered = rx
        .join()
        .map_err(|_| io::Error::other("victim listener thread panicked"))??;

    // The peer is gone; polling must end in a typed PeerDead within the
    // idle timeout, naming the ids that were stranded.
    let death = sess.flush(deadline);
    run.retransmissions = sess.core().stats.retransmissions;
    run.wall_ms = started.elapsed().as_secs_f64() * 1e3;
    match death {
        Err(SessionError::PeerDead { pending, .. }) => {
            run.outcome = "peer_dead".into();
            // Everything submitted was either delivered pre-kill or is
            // named in the typed error — no silently lost ids.
            let accounted = victim_delivered + pending.len();
            if accounted < ids.len() {
                run.outcome = format!("peer_dead but {} ids unaccounted", ids.len() - accounted);
                run.pass = false;
                return Ok(vec![run]);
            }
        }
        Err(other) => {
            run.outcome = format!("expected peer_dead, got {}", other.kind());
            run.pass = false;
            return Ok(vec![run]);
        }
        Ok(()) => {
            // All messages completed before the kill landed: legal but
            // uninteresting; record it as delivered.
            run.outcome = "completed_before_kill".into();
        }
    }
    drop(sess);

    // Restart: binding the SAME control port only succeeds if the dead
    // listener's socket was actually closed — the no-leak proof.
    let mut revived = Listener::bind_at(&scfg, ctrl_dst)
        .map_err(|e| io::Error::other(format!("kill/restart: rebind at {ctrl_dst} failed: {e}")))?;
    let rx2 = std::thread::Builder::new()
        .name("mtp-soak-revived".into())
        .spawn(move || {
            let res = revived.run_until_closed(deadline);
            (revived, res)
        })?;
    let scfg2 = soak_session_config(&cfg, seed.wrapping_add(7));
    let mut sess2 = SenderSession::connect(&scfg2, ctrl_dst)
        .map_err(|e| io::Error::other(format!("kill/restart: reconnect failed: {e}")))?;
    let sizes2 = soak_sizes(seed.wrapping_add(7), 8);
    let mut ids2 = Vec::new();
    pump_messages(&mut sess2, &sizes2, &mut ids2, deadline)
        .map_err(|e| io::Error::other(format!("kill/restart: second transfer failed: {e}")))?;
    let (revived, report) = rx2
        .join()
        .map_err(|_| io::Error::other("revived listener thread panicked"))?;
    let report = report
        .map_err(|e| io::Error::other(format!("kill/restart: revived listener failed: {e}")))?;
    run.sessions_leaked = revived.active_sessions();
    run.delivered = report.delivered.len();
    run.peak_reasm_bytes = report.peak_reasm_bytes;
    run.close_rounds = sess2.close_rounds();
    run.wall_ms = started.elapsed().as_secs_f64() * 1e3;
    match verify_exactly_once(&ids2, &report) {
        Ok(()) => {
            run.pass = run.sessions_leaked == 0 && run.peak_reasm_bytes <= run.reasm_cap;
        }
        Err(why) => {
            run.outcome = format!("restart ledger mismatch: {why}");
            run.pass = false;
        }
    }
    Ok(vec![run])
}

/// Run one scenario under one seed.
pub fn run_scenario(
    scenario: ChaosScenario,
    seed: u64,
    wall_budget: Duration,
) -> io::Result<Vec<SoakRun>> {
    match scenario {
        ChaosScenario::HandshakeLoss => handshake_loss(seed, wall_budget),
        ChaosScenario::FinLoss => fin_loss(seed, wall_budget),
        ChaosScenario::BlackholeFlap => blackhole_flap(seed, wall_budget),
        ChaosScenario::PeerKillRestart => peer_kill_restart(seed, wall_budget),
    }
}

/// Run the full scenario × seed matrix. `per_run_budget` bounds each
/// individual run's wall clock (a run that needs it has hung — the
/// deadline turns a hang into a visible typed failure).
pub fn run_soak_suite(seeds: &[u64], per_run_budget: Duration) -> io::Result<SoakOutcome> {
    let mut runs = Vec::new();
    for scenario in ChaosScenario::ALL {
        for &seed in seeds {
            runs.extend(run_scenario(scenario, seed, per_run_budget)?);
        }
    }
    let pass = runs.iter().all(|r| r.pass);
    Ok(SoakOutcome { runs, pass })
}
