//! Nonblocking batch UDP sockets.
//!
//! [`BatchSocket`] wraps a `std::net::UdpSocket` in nonblocking mode and
//! moves datagrams in batches: `sendmmsg`/`recvmmsg` where the platform
//! provides them (see [`crate::sys`]), plain `send_to`/`recv_from`
//! loops everywhere else — including when `MTP_IO_FORCE_FALLBACK` is
//! set, which CI uses to prove both paths carry the same traffic. The
//! driver never blocks in a socket call; it blocks only in
//! [`wait_readable`], with a timeout derived from the endpoint cores'
//! `poll_at()` deadlines.

use std::cell::RefCell;
use std::io;
use std::net::{Ipv4Addr, SocketAddrV4, UdpSocket};
use std::time::Duration;

use crate::sys::{self, RecvSlot};

thread_local! {
    /// Reusable receive scratch, per thread: the `recvmmsg` slot array
    /// and the fallback datagram buffer. Sized to the largest `max_size`
    /// a thread has asked for and reused forever after — allocating
    /// `BATCH × max_size` fresh per [`BatchSocket::recv_batch`] call
    /// would dominate the process's transient heap (32 × 64 KiB = 2 MiB
    /// per poll round).
    static RECV_SLOTS: RefCell<Vec<RecvSlot>> = const { RefCell::new(Vec::new()) };
    static RECV_BUF: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// What one [`BatchSocket::send_batch`] call did, for telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SendReport {
    /// Datagrams handed to the kernel.
    pub datagrams: usize,
    /// Syscalls it took.
    pub syscalls: usize,
}

/// A nonblocking UDP socket that sends and receives in batches.
#[derive(Debug)]
pub struct BatchSocket {
    sock: UdpSocket,
    use_mmsg: bool,
}

/// True when the batch syscalls should be bypassed even where present.
fn fallback_forced() -> bool {
    std::env::var_os("MTP_IO_FORCE_FALLBACK").is_some_and(|v| !v.is_empty() && v != "0")
}

impl BatchSocket {
    /// Bind a nonblocking socket to `addr` (use port 0 for an ephemeral
    /// port; read it back with [`BatchSocket::local_addr`]).
    pub fn bind(addr: SocketAddrV4) -> io::Result<BatchSocket> {
        let sock = UdpSocket::bind(addr)?;
        sock.set_nonblocking(true)?;
        let use_mmsg = cfg!(target_os = "linux") && !fallback_forced();
        Ok(BatchSocket { sock, use_mmsg })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<SocketAddrV4> {
        match self.sock.local_addr()? {
            std::net::SocketAddr::V4(a) => Ok(a),
            std::net::SocketAddr::V6(a) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!("expected an IPv4 socket, bound {a}"),
            )),
        }
    }

    /// Whether this socket is using the batched syscalls (as opposed to
    /// the portable fallback).
    pub fn batched(&self) -> bool {
        self.use_mmsg
    }

    /// Transmit every datagram, batching where possible. `WouldBlock`
    /// mid-batch retries after a brief yield: loopback socket buffers
    /// drain in microseconds and the driver has nothing better to do
    /// than deliver what the cores already emitted.
    pub fn send_batch(&self, dgrams: &[(SocketAddrV4, &[u8])]) -> io::Result<SendReport> {
        let mut report = SendReport::default();
        let mut rest = dgrams;
        while !rest.is_empty() {
            let sent = if self.use_mmsg {
                match self.send_once_mmsg(rest) {
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::yield_now();
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            } else {
                match self.sock.send_to(rest[0].1, rest[0].0) {
                    Ok(_) => 1,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::yield_now();
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            };
            report.datagrams += sent;
            report.syscalls += 1;
            rest = &rest[sent..];
        }
        Ok(report)
    }

    #[cfg(target_os = "linux")]
    fn send_once_mmsg(&self, dgrams: &[(SocketAddrV4, &[u8])]) -> io::Result<usize> {
        use std::os::fd::AsRawFd;
        sys::send_batch(self.sock.as_raw_fd(), dgrams)
    }

    #[cfg(not(target_os = "linux"))]
    fn send_once_mmsg(&self, _dgrams: &[(SocketAddrV4, &[u8])]) -> io::Result<usize> {
        unreachable!("use_mmsg is never set off Linux")
    }

    /// Drain everything currently readable into `out`, receiving up to
    /// `max_size`-byte datagrams. Returns `(datagrams, syscalls)` —
    /// zero datagrams simply means nothing was pending.
    pub fn recv_batch(
        &self,
        max_size: usize,
        out: &mut Vec<(Vec<u8>, SocketAddrV4)>,
    ) -> io::Result<SendReport> {
        let mut report = SendReport::default();
        if self.use_mmsg {
            return RECV_SLOTS.with(|cell| {
                let mut slots = cell.borrow_mut();
                if slots.len() < sys::BATCH || slots[0].buf.len() < max_size {
                    *slots = (0..sys::BATCH)
                        .map(|_| RecvSlot::with_capacity(max_size))
                        .collect();
                }
                loop {
                    match self.recv_once_mmsg(&mut slots) {
                        Ok(n) => {
                            report.datagrams += n;
                            report.syscalls += 1;
                            for slot in slots.iter().take(n) {
                                out.push((slot.bytes().to_vec(), slot.addr));
                            }
                            if n < sys::BATCH {
                                return Ok(report);
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(report),
                        Err(e) => return Err(e),
                    }
                }
            });
        }
        RECV_BUF.with(|cell| {
            let mut buf = cell.borrow_mut();
            if buf.len() < max_size {
                buf.resize(max_size, 0);
            }
            loop {
                match self.sock.recv_from(&mut buf) {
                    Ok((len, std::net::SocketAddr::V4(src))) => {
                        report.datagrams += 1;
                        report.syscalls += 1;
                        out.push((buf[..len].to_vec(), src));
                    }
                    Ok((_, std::net::SocketAddr::V6(_))) => {}
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(report),
                    Err(e) => return Err(e),
                }
            }
        })
    }

    #[cfg(target_os = "linux")]
    fn recv_once_mmsg(&self, slots: &mut [RecvSlot]) -> io::Result<usize> {
        use std::os::fd::AsRawFd;
        sys::recv_batch(self.sock.as_raw_fd(), slots)
    }

    #[cfg(not(target_os = "linux"))]
    fn recv_once_mmsg(&self, _slots: &mut [RecvSlot]) -> io::Result<usize> {
        unreachable!("use_mmsg is never set off Linux")
    }
}

/// Block until any of `socks` is readable or `timeout` elapses. Returns
/// whether something is (probably) readable; spurious wakeups are fine —
/// every caller follows with a nonblocking drain.
pub fn wait_readable(socks: &[&BatchSocket], timeout: Duration) -> io::Result<bool> {
    let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as i32;
    #[cfg(target_os = "linux")]
    {
        use std::os::fd::AsRawFd;
        let fds: Vec<_> = socks.iter().map(|s| s.sock.as_raw_fd()).collect();
        sys::poll_readable(&fds, timeout_ms)
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = socks;
        // No poll(2): nap for the shorter of the timeout and 1ms, then
        // let the caller's nonblocking drain discover the truth.
        std::thread::sleep(Duration::from_millis(timeout_ms.clamp(0, 1) as u64));
        Ok(true)
    }
}

/// Whether this environment can bind and exchange loopback UDP at all.
///
/// Sandboxes sometimes forbid sockets; every wire test and binary calls
/// this first and *visibly* skips (never silently passes) when it fails.
pub fn loopback_available() -> bool {
    let Ok(a) = BatchSocket::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0)) else {
        return false;
    };
    let Ok(b) = BatchSocket::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0)) else {
        return false;
    };
    let (Ok(addr_b), Ok(_)) = (b.local_addr(), a.local_addr()) else {
        return false;
    };
    let probe = b"mtp-io-probe";
    if a.send_batch(&[(addr_b, &probe[..])]).is_err() {
        return false;
    }
    let deadline = std::time::Instant::now() + Duration::from_millis(500);
    let mut got = Vec::new();
    while std::time::Instant::now() < deadline {
        let _ = wait_readable(&[&b], Duration::from_millis(10));
        match b.recv_batch(1500, &mut got) {
            Ok(_) if !got.is_empty() => return got[0].0 == probe,
            Ok(_) => {}
            Err(_) => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Loopback echo through both the mmsg and the fallback paths.
    #[test]
    fn batch_roundtrip_both_paths() {
        if !loopback_available() {
            eprintln!("NOTICE: UDP loopback unavailable; skipping batch_roundtrip_both_paths");
            return;
        }
        for force_fallback in [false, true] {
            let bind = |force: bool| -> BatchSocket {
                let mut s = BatchSocket::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0)).unwrap();
                if force {
                    s.use_mmsg = false;
                }
                s
            };
            let a = bind(force_fallback);
            let b = bind(force_fallback);
            let to_b = b.local_addr().unwrap();

            let payloads: Vec<Vec<u8>> = (0..40u8).map(|i| vec![i; 64 + i as usize]).collect();
            let dgrams: Vec<(SocketAddrV4, &[u8])> =
                payloads.iter().map(|p| (to_b, p.as_slice())).collect();
            let report = a.send_batch(&dgrams).unwrap();
            assert_eq!(report.datagrams, 40);
            if !force_fallback && a.batched() {
                assert!(report.syscalls < 40, "sendmmsg should batch");
            }

            let mut got = Vec::new();
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while got.len() < 40 && std::time::Instant::now() < deadline {
                wait_readable(&[&b], Duration::from_millis(20)).unwrap();
                b.recv_batch(2048, &mut got).unwrap();
            }
            assert_eq!(got.len(), 40, "force_fallback={force_fallback}");
            let mut seen: Vec<&[u8]> = got.iter().map(|(d, _)| d.as_slice()).collect();
            seen.sort_unstable();
            let mut want: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
            want.sort_unstable();
            assert_eq!(seen, want);
        }
    }
}
