//! Property tests for the datagram frame coalescer.
//!
//! The coalescer packs arbitrary interleavings of sealed MTP data frames
//! and session-control frames into budget-bounded datagrams; the
//! receiver splits them back with [`FrameIter`]. The properties pinned
//! here:
//!
//! 1. **Pack/split roundtrip** — any frame sequence packed across as
//!    many datagrams as the budget requires parses back identical, in
//!    order, with kinds intact.
//! 2. **No straddling** — every datagram stays within budget and every
//!    frame lives wholly inside one datagram (each datagram iterates
//!    cleanly to its last byte).
//! 3. **Seal-time rejection** — a frame that cannot fit an *empty*
//!    datagram is refused as [`FrameError::FrameTooBig`] before any
//!    bytes are written, never surfaced later as a kernel `EMSGSIZE`.
//! 4. **Truncation safety** — chopping a packed datagram anywhere never
//!    panics the splitter and never invents a frame that wasn't packed.

use proptest::prelude::*;

use mtp_io::{
    append_ctrl_frame, append_frame, FrameError, FrameIter, FrameKind, DEFAULT_DATAGRAM_BUDGET,
    FRAME_OVERHEAD,
};
use mtp_wire::{CtrlKind, MsgId, MtpHeader, PktNum, PktType, SessionCtrl};

/// One logical frame the coalescer is asked to carry.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Item {
    Data {
        msg: u64,
        pkt: u32,
        payload: Vec<u8>,
    },
    Ctrl(SessionCtrl),
}

fn data_header(msg: u64, pkt: u32, payload_len: usize) -> MtpHeader {
    MtpHeader {
        pkt_type: PktType::Data,
        msg_id: MsgId(msg),
        msg_len_pkts: 8,
        msg_len_bytes: 8 * 1460,
        pkt_num: PktNum(pkt),
        pkt_len: payload_len as u16,
        pkt_offset: pkt.wrapping_mul(1460),
        ..MtpHeader::default()
    }
}

fn arb_ctrl_kind() -> impl Strategy<Value = CtrlKind> {
    prop_oneof![
        Just(CtrlKind::Hello),
        Just(CtrlKind::HelloAck),
        Just(CtrlKind::Fin),
        Just(CtrlKind::FinAck),
        Just(CtrlKind::Ping),
        Just(CtrlKind::Pong),
    ]
}

fn arb_ctrl() -> impl Strategy<Value = SessionCtrl> {
    (
        (arb_ctrl_kind(), any::<u64>(), any::<u64>()),
        (any::<u32>(), any::<u16>(), any::<u16>()),
        prop::collection::vec(any::<u16>(), 0..9),
    )
        .prop_map(|((kind, sid, peer), (seq, src, dst), ports)| {
            let mut ctrl = SessionCtrl::new(kind, sid, peer);
            ctrl.seq = seq;
            ctrl.src_port = src;
            ctrl.dst_port = dst;
            ctrl.ports = ports;
            ctrl
        })
}

fn arb_item() -> impl Strategy<Value = Item> {
    prop_oneof![
        (
            any::<u64>(),
            any::<u32>(),
            prop::collection::vec(any::<u8>(), 0..1800)
        )
            .prop_map(|(msg, pkt, payload)| Item::Data { msg, pkt, payload }),
        arb_ctrl().prop_map(Item::Ctrl),
    ]
}

/// Pack `items` into as many datagrams as the budget demands, exactly
/// how the driver does it: append until a frame defers, then flush and
/// retry on a fresh datagram.
fn pack(items: &[Item], budget: usize) -> Vec<Vec<u8>> {
    let mut dgrams: Vec<Vec<u8>> = vec![Vec::new()];
    for item in items {
        loop {
            let dgram = dgrams.last_mut().expect("at least one datagram");
            let appended = match item {
                Item::Data { msg, pkt, payload } => {
                    let hdr = data_header(*msg, *pkt, payload.len());
                    append_frame(dgram, budget, &hdr, payload).expect("valid frame")
                }
                Item::Ctrl(ctrl) => append_ctrl_frame(dgram, budget, ctrl).expect("valid frame"),
            };
            if appended {
                break;
            }
            assert!(
                !dgram.is_empty(),
                "a frame deferred on an empty datagram instead of erroring"
            );
            dgrams.push(Vec::new());
        }
    }
    dgrams.retain(|d| !d.is_empty());
    dgrams
}

/// Split every datagram back into logical items, asserting clean
/// iteration (property 2: nothing torn, nothing straddling).
fn split(dgrams: &[Vec<u8>]) -> Vec<Item> {
    let mut items = Vec::new();
    for dgram in dgrams {
        for frame in FrameIter::new(dgram) {
            let (kind, body) = frame.expect("packed datagrams split cleanly");
            match kind {
                FrameKind::Mtp => {
                    let (hdr, used, payload_ok) =
                        MtpHeader::parse_sealed(body).expect("sealed header parses");
                    assert!(payload_ok, "payload integrity must hold");
                    items.push(Item::Data {
                        msg: hdr.msg_id.0,
                        pkt: hdr.pkt_num.0,
                        payload: body[used..].to_vec(),
                    });
                }
                FrameKind::Ctrl => {
                    let (ctrl, used) = SessionCtrl::parse_sealed(body).expect("sealed ctrl parses");
                    assert_eq!(used, body.len(), "ctrl frame must consume its whole body");
                    items.push(Item::Ctrl(ctrl));
                }
            }
        }
    }
    items
}

proptest! {
    /// Properties 1 + 2: roundtrip across datagram boundaries, every
    /// datagram within budget.
    #[test]
    fn pack_split_roundtrip(items in prop::collection::vec(arb_item(), 0..40)) {
        let budget = DEFAULT_DATAGRAM_BUDGET;
        let dgrams = pack(&items, budget);
        for dgram in &dgrams {
            prop_assert!(
                dgram.len() <= budget,
                "datagram of {} bytes exceeds budget {budget}",
                dgram.len()
            );
        }
        let back = split(&dgrams);
        prop_assert_eq!(back, items);
    }

    /// Property 1 under pressure: a budget barely above the largest
    /// frame forces a datagram boundary between almost every pair of
    /// frames — the straddle-free invariant must survive heavy flushing.
    #[test]
    fn roundtrip_under_tight_budget(
        items in prop::collection::vec(arb_item(), 1..24),
        slack in 0usize..64,
    ) {
        let largest = items
            .iter()
            .map(|item| match item {
                Item::Data { msg, pkt, payload } => {
                    let hdr = data_header(*msg, *pkt, payload.len());
                    FRAME_OVERHEAD + hdr.sealed_wire_len() + payload.len()
                }
                Item::Ctrl(ctrl) => FRAME_OVERHEAD + ctrl.wire_len(),
            })
            .max()
            .expect("non-empty");
        let budget = largest + slack;
        let dgrams = pack(&items, budget);
        for dgram in &dgrams {
            prop_assert!(dgram.len() <= budget);
        }
        let back = split(&dgrams);
        prop_assert_eq!(back, items);
    }

    /// Property 3: an impossible frame is rejected when sealed, and the
    /// datagram under construction is left byte-for-byte intact.
    #[test]
    fn oversized_frames_rejected_at_seal_time(
        msg in any::<u64>(),
        payload_len in 300usize..2000,
        budget in 32usize..300,
        ports in prop::collection::vec(any::<u16>(), 40..120),
    ) {
        // Park a small frame first: rejection must not disturb it.
        let mut dgram = Vec::new();
        let parked = data_header(1, 0, 4);
        prop_assert!(append_frame(&mut dgram, DEFAULT_DATAGRAM_BUDGET, &parked, &[7; 4]).unwrap());
        let before = dgram.clone();

        let payload = vec![0xA5u8; payload_len];
        let hdr = data_header(msg, 0, payload.len());
        let frame = FRAME_OVERHEAD + hdr.sealed_wire_len() + payload.len();
        prop_assert!(frame > budget, "strategy must produce an oversized frame");
        match append_frame(&mut dgram, budget, &hdr, &payload) {
            Err(FrameError::FrameTooBig { frame: got, budget: b }) => {
                prop_assert_eq!(got, frame);
                prop_assert_eq!(b, budget);
            }
            other => prop_assert!(false, "expected FrameTooBig, got {other:?}"),
        }
        prop_assert_eq!(&dgram, &before);

        // Same guard on the ctrl path: a port map that outgrows the
        // budget is refused, not truncated.
        let mut ctrl = SessionCtrl::new(CtrlKind::HelloAck, 3, 4);
        ctrl.ports = ports;
        let frame = FRAME_OVERHEAD + ctrl.wire_len();
        let tight = frame - 1;
        match append_ctrl_frame(&mut dgram, tight, &ctrl) {
            Err(FrameError::FrameTooBig { frame: got, budget: b }) => {
                prop_assert_eq!(got, frame);
                prop_assert_eq!(b, tight);
            }
            other => prop_assert!(false, "expected FrameTooBig, got {other:?}"),
        }
        prop_assert_eq!(&dgram, &before);
    }

    /// Property 4: truncating a packed datagram anywhere yields a prefix
    /// of the packed frames followed by at most one framing error —
    /// never a panic, never a frame that wasn't packed.
    #[test]
    fn truncation_never_invents_frames(
        items in prop::collection::vec(arb_item(), 1..16),
        cut_seed in any::<u64>(),
    ) {
        let dgrams = pack(&items, DEFAULT_DATAGRAM_BUDGET);
        let dgram = &dgrams[0];
        let cut = (cut_seed % dgram.len() as u64) as usize;
        let full: Vec<Item> = split(std::slice::from_ref(dgram));

        let mut got = Vec::new();
        let mut saw_error = false;
        for frame in FrameIter::new(&dgram[..cut]) {
            match frame {
                Ok((kind, body)) => {
                    prop_assert!(!saw_error, "frames after a torn frame");
                    match kind {
                        FrameKind::Mtp => {
                            let (hdr, used, ok) = MtpHeader::parse_sealed(body)
                                .expect("intact frame parses");
                            prop_assert!(ok);
                            got.push(Item::Data {
                                msg: hdr.msg_id.0,
                                pkt: hdr.pkt_num.0,
                                payload: body[used..].to_vec(),
                            });
                        }
                        FrameKind::Ctrl => {
                            let (ctrl, used) = SessionCtrl::parse_sealed(body)
                                .expect("intact frame parses");
                            prop_assert_eq!(used, body.len());
                            got.push(Item::Ctrl(ctrl));
                        }
                    }
                }
                Err(FrameError::TornFrame { .. } | FrameError::TornPrefix) => {
                    saw_error = true;
                }
                Err(e) => prop_assert!(false, "unexpected split error: {e}"),
            }
        }
        prop_assert!(got.len() <= full.len());
        prop_assert_eq!(&got[..], &full[..got.len()], "truncation invented a frame");
    }
}
