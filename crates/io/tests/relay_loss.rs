//! Loss repair on real sockets: the lossy relay across seeds, and a
//! blackholed pathlet drained by retransmission rotation.
//!
//! The simulator's fault suite proves exactly-once under *modeled*
//! loss; these tests prove the identical property when the loss happens
//! to real UDP datagrams — whole coalesced bundles of frames vanishing,
//! repeating, and arriving out of order at the kernel's whim plus the
//! relay's seeded faults.

use std::time::Duration as WallDuration;

use mtp_io::{loopback_available, run_wire_golden, GoldenWorkload, IoConfig, RelayConfig};

const WALL_BUDGET: WallDuration = WallDuration::from_secs(45);

fn wire_ok(test: &str) -> bool {
    if loopback_available() {
        return true;
    }
    eprintln!("NOTICE: UDP loopback unavailable; skipping {test}");
    false
}

/// Exactly-once delivery and the expected content digest hold across
/// several relay fault seeds — not just one lucky loss pattern.
#[test]
fn lossy_relay_exactly_once_across_seeds() {
    if !wire_ok("lossy_relay_exactly_once_across_seeds") {
        return;
    }
    for seed in [101u64, 202, 303] {
        let workload = GoldenWorkload::generate(seed, 20, 500, 24_000);
        let cfg = IoConfig::default();
        let wire = run_wire_golden(&cfg, &workload, Some(RelayConfig::lossy(seed)), WALL_BUDGET)
            .unwrap_or_else(|e| panic!("lossy wire run (seed {seed}): {e}"));
        let ctx = format!("relay loss seed {seed}");
        wire.ledger.assert_exactly_once(&ctx);
        assert_eq!(wire.tx.unfinished, 0, "{ctx}: unfinished messages");
        assert_eq!(
            wire.content_digest,
            workload.expected_digest(),
            "{ctx}: delivered content diverged from the workload"
        );
    }
}

/// A pathlet port that goes permanently dark mid-run: the relay
/// blackholes lane 2 after 3 datagrams, and the sender's RTO rotation
/// moves the stranded messages onto surviving pathlets. Everything
/// still completes exactly once with the right bytes.
///
/// The trigger threshold is deliberately tiny: coalescing packs many
/// frames per datagram, and under heavy host load (the full workspace
/// suite running in parallel) a lane can see very few datagrams total —
/// a high threshold would let the blackhole never engage.
#[test]
fn blackholed_pathlet_drains_through_survivors() {
    if !wire_ok("blackholed_pathlet_drains_through_survivors") {
        return;
    }
    let workload = GoldenWorkload::generate(77, 24, 500, 24_000);
    let mut cfg = IoConfig::default();
    // Failover quarantine: repeated losses attributed to the dead
    // pathlet exclude it from future routing instead of retrying it
    // forever.
    cfg.mtp = cfg.mtp.with_failover();
    let relay_cfg = RelayConfig {
        drop_ppm: 0,
        dup_ppm: 0,
        reorder_ppm: 0,
        seed: 77,
        blackhole: Some((2, 3)),
    };
    let wire =
        run_wire_golden(&cfg, &workload, Some(relay_cfg), WALL_BUDGET).expect("blackhole wire run");
    let relay = wire.relay.expect("relay stats present");
    assert!(
        relay.blackholed > 0,
        "blackhole never engaged; the test exercised nothing (stats: {relay:?})"
    );
    assert!(
        wire.tx.retransmissions > 0,
        "a dead pathlet must force retransmissions"
    );
    wire.ledger.assert_exactly_once("blackholed pathlet");
    assert_eq!(wire.tx.unfinished, 0, "stranded messages never drained");
    assert_eq!(
        wire.content_digest,
        workload.expected_digest(),
        "delivered content diverged from the workload"
    );
}
