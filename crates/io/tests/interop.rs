//! The headline interop proof: one golden workload, two worlds.
//!
//! Generate a seeded workload, run it through the discrete-event
//! simulator, then replay the *identical* workload over real UDP
//! sockets on 127.0.0.1 — clean, and again through a lossy relay — and
//! demand byte-identical delivered content: same ledger shape, same
//! per-message digests, same combined content digest, on top of the
//! workload's closed-form expectation. Timing differs between worlds;
//! content may not.
//!
//! Skips VISIBLY (a NOTICE on stderr) when the environment cannot pass
//! UDP loopback traffic — a skip must never look like a pass.

use std::time::Duration as WallDuration;

use mtp_io::{
    loopback_available, run_sim_golden, run_wire_golden, GoldenWorkload, IoConfig, RelayConfig,
    WireOutcome,
};

const WALL_BUDGET: WallDuration = WallDuration::from_secs(45);

/// `true` when the wire side of the test can run; prints the skip
/// notice otherwise.
fn wire_ok(test: &str) -> bool {
    if loopback_available() {
        return true;
    }
    eprintln!("NOTICE: UDP loopback unavailable; skipping wire half of {test}");
    false
}

/// The assertions every wire run must satisfy against its sim
/// reference: exactly-once ledger, identical delivered sets, identical
/// content digests (and both equal to the closed-form expectation).
fn assert_interop(ctx: &str, workload: &GoldenWorkload, wire: &WireOutcome) {
    let sim = run_sim_golden(workload);

    wire.ledger.assert_exactly_once(ctx);
    assert_eq!(wire.tx.unfinished, 0, "{ctx}: unfinished messages");
    assert_eq!(
        wire.ledger.delivered, sim.ledger.delivered,
        "{ctx}: delivered (id, bytes) sets diverge between worlds"
    );
    assert_eq!(
        wire.ledger.goodput, sim.ledger.goodput,
        "{ctx}: first-copy goodput diverges between worlds"
    );
    assert_eq!(
        wire.content_digest, sim.content_digest,
        "{ctx}: wire content digest disagrees with the simulator"
    );
    assert_eq!(
        wire.content_digest,
        workload.expected_digest(),
        "{ctx}: both worlds agree but on the wrong content"
    );
}

/// Clean loopback: the golden workload over real sockets reproduces the
/// simulator's delivered content byte for byte.
#[test]
fn wire_reproduces_sim_golden_workload() {
    if !wire_ok("wire_reproduces_sim_golden_workload") {
        return;
    }
    let workload = GoldenWorkload::generate(7, 40, 500, 48_000);
    let cfg = IoConfig::default();
    let wire = run_wire_golden(&cfg, &workload, None, WALL_BUDGET).expect("clean wire run");
    assert_interop("interop clean", &workload, &wire);
}

/// The same proof through a relay that drops, duplicates, and reorders
/// real datagrams: retransmission repairs everything and the delivered
/// content is still byte-identical to the simulator's.
#[test]
fn wire_reproduces_sim_golden_workload_through_lossy_relay() {
    if !wire_ok("wire_reproduces_sim_golden_workload_through_lossy_relay") {
        return;
    }
    let workload = GoldenWorkload::generate(21, 30, 500, 32_000);
    let cfg = IoConfig::default();
    let wire = run_wire_golden(&cfg, &workload, Some(RelayConfig::lossy(21)), WALL_BUDGET)
        .expect("lossy wire run");
    let relay = wire.relay.expect("relay stats present");
    assert!(
        relay.dropped + relay.duplicated + relay.reordered > 0,
        "relay injected no faults; the lossy proof proved nothing \
         (stats: {relay:?})"
    );
    assert_interop("interop lossy", &workload, &wire);
}

/// Multi-pathlet spraying actually uses the pathlet sockets: a run
/// through a fault-free relay (which observes each lane separately)
/// shows sender→receiver traffic on every configured pathlet port, not
/// collapsed onto one.
#[test]
fn wire_sprays_across_pathlet_sockets() {
    if !wire_ok("wire_sprays_across_pathlet_sockets") {
        return;
    }
    let workload = GoldenWorkload::generate(5, 24, 500, 24_000);
    let cfg = IoConfig::default();
    assert!(cfg.pathlets > 1, "spray test needs multiple pathlets");
    let transparent = RelayConfig {
        drop_ppm: 0,
        dup_ppm: 0,
        reorder_ppm: 0,
        seed: 5,
        blackhole: None,
    };
    let wire =
        run_wire_golden(&cfg, &workload, Some(transparent), WALL_BUDGET).expect("clean wire run");
    assert_interop("interop spray", &workload, &wire);
    let relay = wire.relay.expect("relay stats present");
    assert_eq!(
        relay.lanes_with_traffic, cfg.pathlets,
        "24 messages hashed over {} pathlets left some loopback port \
         silent — spraying collapsed",
        cfg.pathlets
    );
}
