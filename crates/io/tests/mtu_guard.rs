//! MTU guard regression: the datagram budget survives the largest
//! headers the protocol can emit.
//!
//! The wire driver coalesces sealed frames into datagrams under
//! [`DEFAULT_DATAGRAM_BUDGET`]; [`append_frame`] is the only seam where
//! a frame could outgrow its datagram. These tests pin the guard from
//! both sides: the worst *realistic* header shapes (a data packet
//! dragging a full 255-entry exclusion list; an ACK carrying 255 NACKs
//! plus the SACK redundancy ring plus echoed path feedback) must fit,
//! and a deliberately over-budget frame must be rejected with
//! [`FrameError::FrameTooBig`] rather than silently truncated or split.

use mtp_core::MtpConfig;
use mtp_io::frame::{append_frame, FrameIter, FrameKind, FRAME_OVERHEAD};
use mtp_io::{FrameError, DEFAULT_DATAGRAM_BUDGET};
use mtp_wire::{
    Feedback, MsgId, MtpHeader, PathExclude, PathFeedback, PathletId, PktNum, PktType, SackEntry,
    TrafficClass,
};

/// The widest data header a sender can emit: every one of the 255
/// addressable pathlet exclusions, plus the echoed feedback slot, on a
/// full MTU payload segment.
fn worst_data_header(pkt_len: u16) -> MtpHeader {
    MtpHeader {
        pkt_type: PktType::Data,
        msg_id: MsgId(0xFFFF_FFFF_FFFF_FFFF),
        msg_len_pkts: u32::MAX,
        msg_len_bytes: u32::MAX,
        pkt_num: PktNum(u32::MAX),
        pkt_len,
        pkt_offset: u32::MAX - pkt_len as u32,
        path_exclude: (0..255)
            .map(|p| PathExclude {
                path: PathletId(p),
                tc: TrafficClass::BEST_EFFORT,
            })
            .collect(),
        path_feedback: vec![PathFeedback {
            path: PathletId(255),
            tc: TrafficClass::BEST_EFFORT,
            feedback: Feedback::EcnMark { ce: true },
        }],
        ..MtpHeader::default()
    }
}

/// The widest ACK a receiver can emit: a full 255-entry NACK list, the
/// SACK redundancy ring (the configured k plus the fresh entry), and
/// echoed per-pathlet feedback.
fn worst_ack_header(sack_redundancy: usize) -> MtpHeader {
    MtpHeader {
        pkt_type: PktType::Ack,
        msg_id: MsgId(u64::MAX),
        sack: (0..=sack_redundancy as u32)
            .map(|k| SackEntry {
                msg: MsgId(u64::MAX - k as u64),
                pkt: PktNum(u32::MAX - k),
            })
            .collect(),
        nack: (0..255u32)
            .map(|k| SackEntry {
                msg: MsgId(k as u64),
                pkt: PktNum(k),
            })
            .collect(),
        ack_path_feedback: vec![PathFeedback {
            path: PathletId(255),
            tc: TrafficClass::BEST_EFFORT,
            feedback: Feedback::EcnMark { ce: true },
        }],
        ..MtpHeader::default()
    }
}

/// The static bound covers the worst shapes, and the worst shapes fit
/// the default datagram budget with room for the frame prefix.
#[test]
fn worst_case_headers_fit_default_budget() {
    let mtu_payload = MtpConfig::default().mtu_payload as usize;
    let data = worst_data_header(mtu_payload as u16);
    let ack = worst_ack_header(8);

    // The closed-form bound dominates the real sealed sizes...
    let data_bound = MtpHeader::max_sealed_wire_len(255, 1, 0, 0, 0);
    let ack_bound = MtpHeader::max_sealed_wire_len(0, 0, 1, 9, 255);
    assert!(data.sealed_wire_len() <= data_bound);
    assert!(ack.sealed_wire_len() <= ack_bound);

    // ...and both worst frames (with payload, prefix, and kind byte)
    // fit the budget.
    assert!(
        FRAME_OVERHEAD + data_bound + mtu_payload <= DEFAULT_DATAGRAM_BUDGET,
        "worst data frame ({}) exceeds the datagram budget ({})",
        FRAME_OVERHEAD + data_bound + mtu_payload,
        DEFAULT_DATAGRAM_BUDGET
    );
    assert!(
        FRAME_OVERHEAD + ack_bound <= DEFAULT_DATAGRAM_BUDGET,
        "worst ACK frame ({}) exceeds the datagram budget ({})",
        FRAME_OVERHEAD + ack_bound,
        DEFAULT_DATAGRAM_BUDGET
    );
}

/// Those worst frames round-trip through the real coalescing path:
/// appended, iterated, parsed, and byte-compared.
#[test]
fn worst_case_frames_round_trip_through_coalescing() {
    let mtu_payload = MtpConfig::default().mtu_payload as usize;
    let data = worst_data_header(mtu_payload as u16);
    let ack = worst_ack_header(8);
    let payload = vec![0xA5u8; mtu_payload];

    let mut dgram = Vec::new();
    assert!(append_frame(&mut dgram, DEFAULT_DATAGRAM_BUDGET, &ack, &[]).expect("ack fits"));
    assert!(append_frame(&mut dgram, DEFAULT_DATAGRAM_BUDGET, &data, &payload).expect("data fits"));
    assert!(dgram.len() <= DEFAULT_DATAGRAM_BUDGET);

    let frames: Vec<(FrameKind, &[u8])> = FrameIter::new(&dgram)
        .collect::<Result<_, _>>()
        .expect("clean iteration");
    assert_eq!(frames.len(), 2);
    assert_eq!(frames[0].0, FrameKind::Mtp);
    let (h0, _, _) = MtpHeader::parse_sealed(frames[0].1).expect("ack parses");
    assert_eq!(h0.nack.len(), 255);
    assert_eq!(h0.sack.len(), 9);
    assert_eq!(frames[1].0, FrameKind::Mtp);
    let (h1, used, payload_ok) = MtpHeader::parse_sealed(frames[1].1).expect("data parses");
    assert_eq!(h1.path_exclude.len(), 255);
    assert!(payload_ok, "descriptor checksum must hold");
    assert_eq!(&frames[1].1[used..], &payload[..]);
}

/// A frame that cannot fit even an empty datagram is a hard error at
/// seal time — never a torn or truncated datagram on the wire.
#[test]
fn over_budget_frame_is_rejected_at_seal_time() {
    let mtu_payload = MtpConfig::default().mtu_payload as usize;
    let data = worst_data_header(mtu_payload as u16);
    let payload = vec![0u8; mtu_payload];
    // A budget sized under this single frame: even a fresh datagram
    // cannot take it.
    let tight = data.sealed_wire_len() + mtu_payload;
    let mut dgram = Vec::new();
    match append_frame(&mut dgram, tight, &data, &payload) {
        Err(FrameError::FrameTooBig { frame, budget }) => {
            assert_eq!(budget, tight);
            assert!(frame > budget);
        }
        other => panic!("expected FrameTooBig, got {other:?}"),
    }
    assert!(
        dgram.is_empty(),
        "a rejected frame must leave no bytes behind"
    );

    // Enough extra budget for the prefix and kind byte and it fits.
    let ok = append_frame(
        &mut dgram,
        FRAME_OVERHEAD + data.sealed_wire_len() + mtu_payload,
        &data,
        &payload,
    )
    .expect("exactly-sized budget fits");
    assert!(ok);
}
