//! The seeded chaos soak as a test, plus the memory-bound proof.
//!
//! `run_soak_suite` drives every scenario (handshake loss, FIN loss,
//! blackhole flap, peer kill/restart) and classifies each run; here the
//! suite must report **every** run terminating in exactly-once delivery
//! or a typed session error — never a hang, a leaked session, or a
//! busted reassembly cap. Seeds differ from `bin/chaos_soak.rs` so the
//! test and the bench cover different fault interleavings.
//!
//! The second test pins the admission-cap guarantee with a counting
//! global allocator: a transfer an order of magnitude larger than the
//! configured buffered/reassembly caps must keep the whole process's
//! live-heap growth far below the transfer size. Without the caps the
//! sender would buffer every submitted payload and the listener would
//! reassemble everything at once — either alone would blow the budget.
//!
//! This lives in an integration test so the `unsafe` counting allocator
//! stays outside the library's `deny(unsafe_code)`, mirroring
//! `crates/core/tests/alloc.rs`.

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::net::SocketAddrV4;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use mtp_io::{
    golden_session_config, loopback_available, payload, run_soak_suite, IoConfig, Listener,
    SenderSession, SessionConfig, SessionError, SessionReport,
};
use mtp_sim::time::Duration as SimDuration;
use mtp_wire::MsgId;

/// Live heap bytes and their high-water mark, process-wide. The
/// transfer spans threads (sender, listener), so the accounting must be
/// global — which is exactly what we want to bound.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn note_alloc(bytes: usize) {
    let live = LIVE.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size > layout.size() {
            note_alloc(new_size - layout.size());
        } else {
            LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Both tests open dozens of sockets and one watches global allocation;
/// running them concurrently would make the memory measurement see the
/// suite's buffers.
static SERIAL: Mutex<()> = Mutex::new(());

fn wire_ok(test: &str) -> bool {
    if loopback_available() {
        return true;
    }
    eprintln!("NOTICE: UDP loopback unavailable; skipping {test}");
    false
}

/// Every scenario × seed run terminates in one of the two allowed
/// buckets, with nothing leaked and reassembly under its cap — the
/// suite's own per-run classification, asserted wholesale.
#[test]
fn chaos_suite_terminates_exactly_once_or_typed() {
    if !wire_ok("chaos_suite_terminates_exactly_once_or_typed") {
        return;
    }
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let outcome = run_soak_suite(&[5, 77], Duration::from_secs(20)).expect("soak suite runs");
    for run in &outcome.runs {
        eprintln!(
            "  {} seed {}: {} ({}/{} delivered, hs {}, fin {}, leaked {})",
            run.scenario,
            run.seed,
            run.outcome,
            run.delivered,
            run.submitted,
            run.handshake_rounds,
            run.close_rounds,
            run.sessions_leaked,
        );
    }
    assert!(
        outcome.pass,
        "a chaos run ended outside the allowed terminal states (see log above)"
    );
    // The stochastic data-plane faults are asserted in aggregate: across
    // the whole suite the relay must actually have dropped, duplicated,
    // reordered, or blackholed something, or the soak soaked nothing.
    let faults: u64 = outcome
        .runs
        .iter()
        .map(|r| r.relay_dropped + r.relay_duplicated + r.relay_reordered + r.relay_blackholed)
        .sum();
    assert!(
        faults > 0,
        "no data-plane fault ever fired across the suite"
    );
}

/// Session config for the memory test: tight admission caps so a large
/// transfer must stream through bounded buffers.
fn capped_config(seed: u64) -> SessionConfig {
    let mut scfg = golden_session_config(&IoConfig::default());
    scfg.seed = seed;
    scfg.idle_timeout = SimDuration::from_micros(400_000);
    scfg.caps.max_buffered_bytes = 128 * 1024;
    scfg.caps.max_reassembly_bytes = 64 * 1024;
    scfg
}

fn run_capped_transfer(
    scfg: &SessionConfig,
    server: SocketAddrV4,
    sizes: &[u32],
    deadline: Instant,
) -> Result<Vec<u64>, SessionError> {
    let mut sess = SenderSession::connect(scfg, server)?;
    let mut ids = Vec::with_capacity(sizes.len());
    for &bytes in sizes {
        loop {
            let id = sess.next_msg_id();
            let mut buf = vec![0u8; bytes as usize];
            payload::fill(MsgId(id), 0, &mut buf);
            match sess.try_send(buf) {
                Ok(got) => {
                    ids.push(got.0);
                    break;
                }
                Err(SessionError::Backpressure { .. }) => {
                    assert!(Instant::now() < deadline, "backpressure never drained");
                    sess.poll()?;
                    sess.wait(Duration::from_millis(2))?;
                }
                Err(e) => return Err(e),
            }
        }
    }
    sess.flush(deadline)?;
    sess.close(deadline)?;
    Ok(ids)
}

fn assert_delivered_exactly(ids: &[u64], report: &SessionReport) {
    let mut want = ids.to_vec();
    want.sort_unstable();
    let got: Vec<u64> = report.delivered.iter().map(|&(id, _)| id).collect();
    assert_eq!(got, want, "delivered ids diverge from submissions");
    let mut scratch = Vec::new();
    for &(id, bytes, digest) in &report.digests {
        assert_eq!(
            digest,
            payload::synth_message_digest(MsgId(id), bytes, &mut scratch),
            "content digest mismatch on msg {id}"
        );
    }
}

/// A ~5.8 MB transfer through 128 KiB buffered / 64 KiB reassembly caps
/// must bound the process's live-heap growth to a small multiple of the
/// caps — an order of magnitude under the transfer size. Uncapped
/// buffering on either side would hold the whole transfer at once and
/// blow the budget. (The caps × loss interaction is soaked separately
/// by the relay scenarios; this runs direct so the transfer is
/// RTT-bound, not retransmission-bound.)
#[test]
fn admission_caps_bound_process_memory() {
    if !wire_ok("admission_caps_bound_process_memory") {
        return;
    }
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let deadline = Instant::now() + Duration::from_secs(60);
    let scfg = capped_config(99);

    // 144 messages, 24–56 KiB each: every message is a multi-packet
    // reassembly, several exceed half the reassembly cap, and the total
    // (~5.8 MB) dwarfs both caps by ~40×.
    let sizes: Vec<u32> = (0..144u32)
        .map(|i| 24 * 1024 + (i.wrapping_mul(2654435761) % (32 * 1024)))
        .collect();
    let total: u64 = sizes.iter().map(|&b| b as u64).sum();

    let mut listener = Listener::bind(&scfg).expect("bind listener");
    let server = listener.hello_addr().expect("ctrl addr");
    let rx = std::thread::spawn(move || {
        let res = listener.run_until_closed(deadline);
        (listener, res)
    });

    let baseline = LIVE.load(Ordering::Relaxed);
    PEAK.store(baseline, Ordering::Relaxed);

    let ids = run_capped_transfer(&scfg, server, &sizes, deadline).expect("capped transfer");

    let (listener, report) = rx.join().expect("listener thread");
    let report = report.expect("listener completed the session");
    let peak_delta = PEAK.load(Ordering::Relaxed).saturating_sub(baseline) as u64;

    assert_eq!(listener.active_sessions(), 0, "session leaked");
    assert_delivered_exactly(&ids, &report);
    assert!(
        report.peak_reasm_bytes <= scfg.caps.max_reassembly_bytes,
        "reassembly held {} bytes, cap is {}",
        report.peak_reasm_bytes,
        scfg.caps.max_reassembly_bytes
    );
    // The whole process — sender payload buffers, listener reassembly,
    // per-thread receive scratch, frames — must peak far below the
    // transfer. Either side buffering without its cap would hold the
    // transfer's full size and blow straight through this.
    let budget = total / 3;
    eprintln!("transfer {total} B, live-heap peak delta {peak_delta} B, budget {budget} B");
    assert!(
        peak_delta < budget,
        "live heap grew {peak_delta} B during a {total} B transfer (budget {budget} B): \
         an admission cap is not bounding memory"
    );
}
