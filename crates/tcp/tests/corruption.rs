//! Corrupted-segment behaviour of the TCP stand-in.
//!
//! The engine's corruption faults damage wire bytes but still *deliver*
//! the frame, so these tests prove the host-side contract: a segment that
//! fails the checksum stand-in is rejected and counted, never parsed, and
//! the stream recovers through ordinary loss recovery (dup-ACKs / RTO)
//! with every payload byte delivered exactly once.

use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::{DirLinkId, LinkCfg, NodeId, PortId, Simulator};
use mtp_tcp::{TcpConfig, TcpSenderNode, TcpSinkNode, TcpWorkloadMode};

const SIZE: u64 = 256 * 1024;

struct Wire {
    sim: Simulator,
    snd: NodeId,
    sink: NodeId,
    fwd: DirLinkId,
    rev: DirLinkId,
}

/// One sender, one sink, a single 10 Gbps / 2 us link: the simplest
/// topology where loss recovery is the *only* way around a bad segment.
fn wire(cfg: TcpConfig) -> Wire {
    let mut sim = Simulator::new(1);
    let snd = sim.add_node(Box::new(TcpSenderNode::new(
        cfg.clone(),
        TcpWorkloadMode::Persistent,
        100,
        vec![(Time::ZERO, SIZE)],
    )));
    let sink = sim.add_node(Box::new(TcpSinkNode::new(cfg, Duration::from_micros(100))));
    let rate = Bandwidth::from_gbps(10);
    let d = Duration::from_micros(2);
    let (fwd, rev) = sim.connect(
        snd,
        PortId(0),
        sink,
        PortId(0),
        LinkCfg::drop_tail(rate, d, 512),
        LinkCfg::drop_tail(rate, d, 512),
    );
    Wire {
        sim,
        snd,
        sink,
        fwd,
        rev,
    }
}

/// Run to completion and check the corruption ledger: the transfer
/// finished, the byte stream is intact, and every damaged frame is
/// accounted for by a malformed counter (or was destroyed in-engine
/// before reaching a host, e.g. in a queue overflow).
fn finish_and_audit(mut w: Wire, ctx: &str) -> (u64, u64) {
    w.sim.run_until(Time::ZERO + Duration::from_millis(2_000));
    mtp_sim::assert_conservation(&w.sim);
    let corrupted = w.sim.link_stats(w.fwd).corrupted_pkts + w.sim.link_stats(w.rev).corrupted_pkts;
    assert!(corrupted > 0, "[{ctx}] the fault never damaged a frame");
    let destroyed = w.sim.corrupted_destroyed();
    let snd = w.sim.node_as::<TcpSenderNode>(w.snd);
    assert!(snd.all_done(), "[{ctx}] transfer never completed");
    let sink = w.sim.node_as::<TcpSinkNode>(w.sink);
    assert_eq!(
        sink.total_delivered, SIZE,
        "[{ctx}] stream corrupted: delivered byte count is wrong"
    );
    assert_eq!(
        snd.malformed + sink.malformed + destroyed,
        corrupted,
        "[{ctx}] corruption ledger out of balance: snd {} + sink {} + destroyed {destroyed} != {corrupted}",
        snd.malformed,
        sink.malformed
    );
    (snd.malformed, sink.malformed)
}

/// Bit-flipped data segments (the very first burst also hits the SYN) are
/// rejected by the sink and repaired by retransmission.
#[test]
fn bitflipped_data_segments_recovered() {
    let mut w = wire(TcpConfig::default());
    w.sim.bitflip_burst(w.fwd, 12, 3, 0xB17_DA7A);
    let (_, sink_malformed) = finish_and_audit(w, "bitflip/data");
    assert!(sink_malformed > 0, "sink never saw a damaged segment");
}

/// Truncated segments fail the frame-length check before any field is
/// trusted; the cut bytes are retransmitted like any other loss.
#[test]
fn truncated_data_segments_recovered() {
    let mut w = wire(TcpConfig::default());
    w.sim.truncate_burst(w.fwd, 10, 0x7C_7C);
    let (_, sink_malformed) = finish_and_audit(w, "truncate/data");
    assert!(sink_malformed > 0, "sink never saw a truncated segment");
}

/// A corrupted ACK must not move the sender's window: the sender rejects
/// it, the next cumulative ACK covers the gap, and the transfer is
/// unaffected beyond the lost feedback.
#[test]
fn bitflipped_acks_do_not_move_the_window() {
    let mut w = wire(TcpConfig::default());
    w.sim.bitflip_burst(w.rev, 15, 2, 0xACED);
    let (snd_malformed, _) = finish_and_audit(w, "bitflip/ack");
    assert!(snd_malformed > 0, "sender never saw a damaged ACK");
}

/// A steady two-way corruption rate (DCTCP variant): both hosts keep
/// rejecting damage for the whole run and the stream still completes.
#[test]
fn steady_corruption_rate_both_directions() {
    let mut w = wire(TcpConfig::dctcp());
    w.sim.set_corrupt_rate(w.fwd, 40_000, 2, 0x5EED);
    w.sim.set_corrupt_rate(w.rev, 40_000, 2, 0x5EEE);
    let (snd_malformed, sink_malformed) = finish_and_audit(w, "rate/both");
    assert!(snd_malformed > 0, "sender never saw a damaged ACK");
    assert!(sink_malformed > 0, "sink never saw a damaged segment");
}
