//! TCP edge cases: handshake loss, zero-window stalls and reopening,
//! classic-ECN dynamics, and mixed DCTCP/NewReno coexistence.

use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::{DropTailQueue, LinkCfg, LossyQueue, PortId, Simulator};
use mtp_tcp::{SenderConn, TcpConfig, TcpSenderNode, TcpSinkNode, TcpWorkloadMode};
use mtp_wire::{TcpFlags, TcpHeader};

/// A lost SYN is retransmitted by the RTO and the connection still opens.
#[test]
fn syn_loss_is_recovered() {
    let mut sim = Simulator::new(1);
    let cfg = TcpConfig::default(); // handshake on
    let snd = sim.add_node(Box::new(TcpSenderNode::new(
        cfg.clone(),
        TcpWorkloadMode::Persistent,
        100,
        vec![(Time::ZERO, 100_000)],
    )));
    let sink = sim.add_node(Box::new(TcpSinkNode::new(cfg, Duration::from_micros(100))));
    let rate = Bandwidth::from_gbps(10);
    let d = Duration::from_micros(2);
    // 50% loss on the data direction, SYNs included: the handshake must
    // be carried by the RTO.
    sim.connect(
        snd,
        PortId(0),
        sink,
        PortId(0),
        LinkCfg {
            rate,
            delay: d,
            queue: Box::new(LossyQueue::new(Box::new(DropTailQueue::new(256)), 0.5, 11)),
        },
        LinkCfg::drop_tail(rate, d, 256),
    );
    sim.run_until(Time::ZERO + Duration::from_millis(500));
    mtp_sim::assert_conservation(&sim);
    let sender = sim.node_as::<TcpSenderNode>(snd);
    assert!(
        sender.all_done(),
        "handshake and transfer survive SYN losses"
    );
    assert_eq!(sim.node_as::<TcpSinkNode>(sink).total_delivered, 100_000);
}

/// Classic ECN (NewReno + latched ECE): one halving per window even when
/// every ACK in the window carries ECE.
#[test]
fn classic_ecn_halves_once_per_window() {
    let cfg = TcpConfig {
        handshake: false,
        ..TcpConfig::default()
    };
    let mut s = SenderConn::new(cfg, 1, 1, 2);
    let mut out = Vec::new();
    s.open(Time::ZERO, &mut out);
    s.app_write(10_000_000, Time::ZERO, &mut out);
    let w0 = s.cwnd();
    let t = Time::ZERO + Duration::from_micros(10);
    // Several ECE ACKs within the same window.
    for i in 1..=4u64 {
        let hdr = TcpHeader {
            conn_id: 1,
            ack: i * 1460,
            flags: TcpFlags {
                ack: true,
                ece: true,
                ..Default::default()
            },
            rwnd: u32::MAX,
            ..TcpHeader::default()
        };
        s.on_segment(t, &hdr, &mut out);
    }
    // One halving, then ordinary congestion-avoidance growth on the
    // remaining ACKs — never a second cut within the window.
    assert!(s.cwnd() >= w0 / 2, "no double halving: {}", s.cwnd());
    assert!(
        s.cwnd() < w0 / 2 + 4 * 1460,
        "growth bounded by additive increase: {}",
        s.cwnd()
    );
}

/// The sender stalls completely on a zero window and resumes when the
/// receiver's window update arrives — no packets leak in between.
#[test]
fn zero_window_stall_and_reopen() {
    let cfg = TcpConfig {
        handshake: false,
        ..TcpConfig::default()
    };
    let mut s = SenderConn::new(cfg, 1, 1, 2);
    let mut out = Vec::new();
    s.open(Time::ZERO, &mut out);
    s.app_write(1_000_000, Time::ZERO, &mut out);
    out.clear();
    let t = Time::ZERO + Duration::from_micros(10);
    let zero = TcpHeader {
        conn_id: 1,
        ack: 14_600,
        flags: TcpFlags {
            ack: true,
            ..Default::default()
        },
        rwnd: 0,
        ..TcpHeader::default()
    };
    s.on_segment(t, &zero, &mut out);
    assert!(out.is_empty(), "zero window blocks everything");
    assert_eq!(s.flight(), 0);
    // Window update reopens exactly up to the advertised space.
    let update = TcpHeader { rwnd: 4380, ..zero };
    s.on_segment(t + Duration::from_micros(5), &update, &mut out);
    assert_eq!(s.flight(), 4380, "three segments fit the reopened window");
}

/// NewReno and DCTCP endpoints run side by side in one simulation (true
/// shared-bottleneck contention lives in the mtp-net dumbbell tests; this
/// pins that the two variants' state machines coexist in one event loop
/// without interference).
#[test]
fn mixed_cc_flows_share_a_bottleneck() {
    let mut sim = Simulator::new(9);
    let reno_cfg = TcpConfig::default();
    let dctcp_cfg = TcpConfig::dctcp();
    let reno = sim.add_node(Box::new(TcpSenderNode::with_addrs(
        reno_cfg.clone(),
        TcpWorkloadMode::Persistent,
        100,
        vec![(Time::ZERO, 20_000_000)],
        1,
        2,
    )));
    let dctcp = sim.add_node(Box::new(TcpSenderNode::with_addrs(
        dctcp_cfg.clone(),
        TcpWorkloadMode::Persistent,
        200,
        vec![(Time::ZERO, 20_000_000)],
        3,
        4,
    )));
    let sink = sim.add_node(Box::new(TcpSinkNode::new(
        reno_cfg,
        Duration::from_micros(100),
    )));
    let sink2 = sim.add_node(Box::new(TcpSinkNode::new(
        dctcp_cfg,
        Duration::from_micros(100),
    )));
    let rate = Bandwidth::from_gbps(10);
    let d = Duration::from_micros(2);
    sim.connect(
        reno,
        PortId(0),
        sink,
        PortId(0),
        LinkCfg::ecn(rate, d, 128, 20),
        LinkCfg::ecn(rate, d, 128, 20),
    );
    sim.connect(
        dctcp,
        PortId(0),
        sink2,
        PortId(0),
        LinkCfg::ecn(rate, d, 128, 20),
        LinkCfg::ecn(rate, d, 128, 20),
    );
    sim.run_until(Time::ZERO + Duration::from_millis(100));
    mtp_sim::assert_conservation(&sim);
    assert!(sim.node_as::<TcpSenderNode>(reno).all_done());
    assert!(sim.node_as::<TcpSenderNode>(dctcp).all_done());
}
