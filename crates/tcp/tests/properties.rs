//! Property-based and failure-injection tests for the TCP baselines.

use proptest::prelude::*;

use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::{DropTailQueue, LinkCfg, LossyQueue, PortId, ReorderQueue, Simulator};
use mtp_tcp::{ReceiverConn, TcpConfig, TcpSenderNode, TcpSinkNode, TcpWorkloadMode};
use mtp_wire::{TcpFlags, TcpHeader};

fn seg(seq: u64, len: u16) -> TcpHeader {
    TcpHeader {
        conn_id: 1,
        src_port: 1,
        dst_port: 2,
        seq,
        ack: 0,
        flags: TcpFlags::default(),
        rwnd: 0,
        payload_len: len,
    }
}

proptest! {
    /// Feeding the receiver the segments of a stream in any order delivers
    /// every byte exactly once, with a final cumulative ACK at the stream
    /// end.
    #[test]
    fn receiver_reassembles_any_arrival_order(
        seg_lens in prop::collection::vec(1u16..1461, 1..40),
        shuffle_seed in any::<u64>(),
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut segments = Vec::new();
        let mut seq = 0u64;
        for len in &seg_lens {
            segments.push(seg(seq, *len));
            seq += *len as u64;
        }
        let total = seq;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(shuffle_seed);
        segments.shuffle(&mut rng);

        let mut r = ReceiverConn::new(&TcpConfig::default(), 1, 2, 1);
        let mut delivered = 0u64;
        let mut last_ack = 0u64;
        for s in &segments {
            let (newly, reply) = r.on_segment(Time::ZERO, s, false);
            delivered += newly;
            if let Some(rep) = reply {
                last_ack = rep.headers.as_tcp().expect("tcp ack").ack;
            }
        }
        prop_assert_eq!(delivered, total);
        prop_assert_eq!(r.delivered(), total);
        prop_assert_eq!(last_ack, total, "final ACK covers the stream");
        // Replays are idempotent.
        for s in &segments {
            let (newly, _) = r.on_segment(Time::ZERO, s, false);
            prop_assert_eq!(newly, 0);
        }
    }

    /// TCP completes transfers through random loss (both variants).
    #[test]
    fn tcp_survives_random_loss(
        loss in 0.0f64..0.2,
        seed in any::<u64>(),
        size_kb in 16u64..256,
        dctcp in any::<bool>(),
    ) {
        let cfg = if dctcp { TcpConfig::dctcp() } else { TcpConfig::default() };
        let mut sim = Simulator::new(1);
        let snd = sim.add_node(Box::new(TcpSenderNode::new(
            cfg.clone(),
            TcpWorkloadMode::Persistent,
            100,
            vec![(Time::ZERO, size_kb * 1024)],
        )));
        let sink = sim.add_node(Box::new(TcpSinkNode::new(cfg, Duration::from_micros(100))));
        let rate = Bandwidth::from_gbps(10);
        let d = Duration::from_micros(2);
        sim.connect(
            snd,
            PortId(0),
            sink,
            PortId(0),
            LinkCfg {
                rate,
                delay: d,
                queue: Box::new(LossyQueue::new(Box::new(DropTailQueue::new(512)), loss, seed)),
            },
            LinkCfg::drop_tail(rate, d, 512),
        );
        sim.run_until(Time::ZERO + Duration::from_millis(2_000));
        mtp_sim::assert_conservation(&sim);
        let sender = sim.node_as::<TcpSenderNode>(snd);
        prop_assert!(sender.all_done(), "incomplete at loss {loss:.2}");
        prop_assert_eq!(
            sim.node_as::<TcpSinkNode>(sink).total_delivered,
            size_kb * 1024
        );
    }

    /// TCP tolerates in-network reordering (dup-ACK noise costs spurious
    /// retransmits, never correctness).
    #[test]
    fn tcp_survives_reordering(nth in 2u64..6, delay_pkts in 1usize..6) {
        let cfg = TcpConfig::default();
        let mut sim = Simulator::new(1);
        let snd = sim.add_node(Box::new(TcpSenderNode::new(
            cfg.clone(),
            TcpWorkloadMode::Persistent,
            100,
            vec![(Time::ZERO, 200_000)],
        )));
        let sink = sim.add_node(Box::new(TcpSinkNode::new(cfg, Duration::from_micros(100))));
        let rate = Bandwidth::from_gbps(10);
        let d = Duration::from_micros(2);
        sim.connect(
            snd,
            PortId(0),
            sink,
            PortId(0),
            LinkCfg {
                rate,
                delay: d,
                queue: Box::new(ReorderQueue::new(
                    Box::new(DropTailQueue::new(512)),
                    nth,
                    delay_pkts,
                )),
            },
            LinkCfg::drop_tail(rate, d, 512),
        );
        sim.run_until(Time::ZERO + Duration::from_millis(500));
        mtp_sim::assert_conservation(&sim);
        prop_assert!(sim.node_as::<TcpSenderNode>(snd).all_done());
        prop_assert_eq!(sim.node_as::<TcpSinkNode>(sink).total_delivered, 200_000);
    }

    /// RTT estimator safety: the RTO never undercuts the floor and always
    /// exceeds the smoothed RTT.
    #[test]
    fn rto_bounds(samples in prop::collection::vec(1u64..100_000, 1..100), floor_us in 1u64..1000) {
        let mut e = mtp_sim::RttEstimator::new(Duration::from_micros(floor_us));
        for s in &samples {
            e.sample(Duration::from_micros(*s));
            let rto = e.rto();
            prop_assert!(rto >= Duration::from_micros(floor_us));
            prop_assert!(rto >= e.srtt().expect("sampled"));
        }
    }
}
