//! # mtp-tcp — baseline stream transports (TCP NewReno and DCTCP)
//!
//! The paper's evaluation compares MTP against TCP-family baselines; this
//! crate provides them on top of the `mtp-sim` simulator:
//!
//! * **TCP NewReno** — byte-stream, cumulative ACKs, slow start /
//!   congestion avoidance, fast retransmit + NewReno partial-ACK recovery,
//!   RFC 6298 RTO estimation, and classic-ECN response (one halving per
//!   window, ECE latched until CWR).
//! * **DCTCP** — the same stream machinery with per-packet ECN echo and the
//!   DCTCP control law: the sender maintains the EWMA marking fraction
//!   `alpha` (gain 1/16) and scales `cwnd` by `1 - alpha/2` once per window
//!   when marks arrive.
//!
//! The protocol logic lives in **sans-IO state machines**
//! ([`conn::SenderConn`], [`recv::ReceiverConn`]) that consume `(time,
//! segment)` and produce packets to transmit — so the same cores drive the
//! host nodes here *and* the TCP-terminating proxy in `mtp-net`
//! (paper Fig. 2). Thin [`Node`](mtp_sim::Node) adapters
//! ([`host::TcpSenderNode`], [`host::TcpSinkNode`]) wire the cores into the
//! simulator.
//!
//! The stream abstraction is the point of comparison: everything the paper
//! says TCP *cannot* do (message mutation, per-message load balancing,
//! per-pathlet congestion state) is structurally impossible here, and the
//! capability record in [`capabilities`] encodes that for Table 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capabilities;
pub mod cc;
pub mod conn;
pub mod host;
pub mod recv;

pub use cc::{CcVariant, TcpCc};
pub use conn::{SenderConn, SenderState};
pub use host::{TcpSenderNode, TcpSinkNode, TcpWorkloadMode};
pub use mtp_sim::rtt::RttEstimator;
pub use recv::ReceiverConn;

use mtp_sim::time::Duration;

/// Bytes of TCP/IP header overhead carried on the wire by every segment
/// (20 B IP + 20 B TCP; options are not modelled).
pub const TCP_WIRE_OVERHEAD: u32 = 40;

/// Default maximum segment payload size.
pub const DEFAULT_MSS: u32 = 1460;

/// Configuration shared by senders and receivers.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum segment payload size in bytes.
    pub mss: u32,
    /// Initial congestion window in segments.
    pub init_cwnd_pkts: u32,
    /// Congestion-control variant.
    pub variant: cc::CcVariant,
    /// Lower bound on the retransmission timeout. Datacenter-tuned.
    pub min_rto: Duration,
    /// Whether connection setup costs a SYN/SYN-ACK round trip. The
    /// one-message-per-flow experiment (paper Fig. 3) needs this on.
    pub handshake: bool,
    /// Receive-buffer capacity in bytes; `None` advertises an effectively
    /// unlimited window (the paper's Fig. 2 "unlimited receive window"
    /// configuration).
    pub recv_buffer: Option<u64>,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: DEFAULT_MSS,
            init_cwnd_pkts: 10,
            variant: cc::CcVariant::NewReno,
            min_rto: Duration::from_micros(200),
            handshake: true,
            recv_buffer: None,
        }
    }
}

impl TcpConfig {
    /// The standard DCTCP configuration used throughout the experiments.
    pub fn dctcp() -> TcpConfig {
        TcpConfig {
            variant: cc::CcVariant::Dctcp,
            ..TcpConfig::default()
        }
    }
}
