//! The sans-IO TCP sender state machine.
//!
//! [`SenderConn`] holds one direction of a TCP connection: the send window,
//! congestion state, RTT estimation, and loss recovery. It never touches
//! the simulator directly — callers feed it segments and the clock, and it
//! pushes packets to transmit into a caller-provided `Vec`. This makes the
//! same core usable from host nodes and from the TCP-terminating proxy.
//!
//! Data is virtual: the stream is a byte count, not a buffer. `app_write`
//! extends the stream; sequence numbers are `u64` so wraparound never
//! occurs at simulated scales.

use mtp_sim::packet::{Headers, Packet};
use mtp_sim::time::{Duration, Time};
use mtp_wire::{EcnCodepoint, TcpFlags, TcpHeader};

use crate::cc::{CcVariant, TcpCc};
use crate::{TcpConfig, TCP_WIRE_OVERHEAD};
use mtp_sim::rtt::RttEstimator;

/// Connection lifecycle state (sender side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenderState {
    /// Created, not yet opened.
    Idle,
    /// SYN sent, waiting for SYN-ACK.
    SynSent,
    /// Handshake complete (or skipped); data may flow.
    Established,
}

/// Counters kept by a sender.
#[derive(Debug, Clone, Copy, Default)]
pub struct SenderStats {
    /// Segments retransmitted (fast retransmit + partial ACK + RTO).
    pub retransmissions: u64,
    /// Fast-retransmit events.
    pub fast_retransmits: u64,
    /// Retransmission timeouts.
    pub timeouts: u64,
    /// Data segments transmitted (including retransmissions).
    pub segments_sent: u64,
}

/// One TCP sender.
#[derive(Debug)]
pub struct SenderConn {
    cfg: TcpConfig,
    conn_id: u32,
    src_port: u16,
    dst_port: u16,
    state: SenderState,
    /// First unacknowledged byte.
    snd_una: u64,
    /// Next byte to transmit.
    snd_nxt: u64,
    /// Total bytes the application has written into the stream.
    app_limit: u64,
    /// Peer's advertised receive window in bytes.
    peer_rwnd: u64,
    cc: TcpCc,
    rtt: RttEstimator,
    dupacks: u32,
    in_recovery: bool,
    /// NewReno `recover`: highest sequence outstanding when loss detected.
    recover: u64,
    /// RTO deadline, if data (or a SYN) is outstanding.
    rto_deadline: Option<Time>,
    /// One timed segment for RTT sampling: (end seq, send time).
    timed: Option<(u64, Time)>,
    /// Classic ECN: a CWR flag should go out on the next data segment.
    cwr_pending: bool,
    /// Counters.
    pub stats: SenderStats,
}

impl SenderConn {
    /// Create a sender for connection `conn_id`.
    pub fn new(cfg: TcpConfig, conn_id: u32, src_port: u16, dst_port: u16) -> SenderConn {
        let cc = TcpCc::new(cfg.variant, cfg.mss, cfg.init_cwnd_pkts);
        let rtt = RttEstimator::new(cfg.min_rto);
        SenderConn {
            cfg,
            conn_id,
            src_port,
            dst_port,
            state: SenderState::Idle,
            snd_una: 0,
            snd_nxt: 0,
            app_limit: 0,
            peer_rwnd: u64::MAX,
            cc,
            rtt,
            dupacks: 0,
            in_recovery: false,
            recover: 0,
            rto_deadline: None,
            timed: None,
            cwr_pending: false,
            stats: SenderStats::default(),
        }
    }

    /// The connection id.
    pub fn conn_id(&self) -> u32 {
        self.conn_id
    }

    /// Lifecycle state.
    pub fn state(&self) -> SenderState {
        self.state
    }

    /// Bytes acknowledged so far.
    pub fn bytes_acked(&self) -> u64 {
        self.snd_una
    }

    /// True when every written byte has been acknowledged.
    pub fn all_acked(&self) -> bool {
        self.state == SenderState::Established && self.snd_una == self.app_limit
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u64 {
        self.cc.cwnd()
    }

    /// The congestion controller (read-only), for instrumentation.
    pub fn cc(&self) -> &TcpCc {
        &self.cc
    }

    /// The smoothed RTT estimate, if any.
    pub fn srtt(&self) -> Option<Duration> {
        self.rtt.srtt()
    }

    /// Bytes in flight.
    pub fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Bytes written but not yet acknowledged (send backlog + flight).
    pub fn backlog(&self) -> u64 {
        self.app_limit - self.snd_una
    }

    /// The next time at which [`on_timer`](Self::on_timer) needs to run.
    pub fn next_deadline(&self) -> Option<Time> {
        self.rto_deadline
    }

    /// Open the connection: transmit a SYN (or go straight to established
    /// if the config skips the handshake), then fill the window.
    pub fn open(&mut self, now: Time, out: &mut Vec<Packet>) {
        match self.state {
            SenderState::Idle => {}
            _ => return,
        }
        if self.cfg.handshake {
            self.state = SenderState::SynSent;
            self.timed = Some((0, now));
            out.push(self.make_ctrl(TcpFlags {
                syn: true,
                ..Default::default()
            }));
            self.arm_rto(now);
        } else {
            self.state = SenderState::Established;
            self.poll(now, out);
        }
    }

    /// Append `bytes` to the stream and fill the window.
    pub fn app_write(&mut self, bytes: u64, now: Time, out: &mut Vec<Packet>) {
        self.app_limit += bytes;
        if self.state == SenderState::Established {
            self.poll(now, out);
        }
    }

    /// Process an incoming segment addressed to this sender (an ACK or
    /// SYN-ACK).
    pub fn on_segment(&mut self, now: Time, hdr: &TcpHeader, out: &mut Vec<Packet>) {
        if hdr.flags.syn && hdr.flags.ack {
            if self.state == SenderState::SynSent {
                self.state = SenderState::Established;
                if let Some((_, t)) = self.timed.take() {
                    self.rtt.sample(now.since(t));
                }
                self.peer_rwnd = hdr.rwnd as u64;
                self.rto_deadline = None;
                self.poll(now, out);
            }
            return;
        }
        if !hdr.flags.ack || self.state != SenderState::Established {
            return;
        }
        self.peer_rwnd = hdr.rwnd as u64;
        let ack = hdr.ack;
        let ece = hdr.flags.ece;
        if ece && self.cfg.variant == CcVariant::NewReno {
            self.cwr_pending = true;
        }

        if ack > self.snd_una {
            // New data acknowledged.
            if let Some((end, t)) = self.timed {
                if ack >= end {
                    self.rtt.sample(now.since(t));
                    self.timed = None;
                }
            }
            let acked = ack - self.snd_una;
            self.snd_una = ack;
            // After a go-back-N timeout, a delayed ACK for data sent
            // before the timeout can acknowledge past the rolled-back
            // snd_nxt; those bytes need no retransmission.
            self.snd_nxt = self.snd_nxt.max(ack);
            if self.in_recovery {
                if ack >= self.recover {
                    self.in_recovery = false;
                    self.dupacks = 0;
                    self.cc.on_recovery_exit();
                } else {
                    // NewReno partial ACK: retransmit the next hole, stay in
                    // recovery.
                    self.retransmit_head(now, out);
                }
            } else {
                self.dupacks = 0;
            }
            self.cc.on_ack(
                acked,
                ece,
                self.snd_una,
                self.snd_nxt,
                self.in_recovery,
                now,
            );
            if self.flight() > 0 || self.backlog() > 0 {
                self.arm_rto(now);
            } else {
                self.rto_deadline = None;
            }
            self.poll(now, out);
        } else if ack == self.snd_una && self.flight() == 0 {
            // Pure window update while idle (e.g. a zero-window stall
            // being lifted): nothing is outstanding, so this cannot be a
            // duplicate ACK — just try to transmit again.
            self.poll(now, out);
        } else if ack == self.snd_una && self.flight() > 0 {
            // Duplicate ACK.
            self.dupacks += 1;
            if self.in_recovery {
                self.cc.on_dup_ack_inflation();
                self.poll(now, out);
            } else if self.dupacks == 3 {
                self.in_recovery = true;
                self.recover = self.snd_nxt;
                self.stats.fast_retransmits += 1;
                self.cc.on_fast_retransmit(now);
                self.retransmit_head(now, out);
            } else {
                // A window update may have unblocked us.
                self.poll(now, out);
            }
        }
    }

    /// Drive timers: call when the wall clock passes
    /// [`next_deadline`](Self::next_deadline).
    pub fn on_timer(&mut self, now: Time, out: &mut Vec<Packet>) {
        let Some(deadline) = self.rto_deadline else {
            return;
        };
        if now < deadline {
            return;
        }
        self.stats.timeouts += 1;
        self.rtt.on_timeout();
        match self.state {
            SenderState::SynSent => {
                out.push(self.make_ctrl(TcpFlags {
                    syn: true,
                    ..Default::default()
                }));
                self.arm_rto(now);
            }
            SenderState::Established => {
                // Go-back-N from the last cumulative ACK.
                self.cc.on_timeout(self.flight(), now);
                self.snd_nxt = self.snd_una;
                self.in_recovery = false;
                self.dupacks = 0;
                self.timed = None;
                self.poll(now, out);
                self.arm_rto(now);
            }
            SenderState::Idle => {}
        }
    }

    /// Fill the window: transmit new segments while congestion and flow
    /// control allow.
    pub fn poll(&mut self, now: Time, out: &mut Vec<Packet>) {
        if self.state != SenderState::Established {
            return;
        }
        let window = self.cc.cwnd().min(self.peer_rwnd);
        while self.flight() < window && self.snd_nxt < self.app_limit {
            let remaining = self.app_limit - self.snd_nxt;
            let len = (self.cfg.mss as u64).min(remaining) as u32;
            let seq = self.snd_nxt;
            self.snd_nxt += len as u64;
            if self.timed.is_none() {
                self.timed = Some((self.snd_nxt, now));
            }
            out.push(self.make_data(seq, len));
            if self.rto_deadline.is_none() {
                self.arm_rto(now);
            }
        }
    }

    fn retransmit_head(&mut self, now: Time, out: &mut Vec<Packet>) {
        let remaining = self.app_limit - self.snd_una;
        if remaining == 0 {
            return;
        }
        let len = (self.cfg.mss as u64).min(remaining) as u32;
        let seq = self.snd_una;
        self.stats.retransmissions += 1;
        // Karn: a retransmitted range must not produce an RTT sample.
        self.timed = None;
        out.push(self.make_data(seq, len));
        self.arm_rto(now);
    }

    fn arm_rto(&mut self, now: Time) {
        self.rto_deadline = Some(now + self.rtt.rto());
    }

    fn ect(&self) -> EcnCodepoint {
        match self.cfg.variant {
            CcVariant::Dctcp => EcnCodepoint::Ect0,
            CcVariant::NewReno => EcnCodepoint::NotEct,
        }
    }

    fn make_data(&mut self, seq: u64, len: u32) -> Packet {
        self.stats.segments_sent += 1;
        let cwr = std::mem::take(&mut self.cwr_pending);
        let hdr = TcpHeader {
            conn_id: self.conn_id,
            src_port: self.src_port,
            dst_port: self.dst_port,
            seq,
            ack: 0,
            flags: TcpFlags {
                cwr,
                ..Default::default()
            },
            rwnd: 0,
            payload_len: len as u16,
        };
        let mut pkt = Packet::new(Headers::Tcp(hdr), len + TCP_WIRE_OVERHEAD);
        pkt.ecn = self.ect();
        pkt
    }

    fn make_ctrl(&self, flags: TcpFlags) -> Packet {
        let hdr = TcpHeader {
            conn_id: self.conn_id,
            src_port: self.src_port,
            dst_port: self.dst_port,
            seq: 0,
            ack: 0,
            flags,
            rwnd: 0,
            payload_len: 0,
        };
        // Control segments are never ECT (RFC 3168 / DCTCP practice).
        Packet::new(Headers::Tcp(hdr), TCP_WIRE_OVERHEAD).without_ect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_handshake() -> TcpConfig {
        TcpConfig {
            handshake: false,
            ..TcpConfig::default()
        }
    }

    fn ack(conn_id: u32, ackno: u64, ece: bool, rwnd: u32) -> TcpHeader {
        TcpHeader {
            conn_id,
            src_port: 2,
            dst_port: 1,
            seq: 0,
            ack: ackno,
            flags: TcpFlags {
                ack: true,
                ece,
                ..Default::default()
            },
            rwnd,
            payload_len: 0,
        }
    }

    fn payload(p: &Packet) -> (u64, u32) {
        let h = p.headers.as_tcp().expect("tcp segment");
        (h.seq, h.payload_len as u32)
    }

    #[test]
    fn initial_window_sends_ten_segments() {
        let mut s = SenderConn::new(no_handshake(), 1, 1, 2);
        let mut out = Vec::new();
        s.open(Time::ZERO, &mut out);
        s.app_write(1_000_000, Time::ZERO, &mut out);
        assert_eq!(out.len(), 10, "init cwnd = 10 segments");
        assert_eq!(payload(&out[0]), (0, 1460));
        assert_eq!(payload(&out[9]), (9 * 1460, 1460));
        assert_eq!(s.flight(), 14_600);
    }

    #[test]
    fn handshake_defers_data_until_synack() {
        let mut s = SenderConn::new(TcpConfig::default(), 7, 1, 2);
        let mut out = Vec::new();
        s.open(Time::ZERO, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].headers.as_tcp().unwrap().flags.syn);
        s.app_write(5000, Time::ZERO, &mut out);
        assert_eq!(out.len(), 1, "no data before SYN-ACK");

        let synack = TcpHeader {
            conn_id: 7,
            flags: TcpFlags {
                syn: true,
                ack: true,
                ..Default::default()
            },
            rwnd: u32::MAX,
            ..TcpHeader::default()
        };
        let t = Time::ZERO + Duration::from_micros(10);
        s.on_segment(t, &synack, &mut out);
        assert_eq!(out.len(), 1 + 4, "5000 B = 4 segments");
        assert_eq!(s.srtt(), Some(Duration::from_micros(10)));
    }

    #[test]
    fn acks_advance_and_release_new_segments() {
        let mut s = SenderConn::new(no_handshake(), 1, 1, 2);
        let mut out = Vec::new();
        s.open(Time::ZERO, &mut out);
        s.app_write(1_000_000, Time::ZERO, &mut out);
        out.clear();
        let t = Time::ZERO + Duration::from_micros(50);
        s.on_segment(t, &ack(1, 1460, false, u32::MAX), &mut out);
        // Slow start: 1460 acked => cwnd grows 1460 => 2 new segments slide.
        assert_eq!(out.len(), 2);
        assert_eq!(s.bytes_acked(), 1460);
    }

    #[test]
    fn triple_dupack_triggers_fast_retransmit() {
        let mut s = SenderConn::new(no_handshake(), 1, 1, 2);
        let mut out = Vec::new();
        s.open(Time::ZERO, &mut out);
        s.app_write(1_000_000, Time::ZERO, &mut out);
        out.clear();
        let t = Time::ZERO + Duration::from_micros(50);
        for _ in 0..2 {
            s.on_segment(t, &ack(1, 0, false, u32::MAX), &mut out);
        }
        assert!(out.is_empty());
        s.on_segment(t, &ack(1, 0, false, u32::MAX), &mut out);
        assert_eq!(out.len(), 1, "fast retransmit of head");
        assert_eq!(payload(&out[0]), (0, 1460));
        assert_eq!(s.stats.fast_retransmits, 1);
        assert_eq!(s.stats.retransmissions, 1);
    }

    #[test]
    fn newreno_partial_ack_retransmits_next_hole() {
        let mut s = SenderConn::new(no_handshake(), 1, 1, 2);
        let mut out = Vec::new();
        s.open(Time::ZERO, &mut out);
        s.app_write(1_000_000, Time::ZERO, &mut out);
        out.clear();
        let t = Time::ZERO + Duration::from_micros(50);
        for _ in 0..3 {
            s.on_segment(t, &ack(1, 0, false, u32::MAX), &mut out);
        }
        out.clear();
        // Partial ACK: first segment arrived after retransmit but the next
        // is also missing.
        s.on_segment(t, &ack(1, 1460, false, u32::MAX), &mut out);
        assert!(
            out.iter().any(|p| payload(p).0 == 1460),
            "hole retransmitted"
        );
        // Full ACK past `recover` exits recovery.
        s.on_segment(t, &ack(1, 14_600, false, u32::MAX), &mut out);
        assert!(!s.in_recovery);
    }

    #[test]
    fn rto_collapses_and_goes_back_n() {
        let mut s = SenderConn::new(no_handshake(), 1, 1, 2);
        let mut out = Vec::new();
        s.open(Time::ZERO, &mut out);
        s.app_write(1_000_000, Time::ZERO, &mut out);
        out.clear();
        let deadline = s.next_deadline().expect("rto armed");
        s.on_timer(deadline, &mut out);
        assert_eq!(s.stats.timeouts, 1);
        assert_eq!(out.len(), 1, "cwnd collapsed to 1 MSS");
        assert_eq!(payload(&out[0]), (0, 1460));
        assert_eq!(s.cwnd(), 1460);
    }

    #[test]
    fn receive_window_limits_flight() {
        let mut s = SenderConn::new(no_handshake(), 1, 1, 2);
        let mut out = Vec::new();
        s.open(Time::ZERO, &mut out);
        s.app_write(1_000_000, Time::ZERO, &mut out);
        out.clear();
        // Peer advertises a 2-segment window.
        let t = Time::ZERO + Duration::from_micros(50);
        s.on_segment(t, &ack(1, 14_600, false, 2920), &mut out);
        assert_eq!(s.flight(), 2920, "flight capped by rwnd");
        out.clear();
        // Window update reopens the gate.
        s.on_segment(t, &ack(1, 14_600, false, 29_200), &mut out);
        assert!(s.flight() > 2920);
    }

    #[test]
    fn zero_window_blocks_completely() {
        let mut s = SenderConn::new(no_handshake(), 1, 1, 2);
        let mut out = Vec::new();
        s.open(Time::ZERO, &mut out);
        s.app_write(1_000_000, Time::ZERO, &mut out);
        out.clear();
        let t = Time::ZERO + Duration::from_micros(50);
        s.on_segment(t, &ack(1, 14_600, false, 0), &mut out);
        assert_eq!(s.flight(), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn completion_detected() {
        let mut s = SenderConn::new(no_handshake(), 1, 1, 2);
        let mut out = Vec::new();
        s.open(Time::ZERO, &mut out);
        s.app_write(1000, Time::ZERO, &mut out);
        assert!(!s.all_acked());
        s.on_segment(
            Time::ZERO + Duration::from_micros(1),
            &ack(1, 1000, false, u32::MAX),
            &mut out,
        );
        assert!(s.all_acked());
        assert_eq!(s.next_deadline(), None, "no RTO with nothing outstanding");
    }

    #[test]
    fn dctcp_marks_are_ect_and_newreno_is_not() {
        let mut s = SenderConn::new(no_handshake(), 1, 1, 2);
        let mut out = Vec::new();
        s.open(Time::ZERO, &mut out);
        s.app_write(1460, Time::ZERO, &mut out);
        assert!(!out[0].ecn.is_ect());

        let mut d = SenderConn::new(
            TcpConfig {
                handshake: false,
                ..TcpConfig::dctcp()
            },
            2,
            1,
            2,
        );
        out.clear();
        d.open(Time::ZERO, &mut out);
        d.app_write(1460, Time::ZERO, &mut out);
        assert!(out[0].ecn.is_ect());
    }
}
