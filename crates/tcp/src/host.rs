//! Node adapters: TCP sender and sink hosts for the simulator.
//!
//! [`TcpSenderNode`] drives a message workload over TCP connections — either
//! one **persistent** connection carrying all messages back-to-back (TCP's
//! normal "many requests per flow" usage) or a **new connection per
//! message** (the configuration paper Fig. 3 shows breaks congestion
//! control). [`TcpSinkNode`] accepts any number of connections, consumes
//! in-order bytes immediately, and records a goodput time series.

use std::collections::{HashMap, VecDeque};

use mtp_sim::time::{Duration, Time};
use mtp_sim::{BinSeries, Ctx, Gauge, Headers, HistId, Metric, Node, Packet, PortId};

use crate::conn::{SenderConn, SenderState};
use crate::recv::ReceiverConn;
use crate::TcpConfig;

/// Timer-token kinds (top bits of the token).
const TOKEN_KIND_SHIFT: u64 = 32;
const KIND_MSG: u64 = 1;
const KIND_RTO: u64 = 2;

fn msg_token(idx: usize) -> u64 {
    (KIND_MSG << TOKEN_KIND_SHIFT) | idx as u64
}

fn rto_token(conn_id: u32) -> u64 {
    (KIND_RTO << TOKEN_KIND_SHIFT) | conn_id as u64
}

/// How the sender maps messages onto connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpWorkloadMode {
    /// All messages share one long-lived connection, serialized in order —
    /// subject to head-of-line blocking, but congestion state persists.
    Persistent,
    /// Each message opens a fresh connection (handshake and slow start
    /// every time) — paper Fig. 3's pathological configuration.
    ConnPerMessage,
}

/// Completion record for one message.
#[derive(Debug, Clone, Copy)]
pub struct MsgRecord {
    /// Message size in bytes.
    pub size: u64,
    /// When the application submitted it.
    pub submitted: Time,
    /// When the last byte was acknowledged, if finished.
    pub completed: Option<Time>,
}

impl MsgRecord {
    /// Flow completion time, if finished.
    pub fn fct(&self) -> Option<Duration> {
        self.completed.map(|c| c.since(self.submitted))
    }
}

/// A host that sends a scheduled message workload over TCP.
pub struct TcpSenderNode {
    cfg: TcpConfig,
    mode: TcpWorkloadMode,
    /// This host's address (carried as `src_port`).
    src_addr: u16,
    /// Destination host address (carried as `dst_port`).
    dst_addr: u16,
    /// `(submit time, size)` per message, in submission order.
    schedule: Vec<(Time, u64)>,
    /// Per-message completion records (same indexing as `schedule`).
    pub msgs: Vec<MsgRecord>,
    conns: HashMap<u32, SenderConn>,
    /// Which message each per-message connection carries.
    conn_msg: HashMap<u32, usize>,
    /// Persistent mode: message boundaries as (end_seq, msg index).
    bounds: VecDeque<(u64, usize)>,
    written: u64,
    conn_id_base: u32,
    next_conn: u32,
    /// Deadline currently armed per connection, to suppress stale timers.
    armed: HashMap<u32, Time>,
    /// Closed loop: submit message i+1 the moment message i completes
    /// (instead of at its scheduled time).
    closed_loop: bool,
    /// Segments rejected by the checksum stand-in (corrupted in flight).
    pub malformed: u64,
    /// Messages submitted so far (mirrors `Metric::MsgsSubmitted`).
    msgs_submitted: u64,
    /// Timeout/retransmission totals of connections already dropped on
    /// completion (live connections are summed separately at audit time).
    retired_timeouts: u64,
    retired_retransmissions: u64,
    /// Per-connection (timeouts, retransmissions) already mirrored into
    /// the registry.
    conn_mirror: HashMap<u32, (u64, u64)>,
    name: String,
    /// Reusable packet/completion buffers; taken and restored around each
    /// callback so steady state never allocates.
    out_buf: Vec<Packet>,
    done_buf: Vec<usize>,
}

impl TcpSenderNode {
    /// A sender with a fixed message schedule. `conn_id_base` must be
    /// globally unique per sender so sinks can demultiplex. Uses addresses
    /// 1 (self) and 2 (destination); for routed topologies use
    /// [`with_addrs`](Self::with_addrs).
    pub fn new(
        cfg: TcpConfig,
        mode: TcpWorkloadMode,
        conn_id_base: u32,
        schedule: Vec<(Time, u64)>,
    ) -> TcpSenderNode {
        Self::with_addrs(cfg, mode, conn_id_base, schedule, 1, 2)
    }

    /// A sender with explicit source/destination host addresses (used as
    /// the TCP port fields, which routed switches treat as addresses).
    pub fn with_addrs(
        cfg: TcpConfig,
        mode: TcpWorkloadMode,
        conn_id_base: u32,
        schedule: Vec<(Time, u64)>,
        src_addr: u16,
        dst_addr: u16,
    ) -> TcpSenderNode {
        let msgs = schedule
            .iter()
            .map(|&(t, size)| MsgRecord {
                size,
                submitted: t,
                completed: None,
            })
            .collect();
        TcpSenderNode {
            cfg,
            mode,
            src_addr,
            dst_addr,
            schedule,
            msgs,
            conns: HashMap::new(),
            conn_msg: HashMap::new(),
            bounds: VecDeque::new(),
            written: 0,
            conn_id_base,
            next_conn: 0,
            armed: HashMap::new(),
            closed_loop: false,
            malformed: 0,
            msgs_submitted: 0,
            retired_timeouts: 0,
            retired_retransmissions: 0,
            conn_mirror: HashMap::new(),
            name: format!("tcp-sender-{conn_id_base}"),
            out_buf: Vec::new(),
            done_buf: Vec::new(),
        }
    }

    /// Switch to closed-loop submission: the schedule's times are ignored
    /// beyond the first message; each message is submitted when its
    /// predecessor completes (one outstanding message at a time — the
    /// request-response pattern of paper Fig. 3).
    pub fn closed_loop(mut self) -> TcpSenderNode {
        self.closed_loop = true;
        self
    }

    /// True when every scheduled message has completed.
    pub fn all_done(&self) -> bool {
        self.msgs.iter().all(|m| m.completed.is_some())
    }

    /// Total bytes acknowledged across all connections.
    pub fn total_acked(&self) -> u64 {
        self.conns.values().map(|c| c.bytes_acked()).sum()
    }

    /// Sum of retransmissions across live connections.
    pub fn retransmissions(&self) -> u64 {
        self.conns.values().map(|c| c.stats.retransmissions).sum()
    }

    /// Sum of retransmission timeouts across live connections. Under a
    /// path failure this is the fault signature of a pinned flow: RTOs
    /// accumulate for the whole outage because the sender has no way to
    /// move the flow to a surviving path.
    pub fn timeouts(&self) -> u64 {
        self.conns.values().map(|c| c.stats.timeouts).sum()
    }

    /// Borrow the persistent connection (mode `Persistent`, once started).
    pub fn persistent_conn(&self) -> Option<&SenderConn> {
        match self.mode {
            TcpWorkloadMode::Persistent => self.conns.get(&self.conn_id_base),
            TcpWorkloadMode::ConnPerMessage => None,
        }
    }

    fn flush(&mut self, ctx: &mut Ctx<'_>, out: &mut Vec<Packet>) {
        let now = ctx.now();
        for mut pkt in out.drain(..) {
            pkt.sent_at = now;
            ctx.send(PortId(0), pkt);
        }
    }

    fn sync_timer(&mut self, ctx: &mut Ctx<'_>, conn_id: u32) {
        let deadline = self.conns.get(&conn_id).and_then(|c| c.next_deadline());
        match deadline {
            Some(dl) => {
                if self.armed.get(&conn_id) != Some(&dl) {
                    ctx.set_timer_at(dl, rto_token(conn_id));
                    self.armed.insert(conn_id, dl);
                }
            }
            None => {
                self.armed.remove(&conn_id);
            }
        }
    }

    /// Mirror any timeout/retransmission movement on `conn_id` into the
    /// registry. Must run before a completed connection is dropped, so
    /// every delta is pushed while the connection still exists.
    fn sync_conn(&mut self, ctx: &mut Ctx<'_>, conn_id: u32) {
        let Some(conn) = self.conns.get(&conn_id) else {
            return;
        };
        let m = self.conn_mirror.entry(conn_id).or_default();
        let d = conn.stats.timeouts - m.0;
        if d > 0 {
            m.0 = conn.stats.timeouts;
            ctx.count(Metric::Timeouts, d);
        }
        let d = conn.stats.retransmissions - m.1;
        if d > 0 {
            m.1 = conn.stats.retransmissions;
            ctx.count(Metric::Retransmissions, d);
        }
    }

    /// Mirror completions recorded in `done_buf` (message count, FCT and
    /// size histograms) into the registry.
    fn note_completions(&mut self, ctx: &mut Ctx<'_>) {
        if self.done_buf.is_empty() {
            return;
        }
        ctx.count(Metric::MsgsCompleted, self.done_buf.len() as u64);
        ctx.gauge_add(Gauge::MsgsInFlight, -(self.done_buf.len() as i64));
        for i in 0..self.done_buf.len() {
            let idx = self.done_buf[i];
            if let Some(fct) = self.msgs[idx].fct() {
                ctx.record_hist(HistId::MsgFctUs, fct.0 / 1_000_000);
                ctx.record_hist(HistId::MsgBytes, self.msgs[idx].size);
            }
        }
    }

    /// Record the indices of messages that completed into `done_buf`.
    fn check_completions(&mut self, now: Time, conn_id: u32) {
        debug_assert!(self.done_buf.is_empty());
        match self.mode {
            TcpWorkloadMode::Persistent => {
                let Some(conn) = self.conns.get(&conn_id) else {
                    return;
                };
                let acked = conn.bytes_acked();
                while let Some(&(end, idx)) = self.bounds.front() {
                    if acked >= end {
                        self.msgs[idx].completed = Some(now);
                        self.bounds.pop_front();
                        self.done_buf.push(idx);
                    } else {
                        break;
                    }
                }
            }
            TcpWorkloadMode::ConnPerMessage => {
                let done = match self.conns.get(&conn_id) {
                    Some(conn) => conn.all_acked(),
                    None => false,
                };
                if done {
                    if let Some(idx) = self.conn_msg.remove(&conn_id) {
                        self.msgs[idx].completed = Some(now);
                        self.done_buf.push(idx);
                    }
                    if let Some(conn) = self.conns.remove(&conn_id) {
                        // Totals must outlive the connection for the
                        // conservation audit's node ledger.
                        self.retired_timeouts += conn.stats.timeouts;
                        self.retired_retransmissions += conn.stats.retransmissions;
                    }
                    self.conn_mirror.remove(&conn_id);
                    self.armed.remove(&conn_id);
                }
            }
        }
    }

    fn after_completions(&mut self, ctx: &mut Ctx<'_>) {
        if !self.closed_loop {
            self.done_buf.clear();
            return;
        }
        let done = std::mem::take(&mut self.done_buf);
        for &idx in &done {
            let next = idx + 1;
            if next < self.schedule.len() && self.msgs[next].completed.is_none() {
                self.submit(ctx, next);
            }
        }
        self.done_buf = done;
        self.done_buf.clear();
    }

    fn submit(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        let now = ctx.now();
        let size = self.schedule[idx].1;
        self.msgs[idx].submitted = now;
        self.msgs_submitted += 1;
        ctx.count(Metric::MsgsSubmitted, 1);
        ctx.gauge_add(Gauge::MsgsInFlight, 1);
        let mut out = std::mem::take(&mut self.out_buf);
        let conn_id = match self.mode {
            TcpWorkloadMode::Persistent => {
                let conn_id = self.conn_id_base;
                let (sa, da) = (self.src_addr, self.dst_addr);
                let conn = self
                    .conns
                    .entry(conn_id)
                    .or_insert_with(|| SenderConn::new(self.cfg.clone(), conn_id, sa, da));
                if conn.state() == SenderState::Idle {
                    conn.open(now, &mut out);
                }
                conn.app_write(size, now, &mut out);
                self.written += size;
                self.bounds.push_back((self.written, idx));
                conn_id
            }
            TcpWorkloadMode::ConnPerMessage => {
                let conn_id = self.conn_id_base + self.next_conn;
                self.next_conn += 1;
                let mut conn =
                    SenderConn::new(self.cfg.clone(), conn_id, self.src_addr, self.dst_addr);
                conn.open(now, &mut out);
                conn.app_write(size, now, &mut out);
                self.conn_msg.insert(conn_id, idx);
                self.conns.insert(conn_id, conn);
                conn_id
            }
        };
        self.flush(ctx, &mut out);
        self.out_buf = out;
        self.sync_timer(ctx, conn_id);
    }
}

impl Node for TcpSenderNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.closed_loop {
            if let Some(&(t, _)) = self.schedule.first() {
                ctx.set_timer_at(t, msg_token(0));
            }
        } else {
            for (idx, &(t, _)) in self.schedule.iter().enumerate() {
                ctx.set_timer_at(t, msg_token(idx));
            }
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, mut pkt: Packet) {
        // A corrupted ACK must not move the window: verify the checksum
        // stand-in before trusting any field, as a real NIC/stack would.
        if mtp_sim::corrupt::sanitize(&mut pkt).is_err() {
            self.malformed += 1;
            ctx.trace_malformed(&pkt, _port);
            mtp_sim::pool::recycle_packet(pkt);
            return;
        }
        let Headers::Tcp(hdr) = pkt.headers else {
            return;
        };
        let now = ctx.now();
        let mut out = std::mem::take(&mut self.out_buf);
        if let Some(conn) = self.conns.get_mut(&hdr.conn_id) {
            conn.on_segment(now, &hdr, &mut out);
        }
        self.flush(ctx, &mut out);
        self.out_buf = out;
        self.sync_conn(ctx, hdr.conn_id);
        self.check_completions(now, hdr.conn_id);
        self.note_completions(ctx);
        self.sync_timer(ctx, hdr.conn_id);
        self.after_completions(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let kind = token >> TOKEN_KIND_SHIFT;
        let arg = token & ((1 << TOKEN_KIND_SHIFT) - 1);
        match kind {
            KIND_MSG => self.submit(ctx, arg as usize),
            KIND_RTO => {
                let conn_id = arg as u32;
                self.armed.remove(&conn_id);
                let now = ctx.now();
                let mut out = std::mem::take(&mut self.out_buf);
                if let Some(conn) = self.conns.get_mut(&conn_id) {
                    conn.on_timer(now, &mut out);
                }
                self.flush(ctx, &mut out);
                self.out_buf = out;
                self.sync_conn(ctx, conn_id);
                self.check_completions(now, conn_id);
                self.note_completions(ctx);
                self.sync_timer(ctx, conn_id);
                self.after_completions(ctx);
            }
            _ => {}
        }
    }

    fn audit_counters(&self, out: &mut mtp_sim::NodeAuditCounters) {
        out.malformed += self.malformed;
        out.msgs_submitted += self.msgs_submitted;
        out.msgs_completed += self.msgs.iter().filter(|m| m.completed.is_some()).count() as u64;
        out.timeouts +=
            self.conns.values().map(|c| c.stats.timeouts).sum::<u64>() + self.retired_timeouts;
        out.retransmissions += self
            .conns
            .values()
            .map(|c| c.stats.retransmissions)
            .sum::<u64>()
            + self.retired_retransmissions;
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A host that accepts all TCP connections and consumes delivered bytes
/// immediately, recording goodput.
pub struct TcpSinkNode {
    cfg: TcpConfig,
    conns: HashMap<u32, ReceiverConn>,
    /// In-order delivered bytes, binned over time.
    pub goodput: BinSeries,
    /// Total in-order bytes delivered.
    pub total_delivered: u64,
    /// Segments rejected by the checksum stand-in: unverifiable headers
    /// plus data segments whose payload was damaged. Dropped without an
    /// ACK; ordinary TCP loss recovery repairs the stream.
    pub malformed: u64,
}

impl TcpSinkNode {
    /// A sink recording goodput with the given bin width.
    pub fn new(cfg: TcpConfig, bin: Duration) -> TcpSinkNode {
        TcpSinkNode {
            cfg,
            conns: HashMap::new(),
            goodput: BinSeries::new(bin),
            total_delivered: 0,
            malformed: 0,
        }
    }
}

impl Node for TcpSinkNode {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, mut pkt: Packet) {
        // Checksum stand-in: an unverifiable header or a damaged payload
        // is discarded before the receive path sees it. No ACK is sent,
        // so the sender repairs the hole via dup-ACKs or RTO exactly as
        // for a drop.
        if mtp_sim::corrupt::sanitize(&mut pkt).is_err() || pkt.payload_dirty {
            self.malformed += 1;
            ctx.trace_malformed(&pkt, _port);
            mtp_sim::pool::recycle_packet(pkt);
            return;
        }
        let ce = pkt.ecn.is_ce();
        let Headers::Tcp(hdr) = pkt.headers else {
            return;
        };
        let now = ctx.now();
        let conn = self.conns.entry(hdr.conn_id).or_insert_with(|| {
            ReceiverConn::new(&self.cfg, hdr.conn_id, hdr.dst_port, hdr.src_port)
        });
        let (newly, reply) = conn.on_segment(now, &hdr, ce);
        if newly > 0 {
            self.goodput.add(now, newly as f64);
            self.total_delivered += newly;
            ctx.count(Metric::GoodputBytes, newly);
            // The sink application consumes instantly.
            conn.app_consume(newly);
        }
        if let Some(mut reply) = reply {
            reply.sent_at = now;
            ctx.send(PortId(0), reply);
        }
    }

    fn audit_counters(&self, out: &mut mtp_sim::NodeAuditCounters) {
        out.malformed += self.malformed;
        out.goodput_bytes += self.total_delivered;
    }

    fn name(&self) -> &str {
        "tcp-sink"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_sim::time::Bandwidth;
    use mtp_sim::{LinkCfg, Simulator};

    fn point_to_point(
        cfg: TcpConfig,
        mode: TcpWorkloadMode,
        schedule: Vec<(Time, u64)>,
        rate: Bandwidth,
        delay: Duration,
        queue_cap: usize,
    ) -> (Simulator, mtp_sim::NodeId, mtp_sim::NodeId) {
        let mut sim = Simulator::new(1);
        let snd = sim.add_node(Box::new(TcpSenderNode::new(
            cfg.clone(),
            mode,
            100,
            schedule,
        )));
        let sink = sim.add_node(Box::new(TcpSinkNode::new(cfg, Duration::from_micros(100))));
        sim.connect(
            snd,
            PortId(0),
            sink,
            PortId(0),
            LinkCfg::drop_tail(rate, delay, queue_cap),
            LinkCfg::drop_tail(rate, delay, queue_cap),
        );
        (sim, snd, sink)
    }

    #[test]
    fn transfers_one_megabyte_exactly() {
        let (mut sim, snd, sink) = point_to_point(
            TcpConfig::default(),
            TcpWorkloadMode::Persistent,
            vec![(Time::ZERO, 1_000_000)],
            Bandwidth::from_gbps(10),
            Duration::from_micros(2),
            256,
        );
        sim.run_until(Time::ZERO + Duration::from_millis(50));
        let sender = sim.node_as::<TcpSenderNode>(snd);
        assert!(sender.all_done(), "acked {} of 1M", sender.total_acked());
        assert_eq!(sim.node_as::<TcpSinkNode>(sink).total_delivered, 1_000_000);
    }

    #[test]
    fn throughput_approaches_link_rate() {
        let (mut sim, _snd, sink) = point_to_point(
            TcpConfig::default(),
            TcpWorkloadMode::Persistent,
            vec![(Time::ZERO, 20_000_000)],
            Bandwidth::from_gbps(10),
            Duration::from_micros(2),
            1024,
        );
        sim.run_until(Time::ZERO + Duration::from_millis(100));
        let sink = sim.node_as::<TcpSinkNode>(sink);
        // 20 MB at ~10 Gbps payload rate needs ~16.5 ms.
        assert_eq!(sink.total_delivered, 20_000_000);
        // Steady-state bins should sit near the payload-efficiency-adjusted
        // link rate (1460/1500 * 10 Gbps = 9.73 Gbps).
        let rates = sink.goodput.rates_gbps();
        let peak = rates.iter().cloned().fold(0.0, f64::max);
        assert!(peak > 8.5, "peak rate {peak} Gbps");
    }

    #[test]
    fn recovers_from_drops_in_tiny_queue() {
        let (mut sim, snd, sink) = point_to_point(
            TcpConfig::default(),
            TcpWorkloadMode::Persistent,
            vec![(Time::ZERO, 2_000_000)],
            Bandwidth::from_gbps(1),
            Duration::from_micros(5),
            8, // tiny buffer: slow start will overflow it
        );
        sim.run_until(Time::ZERO + Duration::from_millis(200));
        let sender = sim.node_as::<TcpSenderNode>(snd);
        assert!(sender.all_done(), "acked {}", sender.total_acked());
        assert!(
            sender.retransmissions() > 0,
            "expected losses in an 8-pkt buffer"
        );
        assert_eq!(sim.node_as::<TcpSinkNode>(sink).total_delivered, 2_000_000);
    }

    #[test]
    fn conn_per_message_completes_all() {
        let schedule: Vec<_> = (0..20)
            .map(|i| (Time::ZERO + Duration::from_micros(10 * i), 16_384u64))
            .collect();
        let (mut sim, snd, _) = point_to_point(
            TcpConfig::default(),
            TcpWorkloadMode::ConnPerMessage,
            schedule,
            Bandwidth::from_gbps(10),
            Duration::from_micros(2),
            256,
        );
        sim.run_until(Time::ZERO + Duration::from_millis(50));
        let sender = sim.node_as::<TcpSenderNode>(snd);
        assert!(sender.all_done());
        assert!(sender.msgs.iter().all(|m| m.fct().is_some()));
    }

    #[test]
    fn persistent_mode_is_head_of_line_ordered() {
        // Two messages submitted together: the second cannot finish before
        // the first on one stream.
        let (mut sim, snd, _) = point_to_point(
            TcpConfig::default(),
            TcpWorkloadMode::Persistent,
            vec![(Time::ZERO, 500_000), (Time::ZERO, 1_000)],
            Bandwidth::from_gbps(1),
            Duration::from_micros(2),
            256,
        );
        sim.run_until(Time::ZERO + Duration::from_millis(100));
        let sender = sim.node_as::<TcpSenderNode>(snd);
        let fct0 = sender.msgs[0].fct().unwrap();
        let fct1 = sender.msgs[1].fct().unwrap();
        assert!(fct1 >= fct0, "tiny message HOL-blocked behind big one");
    }

    #[test]
    fn dctcp_flow_completes_through_ecn_bottleneck() {
        let mut sim = Simulator::new(3);
        let cfg = TcpConfig::dctcp();
        let snd = sim.add_node(Box::new(TcpSenderNode::new(
            cfg.clone(),
            TcpWorkloadMode::Persistent,
            100,
            vec![(Time::ZERO, 5_000_000)],
        )));
        let sink = sim.add_node(Box::new(TcpSinkNode::new(cfg, Duration::from_micros(100))));
        let (ab, _) = sim.connect(
            snd,
            PortId(0),
            sink,
            PortId(0),
            LinkCfg::ecn(Bandwidth::from_gbps(10), Duration::from_micros(2), 128, 20),
            LinkCfg::ecn(Bandwidth::from_gbps(10), Duration::from_micros(2), 128, 20),
        );
        sim.run_until(Time::ZERO + Duration::from_millis(100));
        assert!(sim.node_as::<TcpSenderNode>(snd).all_done());
        let stats = sim.link_stats(ab);
        assert!(stats.marked_pkts > 0, "DCTCP should drive the queue past K");
        assert_eq!(
            stats.dropped_pkts, 0,
            "marks, not drops, at this buffer size"
        );
    }
}
