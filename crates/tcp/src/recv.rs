//! The sans-IO TCP receiver state machine.
//!
//! [`ReceiverConn`] reassembles the byte stream (tracking out-of-order
//! ranges as intervals — the data itself is virtual), generates ACKs with
//! the appropriate ECN echo, and models a bounded receive buffer whose
//! occupancy shrinks only when the *application* consumes bytes. That last
//! part is what the paper's Fig. 2 probes: a TCP-terminating proxy whose
//! downstream is slower either buffers without bound (unlimited window) or
//! advertises a shrinking window and head-of-line-blocks the client.

use std::collections::BTreeMap;

use mtp_sim::packet::{Headers, Packet};
use mtp_sim::time::Time;
use mtp_wire::{TcpFlags, TcpHeader};

use crate::cc::CcVariant;
use crate::{TcpConfig, TCP_WIRE_OVERHEAD};

/// How the receiver echoes congestion marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcnEchoMode {
    /// DCTCP: each ACK echoes the CE state of the packet it acknowledges.
    PerPacket,
    /// Classic ECN (RFC 3168): ECE is latched from the first CE until the
    /// sender responds with CWR.
    Latched,
}

/// One TCP receiver.
#[derive(Debug)]
pub struct ReceiverConn {
    conn_id: u32,
    src_port: u16,
    dst_port: u16,
    /// Next in-order byte expected.
    rcv_nxt: u64,
    /// Out-of-order ranges, keyed by start, non-overlapping, non-adjacent.
    ooo: BTreeMap<u64, u64>,
    /// Receive-buffer capacity; `None` = unlimited.
    buffer_cap: Option<u64>,
    /// In-order bytes delivered to the app but not yet consumed by it.
    pending: u64,
    /// Total in-order bytes ever delivered.
    delivered: u64,
    echo_mode: EcnEchoMode,
    ece_latched: bool,
    /// Count of ACKs sent (stats).
    pub acks_sent: u64,
}

impl ReceiverConn {
    /// Create the receiving half for connection `conn_id`. Port arguments
    /// are from the *receiver's* perspective (src = receiver's port).
    pub fn new(cfg: &TcpConfig, conn_id: u32, src_port: u16, dst_port: u16) -> ReceiverConn {
        let echo_mode = match cfg.variant {
            CcVariant::Dctcp => EcnEchoMode::PerPacket,
            CcVariant::NewReno => EcnEchoMode::Latched,
        };
        ReceiverConn {
            conn_id,
            src_port,
            dst_port,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            buffer_cap: cfg.recv_buffer,
            pending: 0,
            delivered: 0,
            echo_mode,
            ece_latched: false,
            acks_sent: 0,
        }
    }

    /// Total in-order bytes delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// In-order bytes waiting for the application.
    pub fn available(&self) -> u64 {
        self.pending
    }

    /// Bytes currently held in the receive buffer (in-order unconsumed +
    /// out-of-order).
    pub fn buffered(&self) -> u64 {
        self.pending + self.ooo_bytes()
    }

    fn ooo_bytes(&self) -> u64 {
        self.ooo.iter().map(|(s, e)| e - s).sum()
    }

    /// The receive window to advertise.
    pub fn rwnd(&self) -> u64 {
        match self.buffer_cap {
            None => u64::MAX,
            Some(cap) => cap.saturating_sub(self.buffered()),
        }
    }

    /// Process one incoming segment. Returns `(newly_in_order_bytes,
    /// reply)` — the reply (an ACK or SYN-ACK) must be transmitted by the
    /// caller.
    pub fn on_segment(&mut self, _now: Time, hdr: &TcpHeader, ce: bool) -> (u64, Option<Packet>) {
        if hdr.flags.syn {
            let reply = self.make_reply(TcpFlags {
                syn: true,
                ack: true,
                ..Default::default()
            });
            return (0, Some(reply));
        }
        if hdr.payload_len == 0 {
            return (0, None);
        }
        // ECN echo bookkeeping.
        if ce {
            self.ece_latched = true;
        }
        if hdr.flags.cwr && self.echo_mode == EcnEchoMode::Latched {
            self.ece_latched = false;
        }

        let seq = hdr.seq;
        let len = hdr.payload_len as u64;
        let end = seq + len;
        let before = self.rcv_nxt;

        if end > self.rcv_nxt {
            // Discard anything that would overflow a bounded buffer: a
            // compliant sender never triggers this (it honors rwnd), but
            // the state machine must stay safe regardless.
            let fits = match self.buffer_cap {
                None => true,
                Some(cap) => end - self.rcv_nxt + self.buffered() <= cap + len,
            };
            if fits {
                self.insert_range(seq.max(self.rcv_nxt), end);
                self.drain_in_order();
            }
        }
        let newly = self.rcv_nxt - before;
        self.pending += newly;
        self.delivered += newly;

        let ece = match self.echo_mode {
            EcnEchoMode::PerPacket => ce,
            EcnEchoMode::Latched => self.ece_latched,
        };
        let reply = self.make_reply(TcpFlags {
            ack: true,
            ece,
            ..Default::default()
        });
        (newly, Some(reply))
    }

    /// The application consumed `bytes` from the in-order buffer. Returns a
    /// window-update ACK when the buffer is bounded (the sender may be
    /// blocked on a zero window).
    pub fn app_consume(&mut self, bytes: u64) -> Option<Packet> {
        let take = bytes.min(self.pending);
        self.pending -= take;
        if self.buffer_cap.is_some() && take > 0 {
            Some(self.make_reply(TcpFlags {
                ack: true,
                ..Default::default()
            }))
        } else {
            None
        }
    }

    fn insert_range(&mut self, start: u64, end: u64) {
        debug_assert!(start < end);
        let mut start = start;
        let mut end = end;
        // Merge with any overlapping or adjacent existing ranges.
        let overlapping: Vec<u64> = self
            .ooo
            .range(..=end)
            .filter(|(_, &e)| e >= start)
            .map(|(&s, _)| s)
            .collect();
        for s in overlapping {
            let e = self.ooo.remove(&s).expect("key just found");
            start = start.min(s);
            end = end.max(e);
        }
        self.ooo.insert(start, end);
    }

    fn drain_in_order(&mut self) {
        while let Some((&s, &e)) = self.ooo.first_key_value() {
            if s <= self.rcv_nxt {
                self.ooo.pop_first();
                self.rcv_nxt = self.rcv_nxt.max(e);
            } else {
                break;
            }
        }
    }

    fn make_reply(&mut self, flags: TcpFlags) -> Packet {
        self.acks_sent += 1;
        let hdr = TcpHeader {
            conn_id: self.conn_id,
            src_port: self.src_port,
            dst_port: self.dst_port,
            seq: 0,
            ack: self.rcv_nxt,
            flags,
            rwnd: self.rwnd().min(u32::MAX as u64) as u32,
            payload_len: 0,
        };
        Packet::new(Headers::Tcp(hdr), TCP_WIRE_OVERHEAD).without_ect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(conn_id: u32, seq: u64, len: u16) -> TcpHeader {
        TcpHeader {
            conn_id,
            src_port: 1,
            dst_port: 2,
            seq,
            ack: 0,
            flags: TcpFlags::default(),
            rwnd: 0,
            payload_len: len,
        }
    }

    fn recv(cfg: &TcpConfig) -> ReceiverConn {
        ReceiverConn::new(cfg, 1, 2, 1)
    }

    fn ackno(p: &Packet) -> u64 {
        p.headers.as_tcp().unwrap().ack
    }

    #[test]
    fn in_order_delivery_acks_cumulatively() {
        let mut r = recv(&TcpConfig::default());
        let (n1, a1) = r.on_segment(Time::ZERO, &seg(1, 0, 1000), false);
        assert_eq!(n1, 1000);
        assert_eq!(ackno(&a1.unwrap()), 1000);
        let (n2, a2) = r.on_segment(Time::ZERO, &seg(1, 1000, 500), false);
        assert_eq!(n2, 500);
        assert_eq!(ackno(&a2.unwrap()), 1500);
        assert_eq!(r.delivered(), 1500);
    }

    #[test]
    fn out_of_order_held_then_merged() {
        let mut r = recv(&TcpConfig::default());
        let (n, a) = r.on_segment(Time::ZERO, &seg(1, 1000, 1000), false);
        assert_eq!(n, 0, "hole: nothing in order yet");
        assert_eq!(ackno(&a.unwrap()), 0, "dup ACK for the hole");
        assert_eq!(r.buffered(), 1000);
        let (n, a) = r.on_segment(Time::ZERO, &seg(1, 0, 1000), false);
        assert_eq!(n, 2000, "hole filled merges the OOO range");
        assert_eq!(ackno(&a.unwrap()), 2000);
    }

    #[test]
    fn duplicate_data_is_idempotent() {
        let mut r = recv(&TcpConfig::default());
        r.on_segment(Time::ZERO, &seg(1, 0, 1000), false);
        let (n, _) = r.on_segment(Time::ZERO, &seg(1, 0, 1000), false);
        assert_eq!(n, 0);
        assert_eq!(r.delivered(), 1000);
    }

    #[test]
    fn overlapping_ooo_ranges_merge() {
        let mut r = recv(&TcpConfig::default());
        r.on_segment(Time::ZERO, &seg(1, 3000, 1000), false);
        r.on_segment(Time::ZERO, &seg(1, 3500, 1000), false);
        assert_eq!(r.buffered(), 1500, "overlap counted once");
        r.on_segment(Time::ZERO, &seg(1, 1000, 2000), false);
        let (n, _) = r.on_segment(Time::ZERO, &seg(1, 0, 1000), false);
        assert_eq!(n, 4500);
    }

    #[test]
    fn syn_gets_synack() {
        let mut r = recv(&TcpConfig::default());
        let hdr = TcpHeader {
            flags: TcpFlags {
                syn: true,
                ..Default::default()
            },
            ..seg(1, 0, 0)
        };
        let (_, reply) = r.on_segment(Time::ZERO, &hdr, false);
        let reply = reply.unwrap();
        let f = reply.headers.as_tcp().unwrap().flags;
        assert!(f.syn && f.ack);
    }

    #[test]
    fn bounded_buffer_shrinks_window_until_consumed() {
        let cfg = TcpConfig {
            recv_buffer: Some(10_000),
            ..TcpConfig::default()
        };
        let mut r = recv(&cfg);
        let (_, a) = r.on_segment(Time::ZERO, &seg(1, 0, 4000), false);
        assert_eq!(a.unwrap().headers.as_tcp().unwrap().rwnd, 6000);
        let update = r.app_consume(4000).expect("window update");
        assert_eq!(update.headers.as_tcp().unwrap().rwnd, 10_000);
        assert_eq!(r.available(), 0);
    }

    #[test]
    fn unlimited_buffer_advertises_max_window() {
        let mut r = recv(&TcpConfig::default());
        let (_, a) = r.on_segment(Time::ZERO, &seg(1, 0, 4000), false);
        assert_eq!(a.unwrap().headers.as_tcp().unwrap().rwnd, u32::MAX);
        assert!(r.app_consume(4000).is_none(), "no updates needed");
    }

    #[test]
    fn dctcp_echo_is_per_packet() {
        let mut r = recv(&TcpConfig::dctcp());
        let (_, a) = r.on_segment(Time::ZERO, &seg(1, 0, 1000), true);
        assert!(a.unwrap().headers.as_tcp().unwrap().flags.ece);
        let (_, a) = r.on_segment(Time::ZERO, &seg(1, 1000, 1000), false);
        assert!(
            !a.unwrap().headers.as_tcp().unwrap().flags.ece,
            "echo follows packet CE"
        );
    }

    #[test]
    fn classic_echo_latches_until_cwr() {
        let mut r = recv(&TcpConfig::default());
        let (_, a) = r.on_segment(Time::ZERO, &seg(1, 0, 1000), true);
        assert!(a.unwrap().headers.as_tcp().unwrap().flags.ece);
        let (_, a) = r.on_segment(Time::ZERO, &seg(1, 1000, 1000), false);
        assert!(a.unwrap().headers.as_tcp().unwrap().flags.ece, "latched");
        let cwr_seg = TcpHeader {
            flags: TcpFlags {
                cwr: true,
                ..Default::default()
            },
            ..seg(1, 2000, 1000)
        };
        let (_, a) = r.on_segment(Time::ZERO, &cwr_seg, false);
        assert!(
            !a.unwrap().headers.as_tcp().unwrap().flags.ece,
            "cleared by CWR"
        );
    }
}
