//! Stream congestion control: NewReno and DCTCP window evolution.
//!
//! Both variants share the slow-start / congestion-avoidance skeleton; they
//! differ in how they respond to ECN:
//!
//! * NewReno treats an ECE-carrying ACK like a loss signal — one
//!   multiplicative halving per window.
//! * DCTCP tracks the fraction `F` of acknowledged bytes that were marked
//!   during each window, maintains `alpha <- (1-g) alpha + g F` with
//!   `g = 1/16`, and scales the window by `1 - alpha/2` once per window —
//!   gentle under mild congestion, aggressive under heavy congestion.
//!
//! This module deliberately keeps a **single window for the whole
//! connection**: that is TCP's design, and it is exactly what the paper's
//! Fig. 5 exploits — when the network moves a flow between a 100 Gbps and a
//! 10 Gbps path, this one window is wrong for the new path and must
//! re-converge. MTP's per-pathlet windows (in `mtp-core`) avoid that.

use mtp_sim::time::Time;

/// Which congestion-control law a connection runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcVariant {
    /// Loss-based AIMD with classic-ECN response.
    NewReno,
    /// DCTCP: ECN-fraction proportional response.
    Dctcp,
}

/// DCTCP's EWMA gain for `alpha` (the paper's recommended 1/16).
pub const DCTCP_G: f64 = 1.0 / 16.0;

/// Per-connection congestion state.
#[derive(Debug, Clone)]
pub struct TcpCc {
    variant: CcVariant,
    mss: f64,
    cwnd: f64,
    ssthresh: f64,
    /// DCTCP marking-fraction EWMA.
    alpha: f64,
    /// Bytes acked since the current observation window began.
    window_acked: f64,
    /// Of those, bytes whose ACKs carried ECE.
    window_marked: f64,
    /// Sequence number that closes the current alpha-observation window.
    window_end: u64,
    /// No ECN-driven reduction may occur until `snd_una` passes this —
    /// enforces the "once per window of data" rule.
    next_reduction: u64,
    /// Timestamp of the last loss-driven reduction (for stats only).
    pub last_reduction: Option<Time>,
}

impl TcpCc {
    /// Fresh state with an initial window of `init_pkts` segments.
    pub fn new(variant: CcVariant, mss: u32, init_pkts: u32) -> TcpCc {
        let mss = mss as f64;
        TcpCc {
            variant,
            mss,
            cwnd: mss * init_pkts as f64,
            ssthresh: f64::INFINITY,
            alpha: 1.0,
            window_acked: 0.0,
            window_marked: 0.0,
            window_end: 0,
            next_reduction: 0,
            last_reduction: None,
        }
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u64 {
        self.cwnd as u64
    }

    /// Current slow-start threshold in bytes.
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    /// DCTCP's current `alpha` estimate (1.0 until the first window ends).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// True while in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// The configured variant.
    pub fn variant(&self) -> CcVariant {
        self.variant
    }

    /// Process `acked` newly acknowledged bytes whose ACK carried
    /// `ece`; `snd_una`/`snd_nxt` delimit the window-boundary bookkeeping,
    /// `in_recovery` suppresses growth during loss recovery.
    pub fn on_ack(
        &mut self,
        acked: u64,
        ece: bool,
        snd_una: u64,
        snd_nxt: u64,
        in_recovery: bool,
        now: Time,
    ) {
        let acked_f = acked as f64;
        self.window_acked += acked_f;
        if ece {
            self.window_marked += acked_f;
        }

        let may_reduce = ece && snd_una >= self.next_reduction;
        match self.variant {
            CcVariant::NewReno => {
                if may_reduce {
                    // Classic ECN: one halving per window, no growth on this ACK.
                    self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.mss);
                    self.cwnd = self.ssthresh;
                    self.next_reduction = snd_nxt;
                    self.last_reduction = Some(now);
                    return;
                }
            }
            CcVariant::Dctcp => {
                if may_reduce {
                    // DCTCP reduces once per window, proportionally to alpha.
                    self.cwnd = (self.cwnd * (1.0 - self.alpha / 2.0)).max(2.0 * self.mss);
                    self.ssthresh = self.cwnd;
                    self.next_reduction = snd_nxt;
                    self.last_reduction = Some(now);
                }
            }
        }

        if snd_una >= self.window_end {
            self.end_window(snd_nxt);
        }

        if in_recovery {
            return;
        }
        if self.in_slow_start() {
            self.cwnd += acked_f;
        } else {
            self.cwnd += self.mss * acked_f / self.cwnd;
        }
    }

    fn end_window(&mut self, snd_nxt: u64) {
        if self.variant == CcVariant::Dctcp && self.window_acked > 0.0 {
            let f = (self.window_marked / self.window_acked).clamp(0.0, 1.0);
            self.alpha = (1.0 - DCTCP_G) * self.alpha + DCTCP_G * f;
        }
        self.window_acked = 0.0;
        self.window_marked = 0.0;
        self.window_end = snd_nxt;
    }

    /// Enter fast recovery after triple duplicate ACKs. Returns the new
    /// ssthresh in bytes.
    pub fn on_fast_retransmit(&mut self, now: Time) -> u64 {
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.mss);
        // NewReno inflates by 3 MSS for the three dup-acked segments.
        self.cwnd = self.ssthresh + 3.0 * self.mss;
        self.last_reduction = Some(now);
        self.ssthresh as u64
    }

    /// A duplicate ACK beyond the third inflates the window by one MSS.
    pub fn on_dup_ack_inflation(&mut self) {
        self.cwnd += self.mss;
    }

    /// Deflate to ssthresh when leaving fast recovery.
    pub fn on_recovery_exit(&mut self) {
        self.cwnd = self.ssthresh.max(2.0 * self.mss);
    }

    /// Collapse after a retransmission timeout.
    pub fn on_timeout(&mut self, flight: u64, now: Time) {
        self.ssthresh = ((flight as f64) / 2.0).max(2.0 * self.mss);
        self.cwnd = self.mss;
        self.last_reduction = Some(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1460;

    fn cc(variant: CcVariant) -> TcpCc {
        TcpCc::new(variant, MSS, 10)
    }

    #[test]
    fn slow_start_doubles_per_window() {
        let mut c = cc(CcVariant::NewReno);
        let start = c.cwnd();
        // Ack a full window's worth of bytes: cwnd should double.
        c.on_ack(start, false, start, 2 * start, false, Time::ZERO);
        assert_eq!(c.cwnd(), 2 * start);
    }

    #[test]
    fn congestion_avoidance_grows_one_mss_per_rtt() {
        let mut c = cc(CcVariant::NewReno);
        c.on_fast_retransmit(Time::ZERO);
        c.on_recovery_exit();
        let w = c.cwnd();
        assert!(!c.in_slow_start());
        // Ack one window in MSS chunks: growth ~ 1 MSS.
        let mut acked = 0;
        while acked < w {
            c.on_ack(MSS as u64, false, acked, w, false, Time::ZERO);
            acked += MSS as u64;
        }
        let grown = c.cwnd() - w;
        assert!(
            grown >= (MSS as u64) * 9 / 10 && grown <= (MSS as u64) * 13 / 10,
            "grew {grown} bytes"
        );
    }

    #[test]
    fn newreno_halves_once_per_window_on_ece() {
        let mut c = cc(CcVariant::NewReno);
        let w = c.cwnd();
        c.on_ack(MSS as u64, true, 0, w, false, Time::ZERO);
        assert_eq!(c.cwnd(), w / 2);
        // Second ECE in the same window: no further reduction.
        c.on_ack(MSS as u64, true, MSS as u64, w, false, Time::ZERO);
        assert!(c.cwnd() >= w / 2);
    }

    #[test]
    fn dctcp_full_marking_converges_alpha_to_one_and_halves() {
        let mut c = cc(CcVariant::Dctcp);
        // Every ACK marked across many windows: alpha stays ~1, each window
        // halves the window like Reno under persistent congestion.
        let before = c.cwnd();
        let mut una = 0u64;
        for _ in 0..8 {
            let w = c.cwnd();
            let mut acked_in_window = 0;
            while acked_in_window < w {
                c.on_ack(MSS as u64, true, una, una + w, false, Time::ZERO);
                una += MSS as u64;
                acked_in_window += MSS as u64;
            }
        }
        assert!(c.alpha() > 0.9, "alpha={}", c.alpha());
        // One ~50% cut per window against ~1-2 MSS of additive increase
        // drives the window toward its floor.
        assert!(c.cwnd() < before / 2, "cwnd={} before={}", c.cwnd(), before);
        assert!(c.cwnd() >= 2 * MSS as u64, "floor respected");
    }

    #[test]
    fn dctcp_light_marking_reduces_gently() {
        let mut c = cc(CcVariant::Dctcp);
        // Let alpha decay with several unmarked windows first.
        let mut una = 0u64;
        for _ in 0..20 {
            let w = c.cwnd();
            let mut acked = 0;
            while acked < w {
                c.on_ack(MSS as u64, false, una, una + w, false, Time::ZERO);
                una += MSS as u64;
                acked += MSS as u64;
            }
        }
        assert!(c.alpha() < 0.3, "alpha={}", c.alpha());
        let w = c.cwnd();
        // One marked ACK now shaves only alpha/2 of the window.
        c.on_ack(MSS as u64, true, una, una + w, false, Time::ZERO);
        let lost = w - c.cwnd();
        assert!(
            (lost as f64) < 0.2 * w as f64,
            "gentle reduction expected, lost {lost} of {w}"
        );
    }

    #[test]
    fn timeout_collapses_to_one_mss() {
        let mut c = cc(CcVariant::NewReno);
        c.on_timeout(c.cwnd(), Time::ZERO);
        assert_eq!(c.cwnd(), MSS as u64);
        assert!(c.in_slow_start());
    }

    #[test]
    fn fast_retransmit_sets_ssthresh_half() {
        let mut c = cc(CcVariant::NewReno);
        let w = c.cwnd();
        let ss = c.on_fast_retransmit(Time::ZERO);
        assert_eq!(ss, w / 2);
        assert_eq!(c.cwnd(), w / 2 + 3 * MSS as u64);
        c.on_dup_ack_inflation();
        assert_eq!(c.cwnd(), w / 2 + 4 * MSS as u64);
        c.on_recovery_exit();
        assert_eq!(c.cwnd(), w / 2);
    }
}
