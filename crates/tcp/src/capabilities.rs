//! Table 1 rows for the TCP-family transports implemented in this crate.
//!
//! Each verdict cites the mechanism in this crate (or its absence) that
//! justifies it — the point of the paper's Table 1 is that these are
//! *structural* properties of the stream abstraction, not tuning issues.

use mtp_wire::capabilities::{Assessment, TransportCapabilities};

/// TCP used as a pass-through with many requests per flow (typical usage).
pub fn tcp_passthrough_many_rpf() -> TransportCapabilities {
    TransportCapabilities {
        name: "TCP Pass-Through (many RPF)",
        data_mutation: Assessment::no(
            "byte sequence numbers break if a middlebox changes segment lengths",
        ),
        low_buffering: Assessment::yes(
            "pass-through devices forward segments without reassembly state",
        ),
        inter_message_independence: Assessment::no(
            "requests share one in-order stream; reordering or splitting it corrupts the connection",
        ),
        multi_resource_cc: Assessment::yes(
            "long-lived flows let per-path CC state converge (but only one path at a time)",
        ),
        multi_entity_isolation: Assessment::no(
            "fair sharing is per flow; an entity with more flows gets more bandwidth",
        ),
    }
}

/// TCP pass-through with one request per flow.
pub fn tcp_passthrough_one_rpf() -> TransportCapabilities {
    TransportCapabilities {
        name: "TCP Pass-Through (one RPF)",
        data_mutation: Assessment::no("same stream sequence-number constraint"),
        low_buffering: Assessment::yes("pass-through keeps no reassembly state"),
        inter_message_independence: Assessment::no(
            "a message still cannot be split or reordered inside its flow",
        ),
        multi_resource_cc: Assessment::no(
            "every message restarts from slow start; no converged congestion state (Fig. 3)",
        ),
        multi_entity_isolation: Assessment::yes(
            "one flow per request makes per-flow fairness approximate per-request fairness",
        ),
    }
}

/// TCP terminated at the device (e.g. an L7 load balancer), many requests
/// per flow.
pub fn tcp_termination_many_rpf() -> TransportCapabilities {
    TransportCapabilities {
        name: "TCP Termination (many RPF)",
        data_mutation: Assessment::yes(
            "terminating both sides decouples the byte streams, so lengths may change",
        ),
        low_buffering: Assessment::no(
            "full TCP state plus a buffer absorbing the bandwidth mismatch (Fig. 2)",
        ),
        inter_message_independence: Assessment::no(
            "the client-side stream still serializes requests in order",
        ),
        multi_resource_cc: Assessment::yes("each leg runs its own converged CC"),
        multi_entity_isolation: Assessment::no("per-flow fairness on each leg"),
    }
}

/// TCP terminated at the device, one request per flow.
pub fn tcp_termination_one_rpf() -> TransportCapabilities {
    TransportCapabilities {
        name: "TCP Termination (one RPF)",
        data_mutation: Assessment::yes("terminated streams may be rewritten"),
        low_buffering: Assessment::no("TCP state machines per request on a switch/FPGA"),
        inter_message_independence: Assessment::yes(
            "each request is its own connection and may go to any backend",
        ),
        multi_resource_cc: Assessment::no("slow-start restart per request (Fig. 3)"),
        multi_entity_isolation: Assessment::yes("flow count tracks request count"),
    }
}

/// DCTCP (the `CcVariant::Dctcp` implementation here).
pub fn dctcp() -> TransportCapabilities {
    TransportCapabilities {
        name: "DCTCP",
        data_mutation: Assessment::no("same stream abstraction as TCP"),
        low_buffering: Assessment::no(
            "keeps queues short, but L7 devices still need stream reassembly",
        ),
        inter_message_independence: Assessment::no("single in-order stream"),
        multi_resource_cc: Assessment::no(
            "one window and one alpha for the whole path; path changes corrupt both (Fig. 5)",
        ),
        multi_entity_isolation: Assessment::no("per-flow fairness (Fig. 7)"),
    }
}

/// All rows exported by this crate.
pub fn all() -> Vec<TransportCapabilities> {
    vec![
        tcp_passthrough_many_rpf(),
        tcp_passthrough_one_rpf(),
        tcp_termination_many_rpf(),
        tcp_termination_one_rpf(),
        dctcp(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_wire::capabilities::Support;

    /// The verdicts must match the paper's Table 1 exactly.
    #[test]
    fn rows_match_paper_table1() {
        use Support::{No as X, Yes as Y};
        let expect: [(&str, [Support; 5]); 5] = [
            ("TCP Pass-Through (many RPF)", [X, Y, X, Y, X]),
            ("TCP Pass-Through (one RPF)", [X, Y, X, X, Y]),
            ("TCP Termination (many RPF)", [Y, X, X, Y, X]),
            ("TCP Termination (one RPF)", [Y, X, Y, X, Y]),
            ("DCTCP", [X, X, X, X, X]),
        ];
        for (row, (name, cells)) in all().iter().zip(expect.iter()) {
            assert_eq!(&row.name, name);
            assert_eq!(&row.row(), cells, "row {name}");
        }
    }

    #[test]
    fn no_tcp_variant_meets_all_requirements() {
        for row in all() {
            assert!(
                row.score() < 5,
                "{} should not satisfy everything",
                row.name
            );
        }
    }
}
