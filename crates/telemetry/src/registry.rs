//! The metrics registry and its snapshots.

use crate::hist::{fnv_step, Hist, HistSummary};
use crate::metric::{Gauge, HistId, Metric};

/// A registry of every counter, gauge, and histogram for one simulation.
///
/// Recording is a plain array add at the metric's static index — no
/// hashing, no locking, no allocation. One registry belongs to one
/// simulator instance (the engine owns it and hands it to nodes through
/// their `Ctx`), so parallel simulations never share counters.
///
/// With the `telemetry-off` feature the registry is a zero-sized shell:
/// every recording call is a no-op, every read returns zero.
#[derive(Debug, Clone)]
pub struct Registry {
    #[cfg(not(feature = "telemetry-off"))]
    counters: [u64; Metric::COUNT],
    #[cfg(not(feature = "telemetry-off"))]
    gauges: [i64; Gauge::COUNT],
    #[cfg(not(feature = "telemetry-off"))]
    hists: Vec<Hist>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// A fresh registry with all counters at zero. Histogram buckets are
    /// allocated here, once; recording never allocates.
    pub fn new() -> Registry {
        Registry {
            #[cfg(not(feature = "telemetry-off"))]
            counters: [0; Metric::COUNT],
            #[cfg(not(feature = "telemetry-off"))]
            gauges: [0; Gauge::COUNT],
            #[cfg(not(feature = "telemetry-off"))]
            hists: (0..HistId::COUNT).map(|_| Hist::new()).collect(),
        }
    }

    /// Add `n` to counter `m`.
    #[inline(always)]
    pub fn count(&mut self, m: Metric, n: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        {
            self.counters[m as usize] += n;
        }
        #[cfg(feature = "telemetry-off")]
        let _ = (m, n);
    }

    /// Current value of counter `m` (0 when telemetry is off).
    #[inline]
    pub fn get(&self, m: Metric) -> u64 {
        #[cfg(not(feature = "telemetry-off"))]
        {
            self.counters[m as usize]
        }
        #[cfg(feature = "telemetry-off")]
        {
            let _ = m;
            0
        }
    }

    /// Move gauge `g` by `d` (positive or negative).
    #[inline(always)]
    pub fn gauge_add(&mut self, g: Gauge, d: i64) {
        #[cfg(not(feature = "telemetry-off"))]
        {
            self.gauges[g as usize] += d;
        }
        #[cfg(feature = "telemetry-off")]
        let _ = (g, d);
    }

    /// Current level of gauge `g` (0 when telemetry is off).
    #[inline]
    pub fn gauge(&self, g: Gauge) -> i64 {
        #[cfg(not(feature = "telemetry-off"))]
        {
            self.gauges[g as usize]
        }
        #[cfg(feature = "telemetry-off")]
        {
            let _ = g;
            0
        }
    }

    /// Record sample `v` into histogram `h`.
    #[inline(always)]
    pub fn record(&mut self, h: HistId, v: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        {
            self.hists[h as usize].record(v);
        }
        #[cfg(feature = "telemetry-off")]
        let _ = (h, v);
    }

    /// Summary of histogram `h` (empty when telemetry is off).
    pub fn hist(&self, h: HistId) -> HistSummary {
        #[cfg(not(feature = "telemetry-off"))]
        {
            self.hists[h as usize].summary()
        }
        #[cfg(feature = "telemetry-off")]
        {
            let _ = h;
            HistSummary::default()
        }
    }

    /// Merge every counter, gauge, and histogram from `other` into this
    /// registry.
    ///
    /// Counters and gauges add; histograms merge bucket-wise (see
    /// [`Hist::merge_from`]), so the merged registry is indistinguishable
    /// from one that recorded both instruction streams itself. This is how
    /// per-shard registries combine into the global view at a sharded
    /// run's epoch barriers. A no-op with `telemetry-off`.
    pub fn merge_from(&mut self, other: &Registry) {
        #[cfg(not(feature = "telemetry-off"))]
        {
            for (c, &o) in self.counters.iter_mut().zip(&other.counters) {
                *c += o;
            }
            for (g, &o) in self.gauges.iter_mut().zip(&other.gauges) {
                *g += o;
            }
            for (h, o) in self.hists.iter_mut().zip(&other.hists) {
                h.merge_from(o);
            }
        }
        #[cfg(feature = "telemetry-off")]
        let _ = other;
    }

    /// A point-in-time copy of every metric, for reports, digests, and
    /// audit diffs.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: Metric::ALL.iter().map(|&m| self.get(m)).collect(),
            gauges: Gauge::ALL.iter().map(|&g| self.gauge(g)).collect(),
            hists: HistId::ALL.iter().map(|&h| self.hist(h)).collect(),
            hist_digest: {
                #[cfg(not(feature = "telemetry-off"))]
                {
                    self.hists
                        .iter()
                        .fold(0xCBF2_9CE4_8422_2325, |d, h| h.fold_digest(d))
                }
                #[cfg(feature = "telemetry-off")]
                {
                    0
                }
            },
        }
    }
}

/// A point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values, indexed like [`Metric::ALL`].
    pub counters: Vec<u64>,
    /// Gauge levels, indexed like [`Gauge::ALL`].
    pub gauges: Vec<i64>,
    /// Histogram summaries, indexed like [`HistId::ALL`].
    pub hists: Vec<HistSummary>,
    /// Digest of full histogram bucket contents (not just the summaries).
    pub hist_digest: u64,
}

impl Snapshot {
    /// Value of one counter.
    pub fn get(&self, m: Metric) -> u64 {
        self.counters[m as usize]
    }

    /// One stable 64-bit digest over every counter, gauge, and histogram
    /// bucket: two runs that accounted identically digest identically.
    pub fn digest(&self) -> u64 {
        let mut d = 0xCBF2_9CE4_8422_2325u64;
        for &c in &self.counters {
            d = fnv_step(d, c);
        }
        for &g in &self.gauges {
            d = fnv_step(d, g as u64);
        }
        d = fnv_step(d, self.hist_digest);
        d
    }

    /// Human-readable diff against `other` (empty string when identical):
    /// one line per differing counter/gauge, for audit failure messages.
    pub fn diff(&self, other: &Snapshot) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, m) in Metric::ALL.iter().enumerate() {
            if self.counters[i] != other.counters[i] {
                let _ = writeln!(
                    out,
                    "  {}: {} != {}",
                    m.name(),
                    self.counters[i],
                    other.counters[i]
                );
            }
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            if self.gauges[i] != other.gauges[i] {
                let _ = writeln!(
                    out,
                    "  {}: {} != {}",
                    g.name(),
                    self.gauges[i],
                    other.gauges[i]
                );
            }
        }
        if self.hist_digest != other.hist_digest {
            let _ = writeln!(
                out,
                "  hist_digest: {:#x} != {:#x}",
                self.hist_digest, other.hist_digest
            );
        }
        out
    }

    /// Render as a JSON object (hand-rolled: every key is a static
    /// identifier, so no escaping is needed).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\n  \"counters\": {");
        for (i, m) in Metric::ALL.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {}", m.name(), self.counters[i]);
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, g) in Gauge::ALL.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {}", g.name(), self.gauges[i]);
        }
        out.push_str("\n  },\n  \"hists\": {");
        for (i, h) in HistId::ALL.iter().enumerate() {
            let s = &self.hists[i];
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p99\": {}}}",
                h.name(),
                s.count,
                s.sum,
                s.min,
                s.max,
                s.p50,
                s.p99
            );
        }
        let _ = write!(
            out,
            "\n  }},\n  \"digest\": \"{:#018x}\"\n}}",
            self.digest()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_and_read_round_trip() {
        let mut r = Registry::new();
        r.count(Metric::PktsOffered, 3);
        r.count(Metric::PktsOffered, 2);
        r.gauge_add(Gauge::LinksDown, 2);
        r.gauge_add(Gauge::LinksDown, -1);
        r.record(HistId::MsgFctUs, 120);
        if crate::ENABLED {
            assert_eq!(r.get(Metric::PktsOffered), 5);
            assert_eq!(r.gauge(Gauge::LinksDown), 1);
            assert_eq!(r.hist(HistId::MsgFctUs).count, 1);
        } else {
            assert_eq!(r.get(Metric::PktsOffered), 0);
            assert_eq!(r.gauge(Gauge::LinksDown), 0);
            assert_eq!(r.hist(HistId::MsgFctUs).count, 0);
        }
    }

    #[test]
    fn snapshots_digest_identically_iff_identical() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        for r in [&mut a, &mut b] {
            r.count(Metric::PktsTx, 7);
            r.record(HistId::MsgBytes, 30_000);
        }
        assert_eq!(a.snapshot().digest(), b.snapshot().digest());
        assert_eq!(a.snapshot().diff(&b.snapshot()), "");
        b.count(Metric::PktsTx, 1);
        if crate::ENABLED {
            assert_ne!(a.snapshot().digest(), b.snapshot().digest());
            assert!(a.snapshot().diff(&b.snapshot()).contains("pkts_tx"));
        }
    }

    #[test]
    fn merge_equals_single_registry_recording_everything() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        let mut whole = Registry::new();
        a.count(Metric::PktsTx, 7);
        whole.count(Metric::PktsTx, 7);
        a.gauge_add(Gauge::NodesDown, 1);
        whole.gauge_add(Gauge::NodesDown, 1);
        a.record(HistId::MsgFctUs, 150);
        whole.record(HistId::MsgFctUs, 150);
        b.count(Metric::PktsTx, 5);
        whole.count(Metric::PktsTx, 5);
        b.gauge_add(Gauge::NodesDown, -1);
        whole.gauge_add(Gauge::NodesDown, -1);
        b.record(HistId::MsgFctUs, 90);
        whole.record(HistId::MsgFctUs, 90);

        a.merge_from(&b);
        let merged = a.snapshot();
        let direct = whole.snapshot();
        assert_eq!(merged, direct);
        assert_eq!(merged.digest(), direct.digest());
    }

    #[test]
    fn snapshot_json_is_well_formed_enough() {
        let mut r = Registry::new();
        r.count(Metric::MsgsCompleted, 40);
        let j = r.snapshot().to_json();
        assert!(j.contains("\"msgs_completed\""));
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
