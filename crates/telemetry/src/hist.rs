//! HDR-style log-linear histogram.
//!
//! Values are bucketed by magnitude group (position of the most significant
//! bit) with 16 linear sub-buckets per group, the classic HdrHistogram
//! layout: relative error is bounded at ~6% across the full `u64` range
//! while the whole structure is one flat array. Recording is an increment
//! at a computed index — no allocation, no branching beyond the bucket
//! math — so it is safe in the simulator's hot path.

/// Sub-bucket resolution: 2^4 = 16 linear buckets per magnitude group.
const SUB_BITS: u32 = 4;
const SUBS: usize = 1 << SUB_BITS;
/// Groups: values `< 16` index linearly; each further MSB position adds one
/// 16-wide group. 61 groups cover the whole `u64` range.
const GROUPS: usize = 61;
/// Total bucket count.
pub const BUCKETS: usize = GROUPS * SUBS;

#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUBS as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // >= SUB_BITS
        let group = (msb - SUB_BITS + 1) as usize;
        let sub = ((v >> (msb - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        group * SUBS + sub
    }
}

/// Lower bound of the value range covered by bucket `i` (used when
/// reporting quantiles).
fn bucket_floor(i: usize) -> u64 {
    let group = i / SUBS;
    let sub = (i % SUBS) as u64;
    if group == 0 {
        sub
    } else {
        let msb = group as u32 + SUB_BITS - 1;
        (1u64 << msb) | (sub << (msb - SUB_BITS))
    }
}

/// A fixed-size log-linear histogram of `u64` samples.
#[derive(Debug, Clone)]
pub struct Hist {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Hist {
        Hist::new()
    }
}

impl Hist {
    /// An empty histogram. The one-time bucket allocation happens here;
    /// recording never allocates.
    pub fn new() -> Hist {
        Hist {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of recorded samples (0 if none).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate value at quantile `q` in `[0, 1]`: the floor of the
    /// bucket containing the `ceil(q * count)`-th sample, clamped to the
    /// exact observed `[min, max]`. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        if rank >= self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Compact summary for snapshots.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            p50: self.quantile(0.50),
            p99: self.quantile(0.99),
        }
    }

    /// Merge another histogram's samples into this one, bucket by bucket.
    ///
    /// The result is exactly what recording the union of both sample sets
    /// into one histogram would have produced — counts, sum, min, max, and
    /// therefore quantiles and [`Hist::fold_digest`] all agree — so
    /// per-shard histograms can be combined into a global one without any
    /// loss of fidelity.
    pub fn merge_from(&mut self, other: &Hist) {
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        // `min` keeps its empty-sentinel (u64::MAX) unless `other` has
        // samples; `max` starts at 0 so a plain max is always right.
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Fold the full bucket contents into a digest accumulator, so two
    /// histograms with identical samples (not just identical summaries)
    /// digest identically.
    pub(crate) fn fold_digest(&self, mut d: u64) -> u64 {
        for (i, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                d = fnv_step(d, i as u64);
                d = fnv_step(d, c);
            }
        }
        d
    }
}

pub(crate) fn fnv_step(d: u64, v: u64) -> u64 {
    (d ^ v.wrapping_add(0x9E37_79B9_7F4A_7C15)).wrapping_mul(0x1_0000_01B3)
}

/// Compact histogram summary carried in a [`crate::Snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u128,
    /// Smallest sample (0 if empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Hist::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(h.mean(), 7.5);
    }

    #[test]
    fn bucket_floor_inverts_bucket_of() {
        // The floor of a value's bucket never exceeds the value, and the
        // next bucket's floor exceeds it: the defining sandwich.
        for &v in &[
            0u64,
            1,
            15,
            16,
            17,
            255,
            256,
            1000,
            65_535,
            1 << 40,
            u64::MAX,
        ] {
            let b = bucket_of(v);
            assert!(bucket_floor(b) <= v, "floor({b}) > {v}");
            if b + 1 < BUCKETS {
                assert!(bucket_floor(b + 1) > v, "floor({}) <= {v}", b + 1);
            }
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = Hist::new();
        h.record(1_000_000);
        let q = h.quantile(0.5);
        // Clamped to observed min/max, so a single sample is exact.
        assert_eq!(q, 1_000_000);

        let mut h = Hist::new();
        for v in [900_000u64, 1_000_000, 1_100_000] {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let err = (p50 as f64 - 1_000_000.0).abs() / 1_000_000.0;
        assert!(err < 0.0625, "p50 {p50} err {err}");
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = Hist::new();
        for v in 0..10_000u64 {
            h.record(v * 37);
        }
        let mut last = 0;
        for i in 0..=20 {
            let q = h.quantile(i as f64 / 20.0);
            assert!(q >= last, "q({i}/20) = {q} < {last}");
            last = q;
        }
        assert_eq!(h.quantile(1.0), 9_999 * 37);
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let mut left = Hist::new();
        let mut right = Hist::new();
        let mut both = Hist::new();
        for v in [3u64, 17, 900_000, 12] {
            left.record(v);
            both.record(v);
        }
        for v in [1u64, 44, 1 << 33] {
            right.record(v);
            both.record(v);
        }
        left.merge_from(&right);
        assert_eq!(left.count(), both.count());
        assert_eq!(left.sum(), both.sum());
        assert_eq!(left.summary(), both.summary());
        assert_eq!(left.fold_digest(0), both.fold_digest(0));

        // Merging an empty histogram changes nothing, including min.
        let before = left.summary();
        left.merge_from(&Hist::new());
        assert_eq!(left.summary(), before);
    }

    #[test]
    fn digest_distinguishes_sample_sets() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        a.record(100);
        a.record(200);
        b.record(100);
        b.record(400);
        assert_ne!(a.fold_digest(0), b.fold_digest(0));
        let mut c = Hist::new();
        c.record(100);
        c.record(200);
        assert_eq!(a.fold_digest(0), c.fold_digest(0));
    }
}
