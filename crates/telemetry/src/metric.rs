//! Static metric identifiers.
//!
//! Metrics are addressed by enum discriminants rather than registered
//! strings: the id *is* the array index, so a recording call compiles to
//! one add with no hashing, no locking, and no allocation. Adding a metric
//! means adding a variant here — the registry, snapshots, and audits pick
//! it up automatically.

macro_rules! define_ids {
    ($(#[$enum_doc:meta])* $enum_name:ident, $all:ident, $(($variant:ident, $name:literal, $doc:literal)),+ $(,)?) => {
        $(#[$enum_doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(u16)]
        pub enum $enum_name {
            $(#[doc = $doc] $variant),+
        }

        impl $enum_name {
            /// Every id, in declaration (= index) order.
            pub const $all: &'static [$enum_name] = &[$($enum_name::$variant),+];

            /// Number of ids (the registry's array length).
            pub const COUNT: usize = Self::$all.len();

            /// Stable snake_case name used in snapshots and JSON dumps.
            pub fn name(self) -> &'static str {
                match self {
                    $($enum_name::$variant => $name),+
                }
            }
        }
    };
}

define_ids!(
    /// A monotonically increasing counter.
    ///
    /// The engine-level packet and byte counters obey conservation laws
    /// checked by `mtp_sim::audit`; the device- and endpoint-level ones are
    /// mirrors of per-device counters, reconciled against the devices'
    /// own accounting at audit time.
    Metric,
    ALL,
    // ---- engine: packets -------------------------------------------------
    (PktsOffered, "pkts_offered", "Packets offered to any link direction."),
    (PktsTx, "pkts_tx", "Packets fully serialized onto any wire."),
    (PktsDelivered, "pkts_delivered", "Packets delivered to a live node."),
    (PktsDropped, "pkts_dropped", "Packets dropped by any queue discipline."),
    (PktsFaulted, "pkts_faulted", "Packets destroyed by injected link/node faults."),
    (PktsTrimmed, "pkts_trimmed", "Packets whose payload was NDP-trimmed."),
    (PktsMarked, "pkts_marked", "Packets CE-marked by an ECN queue."),
    (PktsCorrupted, "pkts_corrupted", "Packets damaged in flight but still delivered."),
    (CorruptedDestroyed, "corrupted_destroyed", "Damaged packets the engine destroyed before any receiver could verify them."),
    (FaultedDeliveries, "faulted_deliveries", "Packets destroyed on arrival because their destination node was crashed."),
    // ---- engine: bytes ---------------------------------------------------
    (BytesOffered, "bytes_offered", "Wire bytes offered to any link direction."),
    (BytesTx, "bytes_tx", "Wire bytes fully serialized onto any wire."),
    (BytesDelivered, "bytes_delivered", "Wire bytes delivered to a live node."),
    (BytesDropped, "bytes_dropped", "Wire bytes dropped by any queue discipline."),
    (BytesFaulted, "bytes_faulted", "Wire bytes destroyed by injected faults."),
    (BytesTrimLoss, "bytes_trim_loss", "Wire bytes removed from frames by NDP trimming."),
    (BytesCorruptLoss, "bytes_corrupt_loss", "Wire bytes removed from frames by truncation faults."),
    (BytesFaultedDeliveries, "bytes_faulted_deliveries", "Wire bytes destroyed on arrival at crashed nodes."),
    // ---- engine: shard boundaries ----------------------------------------
    (PktsBoundaryOut, "pkts_boundary_out", "Packets handed to the sharded runtime by a boundary egress half-link."),
    (BytesBoundaryOut, "bytes_boundary_out", "Wire bytes handed to the sharded runtime by boundary egress half-links."),
    (PktsBoundaryIn, "pkts_boundary_in", "Packets injected by the sharded runtime into a boundary ingress half-link."),
    (BytesBoundaryIn, "bytes_boundary_in", "Wire bytes injected by the sharded runtime into boundary ingress half-links."),
    // ---- engine: events --------------------------------------------------
    (TimersFired, "timers_fired", "Timer events dispatched to live nodes."),
    // ---- devices ---------------------------------------------------------
    (PktsMalformed, "pkts_malformed", "Packets rejected by a device's integrity check."),
    (PktsNoRoute, "pkts_no_route", "Packets discarded by a forwarding element with no route."),
    (PktsPolicyDropped, "pkts_policy_dropped", "Packets dropped by a switch admission policy."),
    // ---- endpoints -------------------------------------------------------
    (MsgsSubmitted, "msgs_submitted", "Messages handed to a sending transport."),
    (MsgsCompleted, "msgs_completed", "Messages fully acknowledged at a sender."),
    (MsgsDelivered, "msgs_delivered", "Messages delivered (first copy) at a sink."),
    (GoodputBytes, "goodput_bytes", "First-copy payload bytes delivered at sinks."),
    (Timeouts, "timeouts", "Retransmission timeouts fired at any transport sender."),
    (Retransmissions, "retransmissions", "Data retransmissions sent by any transport sender."),
    // ---- fault driver ----------------------------------------------------
    (FaultsApplied, "faults_applied", "Scheduled fault events applied by a fault driver."),
    // ---- real-wire driver ------------------------------------------------
    //
    // Counters kept by the UDP backend in `mtp-io`. These describe the
    // syscall boundary (datagrams and batches), not the protocol, so no
    // conservation law ties them to the engine counters above.
    (WireDatagramsTx, "wire_datagrams_tx", "UDP datagrams handed to the kernel by a wire driver."),
    (WireDatagramsRx, "wire_datagrams_rx", "UDP datagrams received from the kernel by a wire driver."),
    (WireFramesTx, "wire_frames_tx", "Sealed MTP frames coalesced into transmitted datagrams."),
    (WireFramesRx, "wire_frames_rx", "Sealed MTP frames split out of received datagrams."),
    (WireSendBatches, "wire_send_batches", "Transmit syscalls issued (sendmmsg or send_to)."),
    (WireRecvBatches, "wire_recv_batches", "Receive syscalls that returned at least one datagram."),
    (WireParseErrors, "wire_parse_errors", "Frames rejected by the sealed-header parse on receive."),
    (WirePayloadCsumFail, "wire_payload_csum_fail", "Frames whose header verified but whose payload checksum did not."),
    // ---- wire sessions ---------------------------------------------------
    //
    // The session lifecycle layer in `mtp-io`: handshake, liveness,
    // graceful close, and bounded-resource admission.
    (SessionHelloTx, "session_hello_tx", "HELLO frames sent by connectors (first try and retries)."),
    (SessionHelloRx, "session_hello_rx", "HELLO frames accepted by listeners (duplicates included)."),
    (SessionHandshakeRetries, "session_handshake_retries", "HELLO retransmissions after an unanswered handshake round."),
    (SessionKeepaliveTx, "session_keepalive_tx", "PING probes sent into feedback silence."),
    (SessionKeepaliveRx, "session_keepalive_rx", "PING/PONG probes received."),
    (SessionFinTx, "session_fin_tx", "FIN frames sent (first try and retries)."),
    (SessionFinRx, "session_fin_rx", "FIN frames received (duplicates re-acked from TIME-WAIT)."),
    (SessionPeerDeaths, "session_peer_deaths", "Sessions declared dead after the idle timeout."),
    (SessionBackpressure, "session_backpressure", "Submissions refused by the send-side admission caps."),
    (SessionReasmRefused, "session_reasm_refused", "First-copy data packets refused (unACKed) by the reassembly-byte cap."),
    (SessionCtrlRejected, "session_ctrl_rejected", "Session-control frames dropped: bad version, unknown session, or a busy listener."),
    (SessionOrphanFrames, "session_orphan_frames", "Data frames that arrived with no live session to own them."),
);

define_ids!(
    /// A signed instantaneous level (can go up and down).
    Gauge,
    ALL,
    (LinksDown, "links_down", "Link directions currently administratively failed."),
    (NodesDown, "nodes_down", "Nodes currently crashed."),
    (MsgsInFlight, "msgs_in_flight", "Messages admitted at senders and not yet completed."),
    (SessionsActive, "sessions_active", "Wire sessions currently established (or lingering in TIME-WAIT)."),
    (SessionReasmBytes, "session_reasm_bytes", "Reassembly bytes currently held by a wire listener, governed by its admission cap."),
);

define_ids!(
    /// A histogram id (HDR-style log-linear value distribution).
    HistId,
    ALL,
    (MsgFctUs, "msg_fct_us", "Message completion times at senders, in microseconds."),
    (MsgBytes, "msg_bytes", "Sizes of completed messages, in bytes."),
    (QueueDepthPkts, "queue_depth_pkts", "Egress queue depth sampled at each (non-bypass) enqueue."),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_named() {
        for (i, m) in Metric::ALL.iter().enumerate() {
            assert_eq!(*m as usize, i);
            assert!(!m.name().is_empty());
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(*g as usize, i);
        }
        for (i, h) in HistId::ALL.iter().enumerate() {
            assert_eq!(*h as usize, i);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Metric::COUNT);
    }
}
