//! # mtp-telemetry — a zero-cost metrics & flight-recorder substrate
//!
//! Every figure in the paper is a time series or a distribution harvested
//! from the simulator, so the counters feeding them must be trustworthy.
//! This crate gives the workspace one uniform substrate:
//!
//! * a [`Registry`] of typed **counters**, **gauges**, and HDR-style
//!   **histograms**, addressed by static ids ([`Metric`], [`Gauge`],
//!   [`HistId`]) so recording is a bounds-check-free array add — zero
//!   allocation, branch-cheap, and safe to leave in the hottest paths;
//! * a bounded [`FlightRecorder`] ring of recent trace events that can be
//!   dumped to `results/flightrec-<name>.json` when a test panics, so a
//!   failing seeded run leaves an artifact to debug from;
//! * [`Snapshot`]s with a stable [`digest`](Snapshot::digest) so two runs
//!   at the same seed can be proven to account identically.
//!
//! The `telemetry-off` compile feature turns every recording call into a
//! no-op while keeping all types and signatures, proving the instrumented
//! call sites cost nothing when disabled. [`ENABLED`] tells auditors
//! whether registry-backed cross-checks are meaningful.
//!
//! The conservation *laws* that consume these counters live next to the
//! engine (`mtp_sim::audit`); this crate is deliberately free of any
//! simulator dependency so every layer of the workspace can record into it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
pub mod hist;
pub mod metric;
pub mod registry;

pub use flight::{results_dir, FlightEvent, FlightRecorder};
pub use hist::{Hist, HistSummary};
pub use metric::{Gauge, HistId, Metric};
pub use registry::{Registry, Snapshot};

/// True when the crate was built with recording enabled (the default).
/// With the `telemetry-off` feature, every recording call is a no-op and
/// registry-backed cross-checks must be skipped.
pub const ENABLED: bool = cfg!(not(feature = "telemetry-off"));
