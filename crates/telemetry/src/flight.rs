//! The flight recorder: a bounded ring of recent trace events that can be
//! dumped to `results/flightrec-<name>.json` when something goes wrong.
//!
//! The recorder is the black box of a simulation run: always cheap enough
//! to leave armed (a fixed-capacity ring, overwritten in place, no
//! allocation after arming), and dumped only on failure. The engine maps
//! its own trace kinds onto the compact [`FlightEvent::code`]; the dump
//! resolves codes back to names through a caller-supplied table so this
//! crate stays independent of the simulator.

use std::path::{Path, PathBuf};

/// One compact trace record. All fields are plain integers so pushing one
/// is a handful of stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Simulation time in picoseconds.
    pub t_ps: u64,
    /// Event kind, in the recorder owner's code space.
    pub code: u16,
    /// Node involved.
    pub node: u32,
    /// Port involved.
    pub port: u32,
    /// Packet id (0 if not packet-related).
    pub pkt: u64,
}

/// A bounded ring of [`FlightEvent`]s plus the name it will dump under.
#[derive(Debug)]
pub struct FlightRecorder {
    name: String,
    buf: Vec<FlightEvent>,
    cap: usize,
    head: usize,
    total: u64,
}

impl FlightRecorder {
    /// A recorder named `name` (the dump file is
    /// `flightrec-<name>.json`) retaining the last `cap` events. The ring
    /// is allocated up front; recording never allocates.
    pub fn new(name: &str, cap: usize) -> FlightRecorder {
        assert!(cap > 0, "zero-capacity flight recorder");
        FlightRecorder {
            name: name.to_string(),
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            total: 0,
        }
    }

    /// The recorder's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total events ever recorded (may exceed the retained window).
    pub fn total(&self) -> u64 {
        #[cfg(not(feature = "telemetry-off"))]
        {
            self.total
        }
        #[cfg(feature = "telemetry-off")]
        {
            0
        }
    }

    /// Record one event (no-op with `telemetry-off`).
    #[inline]
    pub fn push(&mut self, ev: FlightEvent) {
        #[cfg(not(feature = "telemetry-off"))]
        {
            self.total += 1;
            if self.buf.len() < self.cap {
                self.buf.push(ev);
            } else {
                self.buf[self.head] = ev;
                self.head += 1;
                if self.head == self.cap {
                    self.head = 0;
                }
            }
        }
        #[cfg(feature = "telemetry-off")]
        let _ = ev;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Render the retained window as JSON. `code_name` maps event codes to
    /// human-readable names.
    pub fn to_json(&self, code_name: &dyn Fn(u16) -> &'static str) -> String {
        use std::fmt::Write;
        let evs = self.events();
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"name\": \"{}\",\n  \"total_events\": {},\n  \"retained\": {},\n  \"events\": [",
            json_escape(&self.name),
            self.total(),
            evs.len()
        );
        for (i, e) in evs.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"t_ps\": {}, \"kind\": \"{}\", \"node\": {}, \"port\": {}, \"pkt\": {}}}",
                e.t_ps,
                code_name(e.code),
                e.node,
                e.port,
                e.pkt
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Write the dump to `<dir>/flightrec-<name>.json`, returning the path
    /// (or the IO error). Slashes in the name are flattened so a test name
    /// can never escape the results directory.
    pub fn dump_to(
        &self,
        dir: &Path,
        code_name: &dyn Fn(u16) -> &'static str,
    ) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let safe: String = self
            .name
            .chars()
            .map(|c| {
                if c.is_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let path = dir.join(format!("flightrec-{safe}.json"));
        std::fs::write(&path, self.to_json(code_name))?;
        Ok(path)
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect()
}

/// The workspace `results/` directory: `$MTP_RESULTS_DIR` if set, else
/// `results/` under the nearest ancestor directory containing a
/// `Cargo.lock` (the workspace root, regardless of which crate's test
/// binary is running), else `./results`.
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("MTP_RESULTS_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    let mut cur = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if cur.join("Cargo.lock").exists() {
            return cur.join("results");
        }
        if !cur.pop() {
            return PathBuf::from("results");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, code: u16) -> FlightEvent {
        FlightEvent {
            t_ps: t,
            code,
            node: 1,
            port: 0,
            pkt: t,
        }
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut r = FlightRecorder::new("t", 3);
        for i in 0..5 {
            r.push(ev(i, 0));
        }
        let evs = r.events();
        if crate::ENABLED {
            assert_eq!(r.total(), 5);
            assert_eq!(evs.len(), 3);
            assert_eq!(evs[0].t_ps, 2);
            assert_eq!(evs[2].t_ps, 4);
        } else {
            assert!(evs.is_empty());
        }
    }

    #[test]
    fn dump_writes_named_file() {
        let dir = std::env::temp_dir().join("mtp-telemetry-test");
        let mut r = FlightRecorder::new("unit/dump", 8);
        r.push(ev(7, 1));
        let path = r
            .dump_to(&dir, &|c| if c == 1 { "delivered" } else { "?" })
            .unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("flightrec-unit_dump"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"name\": \"unit/dump\""));
        if crate::ENABLED {
            assert!(body.contains("\"kind\": \"delivered\""));
        }
        let _ = std::fs::remove_file(path);
    }
}
