//! Proof that metric recording performs zero steady-state allocations.
//!
//! The registry's contract is that counters, gauges, and histograms can be
//! bumped from the simulator's hottest paths without touching the heap:
//! all storage is allocated when the registry (or flight recorder) is
//! constructed. A counting global allocator pins that down — after
//! construction, a million recordings of every kind must allocate nothing.
//!
//! Lives in an integration test so the counting allocator governs the
//! whole binary and the `unsafe` `GlobalAlloc` impl stays outside the
//! library's `forbid(unsafe_code)`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use mtp_telemetry::{FlightEvent, FlightRecorder, Gauge, HistId, Metric, Registry};

struct CountingAlloc;

// Per-thread count so concurrently running tests in this binary don't
// pollute each other's measurements.
thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // try_with: TLS may be gone during thread teardown; those allocations
    // are not part of any measurement window anyway.
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
}

fn allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn recording_never_allocates() {
    let mut reg = Registry::new();
    let mut rec = FlightRecorder::new("alloc-test", 1024);

    let before = allocs();
    for i in 0..1_000_000u64 {
        reg.count(Metric::PktsOffered, 1);
        reg.count(Metric::BytesTx, 1500);
        reg.gauge_add(Gauge::MsgsInFlight, 1);
        reg.gauge_add(Gauge::MsgsInFlight, -1);
        reg.record(HistId::MsgFctUs, i % 100_000);
        rec.push(FlightEvent {
            t_ps: i,
            code: (i % 7) as u16,
            node: 1,
            port: 0,
            pkt: i,
        });
    }
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "metric/flight recording must not allocate"
    );
    if mtp_telemetry::ENABLED {
        assert_eq!(reg.get(Metric::PktsOffered), 1_000_000);
        assert_eq!(reg.hist(HistId::MsgFctUs).count, 1_000_000);
        assert_eq!(rec.total(), 1_000_000);
    }
}

#[test]
fn snapshot_reads_do_not_disturb_counters() {
    let mut reg = Registry::new();
    reg.count(Metric::PktsDelivered, 42);
    let a = reg.snapshot();
    let b = reg.snapshot();
    assert_eq!(a, b);
    assert_eq!(a.digest(), b.digest());
    if mtp_telemetry::ENABLED {
        assert_eq!(a.get(Metric::PktsDelivered), 42);
    }
}
