//! Property-based tests of simulator invariants: queue conservation, DRR
//! fairness, time arithmetic, and engine determinism under random
//! topologies.

use proptest::prelude::*;

use mtp_sim::packet::{AppData, Headers, Packet};
use mtp_sim::queue::{DropTailQueue, DrrQueue, EcnQueue, EnqueueVerdict, Qdisc};
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::{Ctx, Node, PortId, Simulator};

fn pkt(len: u32, tag: u64) -> Packet {
    Packet::new(Headers::Raw, len).with_app(AppData::Opaque(tag))
}

proptest! {
    /// Conservation: every packet offered to a drop-tail queue is either
    /// queued (and later dequeued exactly once) or reported dropped.
    #[test]
    fn droptail_conserves_packets(
        cap in 1usize..64,
        ops in prop::collection::vec((any::<bool>(), 1u32..2000), 1..200),
    ) {
        let mut q = DropTailQueue::new(cap);
        let mut queued = 0u64;
        let mut dropped = 0u64;
        let mut dequeued = 0u64;
        let mut offered = 0u64;
        for (do_deq, len) in ops {
            if do_deq {
                if q.dequeue(Time::ZERO).is_some() {
                    dequeued += 1;
                }
            } else {
                offered += 1;
                match q.enqueue(pkt(len, offered), Time::ZERO) {
                    EnqueueVerdict::Queued { .. } => queued += 1,
                    EnqueueVerdict::Dropped(_) => dropped += 1,
                    EnqueueVerdict::Trimmed => unreachable!("droptail never trims"),
                }
            }
            prop_assert!(q.len_pkts() <= cap);
        }
        while q.dequeue(Time::ZERO).is_some() {
            dequeued += 1;
        }
        prop_assert_eq!(queued + dropped, offered);
        prop_assert_eq!(dequeued, queued);
        prop_assert_eq!(q.len_bytes(), 0);
    }

    /// ECN queue: byte accounting matches the packets inside; marks happen
    /// only when the queue stood at or above K.
    #[test]
    fn ecn_queue_accounting(
        k in 0usize..16,
        lens in prop::collection::vec(1u32..2000, 1..64),
    ) {
        let cap = 64;
        let mut q = EcnQueue::new(cap, k);
        let mut expected_bytes = 0u64;
        for (i, len) in lens.iter().enumerate() {
            let before = q.len_pkts();
            match q.enqueue(pkt(*len, i as u64), Time::ZERO) {
                EnqueueVerdict::Queued { marked } => {
                    expected_bytes += *len as u64;
                    prop_assert_eq!(marked, before >= k, "mark iff qlen >= K");
                }
                EnqueueVerdict::Dropped(_) => {}
                EnqueueVerdict::Trimmed => unreachable!(),
            }
            prop_assert_eq!(q.len_bytes() as u64, expected_bytes);
        }
        while let Some(p) = q.dequeue(Time::ZERO) {
            expected_bytes -= p.wire_len as u64;
        }
        prop_assert_eq!(expected_bytes, 0);
    }

    /// DRR long-run byte fairness: with two always-backlogged bands and
    /// arbitrary (bounded) packet sizes, served bytes differ by at most a
    /// quantum + one max packet.
    #[test]
    fn drr_is_byte_fair(
        lens_a in prop::collection::vec(64u32..1500, 30..60),
        lens_b in prop::collection::vec(64u32..1500, 30..60),
    ) {
        let classify: mtp_sim::Classifier = Box::new(|p: &Packet| match p.app {
            Some(AppData::Opaque(t)) => (t % 2) as usize,
            _ => 0,
        });
        let quantum = 1500usize;
        let mut q = DrrQueue::new(2, 1024, quantum, None, classify);
        for (i, len) in lens_a.iter().enumerate() {
            q.enqueue(pkt(*len, (i * 2) as u64), Time::ZERO);
        }
        for (i, len) in lens_b.iter().enumerate() {
            q.enqueue(pkt(*len, (i * 2 + 1) as u64), Time::ZERO);
        }
        // Serve while both bands stay backlogged: stop early enough that
        // neither can run dry.
        let min_bytes: u64 =
            lens_a.iter().map(|&l| l as u64).sum::<u64>().min(lens_b.iter().map(|&l| l as u64).sum());
        let mut served = [0u64; 2];
        while served[0] + served[1] < min_bytes {
            let Some(p) = q.dequeue(Time::ZERO) else { break };
            let band = match p.app {
                Some(AppData::Opaque(t)) => (t % 2) as usize,
                _ => 0,
            };
            served[band] += p.wire_len as u64;
        }
        let diff = served[0].abs_diff(served[1]);
        prop_assert!(
            diff <= (quantum + 1500) as u64,
            "band service diverged by {diff} bytes ({served:?})"
        );
    }

    /// Serialization time is monotone in bytes and inversely monotone in
    /// rate.
    #[test]
    fn serialize_time_monotonicity(
        bytes_small in 1u32..100_000,
        extra in 1u32..100_000,
        gbps in 1u64..400,
    ) {
        let bw = Bandwidth::from_gbps(gbps);
        let t1 = bw.serialize_time(bytes_small);
        let t2 = bw.serialize_time(bytes_small + extra);
        prop_assert!(t2 > t1);
        let faster = Bandwidth::from_gbps(gbps * 2);
        prop_assert!(faster.serialize_time(bytes_small) <= t1);
    }

    /// Engine determinism under random burst patterns.
    #[test]
    fn engine_is_deterministic(
        seed in any::<u64>(),
        bursts in prop::collection::vec((0u64..1000, 1u32..20, 64u32..1500), 1..20),
    ) {
        struct BurstSender {
            bursts: Vec<(u64, u32, u32)>,
        }
        impl Node for BurstSender {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                for (i, &(at_us, _, _)) in self.bursts.iter().enumerate() {
                    ctx.set_timer_at(Time(at_us * 1_000_000), i as u64);
                }
            }
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
                let (_, count, len) = self.bursts[token as usize];
                for _ in 0..count {
                    ctx.send(PortId(0), Packet::new(Headers::Raw, len));
                }
            }
        }
        #[derive(Default)]
        struct Counter {
            arrivals: Vec<(Time, u32)>,
        }
        impl Node for Counter {
            fn on_packet(&mut self, ctx: &mut Ctx<'_>, _: PortId, pkt: Packet) {
                self.arrivals.push((ctx.now(), pkt.wire_len));
            }
        }
        let run = || {
            let mut sim = Simulator::new(seed);
            let a = sim.add_node(Box::new(BurstSender { bursts: bursts.clone() }));
            let b = sim.add_node(Box::new(Counter::default()));
            sim.connect_symmetric(
                a,
                PortId(0),
                b,
                PortId(0),
                Bandwidth::from_gbps(10),
                Duration::from_micros(3),
                32,
            );
            sim.run();
            mtp_sim::assert_conservation(&sim);
            sim.node_as::<Counter>(b).arrivals.clone()
        };
        prop_assert_eq!(run(), run());
    }

    /// Link statistics are consistent: offered = transmitted + dropped +
    /// still-queued when the run is cut short.
    #[test]
    fn link_stats_conservation(
        n in 1u32..200,
        len in 64u32..1500,
        cap in 1usize..32,
    ) {
        struct Burst {
            n: u32,
            len: u32,
        }
        impl Node for Burst {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                for _ in 0..self.n {
                    ctx.send(PortId(0), Packet::new(Headers::Raw, self.len));
                }
            }
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
        }
        struct Sink;
        impl Node for Sink {
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
        }
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Box::new(Burst { n, len }));
        let b = sim.add_node(Box::new(Sink));
        let (ab, _) = sim.connect_symmetric(
            a,
            PortId(0),
            b,
            PortId(0),
            Bandwidth::from_gbps(1),
            Duration::from_micros(1),
            cap,
        );
        sim.run();
        mtp_sim::assert_conservation(&sim);
        let s = sim.link_stats(ab);
        prop_assert_eq!(s.offered_pkts, n as u64);
        prop_assert_eq!(s.tx_pkts + s.dropped_pkts, n as u64);
        prop_assert_eq!(s.tx_bytes, s.tx_pkts * len as u64);
    }
}

/// Non-property test: the packet trace reconstructs a packet's full life.
#[test]
fn trace_records_a_packet_lifecycle() {
    struct One;
    impl Node for One {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send(PortId(0), pkt(1000, 1));
        }
        fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
    }
    struct Sink2;
    impl Node for Sink2 {
        fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
    }
    let mut sim = Simulator::new(1);
    sim.enable_trace(64);
    let a = sim.add_node(Box::new(One));
    let b = sim.add_node(Box::new(Sink2));
    sim.connect_symmetric(
        a,
        PortId(0),
        b,
        PortId(0),
        Bandwidth::from_gbps(10),
        Duration::from_micros(1),
        16,
    );
    sim.run();
    mtp_sim::assert_conservation(&sim);
    use mtp_sim::TraceKind;
    // Node `a` is node 0, so its first auto-assigned id is pkt_id(0, 1).
    let kinds: Vec<TraceKind> = sim
        .packet_trace(mtp_sim::pkt_id(0, 1))
        .iter()
        .map(|e| e.kind)
        .collect();
    assert_eq!(
        kinds,
        vec![
            TraceKind::Offered,
            TraceKind::Queued { marked: false },
            TraceKind::TxStart,
            TraceKind::Delivered
        ]
    );
}
