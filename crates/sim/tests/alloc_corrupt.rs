//! Proof that the corruption seal/damage/verify cycle stops allocating
//! once the thread-local pools are warm.
//!
//! Every damaged frame is sealed to wire bytes ([`materialize`]), carried
//! as `Headers::Mangled`, and re-verified at the next receiver
//! ([`sanitize`]). With the buffer pool and the in-place sealed parser,
//! the steady-state cycle — seal into a recycled buffer, flip a bit,
//! reject (or verify back to a pooled structured header), recycle — must
//! perform **zero** heap allocations.
//!
//! The flip lands in a fixed non-count byte (`msg_id`): a flipped section
//! *count* legitimately makes the parser reserve list capacity before the
//! length check rejects the walk, which is fine on a per-damaged-frame
//! basis but would make an exact zero-allocation assertion flaky.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use mtp_sim::corrupt::{materialize, sanitize};
use mtp_sim::{pool, Headers, Packet};

struct CountingAlloc;

// Per-thread count: a process-global counter races with the libtest
// harness thread, whose blocking `recv` of a test result lazily
// initializes a thread-local channel context — two allocations that land
// inside the measurement window or not depending on scheduling.
thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // try_with: TLS may be gone during thread teardown; those allocations
    // are not part of any measurement window anyway.
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
}

fn allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn data_packet(msg: u64) -> Packet {
    let mut hdr = pool::take_header();
    hdr.msg_id = mtp_wire::MsgId(msg);
    hdr.pkt_num = mtp_wire::PktNum(3);
    hdr.pkt_len = 1400;
    hdr.pkt_offset = 4200;
    hdr.msg_len_pkts = 8;
    hdr.msg_len_bytes = 11200;
    let wire = hdr.wire_len() as u32 + 1400;
    Packet::new(Headers::Mtp(hdr), wire)
}

fn seal_damage_verify_cycle(msg: u64) {
    // Damaged frame: seal, flip a bit in msg_id, verify must reject.
    let pkt = data_packet(msg);
    let (proto, mut bytes) = materialize(&pkt.headers).unwrap();
    bytes[8] ^= 0x40;
    let mut mangled = Packet::new(Headers::Mangled { proto, bytes }, pkt.wire_len);
    assert!(sanitize(&mut mangled).is_err());
    pool::recycle_packet(mangled);

    // Clean mangled frame: verify restores the structured header.
    let (proto, bytes) = materialize(&pkt.headers).unwrap();
    let mut clean = Packet::new(Headers::Mangled { proto, bytes }, pkt.wire_len);
    assert!(sanitize(&mut clean).is_ok());
    assert!(matches!(clean.headers, Headers::Mtp(_)));
    pool::recycle_packet(clean);
    pool::recycle_packet(pkt);
}

#[test]
fn corruption_cycle_allocates_nothing_when_warm() {
    // Warm-up: fill the header and buffer pools, fault the CRC tables,
    // initialize the packet-id counter and feature-detection cache.
    for i in 0..64 {
        seal_damage_verify_cycle(i);
    }

    let before = allocs();
    for i in 0..2000 {
        seal_damage_verify_cycle(1000 + i);
    }
    let during = allocs() - before;
    assert_eq!(
        during, 0,
        "warm seal/damage/verify cycle must not allocate (saw {during} in 2000 rounds)"
    );
}
