//! Proof that the engine's timer hot path stops allocating once warm.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! phase (which grows the event heap, the payload slab, and the free list
//! to their steady-state sizes), continued timer churn — schedule, fire,
//! cancel — must perform **zero** heap allocations. This pins down the
//! engine-design guarantees: slab slots and heap capacity are recycled,
//! and timer cancellation is a payload overwrite rather than an insert
//! into a tombstone collection.
//!
//! This lives in an integration test (not the crate's unit tests) so the
//! counting allocator governs the whole test binary, and so the `unsafe`
//! impl of `GlobalAlloc` stays outside the library's `forbid(unsafe_code)`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use mtp_sim::time::Duration;
use mtp_sim::{Ctx, Node, Packet, PortId, Simulator};

struct CountingAlloc;

// Per-thread count: a process-global counter races with the libtest
// harness thread, whose blocking `recv` of a test result lazily
// initializes a thread-local channel context — two allocations that land
// inside the measurement window or not depending on scheduling.
thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // try_with: TLS may be gone during thread teardown; those allocations
    // are not part of any measurement window anyway.
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
}

fn allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Keeps ~64 timers in flight forever: every fire re-arms one replacement
/// and schedules-then-cancels a second (the cancel hot path).
struct Churn {
    fired: u64,
    cancelled: u64,
}

impl Node for Churn {
    fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for k in 0..64u64 {
            ctx.set_timer(Duration::from_nanos(100 + k * 7), k);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        self.fired += 1;
        let d1 = 50 + (token.wrapping_mul(2654435761) % 900);
        let d2 = 50 + (token.wrapping_mul(40503) % 900);
        ctx.set_timer(Duration::from_nanos(d1), token.wrapping_add(1));
        let victim = ctx.set_timer(Duration::from_nanos(d2), token ^ 0xff);
        ctx.cancel_timer(victim);
        self.cancelled += 1;
    }

    fn name(&self) -> &str {
        "churn"
    }
}

#[test]
fn timer_churn_steady_state_allocates_nothing() {
    let mut sim = Simulator::new(7);
    let n = sim.add_node(Box::new(Churn {
        fired: 0,
        cancelled: 0,
    }));

    // Warm-up: grow heap, slab, and free list to steady-state capacity.
    let warm = sim.now() + Duration::from_micros(200);
    sim.run_until(warm);
    let warm_fired = sim.node_as::<Churn>(n).fired;
    assert!(warm_fired > 100, "warm-up ran: {warm_fired} fires");

    // Measured phase: tens of thousands of schedule/fire/cancel cycles.
    let before = allocs();
    sim.run_until(warm + Duration::from_millis(2));
    let after = allocs();

    let node = sim.node_as::<Churn>(n);
    assert!(
        node.fired > warm_fired + 10_000,
        "measured phase too small: {} fires",
        node.fired - warm_fired
    );
    assert_eq!(
        after - before,
        0,
        "timer hot path allocated {} times across {} fires",
        after - before,
        node.fired - warm_fired
    );
}
