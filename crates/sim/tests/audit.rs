//! Conservation-audit coverage at the engine level: the laws hold across
//! clean runs, overload, trimming, faults, and corruption; a deliberately
//! tampered counter is caught; the flight recorder dumps on panic.

use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::{
    Ctx, Headers, LinkCfg, LinkFailMode, Metric, Node, Packet, PortId, Simulator, TrimmingQueue,
};

/// Sends `n` packets of `size` bytes at start.
struct Blaster {
    n: u32,
    size: u32,
}
impl Node for Blaster {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for _ in 0..self.n {
            ctx.send(PortId(0), Packet::new(Headers::Raw, self.size));
        }
    }
    fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
}

/// Sends `n` MTP data packets (trimmable / corruptible) at start.
struct MtpBlaster {
    n: u32,
    size: u32,
}
impl Node for MtpBlaster {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for _ in 0..self.n {
            let hdr = Box::new(mtp_wire::MtpHeader::default());
            ctx.send(PortId(0), Packet::new(Headers::Mtp(hdr), self.size));
        }
    }
    fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
}

#[derive(Default)]
struct Sink {
    got: usize,
}
impl Node for Sink {
    fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {
        self.got += 1;
    }
}

fn pair(n: u32, size: u32, cap: usize) -> Simulator {
    let mut sim = Simulator::new(7);
    let a = sim.add_node(Box::new(Blaster { n, size }));
    let b = sim.add_node(Box::new(Sink::default()));
    sim.connect_symmetric(
        a,
        PortId(0),
        b,
        PortId(0),
        Bandwidth::from_gbps(10),
        Duration::from_micros(1),
        cap,
    );
    sim
}

#[test]
fn clean_run_conserves() {
    let mut sim = pair(50, 1500, 64);
    sim.run();
    let report = sim.audit();
    assert!(report.ok(), "{report}");
    assert!(report.laws_checked >= 4);
}

#[test]
fn overload_with_drops_conserves() {
    let mut sim = pair(200, 1500, 4);
    sim.run();
    sim.audit().assert_ok();
    assert!(sim.link_stats(mtp_sim::DirLinkId(0)).dropped_pkts > 0);
}

#[test]
fn mid_run_audit_with_packets_in_flight_conserves() {
    let mut sim = pair(100, 1500, 64);
    // Stop while packets are queued, serializing, and propagating.
    sim.run_until(Time::ZERO + Duration::from_micros(3));
    sim.audit().assert_ok();
    sim.run();
    sim.audit().assert_ok();
}

#[test]
fn trimming_conserves_bytes() {
    let mut sim = Simulator::new(7);
    let a = sim.add_node(Box::new(MtpBlaster { n: 40, size: 1500 }));
    let b = sim.add_node(Box::new(Sink::default()));
    // Tiny data band: most packets are trimmed into the control band.
    sim.connect(
        a,
        PortId(0),
        b,
        PortId(0),
        LinkCfg {
            rate: Bandwidth::from_gbps(10),
            delay: Duration::from_micros(1),
            queue: Box::new(TrimmingQueue::new(2, 1, 8)),
        },
        LinkCfg::drop_tail(Bandwidth::from_gbps(10), Duration::from_micros(1), 16),
    );
    sim.run();
    let st = *sim.link_stats(mtp_sim::DirLinkId(0));
    assert!(st.trimmed_pkts > 0, "scenario must actually trim");
    assert!(st.trim_loss_bytes > 0);
    sim.audit().assert_ok();
}

#[test]
fn faults_and_corruption_conserve() {
    let mut sim = Simulator::new(7);
    let a = sim.add_node(Box::new(MtpBlaster { n: 60, size: 300 }));
    let b = sim.add_node(Box::new(Sink::default()));
    let (ab, _ba) = sim.connect_symmetric(
        a,
        PortId(0),
        b,
        PortId(0),
        Bandwidth::from_gbps(1),
        Duration::from_micros(5),
        64,
    );
    sim.bitflip_burst(ab, 3, 1, 11);
    sim.truncate_burst(ab, 3, 12);
    sim.run_until(Time::ZERO + Duration::from_micros(20));
    sim.fail_link(ab, LinkFailMode::Blackhole);
    sim.run_until(Time::ZERO + Duration::from_micros(40));
    sim.restore_link(ab);
    sim.run_until(Time::ZERO + Duration::from_micros(60));
    sim.crash_node(b);
    sim.run_until(Time::ZERO + Duration::from_micros(80));
    sim.restart_node(b);
    sim.run();
    sim.audit().assert_ok();
    if mtp_sim::telemetry::ENABLED {
        assert!(sim.telemetry().get(Metric::FaultsApplied) >= 6);
    }
}

#[test]
fn tampered_counter_is_caught() {
    if !mtp_sim::telemetry::ENABLED {
        return; // mirrors read zero with telemetry-off; nothing to tamper
    }
    let mut sim = pair(20, 1500, 64);
    sim.run();
    sim.audit().assert_ok();
    // A device "forgot" one increment (simulated by adding a phantom one):
    // the registry mirror now disagrees with the engine's own sum.
    sim.telemetry_mut().count(Metric::PktsOffered, 1);
    let report = sim.audit();
    assert!(!report.ok(), "mutation must be caught");
    assert!(
        report.violations.iter().any(|v| v.contains("pkts_offered")),
        "violation names the broken counter: {report}"
    );
}

#[test]
fn snapshot_replays_identically_at_same_seed() {
    let run = || {
        let mut sim = pair(120, 900, 8);
        sim.run();
        sim.snapshot()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.digest(), b.digest(), "diff:\n{}", a.diff(&b));
}

#[test]
fn flight_recorder_dumps_on_panic() {
    let dir = std::env::temp_dir().join("mtp-sim-flightrec-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("MTP_RESULTS_DIR", dir.to_str().unwrap());
    let result = std::panic::catch_unwind(|| {
        let mut sim = pair(5, 1500, 64);
        sim.enable_flight_recorder("panic-dump-test", 256);
        sim.run();
        panic!("boom: trigger the black box");
    });
    std::env::remove_var("MTP_RESULTS_DIR");
    assert!(result.is_err());
    let path = dir.join("flightrec-panic-dump-test.json");
    assert!(path.exists(), "dump written to {}", path.display());
    let body = std::fs::read_to_string(&path).unwrap();
    assert!(body.contains("\"name\": \"panic-dump-test\""));
    if mtp_sim::telemetry::ENABLED {
        assert!(body.contains("\"kind\": \"delivered\""));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn audit_message_ledger_reconciles_ctx_mirrors() {
    // A node that keeps local counters and mirrors them through Ctx, plus
    // an override of audit_counters: the audit's node-ledger law must hold,
    // and must fail if the mirror is out of sync.
    struct Ledgered {
        malformed: u64,
    }
    impl Node for Ledgered {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) {
            self.malformed += 1;
            ctx.trace_malformed(&pkt, port);
        }
        fn audit_counters(&self, out: &mut mtp_sim::NodeAuditCounters) {
            out.malformed += self.malformed;
        }
    }
    let mut sim = Simulator::new(3);
    let a = sim.add_node(Box::new(Blaster { n: 6, size: 400 }));
    let b = sim.add_node(Box::new(Ledgered { malformed: 0 }));
    sim.connect_symmetric(
        a,
        PortId(0),
        b,
        PortId(0),
        Bandwidth::from_gbps(10),
        Duration::from_micros(1),
        64,
    );
    sim.run();
    sim.audit().assert_ok();
    if mtp_sim::telemetry::ENABLED {
        assert_eq!(sim.telemetry().get(Metric::PktsMalformed), 6);
        // Desync the mirror: the ledger law must notice.
        sim.telemetry_mut().count(Metric::PktsMalformed, 1);
        assert!(!sim.audit().ok());
    }
}
