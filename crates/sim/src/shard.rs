//! Sharded parallel execution: several [`Simulator`]s, one per topology
//! shard, advancing in lock-step epochs under conservative lookahead.
//!
//! ## Execution model
//!
//! A partitioner (see `mtp-net`'s `partition` module) cuts a topology at
//! its inter-shard links, replacing each cut directed link with an
//! *egress half* in the transmitting shard and an *ingress half* in the
//! receiving shard (see [`crate::BoundaryKind`]). Every shard then runs
//! its own fully deterministic engine — its own timing wheel, packet
//! pools, RNG, and telemetry registry — on its own thread.
//!
//! Synchronization is classic conservative lookahead (Chandy–Misra–Bryant
//! specialized to a static topology): let `L` be the minimum propagation
//! delay over all boundary links. Shards advance in epochs of at most `L`
//! simulated time and exchange boundary packets only at epoch barriers.
//!
//! **Why this is safe** (the lookahead proof sketch): an epoch ending at
//! barrier `B` covers the half-open interval `(B - step, B]` with
//! `step <= L`. A packet that finishes serializing in the epoch does so at
//! some `t_tx > B - step`; its arrival in the far shard is
//! `t_arr = t_tx + delay >= t_tx + L > B - step + L >= B`. So every
//! boundary arrival produced during an epoch is due *strictly after* that
//! epoch's barrier — injecting them at the barrier never schedules into a
//! shard's past, and no event a shard processed could have depended on a
//! boundary packet it had not yet received. The argument holds for any
//! barrier spacing `<= L`, which is why `run_until` may use a final
//! partial epoch and why audits at any barrier are sound.
//!
//! ## Determinism and the digest merge rule
//!
//! Within a shard, determinism is the engine's own (seeded RNGs, `(time,
//! seq)` event order). Across shards, two rules make the *merged* run
//! reproduce the monolithic one byte-for-byte:
//!
//! * **packet ids**: every node's packet-id namespace is set to its
//!   *global* node id (see [`Simulator::set_pkt_namespace`]), so ids are a
//!   function of `(node, per-node send count)` and never of interleaving;
//! * **canonical injection order**: staged boundary arrivals are injected
//!   at each barrier sorted by `(arrival time, global link id, per-link
//!   crossing count)` — a total order that no thread scheduling can
//!   perturb.
//!
//! The merged digest ([`render_digest`]) sorts per-shard link stats by
//! global link id and per-shard trace events by their full content key
//! `(time, global node, port, packet id, kind)`; the same function applied
//! to a monolithic run (identity maps) must produce the identical string.
//! Caveat: if two *different* events carry the same content key and their
//! relative order affects node behavior (e.g. two boundary packets
//! arriving at one node in the same picosecond), monolithic and sharded
//! runs may process them in different orders. Topologies intended for
//! digest comparison avoid such ties with picosecond-level per-link delay
//! skew; the determinism test matrix is the proof that the fabric
//! workloads are tie-free.
//!
//! ## Conservation under sharding
//!
//! Each shard's own audit runs the extended global law
//! `tx + boundary_in == delivered + faulted + propagating + boundary_out`;
//! [`ShardedSimulator::audit`] additionally checks the runtime-level law
//! that the boundary flows balance:
//! `sum(boundary_out) - sum(boundary_in) == packets staged in the runtime`
//! (and the same in bytes). Boundary packets sitting in the runtime's
//! staging buffers are therefore counted as propagating-between-shards,
//! never lost, and the audit holds mid-epoch at any barrier.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use crate::audit::AuditReport;
use crate::engine::{DirLinkId, LinkFailMode, LinkStats, Simulator};
use crate::node::NodeId;
use crate::packet::Packet;
use crate::time::{Bandwidth, Duration, Time};
use crate::tracefile::flight_code;

// ---------------------------------------------------------------------------
// Plans
// ---------------------------------------------------------------------------

/// Everything needed to build and run one shard of a partitioned topology.
pub struct ShardBuildPlan {
    /// Builds the shard's simulator (nodes, interior links, boundary
    /// half-links, packet-id namespaces, trace setup). Runs *on the
    /// shard's worker thread*, so node types need not be `Send`.
    pub build: Box<dyn FnOnce() -> Simulator + Send>,
    /// Global node id of each local node, indexed by local id.
    pub node_globals: Vec<usize>,
    /// Global directed-link id of each local link, indexed by local id.
    /// Boundary links appear in two shards (egress and ingress halves
    /// share the global id of the cut link).
    pub dir_globals: Vec<usize>,
}

/// One cut directed link: where its egress half lives and where its
/// ingress half lives.
#[derive(Debug, Clone, Copy)]
pub struct BoundaryRoute {
    /// Global id of the cut directed link.
    pub global: usize,
    /// Shard holding the egress half.
    pub src_shard: usize,
    /// Local id of the egress half in `src_shard`.
    pub src_dir: DirLinkId,
    /// Shard holding the ingress half.
    pub dst_shard: usize,
    /// Local id of the ingress half in `dst_shard`.
    pub dst_dir: DirLinkId,
}

/// A partitioned topology, ready to hand to [`ShardedSimulator::new`].
pub struct ShardPlan {
    /// Conservative lookahead: the minimum propagation delay over all
    /// boundary links (must be positive). With no boundary links, any
    /// positive value works (a single shard runs whole epochs).
    pub lookahead: Duration,
    /// One build plan per shard.
    pub shards: Vec<ShardBuildPlan>,
    /// Every cut directed link.
    pub routes: Vec<BoundaryRoute>,
    /// Owner of each global directed link — `(shard, local id)` of the
    /// side that holds its egress state — indexed by global id. Used to
    /// route link-targeted admin (fault) operations.
    pub dir_owner: Vec<(usize, DirLinkId)>,
    /// Owner of each global node: `(shard, local id)`, indexed by global
    /// id. Used to route node-targeted admin operations.
    pub node_owner: Vec<(usize, NodeId)>,
}

// ---------------------------------------------------------------------------
// Admin (fault) operations
// ---------------------------------------------------------------------------

/// A fault-injection operation expressed with *global* ids, routable to
/// whichever shard owns the target.
///
/// Mirrors the [`Simulator`] fault API except `set_link_delay`, which is
/// deliberately absent: shrinking a boundary delay below the lookahead
/// would invalidate the epoch-safety argument.
#[derive(Debug, Clone)]
pub enum AdminOp {
    /// [`Simulator::fail_link`].
    FailLink {
        /// Target directed link.
        link: DirLinkId,
        /// Blackhole or drain.
        mode: LinkFailMode,
    },
    /// [`Simulator::restore_link`].
    RestoreLink {
        /// Target directed link.
        link: DirLinkId,
    },
    /// [`Simulator::set_link_rate`].
    SetLinkRate {
        /// Target directed link.
        link: DirLinkId,
        /// New serialization rate.
        rate: Bandwidth,
    },
    /// [`Simulator::corrupt_burst`].
    CorruptBurst {
        /// Target directed link.
        link: DirLinkId,
        /// Packets to destroy.
        pkts: u32,
    },
    /// [`Simulator::bitflip_burst`].
    BitflipBurst {
        /// Target directed link.
        link: DirLinkId,
        /// Packets to damage.
        pkts: u32,
        /// Bits flipped per packet.
        flips: u8,
        /// Seed for the damage pattern.
        seed: u64,
    },
    /// [`Simulator::truncate_burst`].
    TruncateBurst {
        /// Target directed link.
        link: DirLinkId,
        /// Packets to truncate.
        pkts: u32,
        /// Seed for the cut points.
        seed: u64,
    },
    /// [`Simulator::set_corrupt_rate`].
    SetCorruptRate {
        /// Target directed link.
        link: DirLinkId,
        /// Corruption probability in packets per million.
        ppm: u32,
        /// Bits flipped per selected packet.
        flips: u8,
        /// Seed for selection and damage.
        seed: u64,
    },
    /// [`Simulator::crash_node`].
    CrashNode {
        /// Target node.
        node: NodeId,
    },
    /// [`Simulator::restart_node`].
    RestartNode {
        /// Target node.
        node: NodeId,
    },
}

impl AdminOp {
    /// Apply to a simulator, interpreting the ids as *local* to it.
    pub fn apply(&self, sim: &mut Simulator) {
        match *self {
            AdminOp::FailLink { link, mode } => sim.fail_link(link, mode),
            AdminOp::RestoreLink { link } => sim.restore_link(link),
            AdminOp::SetLinkRate { link, rate } => sim.set_link_rate(link, rate),
            AdminOp::CorruptBurst { link, pkts } => sim.corrupt_burst(link, pkts),
            AdminOp::BitflipBurst {
                link,
                pkts,
                flips,
                seed,
            } => sim.bitflip_burst(link, pkts, flips, seed),
            AdminOp::TruncateBurst { link, pkts, seed } => sim.truncate_burst(link, pkts, seed),
            AdminOp::SetCorruptRate {
                link,
                ppm,
                flips,
                seed,
            } => sim.set_corrupt_rate(link, ppm, flips, seed),
            AdminOp::CrashNode { node } => sim.crash_node(node),
            AdminOp::RestartNode { node } => sim.restart_node(node),
        }
    }

    /// The shard owning this op's target, plus a copy with local ids.
    fn route(
        &self,
        dir_owner: &[(usize, DirLinkId)],
        node_owner: &[(usize, NodeId)],
    ) -> (usize, AdminOp) {
        let mut op = self.clone();
        let shard = match &mut op {
            AdminOp::FailLink { link, .. }
            | AdminOp::RestoreLink { link }
            | AdminOp::SetLinkRate { link, .. }
            | AdminOp::CorruptBurst { link, .. }
            | AdminOp::BitflipBurst { link, .. }
            | AdminOp::TruncateBurst { link, .. }
            | AdminOp::SetCorruptRate { link, .. } => {
                let (shard, local) = dir_owner[link.0];
                *link = local;
                shard
            }
            AdminOp::CrashNode { node } | AdminOp::RestartNode { node } => {
                let (shard, local) = node_owner[node.0];
                *node = local;
                shard
            }
        };
        (shard, op)
    }
}

/// A timed [`AdminOp`], with ids in the coordinate system of whoever holds
/// the event (global for [`ShardedSimulator::schedule_admin`] and
/// [`AdminDriver`]; local once routed to a shard).
#[derive(Debug, Clone)]
pub struct AdminEvent {
    /// When to apply (events at equal times apply in scheduling order,
    /// after simulation events at that instant — the fault-driver
    /// convention).
    pub at: Time,
    /// What to apply.
    pub op: AdminOp,
}

/// Applies a sorted [`AdminEvent`] schedule to a *monolithic* simulator
/// with exactly the interleaving the sharded runtime uses: run to each
/// event's time, apply, continue. This is the serial half of every
/// "sharded == serial" comparison with faults enabled.
pub struct AdminDriver {
    events: Vec<AdminEvent>,
    next: usize,
}

impl AdminDriver {
    /// A driver over `events` (sorted stably by time; scheduling order
    /// breaks ties).
    pub fn new(mut events: Vec<AdminEvent>) -> AdminDriver {
        events.sort_by_key(|e| e.at);
        AdminDriver { events, next: 0 }
    }

    /// Advance `sim` to `until`, applying every due event at its exact
    /// time (after coincident simulation events). Returns whether
    /// simulation events remain.
    pub fn run_until(&mut self, sim: &mut Simulator, until: Time) -> bool {
        while self.next < self.events.len() && self.events[self.next].at <= until {
            let at = self.events[self.next].at;
            sim.run_until(at);
            self.events[self.next].op.apply(sim);
            self.next += 1;
        }
        sim.run_until(until)
    }
}

// ---------------------------------------------------------------------------
// Canonical digests
// ---------------------------------------------------------------------------

/// The digest-relevant content of one simulator, with ids translated to
/// global coordinates so per-shard parts can merge.
#[derive(Debug, Clone)]
pub struct DigestParts {
    /// `(global dir id, stats)` for every link whose egress state this
    /// simulator owns (ingress half-links are skipped — their stats live
    /// with the egress shard).
    pub links: Vec<(usize, LinkStats)>,
    /// Trace events as content keys:
    /// `(time ps, global node, port, packet id, kind code)`.
    pub trace: Vec<(u64, usize, usize, u64, u16)>,
    /// Events processed by this simulator.
    pub events: u64,
    /// This simulator's clock.
    pub now: Time,
    /// Packets delivered to live nodes.
    pub delivered_pkts: u64,
    /// Wire bytes delivered to live nodes.
    pub delivered_bytes: u64,
    /// Packets destroyed on arrival at crashed nodes.
    pub faulted_deliveries: u64,
    /// Wire bytes destroyed on arrival at crashed nodes.
    pub faulted_delivery_bytes: u64,
    /// Corruption-damaged packets the engine destroyed.
    pub corrupted_destroyed: u64,
}

/// Extract [`DigestParts`] from a simulator. `node_globals` and
/// `dir_globals` map local ids to global ones (identity for a monolithic
/// run — see [`monolithic_digest`]).
///
/// # Panics
/// Panics if the trace ring wrapped: a digest over a partial trace window
/// would silently compare incomplete records. Raise the trace cap (or
/// disable tracing; an empty trace is a complete record of nothing).
pub fn digest_parts(sim: &Simulator, node_globals: &[usize], dir_globals: &[usize]) -> DigestParts {
    let mut links = Vec::new();
    for (d, &global) in dir_globals.iter().enumerate().take(sim.num_links()) {
        let dir = DirLinkId(d);
        if sim.link_is_boundary_ingress(dir) {
            continue;
        }
        links.push((global, *sim.link_stats(dir)));
    }
    let trace: Vec<_> = sim
        .trace_events()
        .iter()
        .map(|e| {
            (
                e.time.0,
                node_globals[e.node.0],
                e.port.0,
                e.pkt.0,
                flight_code(e.kind),
            )
        })
        .collect();
    assert!(
        sim.trace_total() == trace.len() as u64,
        "trace ring wrapped ({} recorded, {} retained): digest would be incomplete",
        sim.trace_total(),
        trace.len()
    );
    DigestParts {
        links,
        trace,
        events: sim.events_processed(),
        now: sim.now(),
        delivered_pkts: sim.delivered_pkts(),
        delivered_bytes: sim.delivered_bytes(),
        faulted_deliveries: sim.faulted_deliveries(),
        faulted_delivery_bytes: sim.faulted_delivery_bytes(),
        corrupted_destroyed: sim.corrupted_destroyed(),
    }
}

/// Merge parts (one per shard, or a single monolithic part) into the
/// canonical digest string: link stats sorted by global id, trace events
/// sorted by content key, counters summed, clock = max. A sharded run and
/// its monolithic twin must render byte-identically.
pub fn render_digest(parts: Vec<DigestParts>) -> String {
    let mut links: Vec<(usize, LinkStats)> = Vec::new();
    let mut trace: Vec<(u64, usize, usize, u64, u16)> = Vec::new();
    let mut events = 0u64;
    let mut now = Time::ZERO;
    let (mut dp, mut db, mut fd, mut fdb, mut cd) = (0u64, 0u64, 0u64, 0u64, 0u64);
    for p in parts {
        links.extend(p.links);
        trace.extend(p.trace);
        events += p.events;
        now = now.max(p.now);
        dp += p.delivered_pkts;
        db += p.delivered_bytes;
        fd += p.faulted_deliveries;
        fdb += p.faulted_delivery_bytes;
        cd += p.corrupted_destroyed;
    }
    links.sort_by_key(|&(g, _)| g);
    trace.sort_unstable();
    let mut out = String::new();
    let _ = writeln!(out, "now={} events={}", now.0, events);
    let _ = writeln!(
        out,
        "delivered={dp}/{db} faulted_deliveries={fd}/{fdb} corrupted_destroyed={cd}"
    );
    for (g, s) in &links {
        let _ = writeln!(out, "link {g}: {s:?}");
    }
    let _ = writeln!(out, "trace={}", trace.len());
    for (t, node, port, pkt, kind) in &trace {
        let _ = writeln!(out, "{t} n{node} p{port} pkt{pkt:#x} k{kind}");
    }
    out
}

/// The canonical digest of a monolithic simulator (identity id maps) —
/// the serial side of a parallel == serial comparison.
pub fn monolithic_digest(sim: &Simulator) -> String {
    let nodes: Vec<usize> = (0..sim.num_nodes()).collect();
    let dirs: Vec<usize> = (0..sim.num_links()).collect();
    render_digest(vec![digest_parts(sim, &nodes, &dirs)])
}

// ---------------------------------------------------------------------------
// The sharded runtime
// ---------------------------------------------------------------------------

enum Cmd {
    Advance {
        until: Time,
        inject: Vec<(DirLinkId, Time, Packet)>,
        admin: Vec<AdminEvent>,
    },
    Digest,
    Audit,
    Snapshot,
    Stop,
}

enum Rep {
    Advanced {
        departures: Vec<(DirLinkId, Time, Packet)>,
        events: u64,
        more: bool,
    },
    Digest(Box<DigestParts>),
    Audit(ShardAudit),
    Snapshot(Box<mtp_telemetry::Registry>),
}

struct ShardAudit {
    violations: Vec<String>,
    links: usize,
    laws: usize,
    boundary_out: (u64, u64),
    boundary_in: (u64, u64),
}

struct Worker {
    tx: Sender<Cmd>,
    rx: Receiver<Rep>,
    handle: Option<JoinHandle<()>>,
}

/// A boundary arrival waiting in the runtime for its destination shard's
/// clock to reach it.
struct Staged {
    at: Time,
    /// Global id of the cut link (first tie-break key).
    global_dir: usize,
    /// Per-link crossing count (second tie-break key; preserves per-link
    /// FIFO order, which transmission order already fixed).
    fifo: u64,
    dst_dir: DirLinkId,
    pkt: Packet,
}

fn worker_main(
    build: Box<dyn FnOnce() -> Simulator + Send>,
    node_globals: Vec<usize>,
    dir_globals: Vec<usize>,
    rx: Receiver<Cmd>,
    tx: Sender<Rep>,
) {
    let mut sim = build();
    while let Ok(cmd) = rx.recv() {
        let rep = match cmd {
            Cmd::Advance {
                until,
                inject,
                admin,
            } => {
                // Injections first: every arrival is strictly in this
                // shard's future (the lookahead guarantee), so this only
                // parks packets in ingress rings — nothing dispatches
                // until run_until.
                for (dir, at, pkt) in inject {
                    sim.inject_arrival(dir, at, pkt);
                }
                // Admin events interleave exactly like a fault driver:
                // run to the event's time, apply, continue.
                for ev in admin {
                    sim.run_until(ev.at);
                    ev.op.apply(&mut sim);
                }
                let more = sim.run_until(until);
                Rep::Advanced {
                    departures: sim.drain_boundary_out(),
                    events: sim.events_processed(),
                    more,
                }
            }
            Cmd::Digest => Rep::Digest(Box::new(digest_parts(&sim, &node_globals, &dir_globals))),
            Cmd::Audit => {
                let r = sim.audit();
                Rep::Audit(ShardAudit {
                    violations: r.violations,
                    links: r.links_checked,
                    laws: r.laws_checked,
                    boundary_out: sim.boundary_out(),
                    boundary_in: sim.boundary_in(),
                })
            }
            Cmd::Snapshot => Rep::Snapshot(Box::new(sim.telemetry().clone())),
            Cmd::Stop => break,
        };
        if tx.send(rep).is_err() {
            break;
        }
    }
}

/// A set of shard simulators advancing in lock-step epochs under
/// conservative lookahead (see the module docs for the model and its
/// safety argument).
///
/// Build one from a [`ShardPlan`] (produced by `mtp-net`'s partitioner),
/// optionally [`schedule_admin`](Self::schedule_admin) fault events with
/// global ids, then drive it with [`run_until`](Self::run_until). At any
/// barrier, [`audit`](Self::audit) checks conservation globally,
/// [`digest`](Self::digest) renders the canonical merged digest, and
/// [`merged_snapshot`](Self::merged_snapshot) merges the per-shard
/// telemetry registries.
pub struct ShardedSimulator {
    lookahead: Duration,
    now: Time,
    workers: Vec<Worker>,
    /// Arrivals staged for each destination shard, not yet injected.
    staged: Vec<Vec<Staged>>,
    staged_pkts: u64,
    staged_bytes: u64,
    /// Per-route crossing counters (indexed like `routes`).
    fifo: Vec<u64>,
    routes: Vec<BoundaryRoute>,
    /// Per source shard: local egress dir id → index into `routes`.
    route_by_src: Vec<HashMap<usize, usize>>,
    dir_owner: Vec<(usize, DirLinkId)>,
    node_owner: Vec<(usize, NodeId)>,
    /// Pending admin events per shard (local ids), sorted by (time,
    /// scheduling order), with a consumed-prefix cursor.
    admin: Vec<Vec<AdminEvent>>,
    admin_cursor: Vec<usize>,
    /// Last-reported events_processed per shard (exact at barriers).
    events: Vec<u64>,
    /// Whether any shard reported pending events at the last barrier.
    live: bool,
}

impl ShardedSimulator {
    /// Spawn one worker thread per shard and build each shard's simulator
    /// on its own thread.
    ///
    /// # Panics
    /// Panics on an empty plan or a non-positive lookahead.
    pub fn new(plan: ShardPlan) -> ShardedSimulator {
        assert!(!plan.shards.is_empty(), "plan has no shards");
        assert!(plan.lookahead.0 > 0, "lookahead must be positive");
        let n = plan.shards.len();
        let mut route_by_src: Vec<HashMap<usize, usize>> = vec![HashMap::new(); n];
        for (i, r) in plan.routes.iter().enumerate() {
            assert!(r.src_shard < n && r.dst_shard < n, "route to unknown shard");
            let prev = route_by_src[r.src_shard].insert(r.src_dir.0, i);
            assert!(prev.is_none(), "two routes share an egress half-link");
        }
        let mut workers = Vec::with_capacity(n);
        for (i, shard) in plan.shards.into_iter().enumerate() {
            let (cmd_tx, cmd_rx) = channel();
            let (rep_tx, rep_rx) = channel();
            let handle = std::thread::Builder::new()
                .name(format!("shard-{i}"))
                .spawn(move || {
                    worker_main(
                        shard.build,
                        shard.node_globals,
                        shard.dir_globals,
                        cmd_rx,
                        rep_tx,
                    )
                })
                .expect("spawn shard worker");
            workers.push(Worker {
                tx: cmd_tx,
                rx: rep_rx,
                handle: Some(handle),
            });
        }
        ShardedSimulator {
            lookahead: plan.lookahead,
            now: Time::ZERO,
            workers,
            staged: (0..n).map(|_| Vec::new()).collect(),
            staged_pkts: 0,
            staged_bytes: 0,
            fifo: vec![0; plan.routes.len()],
            routes: plan.routes,
            route_by_src,
            dir_owner: plan.dir_owner,
            node_owner: plan.node_owner,
            admin: (0..n).map(|_| Vec::new()).collect(),
            admin_cursor: vec![0; n],
            events: vec![0; n],
            live: true,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.workers.len()
    }

    /// The barrier clock: every shard has processed all events up to and
    /// including this time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The conservative lookahead bound (maximum epoch length).
    pub fn lookahead(&self) -> Duration {
        self.lookahead
    }

    /// `(packets, bytes)` currently staged in the runtime between shards
    /// (in flight across an epoch barrier).
    pub fn staged_boundary(&self) -> (u64, u64) {
        (self.staged_pkts, self.staged_bytes)
    }

    /// Total events processed across all shards, as of the last barrier.
    pub fn events_processed(&self) -> u64 {
        self.events.iter().sum()
    }

    /// Schedule fault events, addressed with **global** ids; each is
    /// routed to the shard owning its target and applied there at its
    /// exact time with fault-driver interleaving. Must be called before
    /// the run passes the event times.
    ///
    /// # Panics
    /// Panics if any event is already in the past.
    pub fn schedule_admin(&mut self, events: Vec<AdminEvent>) {
        for ev in events {
            assert!(ev.at >= self.now, "admin event scheduled into the past");
            let (shard, op) = ev.op.route(&self.dir_owner, &self.node_owner);
            self.admin[shard].push(AdminEvent { at: ev.at, op });
        }
        for (q, &cursor) in self.admin.iter_mut().zip(&self.admin_cursor) {
            q[cursor..].sort_by_key(|e| e.at);
        }
    }

    fn recv(&self, shard: usize) -> Rep {
        self.workers[shard]
            .rx
            .recv()
            .unwrap_or_else(|_| panic!("shard {shard} worker died"))
    }

    /// Advance every shard to `target` in lock-step epochs of at most
    /// `lookahead`, exchanging boundary packets at each barrier. Returns
    /// whether any events remain anywhere (in a shard's queue, staged in
    /// the runtime, or pending admin).
    pub fn run_until(&mut self, target: Time) -> bool {
        assert!(target >= self.now, "run_until into the past");
        let n = self.workers.len();
        while self.now < target {
            let until = Time(self.now.0.saturating_add(self.lookahead.0).min(target.0));
            for s in 0..n {
                // Arrivals due this epoch, in canonical order.
                let (mut due, keep): (Vec<Staged>, Vec<Staged>) =
                    self.staged[s].drain(..).partition(|a| a.at <= until);
                self.staged[s] = keep;
                due.sort_by_key(|a| (a.at, a.global_dir, a.fifo));
                let mut inject = Vec::with_capacity(due.len());
                for a in due {
                    self.staged_pkts -= 1;
                    self.staged_bytes -= a.pkt.wire_len as u64;
                    inject.push((a.dst_dir, a.at, a.pkt));
                }
                // Admin events due this epoch (already time-sorted).
                let q = &self.admin[s];
                let mut cursor = self.admin_cursor[s];
                let start = cursor;
                while cursor < q.len() && q[cursor].at <= until {
                    cursor += 1;
                }
                let admin = q[start..cursor].to_vec();
                self.admin_cursor[s] = cursor;
                self.workers[s]
                    .tx
                    .send(Cmd::Advance {
                        until,
                        inject,
                        admin,
                    })
                    .unwrap_or_else(|_| panic!("shard {s} worker died"));
            }
            let mut any_more = false;
            for s in 0..n {
                let Rep::Advanced {
                    departures,
                    events,
                    more,
                } = self.recv(s)
                else {
                    panic!("shard {s}: unexpected reply");
                };
                self.events[s] = events;
                any_more |= more;
                for (src_dir, at, pkt) in departures {
                    let ri = *self.route_by_src[s]
                        .get(&src_dir.0)
                        .expect("departure on unrouted egress half-link");
                    let r = self.routes[ri];
                    debug_assert!(at > until, "boundary arrival not in the future");
                    self.fifo[ri] += 1;
                    self.staged_pkts += 1;
                    self.staged_bytes += pkt.wire_len as u64;
                    self.staged[r.dst_shard].push(Staged {
                        at,
                        global_dir: r.global,
                        fifo: self.fifo[ri],
                        dst_dir: r.dst_dir,
                        pkt,
                    });
                }
            }
            self.now = until;
            self.live = any_more;
            // Idle fast-forward: no shard has events, nothing is staged —
            // nothing can happen before the next admin event (which may
            // wake a shard) or `target`, whichever is first. Jump every
            // clock there in one command instead of grinding empty
            // epochs. Safe regardless of the lookahead: with no pending
            // events anywhere, no packet can be transmitted (and hence
            // none can cross a boundary) in the skipped interval.
            if !self.live && self.staged_pkts == 0 && self.now < target {
                let next_admin = self
                    .admin
                    .iter()
                    .zip(&self.admin_cursor)
                    .filter_map(|(q, &c)| q.get(c).map(|e| e.at))
                    .min();
                let jump = match next_admin {
                    Some(at) if at <= target => at,
                    _ => target,
                };
                if jump > self.now {
                    for s in 0..n {
                        self.workers[s]
                            .tx
                            .send(Cmd::Advance {
                                until: jump,
                                inject: Vec::new(),
                                admin: Vec::new(),
                            })
                            .unwrap_or_else(|_| panic!("shard {s} worker died"));
                    }
                    for s in 0..n {
                        let Rep::Advanced {
                            departures,
                            events,
                            more,
                        } = self.recv(s)
                        else {
                            panic!("shard {s}: unexpected reply");
                        };
                        debug_assert!(departures.is_empty(), "idle shard produced packets");
                        self.events[s] = events;
                        self.live |= more;
                    }
                    self.now = jump;
                }
            }
        }
        let admin_pending = self
            .admin
            .iter()
            .zip(&self.admin_cursor)
            .any(|(q, &c)| c < q.len());
        self.live || self.staged_pkts > 0 || admin_pending
    }

    /// Render the canonical merged digest (see [`render_digest`]). Only
    /// meaningful at a barrier — i.e. between [`run_until`](Self::run_until)
    /// calls, which is the only time this can be called anyway.
    pub fn digest(&self) -> String {
        let n = self.workers.len();
        for w in &self.workers {
            w.tx.send(Cmd::Digest).expect("worker died");
        }
        let mut parts = Vec::with_capacity(n);
        for s in 0..n {
            let Rep::Digest(p) = self.recv(s) else {
                panic!("shard {s}: unexpected reply");
            };
            parts.push(*p);
        }
        render_digest(parts)
    }

    /// Run every shard's conservation audit and the runtime-level
    /// boundary-flow law, merged into one report. Sound at any barrier,
    /// including with boundary packets staged between shards.
    pub fn audit(&self) -> AuditReport {
        let n = self.workers.len();
        for w in &self.workers {
            w.tx.send(Cmd::Audit).expect("worker died");
        }
        let mut violations = Vec::new();
        let mut links = 0usize;
        let mut laws = 0usize;
        let (mut out_p, mut out_b, mut in_p, mut in_b) = (0u64, 0u64, 0u64, 0u64);
        for s in 0..n {
            let Rep::Audit(a) = self.recv(s) else {
                panic!("shard {s}: unexpected reply");
            };
            violations.extend(a.violations.into_iter().map(|v| format!("shard {s}: {v}")));
            links += a.links;
            laws += a.laws;
            out_p += a.boundary_out.0;
            out_b += a.boundary_out.1;
            in_p += a.boundary_in.0;
            in_b += a.boundary_in.1;
        }
        // Runtime law: everything shards handed out either re-entered a
        // shard or is still staged here. Holds at every barrier because
        // outboxes are drained into the staging buffers before control
        // returns from run_until.
        laws += 1;
        if out_p != in_p + self.staged_pkts {
            violations.push(format!(
                "runtime packet law: boundary_out {out_p} != boundary_in {in_p} \
                 + staged {}",
                self.staged_pkts
            ));
        }
        laws += 1;
        if out_b != in_b + self.staged_bytes {
            violations.push(format!(
                "runtime byte law: boundary_out {out_b} != boundary_in {in_b} \
                 + staged {}",
                self.staged_bytes
            ));
        }
        AuditReport {
            violations,
            links_checked: links,
            laws_checked: laws,
        }
    }

    /// Merge every shard's telemetry registry into one snapshot
    /// (counters/gauges sum, histograms merge bucket-wise), as a
    /// monolithic run of the whole topology would have recorded.
    pub fn merged_snapshot(&self) -> mtp_telemetry::Snapshot {
        let n = self.workers.len();
        for w in &self.workers {
            w.tx.send(Cmd::Snapshot).expect("worker died");
        }
        let mut merged = mtp_telemetry::Registry::new();
        for s in 0..n {
            let Rep::Snapshot(r) = self.recv(s) else {
                panic!("shard {s}: unexpected reply");
            };
            merged.merge_from(&r);
        }
        merged.snapshot()
    }
}

impl Drop for ShardedSimulator {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.tx.send(Cmd::Stop);
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}
