//! Per-packet event tracing.
//!
//! When enabled, the engine records one [`TraceEvent`] for every packet
//! milestone — offered to a link, queued/marked/trimmed/dropped,
//! transmission start, delivery — into a bounded ring buffer. This is the
//! moral equivalent of a pcap for the simulated world: enough to
//! reconstruct any packet's life, cheap enough to leave on in tests, and
//! exportable as JSON for offline inspection.

use serde::Serialize;

use crate::node::{NodeId, PortId};
use crate::packet::PacketId;
use crate::time::Time;

/// What happened to a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TraceKind {
    /// A node offered the packet to one of its egress links.
    Offered,
    /// The queue discipline accepted it (possibly CE-marking it).
    Queued {
        /// True if this enqueue set the CE mark.
        marked: bool,
    },
    /// The queue discipline dropped it.
    Dropped,
    /// The queue discipline trimmed its payload (NDP).
    Trimmed,
    /// Serialization onto the wire began.
    TxStart,
    /// The packet arrived at a node.
    Delivered,
    /// A forwarding element had no route for the packet's destination and
    /// discarded it (see `RouteError` in `mtp-net`).
    NoRoute,
    /// A corruption fault damaged the packet's wire bytes on this link
    /// (the packet was still delivered; whoever verifies it next decides
    /// its fate).
    Corrupted,
    /// A receiver's integrity check rejected the packet: the header failed
    /// its CRC, the frame was truncated, or a payload checksum failed at a
    /// consuming endpoint. The packet was counted and discarded.
    Malformed,
}

/// Compact encoding of a [`TraceKind`] for the flight recorder
/// (`mtp_telemetry::FlightEvent::code`). `Queued` folds its `marked` flag
/// into a second code so the dump stays lossless.
pub(crate) fn flight_code(kind: TraceKind) -> u16 {
    match kind {
        TraceKind::Offered => 0,
        TraceKind::Queued { marked: false } => 1,
        TraceKind::Queued { marked: true } => 2,
        TraceKind::Dropped => 3,
        TraceKind::Trimmed => 4,
        TraceKind::TxStart => 5,
        TraceKind::Delivered => 6,
        TraceKind::NoRoute => 7,
        TraceKind::Corrupted => 8,
        TraceKind::Malformed => 9,
    }
}

/// Human-readable name for a flight-recorder event code (the inverse of
/// [`flight_code`], used when dumping `flightrec-*.json`).
pub fn flight_code_name(code: u16) -> &'static str {
    match code {
        0 => "offered",
        1 => "queued",
        2 => "queued_marked",
        3 => "dropped",
        4 => "trimmed",
        5 => "tx_start",
        6 => "delivered",
        7 => "no_route",
        8 => "corrupted",
        9 => "malformed",
        _ => "unknown",
    }
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TraceEvent {
    /// When it happened.
    pub time: Time,
    /// The packet (0 while unassigned, i.e. before first transmission).
    pub pkt: PacketId,
    /// The node involved (sender for egress events, receiver for delivery).
    pub node: NodeId,
    /// The port involved.
    pub port: PortId,
    /// What happened.
    pub kind: TraceKind,
}

/// A bounded ring of trace events.
#[derive(Debug)]
pub struct TraceRing {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Next write position once the ring is full.
    head: usize,
    /// Total events ever recorded (may exceed `cap`).
    pub total: u64,
}

impl TraceRing {
    /// A ring holding the last `cap` events.
    pub fn new(cap: usize) -> TraceRing {
        assert!(cap > 0);
        TraceRing {
            buf: Vec::with_capacity(cap.min(4096)),
            cap,
            head: 0,
            total: 0,
        }
    }

    /// Record one event.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        self.total += 1;
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head += 1;
            if self.head == self.cap {
                self.head = 0;
            }
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// The retained events for one packet, oldest first.
    pub fn packet_history(&self, pkt: PacketId) -> Vec<TraceEvent> {
        self.events().into_iter().filter(|e| e.pkt == pkt).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, pkt: u64) -> TraceEvent {
        TraceEvent {
            time: Time(t),
            pkt: PacketId(pkt),
            node: NodeId(0),
            port: PortId(0),
            kind: TraceKind::Offered,
        }
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut r = TraceRing::new(3);
        for i in 0..5 {
            r.push(ev(i, i));
        }
        let evs = r.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].time, Time(2));
        assert_eq!(evs[2].time, Time(4));
        assert_eq!(r.total, 5);
    }

    #[test]
    fn packet_history_filters() {
        let mut r = TraceRing::new(10);
        r.push(ev(1, 7));
        r.push(ev(2, 8));
        r.push(ev(3, 7));
        let h = r.packet_history(PacketId(7));
        assert_eq!(h.len(), 2);
        assert_eq!(h[1].time, Time(3));
    }
}
